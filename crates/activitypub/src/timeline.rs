//! The three timelines of §3.
//!
//! > "Users have three timelines: (i) a *home* timeline, with posts
//! > published by the accounts that the user follows (local and remote);
//! > (ii) a *public* timeline, with all the posts generated within the
//! > local instance; and (iii) the *whole known network*, with all posts
//! > that have been retrieved from remote instances that the local users
//! > follow."

use fediscope_core::id::{Domain, PostId, UserRef};
use fediscope_core::model::{Post, Visibility};
use std::collections::HashMap;

/// Which timeline to read.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TimelineKind {
    /// Posts by accounts the user follows (per-user).
    Home,
    /// All public posts generated on the local instance
    /// (`/api/v1/timelines/public?local=true` — what the paper scraped).
    PublicLocal,
    /// The whole known network: the union of remote posts retrieved for
    /// all local users.
    WholeKnownNetwork,
}

/// Timeline storage for one instance.
///
/// Posts are stored once; timelines hold ids in insertion order (which is
/// also `PostId` order for local posts, making `max_id` pagination exact).
#[derive(Debug, Default)]
pub struct Timelines {
    posts: HashMap<PostId, Post>,
    public_local: Vec<PostId>,
    whole_known_network: Vec<PostId>,
    home: HashMap<UserRef, Vec<PostId>>,
}

impl Timelines {
    /// Empty timelines.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ingests a post originating on this instance.
    ///
    /// Public posts land on the public-local timeline; all posts land on
    /// the home timelines of the given local followers (plus the author).
    pub fn ingest_local(&mut self, post: Post, local_followers: &[UserRef]) {
        let id = post.id;
        if post.visibility == Visibility::Public {
            self.public_local.push(id);
        }
        self.home.entry(post.author.clone()).or_default().push(id);
        for follower in local_followers {
            if follower != &post.author {
                self.home.entry(follower.clone()).or_default().push(id);
            }
        }
        self.posts.insert(id, post);
    }

    /// Ingests a post retrieved from a remote instance (it already passed
    /// the MRF pipeline).
    ///
    /// Public remote posts (not federated-timeline-removed) land on the
    /// whole-known-network timeline; home delivery goes to the local
    /// followers unless the post's followers collection was stripped.
    pub fn ingest_remote(&mut self, post: Post, local_followers: &[UserRef]) {
        let id = post.id;
        if post.visibility == Visibility::Public {
            self.whole_known_network.push(id);
        }
        if !post.followers_stripped {
            for follower in local_followers {
                self.home.entry(follower.clone()).or_default().push(id);
            }
        }
        self.posts.insert(id, post);
    }

    /// Removes a post everywhere (a `Delete` that survived the pipeline).
    pub fn delete(&mut self, id: PostId) -> bool {
        let existed = self.posts.remove(&id).is_some();
        if existed {
            self.public_local.retain(|p| *p != id);
            self.whole_known_network.retain(|p| *p != id);
            for tl in self.home.values_mut() {
                tl.retain(|p| *p != id);
            }
        }
        existed
    }

    /// Expires posts whose `expires_at` has passed (the
    /// `ActivityExpirationPolicy` reaper). Returns how many were removed.
    pub fn expire(&mut self, now: fediscope_core::time::SimTime) -> usize {
        let expired: Vec<PostId> = self
            .posts
            .values()
            .filter(|p| p.expires_at.map(|t| t <= now).unwrap_or(false))
            .map(|p| p.id)
            .collect();
        for id in &expired {
            self.delete(*id);
        }
        expired.len()
    }

    /// Reads a timeline newest-first with Mastodon-style `max_id` paging:
    /// returns up to `limit` posts with id strictly less than `max_id`
    /// (or the newest if `None`).
    pub fn page(
        &self,
        kind: TimelineKind,
        viewer: Option<&UserRef>,
        max_id: Option<PostId>,
        limit: usize,
    ) -> Vec<&Post> {
        let ids: &[PostId] = match kind {
            TimelineKind::PublicLocal => &self.public_local,
            TimelineKind::WholeKnownNetwork => &self.whole_known_network,
            TimelineKind::Home => viewer
                .and_then(|v| self.home.get(v))
                .map(Vec::as_slice)
                .unwrap_or(&[]),
        };
        ids.iter()
            .rev()
            .filter(|id| max_id.map(|m| **id < m).unwrap_or(true))
            .take(limit)
            .filter_map(|id| self.posts.get(id))
            .collect()
    }

    /// Fetches a post by id.
    pub fn get(&self, id: PostId) -> Option<&Post> {
        self.posts.get(&id)
    }

    /// Total posts stored on the instance.
    pub fn post_count(&self) -> usize {
        self.posts.len()
    }

    /// Length of one timeline.
    pub fn timeline_len(&self, kind: TimelineKind, viewer: Option<&UserRef>) -> usize {
        match kind {
            TimelineKind::PublicLocal => self.public_local.len(),
            TimelineKind::WholeKnownNetwork => self.whole_known_network.len(),
            TimelineKind::Home => viewer
                .and_then(|v| self.home.get(v))
                .map(Vec::len)
                .unwrap_or(0),
        }
    }

    /// Iterates over every stored post (dataset export).
    pub fn all_posts(&self) -> impl Iterator<Item = &Post> {
        self.posts.values()
    }

    /// Domains whose posts appear in the whole known network — federation
    /// evidence for the Peers API.
    pub fn known_remote_domains(&self) -> Vec<Domain> {
        let mut v: Vec<Domain> = self
            .whole_known_network
            .iter()
            .filter_map(|id| self.posts.get(id))
            .map(|p| p.origin().clone())
            .collect();
        v.sort();
        v.dedup();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fediscope_core::id::UserId;
    use fediscope_core::time::SimTime;

    fn user(id: u64, domain: &str) -> UserRef {
        UserRef::new(UserId(id), Domain::new(domain))
    }

    fn post(id: u64, author: &UserRef, vis: Visibility) -> Post {
        let mut p = Post::stub(
            PostId(id),
            author.clone(),
            SimTime(id),
            format!("post {id}"),
        );
        p.visibility = vis;
        p
    }

    #[test]
    fn local_public_posts_reach_public_timeline() {
        let mut t = Timelines::new();
        let author = user(1, "home.example");
        t.ingest_local(post(1, &author, Visibility::Public), &[]);
        t.ingest_local(post(2, &author, Visibility::Unlisted), &[]);
        assert_eq!(t.timeline_len(TimelineKind::PublicLocal, None), 1);
        assert_eq!(t.post_count(), 2);
    }

    #[test]
    fn remote_posts_reach_whole_known_network_not_public() {
        let mut t = Timelines::new();
        let remote = user(9, "remote.example");
        t.ingest_remote(post(1, &remote, Visibility::Public), &[]);
        assert_eq!(t.timeline_len(TimelineKind::PublicLocal, None), 0);
        assert_eq!(t.timeline_len(TimelineKind::WholeKnownNetwork, None), 1);
    }

    #[test]
    fn home_timeline_collects_followed_authors() {
        let mut t = Timelines::new();
        let local_author = user(1, "home.example");
        let follower = user(2, "home.example");
        let remote = user(9, "remote.example");
        t.ingest_local(
            post(1, &local_author, Visibility::Public),
            std::slice::from_ref(&follower),
        );
        t.ingest_remote(
            post(2, &remote, Visibility::Public),
            std::slice::from_ref(&follower),
        );
        assert_eq!(t.timeline_len(TimelineKind::Home, Some(&follower)), 2);
        // The author sees their own post at home.
        assert_eq!(t.timeline_len(TimelineKind::Home, Some(&local_author)), 1);
    }

    #[test]
    fn followers_stripped_posts_skip_home_delivery() {
        let mut t = Timelines::new();
        let remote = user(9, "remote.example");
        let follower = user(2, "home.example");
        let mut p = post(1, &remote, Visibility::Public);
        p.followers_stripped = true;
        t.ingest_remote(p, std::slice::from_ref(&follower));
        assert_eq!(t.timeline_len(TimelineKind::Home, Some(&follower)), 0);
        // It still shows on the whole known network (it is public).
        assert_eq!(t.timeline_len(TimelineKind::WholeKnownNetwork, None), 1);
    }

    #[test]
    fn pagination_is_newest_first_and_complete() {
        let mut t = Timelines::new();
        let author = user(1, "home.example");
        for i in 1..=25 {
            t.ingest_local(post(i, &author, Visibility::Public), &[]);
        }
        let page1 = t.page(TimelineKind::PublicLocal, None, None, 10);
        assert_eq!(page1.len(), 10);
        assert_eq!(page1[0].id, PostId(25), "newest first");
        assert_eq!(page1[9].id, PostId(16));
        // Next page via max_id.
        let page2 = t.page(TimelineKind::PublicLocal, None, Some(PostId(16)), 10);
        assert_eq!(page2[0].id, PostId(15));
        let page3 = t.page(TimelineKind::PublicLocal, None, Some(PostId(6)), 10);
        assert_eq!(page3.len(), 5);
        // Walking pages yields every post exactly once.
        let mut seen = Vec::new();
        let mut max_id = None;
        loop {
            let page = t.page(TimelineKind::PublicLocal, None, max_id, 7);
            if page.is_empty() {
                break;
            }
            max_id = Some(page.last().unwrap().id);
            seen.extend(page.iter().map(|p| p.id.0));
        }
        assert_eq!(seen.len(), 25);
        let mut sorted = seen.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 25, "no duplicates");
    }

    #[test]
    fn delete_removes_everywhere() {
        let mut t = Timelines::new();
        let author = user(1, "home.example");
        let follower = user(2, "home.example");
        t.ingest_local(
            post(1, &author, Visibility::Public),
            std::slice::from_ref(&follower),
        );
        assert!(t.delete(PostId(1)));
        assert_eq!(t.post_count(), 0);
        assert_eq!(t.timeline_len(TimelineKind::PublicLocal, None), 0);
        assert_eq!(t.timeline_len(TimelineKind::Home, Some(&follower)), 0);
        assert!(!t.delete(PostId(1)), "double delete is a no-op");
    }

    #[test]
    fn expiry_reaps_stamped_posts() {
        let mut t = Timelines::new();
        let author = user(1, "home.example");
        let mut p = post(1, &author, Visibility::Public);
        p.expires_at = Some(SimTime(100));
        t.ingest_local(p, &[]);
        t.ingest_local(post(2, &author, Visibility::Public), &[]);
        assert_eq!(t.expire(SimTime(50)), 0);
        assert_eq!(t.expire(SimTime(100)), 1);
        assert_eq!(t.post_count(), 1);
    }

    #[test]
    fn known_remote_domains_deduplicates() {
        let mut t = Timelines::new();
        for (i, d) in [(1, "b.example"), (2, "a.example"), (3, "b.example")] {
            t.ingest_remote(post(i, &user(9, d), Visibility::Public), &[]);
        }
        assert_eq!(
            t.known_remote_domains(),
            vec![Domain::new("a.example"), Domain::new("b.example")]
        );
    }
}
