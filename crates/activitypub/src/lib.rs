//! # fediscope-activitypub
//!
//! The federation substrate: an ActivityPub-style subscription protocol in
//! the shape the paper describes (§2 *Background*).
//!
//! > "A user on one instance can follow another user on a separate
//! > instance. [...] the local instance subscribes to the remote user on
//! > behalf of the local user, thereby federating with the remote
//! > instance."
//!
//! This crate provides the deterministic state machinery an instance server
//! builds on:
//!
//! * [`FollowGraph`] — who follows whom, and the instance-level *federation
//!   links* (peers) derived from it, which power the Peers API the paper's
//!   crawler used for discovery;
//! * [`Timelines`] — the three timelines of §3: *home*, *public* (local)
//!   and the *whole known network* (federated);
//! * [`Outbox`] / [`Inbox`] — ordered activity logs with delivery
//!   bookkeeping;
//! * [`Mailman`] — pure fan-out logic computing which instances must
//!   receive a given activity.
//!
//! Everything here is synchronous and allocation-light; the async transport
//! lives in `fediscope-simnet` and the servers in `fediscope-server`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod follow;
mod mailbox;
mod timeline;

pub use follow::{FollowGraph, FollowOutcome};
pub use mailbox::{Inbox, Mailman, Outbox};
pub use timeline::{TimelineKind, Timelines};
