//! The follow graph and the federation (peers) relation it induces.

use fediscope_core::id::{Domain, UserRef};
use fediscope_core::time::SimTime;
use std::collections::{BTreeSet, HashMap, HashSet};

/// Result of a follow attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FollowOutcome {
    /// New subscription established.
    Followed,
    /// The edge already existed.
    AlreadyFollowing,
}

/// A directed follow graph over fully-qualified user references.
///
/// Besides user-level edges it maintains the *instance-level federation
/// relation*: two domains are peers once any user of one has interacted
/// with (followed, or received content from) a user of the other. The
/// Peers API (`/api/v1/instance/peers`) the paper crawls serves exactly
/// this set: "the list of instances that each Pleroma instance has *ever*
/// federated with" — peers are therefore never removed, even if every
/// follow edge between the domains is undone.
#[derive(Debug, Default)]
pub struct FollowGraph {
    /// follower → set of followees.
    following: HashMap<UserRef, HashSet<UserRef>>,
    /// followee → set of followers.
    followers: HashMap<UserRef, HashSet<UserRef>>,
    /// domain → domains it has ever federated with (sorted for stable API
    /// output).
    peers: HashMap<Domain, BTreeSet<Domain>>,
    /// Follow timestamps for account-age style analytics.
    established: HashMap<(UserRef, UserRef), SimTime>,
}

impl FollowGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `follower` follows `followee` at time `at`.
    ///
    /// Cross-domain follows federate the two instances (both directions —
    /// each has now seen the other).
    pub fn follow(&mut self, follower: UserRef, followee: UserRef, at: SimTime) -> FollowOutcome {
        if self
            .following
            .get(&follower)
            .map(|s| s.contains(&followee))
            .unwrap_or(false)
        {
            return FollowOutcome::AlreadyFollowing;
        }
        self.note_federation(&follower.domain, &followee.domain);
        self.established
            .insert((follower.clone(), followee.clone()), at);
        self.following
            .entry(follower.clone())
            .or_default()
            .insert(followee.clone());
        self.followers.entry(followee).or_default().insert(follower);
        FollowOutcome::Followed
    }

    /// Removes a follow edge (an `Undo { Follow }`). The federation link
    /// survives: peers record *ever*-federated domains.
    pub fn unfollow(&mut self, follower: &UserRef, followee: &UserRef) -> bool {
        let removed = self
            .following
            .get_mut(follower)
            .map(|s| s.remove(followee))
            .unwrap_or(false);
        if removed {
            if let Some(s) = self.followers.get_mut(followee) {
                s.remove(follower);
            }
            self.established
                .remove(&(follower.clone(), followee.clone()));
        }
        removed
    }

    /// Marks two domains as federated without a user edge (e.g. a boost or
    /// a whole-known-network import introduced the content).
    pub fn note_federation(&mut self, a: &Domain, b: &Domain) {
        if a == b {
            return;
        }
        self.peers.entry(a.clone()).or_default().insert(b.clone());
        self.peers.entry(b.clone()).or_default().insert(a.clone());
    }

    /// Tears down every follow edge between domains `a` and `b` (both
    /// directions) — what defederation does to the social graph. Returns
    /// the number of edges removed.
    ///
    /// The *peers* relation survives, as everywhere else in this module:
    /// the Peers API reports ever-federated domains, and the paper's
    /// measurements rely on that ("the list of instances that each
    /// Pleroma instance has **ever** federated with"). Only live
    /// subscriptions are destroyed.
    pub fn sever(&mut self, a: &Domain, b: &Domain) -> usize {
        let crossing: Vec<(UserRef, UserRef)> = self
            .following
            .iter()
            .flat_map(|(follower, followees)| {
                followees
                    .iter()
                    .filter(|followee| {
                        (follower.domain == *a && followee.domain == *b)
                            || (follower.domain == *b && followee.domain == *a)
                    })
                    .map(|followee| (follower.clone(), followee.clone()))
            })
            .collect();
        for (follower, followee) in &crossing {
            self.unfollow(follower, followee);
        }
        crossing.len()
    }

    /// Whether `follower` follows `followee`.
    pub fn follows(&self, follower: &UserRef, followee: &UserRef) -> bool {
        self.following
            .get(follower)
            .map(|s| s.contains(followee))
            .unwrap_or(false)
    }

    /// The accounts following `user`.
    pub fn followers_of(&self, user: &UserRef) -> impl Iterator<Item = &UserRef> {
        self.followers.get(user).into_iter().flatten()
    }

    /// The accounts `user` follows.
    pub fn following_of(&self, user: &UserRef) -> impl Iterator<Item = &UserRef> {
        self.following.get(user).into_iter().flatten()
    }

    /// Follower count.
    pub fn follower_count(&self, user: &UserRef) -> usize {
        self.followers.get(user).map(HashSet::len).unwrap_or(0)
    }

    /// Following count.
    pub fn following_count(&self, user: &UserRef) -> usize {
        self.following.get(user).map(HashSet::len).unwrap_or(0)
    }

    /// Every domain `domain` has ever federated with, sorted — the exact
    /// payload of the Peers API.
    pub fn peers_of(&self, domain: &Domain) -> Vec<Domain> {
        self.peers
            .get(domain)
            .map(|s| s.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// Number of peers of a domain.
    pub fn peer_count(&self, domain: &Domain) -> usize {
        self.peers.get(domain).map(BTreeSet::len).unwrap_or(0)
    }

    /// Remote domains hosting followers of `user` — the delivery targets
    /// for the user's posts.
    pub fn follower_domains(&self, user: &UserRef) -> BTreeSet<Domain> {
        self.followers_of(user)
            .map(|f| f.domain.clone())
            .filter(|d| *d != user.domain)
            .collect()
    }

    /// When the follow edge was established, if it exists.
    pub fn established_at(&self, follower: &UserRef, followee: &UserRef) -> Option<SimTime> {
        self.established
            .get(&(follower.clone(), followee.clone()))
            .copied()
    }

    /// Total number of follow edges.
    pub fn edge_count(&self) -> usize {
        self.following.values().map(HashSet::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fediscope_core::id::UserId;

    fn user(id: u64, domain: &str) -> UserRef {
        UserRef::new(UserId(id), Domain::new(domain))
    }

    #[test]
    fn follow_creates_edge_and_federation() {
        let mut g = FollowGraph::new();
        let alice = user(1, "a.example");
        let bob = user(2, "b.example");
        assert_eq!(
            g.follow(alice.clone(), bob.clone(), SimTime(10)),
            FollowOutcome::Followed
        );
        assert!(g.follows(&alice, &bob));
        assert!(!g.follows(&bob, &alice), "follows are directed");
        assert_eq!(g.follower_count(&bob), 1);
        assert_eq!(g.following_count(&alice), 1);
        // Federation is symmetric.
        assert_eq!(
            g.peers_of(&Domain::new("a.example")),
            vec![Domain::new("b.example")]
        );
        assert_eq!(
            g.peers_of(&Domain::new("b.example")),
            vec![Domain::new("a.example")]
        );
        assert_eq!(g.established_at(&alice, &bob), Some(SimTime(10)));
    }

    #[test]
    fn duplicate_follow_reports_already_following() {
        let mut g = FollowGraph::new();
        let a = user(1, "a.example");
        let b = user(2, "b.example");
        g.follow(a.clone(), b.clone(), SimTime(0));
        assert_eq!(g.follow(a, b, SimTime(5)), FollowOutcome::AlreadyFollowing);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn same_domain_follow_adds_no_peer() {
        let mut g = FollowGraph::new();
        g.follow(user(1, "a.example"), user(2, "a.example"), SimTime(0));
        assert_eq!(g.peer_count(&Domain::new("a.example")), 0);
    }

    #[test]
    fn unfollow_removes_edge_but_keeps_peer() {
        let mut g = FollowGraph::new();
        let a = user(1, "a.example");
        let b = user(2, "b.example");
        g.follow(a.clone(), b.clone(), SimTime(0));
        assert!(g.unfollow(&a, &b));
        assert!(!g.follows(&a, &b));
        assert_eq!(g.follower_count(&b), 0);
        // "ever federated with" — the peer link persists.
        assert_eq!(g.peer_count(&Domain::new("a.example")), 1);
        // Unfollowing again is a no-op.
        assert!(!g.unfollow(&a, &b));
    }

    #[test]
    fn sever_tears_down_both_directions_but_keeps_peers() {
        let mut g = FollowGraph::new();
        let a1 = user(1, "a.example");
        let a2 = user(2, "a.example");
        let b1 = user(10, "b.example");
        let c1 = user(20, "c.example");
        g.follow(a1.clone(), b1.clone(), SimTime(0));
        g.follow(b1.clone(), a2.clone(), SimTime(1));
        g.follow(a2.clone(), c1.clone(), SimTime(2));
        assert_eq!(g.edge_count(), 3);
        let removed = g.sever(&Domain::new("a.example"), &Domain::new("b.example"));
        assert_eq!(removed, 2);
        assert!(!g.follows(&a1, &b1));
        assert!(!g.follows(&b1, &a2));
        // The unrelated edge and the ever-federated peer links survive.
        assert!(g.follows(&a2, &c1));
        assert!(g
            .peers_of(&Domain::new("a.example"))
            .contains(&Domain::new("b.example")));
        // Severing again finds nothing.
        assert_eq!(
            g.sever(&Domain::new("a.example"), &Domain::new("b.example")),
            0
        );
    }

    #[test]
    fn sever_unknown_link_is_a_noop() {
        let mut g = FollowGraph::new();
        let a1 = user(1, "a.example");
        let c1 = user(20, "c.example");
        g.follow(a1.clone(), c1.clone(), SimTime(0));
        // Domains that never federated: nothing to remove, nothing
        // created as a side effect.
        assert_eq!(
            g.sever(&Domain::new("a.example"), &Domain::new("ghost.example")),
            0
        );
        assert_eq!(
            g.sever(
                &Domain::new("ghost.example"),
                &Domain::new("phantom.example")
            ),
            0
        );
        assert_eq!(g.edge_count(), 1);
        assert!(g.follows(&a1, &c1));
        assert!(g.peers_of(&Domain::new("ghost.example")).is_empty());
    }

    #[test]
    fn follower_domains_excludes_local() {
        let mut g = FollowGraph::new();
        let author = user(1, "home.example");
        g.follow(user(2, "home.example"), author.clone(), SimTime(0));
        g.follow(user(3, "remote1.example"), author.clone(), SimTime(0));
        g.follow(user(4, "remote2.example"), author.clone(), SimTime(0));
        g.follow(user(5, "remote2.example"), author.clone(), SimTime(0));
        let domains = g.follower_domains(&author);
        assert_eq!(domains.len(), 2);
        assert!(!domains.contains(&Domain::new("home.example")));
    }

    #[test]
    fn peers_are_sorted() {
        let mut g = FollowGraph::new();
        let me = user(1, "m.example");
        for d in ["zzz.example", "aaa.example", "mmm.example"] {
            g.follow(me.clone(), user(9, d), SimTime(0));
        }
        let peers = g.peers_of(&Domain::new("m.example"));
        let mut sorted = peers.clone();
        sorted.sort();
        assert_eq!(peers, sorted);
    }

    #[test]
    fn note_federation_is_idempotent() {
        let mut g = FollowGraph::new();
        let a = Domain::new("a.example");
        let b = Domain::new("b.example");
        g.note_federation(&a, &b);
        g.note_federation(&a, &b);
        g.note_federation(&a, &a);
        assert_eq!(g.peer_count(&a), 1);
    }
}
