//! Activity logs (inbox/outbox) and delivery fan-out.

use crate::follow::FollowGraph;
use fediscope_core::id::{ActivityId, Domain};
use fediscope_core::model::{Activity, ActivityKind, ActivityPayload, Visibility};
use std::collections::BTreeSet;

/// An ordered log of activities published by local users, with per-domain
/// delivery bookkeeping.
#[derive(Debug, Default)]
pub struct Outbox {
    entries: Vec<Activity>,
}

impl Outbox {
    /// Empty outbox.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an activity.
    pub fn push(&mut self, activity: Activity) {
        self.entries.push(activity);
    }

    /// All entries in publication order.
    pub fn entries(&self) -> &[Activity] {
        &self.entries
    }

    /// Number of activities published.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the outbox is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// An ordered log of activities received from remote instances, with
/// idempotent ingestion (replays of the same `ActivityId` are dropped —
/// federation delivery is at-least-once).
#[derive(Debug, Default)]
pub struct Inbox {
    entries: Vec<Activity>,
    seen: BTreeSet<ActivityId>,
}

impl Inbox {
    /// Empty inbox.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ingests an activity; returns `false` if it was a duplicate.
    pub fn receive(&mut self, activity: Activity) -> bool {
        if !self.seen.insert(activity.id) {
            return false;
        }
        self.entries.push(activity);
        true
    }

    /// All accepted entries in arrival order.
    pub fn entries(&self) -> &[Activity] {
        &self.entries
    }

    /// Number of accepted activities.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the inbox is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether an activity id has been seen.
    pub fn has_seen(&self, id: ActivityId) -> bool {
        self.seen.contains(&id)
    }
}

/// Pure fan-out logic: which remote domains must receive an activity.
///
/// §2: federation is subscription-driven — content flows to the instances
/// hosting the author's followers. Public posts additionally flow to every
/// *peer* that has asked to mirror the author's instance (we model the
/// whole-known-network import as follower-driven only, like Pleroma).
#[derive(Debug, Default, Clone, Copy)]
pub struct Mailman;

impl Mailman {
    /// Computes the delivery set for `activity` given the local follow
    /// graph. The local domain itself is never included.
    pub fn delivery_targets(&self, graph: &FollowGraph, activity: &Activity) -> BTreeSet<Domain> {
        let local = &activity.actor.domain;
        let mut targets = BTreeSet::new();
        match (&activity.kind, &activity.payload) {
            (ActivityKind::Create, ActivityPayload::Note(post)) => {
                match post.visibility {
                    Visibility::Direct => {
                        // Only the mentioned users' instances.
                        for m in &post.mentions {
                            if &m.domain != local {
                                targets.insert(m.domain.clone());
                            }
                        }
                    }
                    _ => {
                        // Followers' instances (unless stripped), plus
                        // mentioned users' instances.
                        if !post.followers_stripped {
                            targets.extend(graph.follower_domains(&activity.actor));
                        }
                        for m in &post.mentions {
                            if &m.domain != local {
                                targets.insert(m.domain.clone());
                            }
                        }
                    }
                }
            }
            (ActivityKind::Follow, ActivityPayload::FollowRequest { target }) => {
                if &target.domain != local {
                    targets.insert(target.domain.clone());
                }
            }
            (ActivityKind::Flag, ActivityPayload::Report { target, .. }) => {
                if &target.domain != local {
                    targets.insert(target.domain.clone());
                }
            }
            // Deletes/boosts/likes follow the same follower fan-out.
            _ => {
                targets.extend(graph.follower_domains(&activity.actor));
            }
        }
        targets.remove(local);
        targets
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fediscope_core::id::{PostId, UserId, UserRef};
    use fediscope_core::model::Post;
    use fediscope_core::time::SimTime;

    fn user(id: u64, domain: &str) -> UserRef {
        UserRef::new(UserId(id), Domain::new(domain))
    }

    fn create(id: u64, author: &UserRef) -> Activity {
        Activity::create(
            ActivityId(id),
            Post::stub(PostId(id), author.clone(), SimTime(0), "hello"),
        )
    }

    #[test]
    fn inbox_deduplicates_replays() {
        let mut inbox = Inbox::new();
        let a = create(1, &user(1, "r.example"));
        assert!(inbox.receive(a.clone()));
        assert!(!inbox.receive(a), "at-least-once delivery must be deduped");
        assert_eq!(inbox.len(), 1);
        assert!(inbox.has_seen(ActivityId(1)));
        assert!(!inbox.has_seen(ActivityId(2)));
    }

    #[test]
    fn outbox_preserves_order() {
        let mut outbox = Outbox::new();
        assert!(outbox.is_empty());
        let author = user(1, "home.example");
        outbox.push(create(1, &author));
        outbox.push(create(2, &author));
        assert_eq!(outbox.len(), 2);
        assert_eq!(outbox.entries()[0].id, ActivityId(1));
    }

    #[test]
    fn public_posts_fan_out_to_follower_domains() {
        let mut graph = FollowGraph::new();
        let author = user(1, "home.example");
        graph.follow(user(2, "a.example"), author.clone(), SimTime(0));
        graph.follow(user(3, "b.example"), author.clone(), SimTime(0));
        graph.follow(user(4, "home.example"), author.clone(), SimTime(0));
        let targets = Mailman.delivery_targets(&graph, &create(1, &author));
        assert_eq!(targets.len(), 2, "local followers don't need delivery");
        assert!(targets.contains(&Domain::new("a.example")));
        assert!(targets.contains(&Domain::new("b.example")));
    }

    #[test]
    fn stripped_followers_suppress_fanout_but_not_mentions() {
        let mut graph = FollowGraph::new();
        let author = user(1, "home.example");
        graph.follow(user(2, "a.example"), author.clone(), SimTime(0));
        let mut post = Post::stub(PostId(1), author.clone(), SimTime(0), "x");
        post.followers_stripped = true;
        post.mentions.push(user(9, "c.example"));
        let act = Activity::create(ActivityId(1), post);
        let targets = Mailman.delivery_targets(&graph, &act);
        assert_eq!(targets.len(), 1);
        assert!(targets.contains(&Domain::new("c.example")));
    }

    #[test]
    fn direct_messages_go_only_to_mentioned_instances() {
        let mut graph = FollowGraph::new();
        let author = user(1, "home.example");
        graph.follow(user(2, "a.example"), author.clone(), SimTime(0));
        let mut post = Post::stub(PostId(1), author.clone(), SimTime(0), "psst");
        post.visibility = Visibility::Direct;
        post.mentions.push(user(9, "dm.example"));
        let act = Activity::create(ActivityId(1), post);
        let targets = Mailman.delivery_targets(&graph, &act);
        assert_eq!(targets.len(), 1);
        assert!(targets.contains(&Domain::new("dm.example")));
    }

    #[test]
    fn follows_are_delivered_to_target_instance() {
        let graph = FollowGraph::new();
        let follow = Activity::follow(
            ActivityId(1),
            user(1, "home.example"),
            user(2, "far.example"),
            SimTime(0),
        );
        let targets = Mailman.delivery_targets(&graph, &follow);
        assert_eq!(targets.len(), 1);
        assert!(targets.contains(&Domain::new("far.example")));
    }

    #[test]
    fn reports_are_delivered_to_reported_users_instance() {
        let graph = FollowGraph::new();
        let flag = Activity::report(
            ActivityId(1),
            user(1, "home.example"),
            user(2, "bad.example"),
            "spam",
            SimTime(0),
        );
        let targets = Mailman.delivery_targets(&graph, &flag);
        assert!(targets.contains(&Domain::new("bad.example")));
    }

    #[test]
    fn deletes_follow_follower_fanout() {
        let mut graph = FollowGraph::new();
        let author = user(1, "home.example");
        graph.follow(user(2, "a.example"), author.clone(), SimTime(0));
        let del = Activity::delete(ActivityId(1), author.clone(), PostId(1), SimTime(1));
        let targets = Mailman.delivery_targets(&graph, &del);
        assert!(targets.contains(&Domain::new("a.example")));
    }
}
