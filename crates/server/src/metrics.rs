//! Prometheus-style text exposition over the telemetry registry.
//!
//! [`prometheus_text`] renders a [`Telemetry`] registry in the
//! Prometheus text format (`# HELP` / `# TYPE` / sample lines) — the
//! shape a `GET /metrics` endpoint serves — so the future resident
//! service gets scraping for free: wire this formatter to an HTTP route
//! and the whole observability layer is exported without touching any
//! instrumented crate.
//!
//! Exposition layout, all under the `fediscope_` namespace:
//!
//! * hot counters → `fediscope_<name>_total` counters;
//! * gauges → `fediscope_<name>` gauges;
//! * phase spans → one `fediscope_phase_seconds` summary-ish family:
//!   `_count` / `_sum` per `phase` label, plus coarse `quantile="0.5"` /
//!   `"0.99"` samples from the log2 buckets;
//! * probe latency → `fediscope_probe_seconds` with a `class` label,
//!   same shape.
//!
//! The output is deterministic: every family and label is emitted in
//! the registry's fixed reporting order.

use fediscope_telemetry::{GaugeId, HotCounter, Log2Histogram, Phase, ProbeClass, Telemetry};
use std::fmt::Write;

fn seconds(nanos: u64) -> f64 {
    nanos as f64 / 1e9
}

fn write_histogram(out: &mut String, family: &str, label: &str, value: &str, h: &Log2Histogram) {
    let _ = writeln!(out, "{family}_count{{{label}=\"{value}\"}} {}", h.count());
    let _ = writeln!(
        out,
        "{family}_sum{{{label}=\"{value}\"}} {}",
        seconds(h.sum_nanos())
    );
    for q in ["0.5", "0.99"] {
        let bound = h.quantile_upper_bound(q.parse().expect("static quantile"));
        let _ = writeln!(
            out,
            "{family}{{{label}=\"{value}\",quantile=\"{q}\"}} {}",
            seconds(bound)
        );
    }
}

/// Renders `telemetry` as Prometheus text exposition (the body a
/// `/metrics` endpoint would serve).
pub fn prometheus_text(telemetry: &Telemetry) -> String {
    let mut out = String::with_capacity(4096);

    out.push_str("# HELP fediscope_telemetry_armed Whether the registry is recording.\n");
    out.push_str("# TYPE fediscope_telemetry_armed gauge\n");
    let _ = writeln!(
        out,
        "fediscope_telemetry_armed {}",
        u8::from(telemetry.armed())
    );

    for c in HotCounter::ALL {
        let name = c.name();
        let _ = writeln!(out, "# HELP fediscope_{name}_total Hot-path counter.");
        let _ = writeln!(out, "# TYPE fediscope_{name}_total counter");
        let _ = writeln!(out, "fediscope_{name}_total {}", telemetry.counter(c));
    }

    for g in GaugeId::ALL {
        let name = g.name();
        let _ = writeln!(out, "# HELP fediscope_{name} Point-in-time gauge.");
        let _ = writeln!(out, "# TYPE fediscope_{name} gauge");
        let _ = writeln!(out, "fediscope_{name} {}", telemetry.gauge(g));
    }

    out.push_str("# HELP fediscope_phase_seconds Wall-clock per engine/census phase span.\n");
    out.push_str("# TYPE fediscope_phase_seconds summary\n");
    for p in Phase::ALL {
        write_histogram(
            &mut out,
            "fediscope_phase_seconds",
            "phase",
            p.name(),
            telemetry.phase_histogram(p),
        );
    }

    out.push_str(
        "# HELP fediscope_probe_seconds Simulated census probe latency by \u{a7}3 status class.\n",
    );
    out.push_str("# TYPE fediscope_probe_seconds summary\n");
    for k in ProbeClass::ALL {
        write_histogram(
            &mut out,
            "fediscope_probe_seconds",
            "class",
            k.name(),
            telemetry.probe_histogram(k),
        );
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exposition_covers_every_family() {
        let t = Telemetry::new();
        t.arm();
        t.add(HotCounter::DeliveryPosts, 12);
        t.set_gauge(GaugeId::Links, 5);
        t.record_phase(Phase::Measurement, 2_000_000);
        t.record_probe(ProbeClass::Transient, 1_500_000_000);
        let text = prometheus_text(&t);
        assert!(text.contains("fediscope_telemetry_armed 1"));
        assert!(text.contains("fediscope_delivery_posts_total 12"));
        assert!(text.contains("fediscope_links 5"));
        assert!(text.contains("fediscope_phase_seconds_count{phase=\"measurement\"} 1"));
        assert!(text.contains("fediscope_probe_seconds_count{class=\"transient\"} 1"));
        assert!(text.contains("quantile=\"0.99\""));
        // Every counter family appears even at zero.
        for c in HotCounter::ALL {
            assert!(text.contains(&format!("fediscope_{}_total", c.name())));
        }
    }

    #[test]
    fn exposition_is_deterministic() {
        let build = || {
            let t = Telemetry::new();
            t.arm();
            t.add(HotCounter::ScorerCalls, 3);
            t.record_phase(Phase::Control, 1024);
            prometheus_text(&t)
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn type_lines_precede_samples() {
        let text = prometheus_text(&Telemetry::new());
        let type_at = text.find("# TYPE fediscope_scorer_calls_total").unwrap();
        let sample_at = text.find("\nfediscope_scorer_calls_total ").unwrap();
        assert!(type_at < sample_at);
    }
}
