//! Federation glue: delivering published activities across the network.

use crate::server::InstanceServer;
use fediscope_activitypub::Mailman;
use fediscope_core::model::{Activity, Post};
use fediscope_simnet::{FailureClass, HttpRequest, SimNet};
use std::sync::Arc;
use tokio::sync::Semaphore;

/// Per-class outcome of one delivery fan-out: how many inbox POSTs
/// succeeded, how many failed in a way a retry could clear (5xx,
/// connection refused), and how many failed permanently (4xx, dead DNS).
///
/// Real Pleroma's federator publisher makes exactly this distinction —
/// transient failures go back on the retry queue, permanent ones are
/// dropped — so a bare failure count is not enough for any caller that
/// wants to model redelivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DeliveryReport {
    /// Targets that answered 2xx.
    pub ok: usize,
    /// Targets that failed transiently — a retry may succeed.
    pub transient: usize,
    /// Targets that failed permanently — a retry cannot succeed.
    pub permanent: usize,
}

impl DeliveryReport {
    /// All failed targets, regardless of class.
    pub fn failed(&self) -> usize {
        self.transient + self.permanent
    }

    /// All targets the fan-out attempted.
    pub fn attempted(&self) -> usize {
        self.ok + self.failed()
    }

    fn record(&mut self, class: Option<FailureClass>) {
        match class {
            None => self.ok += 1,
            Some(FailureClass::Transient) => self.transient += 1,
            Some(FailureClass::Permanent) => self.permanent += 1,
        }
    }
}

/// Upper bound on concurrently in-flight inbox POSTs per delivery fan-out.
/// Pleroma's own federator publisher works the same way: a bounded worker
/// pool drains the delivery queue rather than a serial loop or an
/// unbounded task storm.
const MAX_IN_FLIGHT: usize = 16;

/// Delivers activities published on a server to the instances hosting the
/// author's followers, over the simulated network (a `POST /inbox` per
/// target, exactly like ActivityPub's server-to-server delivery).
pub struct Federator {
    net: Arc<SimNet>,
    server: Arc<InstanceServer>,
}

impl Federator {
    /// Builds a federator for one server.
    pub fn new(net: Arc<SimNet>, server: Arc<InstanceServer>) -> Self {
        Federator { net, server }
    }

    /// The wrapped server.
    pub fn server(&self) -> &Arc<InstanceServer> {
        &self.server
    }

    /// Publishes a local post and fans it out, returning the per-class
    /// [`DeliveryReport`]. Failures are classified, not retried here —
    /// redelivery policy belongs to the caller (the dynamics engine's
    /// reliability layer schedules backoff retries off the transient
    /// count; a bare caller may ignore it, as best-effort federation).
    pub async fn publish_and_deliver(
        &self,
        post: Post,
    ) -> Result<(Activity, DeliveryReport), crate::server::PublishError> {
        let activity = self.server.publish(post)?;
        let report = self.deliver(&activity).await;
        Ok((activity, report))
    }

    /// Delivers an already-published activity; returns the per-class
    /// [`DeliveryReport`].
    ///
    /// The inbox POSTs go out concurrently, bounded to [`MAX_IN_FLIGHT`]
    /// in-flight requests at a time, so one slow peer no longer stalls the
    /// whole fan-out. Ordering guarantees are unchanged: each target
    /// receives at most one POST per activity (the target set is a set),
    /// and `SimNet` serves every instance through a single ordered queue,
    /// so per-target delivery order across successive `deliver` calls is
    /// the call order, exactly as with the old sequential loop.
    pub async fn deliver(&self, activity: &Activity) -> DeliveryReport {
        let targets = self
            .server
            .with_graph(|g| Mailman.delivery_targets(g, activity));
        // One POST per target leaves this fan-out — counted up front, in
        // one batched add (the task bodies race; the target set doesn't).
        fediscope_telemetry::Telemetry::global().add(
            fediscope_telemetry::HotCounter::DeliveryPosts,
            targets.len() as u64,
        );
        let semaphore = Arc::new(Semaphore::new(MAX_IN_FLIGHT));
        // Serialize once; every target's request shares the buffer (a
        // `Bytes` clone is a refcount), and the request itself is built
        // inside the task after its permit — peak memory stays bounded
        // by MAX_IN_FLIGHT plus one small handle per target, not by one
        // serialized body per follower domain.
        let body = bytes::Bytes::from(serde_json::to_vec(activity).expect("activities serialize"));
        let mut handles = Vec::with_capacity(targets.len());
        for target in targets {
            let net = Arc::clone(&self.net);
            let gate = Arc::clone(&semaphore);
            let body = body.clone();
            handles.push(tokio::spawn(async move {
                let _permit = gate.acquire_owned().await;
                let req = HttpRequest::post_bytes("/inbox", body);
                match net.request(&target, req).await {
                    Ok(resp) => FailureClass::of_status(resp.status),
                    Err(e) => Some(e.class()),
                }
            }));
        }
        let mut report = DeliveryReport::default();
        for handle in handles {
            // A panicked delivery task never answered — count it as a
            // transient failure, like a dropped connection.
            report.record(handle.await.unwrap_or(Some(FailureClass::Transient)));
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fediscope_core::config::InstanceModerationConfig;
    use fediscope_core::id::{Domain, InstanceId, PostId, UserId, UserRef};
    use fediscope_core::model::{InstanceKind, InstanceProfile, SoftwareVersion, User};
    use fediscope_core::mrf::policies::{SimpleAction, SimplePolicy};
    use fediscope_core::time::SimTime;
    use fediscope_simnet::FailureMode;

    fn server(domain: &str, id: u32, config: InstanceModerationConfig) -> Arc<InstanceServer> {
        let profile = InstanceProfile {
            id: InstanceId(id),
            domain: Domain::new(domain),
            kind: InstanceKind::Pleroma(SoftwareVersion::new(2, 2, 0)),
            title: domain.to_string(),
            registrations_open: true,
            founded: SimTime(0),
            exposes_policies: true,
            public_timeline_open: true,
        };
        let s = Arc::new(InstanceServer::new(profile, config));
        s.add_user(User {
            id: UserId(id as u64 * 1000),
            instance: InstanceId(id),
            domain: Domain::new(domain),
            handle: format!("root@{domain}"),
            created: SimTime(0),
            bot: false,
            followers: 0,
            following: 0,
            mrf_tags: Vec::new(),
            report_count: 0,
        });
        s
    }

    #[tokio::test]
    async fn end_to_end_federation() {
        let net = Arc::new(SimNet::new());
        let home = server(
            "home.example",
            1,
            InstanceModerationConfig::pleroma_default(),
        );
        let friend = server(
            "friend.example",
            2,
            InstanceModerationConfig::pleroma_default(),
        );
        crate::api::register_on(&net, Arc::clone(&home));
        crate::api::register_on(&net, Arc::clone(&friend));

        // friend's user follows home's user (edge lives on home's graph —
        // home needs it for delivery fan-out).
        let author = UserRef::new(UserId(1000), Domain::new("home.example"));
        let fan = UserRef::new(UserId(2000), Domain::new("friend.example"));
        home.follow(fan, author.clone());

        let fed = Federator::new(Arc::clone(&net), Arc::clone(&home));
        let post = Post::stub(
            PostId(1),
            author,
            fediscope_core::time::CAMPAIGN_START,
            "federated hello",
        );
        let (_, report) = fed.publish_and_deliver(post).await.unwrap();
        assert_eq!((report.ok, report.failed()), (1, 0));
        // The post arrived on friend's whole-known-network timeline.
        assert_eq!(friend.post_count(), 1);
        friend.with_timelines(|t| {
            assert_eq!(
                t.timeline_len(fediscope_activitypub::TimelineKind::WholeKnownNetwork, None),
                1
            );
        });
    }

    #[tokio::test]
    async fn rejecting_instance_silently_drops_delivery() {
        let net = Arc::new(SimNet::new());
        let home = server(
            "home.example",
            1,
            InstanceModerationConfig::pleroma_default(),
        );
        let mut config = InstanceModerationConfig::pleroma_default();
        config.set_simple(
            SimplePolicy::new().with_target(SimpleAction::Reject, Domain::new("home.example")),
        );
        let blocker = server("blocker.example", 2, config);
        crate::api::register_on(&net, Arc::clone(&home));
        crate::api::register_on(&net, Arc::clone(&blocker));

        let author = UserRef::new(UserId(1000), Domain::new("home.example"));
        let fan = UserRef::new(UserId(2000), Domain::new("blocker.example"));
        home.follow(fan, author.clone());

        let fed = Federator::new(Arc::clone(&net), Arc::clone(&home));
        let (_, report) = fed
            .publish_and_deliver(Post::stub(
                PostId(1),
                author,
                fediscope_core::time::CAMPAIGN_START,
                "you won't see this",
            ))
            .await
            .unwrap();
        // Delivery "succeeds" at the HTTP level (MRF rejection is silent)…
        assert_eq!((report.ok, report.failed()), (1, 0));
        // …but the content never lands: this is the reject collateral
        // damage mechanism — ALL home.example users are cut off.
        assert_eq!(blocker.post_count(), 0);
        assert_eq!(
            blocker
                .stats()
                .rejected
                .load(std::sync::atomic::Ordering::Relaxed),
            1
        );
    }

    #[tokio::test]
    async fn wide_fanout_counts_every_target_once() {
        // 60 followers across 40 live, 15 dead and 5 unknown domains —
        // far beyond MAX_IN_FLIGHT, so the bounded-concurrency path is
        // exercised. Counts must match the old sequential loop exactly.
        let net = Arc::new(SimNet::new());
        let home = server(
            "home.example",
            1,
            InstanceModerationConfig::pleroma_default(),
        );
        crate::api::register_on(&net, Arc::clone(&home));
        let author = UserRef::new(UserId(1000), Domain::new("home.example"));
        for k in 0..60u32 {
            let domain = match k {
                0..=39 => {
                    let d = format!("live{k}.example");
                    let peer = server(&d, 100 + k, InstanceModerationConfig::pleroma_default());
                    crate::api::register_on(&net, peer);
                    d
                }
                40..=54 => {
                    let d = format!("dead{k}.example");
                    net.set_failure(Domain::new(&d), FailureMode::BadGateway);
                    d
                }
                _ => format!("ghost{k}.example"),
            };
            let fan = UserRef::new(UserId(50_000 + k as u64), Domain::new(domain));
            home.follow(fan, author.clone());
        }
        let fed = Federator::new(Arc::clone(&net), Arc::clone(&home));
        let (_, report) = fed
            .publish_and_deliver(Post::stub(
                PostId(1),
                author,
                fediscope_core::time::CAMPAIGN_START,
                "wide fanout",
            ))
            .await
            .unwrap();
        // 40 delivered; the 15 BadGateway targets are retryable, the 5
        // unknown hosts are not.
        assert_eq!(report.ok, 40);
        assert_eq!(report.transient, 15);
        assert_eq!(report.permanent, 5);
        assert_eq!(report.failed(), 20);
        assert_eq!(report.attempted(), 60);
        // Exactly one POST per target reached the network.
        assert_eq!(net.stats().snapshot().0, 60);
    }

    #[tokio::test]
    async fn dead_instances_fail_delivery() {
        let net = Arc::new(SimNet::new());
        let home = server(
            "home.example",
            1,
            InstanceModerationConfig::pleroma_default(),
        );
        crate::api::register_on(&net, Arc::clone(&home));
        net.set_failure(Domain::new("dead.example"), FailureMode::BadGateway);

        let author = UserRef::new(UserId(1000), Domain::new("home.example"));
        let fan = UserRef::new(UserId(9000), Domain::new("dead.example"));
        home.follow(fan, author.clone());

        let fed = Federator::new(Arc::clone(&net), Arc::clone(&home));
        let (_, report) = fed
            .publish_and_deliver(Post::stub(
                PostId(1),
                author,
                fediscope_core::time::CAMPAIGN_START,
                "into the void",
            ))
            .await
            .unwrap();
        assert_eq!((report.ok, report.failed()), (0, 1));
        assert_eq!(report.transient, 1, "a 502 peer may come back");
    }
}
