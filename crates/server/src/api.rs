//! HTTP API surface: routing and the Mastodon-compatible JSON shapes.

use crate::server::InstanceServer;
use fediscope_activitypub::TimelineKind;
use fediscope_core::id::PostId;
use fediscope_core::model::{Activity, Post, Visibility};
use fediscope_simnet::{Endpoint, HttpRequest, HttpResponse, Method, StatusCode};
use serde_json::{json, Value};
use std::sync::Arc;

/// Default and maximum page size of the timeline API (Mastodon's limits).
pub const DEFAULT_PAGE: usize = 20;
/// Maximum page size.
pub const MAX_PAGE: usize = 40;

impl Endpoint for InstanceServer {
    fn handle(&self, req: HttpRequest) -> HttpResponse {
        match (req.method, req.path.as_str()) {
            (Method::Get, "/api/v1/instance") => self.instance_metadata(),
            (Method::Get, "/api/v1/instance/peers") => self.peers_payload(),
            (Method::Get, "/api/v1/timelines/public") => self.public_timeline(&req),
            (Method::Get, "/.well-known/nodeinfo") => self.nodeinfo_index(),
            (Method::Get, "/nodeinfo/2.0") => self.nodeinfo(),
            (Method::Post, "/inbox") => self.inbox_post(&req),
            _ => HttpResponse::status(StatusCode::NOT_FOUND),
        }
    }
}

impl InstanceServer {
    fn instance_metadata(&self) -> HttpResponse {
        let profile = self.profile();
        let version = match &profile.kind {
            fediscope_core::model::InstanceKind::Pleroma(v) => {
                format!("2.7.2 (compatible; Pleroma {v})")
            }
            fediscope_core::model::InstanceKind::Mastodon => "3.3.0".to_string(),
            fediscope_core::model::InstanceKind::Other(name) => format!("0.0.0 ({name})"),
        };
        let mut body = json!({
            "uri": profile.domain.as_str(),
            "title": profile.title,
            "version": version,
            "registrations": profile.registrations_open,
            "stats": {
                "user_count": self.user_count(),
                "status_count": self.post_count(),
                "domain_count": self.peers().len(),
            },
        });
        // §4.1: 91.9% of Pleroma instances expose policy information in
        // their metadata; the rest hide it.
        if profile.is_pleroma() && profile.exposes_policies {
            body["pleroma"] = json!({
                "metadata": {
                    "federation": self.moderation().to_metadata_json(),
                }
            });
        }
        HttpResponse::json(&body)
    }

    fn peers_payload(&self) -> HttpResponse {
        let peers: Vec<String> = self.peers().iter().map(|d| d.to_string()).collect();
        HttpResponse::json(&peers)
    }

    fn public_timeline(&self, req: &HttpRequest) -> HttpResponse {
        if !self.profile().public_timeline_open {
            // §3: "the public timeline of [38.7%] instances was not
            // reachable" — authorisation-gated.
            return HttpResponse::status(StatusCode::FORBIDDEN);
        }
        let local_only = req.param("local").map(|v| v == "true").unwrap_or(false);
        let kind = if local_only {
            TimelineKind::PublicLocal
        } else {
            TimelineKind::WholeKnownNetwork
        };
        let limit = req
            .param_u64("limit")
            .map(|l| (l as usize).min(MAX_PAGE))
            .unwrap_or(DEFAULT_PAGE);
        let max_id = req.param_u64("max_id").map(PostId);
        let statuses: Vec<Value> = self.with_timelines(|t| {
            t.page(kind, None, max_id, limit)
                .into_iter()
                .map(status_json)
                .collect()
        });
        HttpResponse::json(&statuses)
    }

    fn nodeinfo_index(&self) -> HttpResponse {
        HttpResponse::json(&json!({
            "links": [{
                "rel": "http://nodeinfo.diaspora.software/ns/schema/2.0",
                "href": format!("https://{}/nodeinfo/2.0", self.domain()),
            }]
        }))
    }

    fn nodeinfo(&self) -> HttpResponse {
        let profile = self.profile();
        let (name, version) = match &profile.kind {
            fediscope_core::model::InstanceKind::Pleroma(v) => ("pleroma", v.to_string()),
            fediscope_core::model::InstanceKind::Mastodon => ("mastodon", "3.3.0".to_string()),
            fediscope_core::model::InstanceKind::Other(name) => (name.as_str(), "1.0.0".into()),
        };
        HttpResponse::json(&json!({
            "version": "2.0",
            "software": { "name": name, "version": version },
            "openRegistrations": profile.registrations_open,
            "usage": {
                "users": { "total": self.user_count() },
                "localPosts": self.post_count(),
            },
        }))
    }

    fn inbox_post(&self, req: &HttpRequest) -> HttpResponse {
        let Ok(activity) = serde_json::from_slice::<Activity>(&req.body) else {
            return HttpResponse::status(StatusCode::BAD_REQUEST);
        };
        let outcome = self.ingest_remote(activity);
        if outcome.accepted() {
            HttpResponse::status(StatusCode::ACCEPTED)
        } else {
            // Pleroma answers rejected deliveries with a 200-family status
            // too (MRF rejection is silent to the sender); we use 202 with
            // a body flag so tests can observe it without changing the
            // sender-visible semantics.
            let mut resp = HttpResponse::json(&json!({"rejected": true}));
            resp.status = StatusCode::ACCEPTED;
            resp
        }
    }
}

/// Renders a post in the Mastodon `Status` JSON shape the crawler parses.
pub fn status_json(post: &Post) -> Value {
    json!({
        "id": post.id.0.to_string(),
        "created_at": post.created.as_secs(),
        "content": post.content,
        "spoiler_text": post.subject.clone().unwrap_or_default(),
        "visibility": visibility_str(post.visibility),
        "sensitive": post.sensitive,
        "account": {
            "id": post.author.user.0.to_string(),
            "acct": format!("{}@{}", post.author.user.0, post.author.domain),
            "url": format!("https://{}/users/{}", post.author.domain, post.author.user.0),
        },
        "media_attachments": post.media.iter().map(|m| json!({
            "type": media_str(m.kind),
            "remote_url": format!("https://{}/media", m.host),
            "sensitive": m.sensitive,
        })).collect::<Vec<_>>(),
        "mentions": post.mentions.iter().map(|m| json!({
            "acct": format!("{}@{}", m.user.0, m.domain),
        })).collect::<Vec<_>>(),
        "tags": post.hashtags.iter().map(|h| json!({"name": h})).collect::<Vec<_>>(),
    })
}

fn visibility_str(v: Visibility) -> &'static str {
    match v {
        Visibility::Public => "public",
        Visibility::Unlisted => "unlisted",
        Visibility::FollowersOnly => "private",
        Visibility::Direct => "direct",
    }
}

fn media_str(kind: fediscope_core::model::MediaKind) -> &'static str {
    match kind {
        fediscope_core::model::MediaKind::Image => "image",
        fediscope_core::model::MediaKind::Video => "video",
        fediscope_core::model::MediaKind::Audio => "audio",
    }
}

/// Registers a server on the network under its own domain.
pub fn register_on(net: &fediscope_simnet::SimNet, server: Arc<InstanceServer>) {
    let domain = server.domain().clone();
    net.register(domain, server);
}

#[cfg(test)]
mod tests {
    use super::*;
    use fediscope_core::config::InstanceModerationConfig;
    use fediscope_core::id::{ActivityId, Domain, InstanceId, UserId, UserRef};
    use fediscope_core::model::{InstanceKind, InstanceProfile, SoftwareVersion, User};
    use fediscope_core::mrf::policies::{SimpleAction, SimplePolicy};
    use fediscope_core::time::SimTime;

    fn pleroma_server(domain: &str) -> InstanceServer {
        let profile = InstanceProfile {
            id: InstanceId(1),
            domain: Domain::new(domain),
            kind: InstanceKind::Pleroma(SoftwareVersion::new(2, 2, 0)),
            title: "api test".into(),
            registrations_open: true,
            founded: SimTime(0),
            exposes_policies: true,
            public_timeline_open: true,
        };
        let mut config = InstanceModerationConfig::pleroma_default();
        config.set_simple(
            SimplePolicy::new().with_target(SimpleAction::Reject, Domain::new("gab.com")),
        );
        let s = InstanceServer::new(profile, config);
        s.add_user(User {
            id: UserId(1),
            instance: InstanceId(1),
            domain: Domain::new(domain),
            handle: "alice".into(),
            created: SimTime(0),
            bot: false,
            followers: 0,
            following: 0,
            mrf_tags: Vec::new(),
            report_count: 0,
        });
        s
    }

    fn publish_n(s: &InstanceServer, n: u64) {
        let author = UserRef::new(UserId(1), s.domain().clone());
        for i in 1..=n {
            s.publish(Post::stub(
                PostId(i),
                author.clone(),
                fediscope_core::time::CAMPAIGN_START,
                format!("post {i}"),
            ))
            .unwrap();
        }
    }

    #[test]
    fn instance_metadata_exposes_policies() {
        let s = pleroma_server("meta.example");
        publish_n(&s, 3);
        let resp = s.handle(HttpRequest::get("/api/v1/instance"));
        let body = resp.json_body().unwrap();
        assert_eq!(body["uri"], "meta.example");
        assert_eq!(body["stats"]["user_count"], 1);
        assert_eq!(body["stats"]["status_count"], 3);
        let federation = &body["pleroma"]["metadata"]["federation"];
        assert!(federation["mrf_policies"]
            .as_array()
            .unwrap()
            .iter()
            .any(|p| p == "SimplePolicy"));
        assert_eq!(federation["mrf_simple"]["reject"][0], "gab.com");
        assert!(body["version"].as_str().unwrap().contains("Pleroma 2.2.0"));
    }

    #[test]
    fn hidden_policies_are_absent() {
        let mut profile = pleroma_server("x.example").profile().clone();
        profile.exposes_policies = false;
        let s = InstanceServer::new(profile, InstanceModerationConfig::pleroma_default());
        let body = s
            .handle(HttpRequest::get("/api/v1/instance"))
            .json_body()
            .unwrap();
        assert!(body.get("pleroma").is_none(), "8.1% hide their config");
    }

    #[test]
    fn mastodon_metadata_never_exposes_policies() {
        let profile = InstanceProfile {
            id: InstanceId(2),
            domain: Domain::new("masto.example"),
            kind: InstanceKind::Mastodon,
            title: "mastodon".into(),
            registrations_open: true,
            founded: SimTime(0),
            exposes_policies: true, // even if set, Mastodon has no such API
            public_timeline_open: true,
        };
        let s = InstanceServer::new(profile, InstanceModerationConfig::default());
        let body = s
            .handle(HttpRequest::get("/api/v1/instance"))
            .json_body()
            .unwrap();
        assert!(body.get("pleroma").is_none());
        assert_eq!(body["version"], "3.3.0");
    }

    #[test]
    fn timeline_pagination_over_http() {
        let s = pleroma_server("tl.example");
        publish_n(&s, 50);
        let resp = s.handle(HttpRequest::get(
            "/api/v1/timelines/public?local=true&limit=40",
        ));
        let page1 = resp.json_body().unwrap();
        let page1 = page1.as_array().unwrap();
        assert_eq!(page1.len(), 40);
        assert_eq!(page1[0]["id"], "50", "newest first");
        let last_id = page1.last().unwrap()["id"].as_str().unwrap();
        assert_eq!(last_id, "11");
        let resp = s.handle(HttpRequest::get(&format!(
            "/api/v1/timelines/public?local=true&limit=40&max_id={last_id}"
        )));
        let page2 = resp.json_body().unwrap();
        assert_eq!(page2.as_array().unwrap().len(), 10);
    }

    #[test]
    fn limit_is_capped_at_40() {
        let s = pleroma_server("cap.example");
        publish_n(&s, 60);
        let resp = s.handle(HttpRequest::get(
            "/api/v1/timelines/public?local=true&limit=9999",
        ));
        assert_eq!(resp.json_body().unwrap().as_array().unwrap().len(), 40);
    }

    #[test]
    fn closed_timeline_returns_403() {
        let mut profile = pleroma_server("x.example").profile().clone();
        profile.public_timeline_open = false;
        let s = InstanceServer::new(profile, InstanceModerationConfig::pleroma_default());
        let resp = s.handle(HttpRequest::get("/api/v1/timelines/public?local=true"));
        assert_eq!(resp.status, StatusCode::FORBIDDEN);
        // Metadata still works: the paper could read policies of instances
        // whose timelines were closed.
        assert!(s.handle(HttpRequest::get("/api/v1/instance")).is_success());
    }

    #[test]
    fn nodeinfo_identifies_software() {
        let s = pleroma_server("ni.example");
        let idx = s
            .handle(HttpRequest::get("/.well-known/nodeinfo"))
            .json_body()
            .unwrap();
        assert!(idx["links"][0]["href"]
            .as_str()
            .unwrap()
            .contains("/nodeinfo/2.0"));
        let ni = s
            .handle(HttpRequest::get("/nodeinfo/2.0"))
            .json_body()
            .unwrap();
        assert_eq!(ni["software"]["name"], "pleroma");
        assert_eq!(ni["software"]["version"], "2.2.0");
    }

    #[test]
    fn peers_api_lists_federated_domains() {
        let s = pleroma_server("p.example");
        s.note_peer(&Domain::new("b.example"));
        s.note_peer(&Domain::new("a.example"));
        let peers = s
            .handle(HttpRequest::get("/api/v1/instance/peers"))
            .json_body()
            .unwrap();
        assert_eq!(peers, serde_json::json!(["a.example", "b.example"]));
    }

    #[test]
    fn inbox_accepts_and_rejects_via_mrf() {
        let s = pleroma_server("in.example");
        let ok_author = UserRef::new(UserId(7), Domain::new("friendly.example"));
        let ok = Activity::create(
            ActivityId(1),
            Post::stub(
                PostId(100),
                ok_author,
                fediscope_core::time::CAMPAIGN_START,
                "hi",
            ),
        );
        let resp = s.handle(HttpRequest::post_json("/inbox", &ok));
        assert_eq!(resp.status, StatusCode::ACCEPTED);
        assert_eq!(s.post_count(), 1);
        // gab.com is rejected by the SimplePolicy config.
        let bad_author = UserRef::new(UserId(8), Domain::new("gab.com"));
        let bad = Activity::create(
            ActivityId(2),
            Post::stub(
                PostId(101),
                bad_author,
                fediscope_core::time::CAMPAIGN_START,
                "hate",
            ),
        );
        let resp = s.handle(HttpRequest::post_json("/inbox", &bad));
        assert_eq!(resp.status, StatusCode::ACCEPTED, "rejection is silent");
        assert_eq!(resp.json_body().unwrap()["rejected"], true);
        assert_eq!(s.post_count(), 1);
    }

    #[test]
    fn malformed_inbox_body_is_bad_request() {
        let s = pleroma_server("bad.example");
        let mut req = HttpRequest::get("/inbox");
        req.method = Method::Post;
        req.body = bytes::Bytes::from_static(b"not json");
        assert_eq!(s.handle(req).status, StatusCode::BAD_REQUEST);
    }

    #[test]
    fn unknown_paths_404() {
        let s = pleroma_server("u.example");
        assert_eq!(
            s.handle(HttpRequest::get("/api/v2/whatever")).status,
            StatusCode::NOT_FOUND
        );
    }

    #[test]
    fn status_json_shape() {
        let author = UserRef::new(UserId(3), Domain::new("j.example"));
        let mut post = Post::stub(PostId(42), author, SimTime(1000), "body text");
        post.hashtags.push("nsfw".into());
        post.sensitive = true;
        let v = status_json(&post);
        assert_eq!(v["id"], "42");
        assert_eq!(v["content"], "body text");
        assert_eq!(v["sensitive"], true);
        assert_eq!(v["visibility"], "public");
        assert_eq!(v["account"]["acct"], "3@j.example");
        assert_eq!(v["tags"][0]["name"], "nsfw");
    }
}
