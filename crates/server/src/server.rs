//! The instance server: state, ingestion, publication.

use fediscope_activitypub::{FollowGraph, Inbox, Outbox, Timelines};
use fediscope_core::config::InstanceModerationConfig;
use fediscope_core::id::{ActivityId, Domain, UserId, UserRef};
use fediscope_core::model::{Activity, ActivityKind, ActivityPayload, InstanceProfile, Post, User};
use fediscope_core::mrf::{ActorDirectory, FilterOutcome, MrfPipeline, PolicyContext, SideEffect};
use fediscope_core::time::{SimDuration, SimTime};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Why a local publication was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PublishError {
    /// The author is not registered on this instance.
    UnknownAuthor(UserRef),
    /// The local MRF pipeline rejected the post (e.g. `NoEmptyPolicy`).
    Rejected(String),
}

impl fmt::Display for PublishError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PublishError::UnknownAuthor(u) => write!(f, "unknown author {u}"),
            PublishError::Rejected(r) => write!(f, "rejected by local pipeline: {r}"),
        }
    }
}

/// Counters the server keeps about its own moderation activity.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Inbound activities accepted.
    pub accepted: AtomicU64,
    /// Inbound activities rejected by the MRF pipeline.
    pub rejected: AtomicU64,
    /// Side effects executed (emoji steals, prefetches, ...).
    pub effects: AtomicU64,
}

struct State {
    users: HashMap<UserId, User>,
    config: InstanceModerationConfig,
    pipeline: MrfPipeline,
    graph: FollowGraph,
    timelines: Timelines,
    inbox: Inbox,
    outbox: Outbox,
    clock: SimTime,
    next_activity: u64,
    effect_log: Vec<SideEffect>,
}

/// A simulated instance server (Pleroma or Mastodon, per its profile).
pub struct InstanceServer {
    profile: InstanceProfile,
    state: RwLock<State>,
    stats: ServerStats,
}

impl InstanceServer {
    /// Creates a server with the given profile and moderation config.
    /// Mastodon servers typically pass an empty config (their moderation
    /// is not exposed, which is all that matters to the crawler).
    pub fn new(profile: InstanceProfile, config: InstanceModerationConfig) -> Self {
        let pipeline = config.build_pipeline();
        InstanceServer {
            profile,
            state: RwLock::new(State {
                users: HashMap::new(),
                config,
                pipeline,
                graph: FollowGraph::new(),
                timelines: Timelines::new(),
                inbox: Inbox::new(),
                outbox: Outbox::new(),
                clock: fediscope_core::time::CAMPAIGN_START,
                next_activity: 1,
                effect_log: Vec::new(),
            }),
            stats: ServerStats::default(),
        }
    }

    /// The instance profile.
    pub fn profile(&self) -> &InstanceProfile {
        &self.profile
    }

    /// The instance domain.
    pub fn domain(&self) -> &Domain {
        &self.profile.domain
    }

    /// Moderation statistics.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// Advances the server's logical clock (the driver calls this).
    pub fn set_clock(&self, now: SimTime) {
        self.state.write().clock = now;
    }

    /// Current logical time.
    pub fn clock(&self) -> SimTime {
        self.state.read().clock
    }

    /// Registers an account record. Local users live here, but so do
    /// *known remote accounts* the admin has annotated (e.g. MRF-tagged
    /// troublemakers) — exactly like Pleroma's `users` table, which caches
    /// remote actors.
    pub fn add_user(&self, user: User) {
        self.state.write().users.insert(user.id, user);
    }

    /// Number of registered *local* users (remote account records are
    /// excluded; this is what `/api/v1/instance` reports as `user_count`).
    pub fn user_count(&self) -> usize {
        let st = self.state.read();
        st.users
            .values()
            .filter(|u| u.domain == self.profile.domain)
            .count()
    }

    /// Number of posts stored (local + federated).
    pub fn post_count(&self) -> usize {
        self.state.read().timelines.post_count()
    }

    /// Looks up a local user.
    pub fn user(&self, id: UserId) -> Option<User> {
        self.state.read().users.get(&id).cloned()
    }

    /// Replaces the moderation configuration (rebuilding the pipeline),
    /// as an admin editing `config.exs` and hot-reloading.
    pub fn set_moderation(&self, config: InstanceModerationConfig) {
        let mut st = self.state.write();
        st.pipeline = config.build_pipeline();
        st.config = config;
    }

    /// A copy of the current moderation configuration (ground truth; the
    /// crawler sees it only if `profile.exposes_policies`).
    pub fn moderation(&self) -> InstanceModerationConfig {
        self.state.read().config.clone()
    }

    /// Records a local follow (and the federation link it creates).
    pub fn follow(&self, follower: UserRef, followee: UserRef) {
        let mut st = self.state.write();
        let at = st.clock;
        st.graph.follow(follower.clone(), followee.clone(), at);
        if let Some(u) = st.users.get_mut(&follower.user) {
            u.following += 1;
        }
        if let Some(u) = st.users.get_mut(&followee.user) {
            u.followers += 1;
        }
    }

    /// Defederates from `remote`: adds it to the `SimplePolicy` reject
    /// list (enabling the policy if needed, rebuilding the pipeline) and
    /// tears down every follow edge between the two domains. Returns the
    /// number of follow edges destroyed. The ever-federated peer record
    /// survives, matching the Peers API semantics the paper measures.
    ///
    /// This is the server-level form of the block events a
    /// defederation-cascade scenario replays: moderation config and
    /// social graph change together, atomically under the state lock.
    pub fn defederate(&self, remote: &Domain) -> usize {
        let mut st = self.state.write();
        let mut config = st.config.clone();
        let mut simple = config.simple.take().unwrap_or_default();
        simple.add_target(
            fediscope_core::mrf::policies::SimpleAction::Reject,
            remote.clone(),
        );
        config.set_simple(simple);
        st.pipeline = config.build_pipeline();
        st.config = config;
        let local = self.profile.domain.clone();
        st.graph.sever(&local, remote)
    }

    /// Marks a federation peer without a follow (e.g. discovered via a
    /// boost). Powers the Peers API.
    pub fn note_peer(&self, remote: &Domain) {
        let mut st = self.state.write();
        let local = self.profile.domain.clone();
        st.graph.note_federation(&local, remote);
    }

    /// The Peers API payload.
    pub fn peers(&self) -> Vec<Domain> {
        self.state.read().graph.peers_of(&self.profile.domain)
    }

    /// Publishes a post by a local user: runs the *local* pipeline (Pleroma
    /// filters outbound too — `NoEmptyPolicy` etc. act here), stores it on
    /// local timelines, appends to the outbox, and returns the `Create`
    /// activity for delivery.
    pub fn publish(&self, post: Post) -> Result<Activity, PublishError> {
        let mut st = self.state.write();
        if !st.users.contains_key(&post.author.user) {
            return Err(PublishError::UnknownAuthor(post.author.clone()));
        }
        let activity_id = ActivityId(((self.profile.id.0 as u64) << 40) | st.next_activity);
        st.next_activity += 1;
        let activity = Activity::create(activity_id, post);
        // Nothing downstream of publish ever reads a trace (callers
        // consume only the verdict), so use the untraced pipeline.
        // Inbound federation (`ingest_remote`) keeps the traced path for
        // explainability.
        let verdict = self.run_pipeline_fast(&mut st, activity);
        match verdict {
            fediscope_core::mrf::PolicyVerdict::Reject(r) => {
                self.stats.rejected.fetch_add(1, Ordering::Relaxed);
                Err(PublishError::Rejected(r.to_string()))
            }
            fediscope_core::mrf::PolicyVerdict::Pass(activity) => {
                let post = activity.note().expect("publish wraps a Create").clone();
                let followers: Vec<UserRef> = st
                    .graph
                    .followers_of(&post.author)
                    .filter(|f| f.domain == self.profile.domain)
                    .cloned()
                    .collect();
                st.timelines.ingest_local(post, &followers);
                st.outbox.push(activity.clone());
                self.stats.accepted.fetch_add(1, Ordering::Relaxed);
                Ok(activity)
            }
        }
    }

    /// Ingests a remote activity through the MRF pipeline; the heart of
    /// federation moderation. Returns the filter outcome.
    pub fn ingest_remote(&self, activity: Activity) -> FilterOutcome {
        let mut st = self.state.write();
        if !st.inbox.receive(activity.clone()) {
            // Duplicate delivery: treat as accepted no-op.
            return FilterOutcome {
                verdict: fediscope_core::mrf::PolicyVerdict::Pass(activity),
                trace: Vec::new(),
            };
        }
        let origin = activity.origin().clone();
        let local = self.profile.domain.clone();
        st.graph.note_federation(&local, &origin);
        let outcome = self.run_pipeline(&mut st, activity);
        match &outcome.verdict {
            fediscope_core::mrf::PolicyVerdict::Pass(activity) => {
                self.stats.accepted.fetch_add(1, Ordering::Relaxed);
                self.apply_accepted(&mut st, activity.clone());
            }
            fediscope_core::mrf::PolicyVerdict::Reject(_) => {
                self.stats.rejected.fetch_add(1, Ordering::Relaxed);
            }
        }
        outcome
    }

    /// Directly installs a post into the server's timelines, bypassing
    /// inbox and MRF. The world generator uses this to materialise a
    /// pre-computed state at scale; tests and examples should prefer
    /// [`publish`](Self::publish) / [`ingest_remote`](Self::ingest_remote).
    pub fn install_post(&self, post: Post) {
        let mut st = self.state.write();
        if post.author.domain == self.profile.domain {
            let followers: Vec<UserRef> = st
                .graph
                .followers_of(&post.author)
                .filter(|f| f.domain == self.profile.domain)
                .cloned()
                .collect();
            st.timelines.ingest_local(post, &followers);
        } else {
            let origin = post.author.domain.clone();
            let local = self.profile.domain.clone();
            st.graph.note_federation(&local, &origin);
            let followers: Vec<UserRef> = st
                .graph
                .followers_of(&post.author)
                .filter(|f| f.domain == self.profile.domain)
                .cloned()
                .collect();
            st.timelines.ingest_remote(post, &followers);
        }
    }

    /// Shared setup and accounting around one pipeline invocation: snap a
    /// directory view, build the policy context, run `invoke`, then drain
    /// its side effects into the stats counter and effect log. The traced
    /// and untraced entry points below differ only in the `invoke` they
    /// pass, so any future context or accounting change lands in both.
    fn with_pipeline<R>(
        &self,
        st: &mut State,
        invoke: impl FnOnce(&MrfPipeline, &PolicyContext<'_>) -> R,
    ) -> R {
        // The pipeline borrows the directory immutably while we hold the
        // write lock; split borrows via a snapshot directory view.
        let dir = DirectoryView {
            users: &st.users,
            local: &self.profile.domain,
        };
        let ctx = PolicyContext::new(&self.profile.domain, st.clock, &dir);
        let out = invoke(&st.pipeline, &ctx);
        let effects = ctx.take_effects();
        self.stats
            .effects
            .fetch_add(effects.len() as u64, Ordering::Relaxed);
        st.effect_log.extend(effects);
        out
    }

    fn run_pipeline(&self, st: &mut State, activity: Activity) -> FilterOutcome {
        self.with_pipeline(st, |pipeline, ctx| pipeline.filter(ctx, activity))
    }

    /// Untraced twin of [`run_pipeline`](Self::run_pipeline) for bulk
    /// paths that only consume the verdict.
    fn run_pipeline_fast(
        &self,
        st: &mut State,
        activity: Activity,
    ) -> fediscope_core::mrf::PolicyVerdict {
        self.with_pipeline(st, |pipeline, ctx| pipeline.filter_fast(ctx, activity))
    }

    fn apply_accepted(&self, st: &mut State, activity: Activity) {
        match (&activity.kind, activity.payload) {
            (ActivityKind::Create, ActivityPayload::Note(post)) => {
                let followers: Vec<UserRef> = st
                    .graph
                    .followers_of(&post.author)
                    .filter(|f| f.domain == self.profile.domain)
                    .cloned()
                    .collect();
                st.timelines.ingest_remote(post, &followers);
            }
            (ActivityKind::Delete, ActivityPayload::Deletion { post }) => {
                st.timelines.delete(post);
            }
            (ActivityKind::Follow, ActivityPayload::FollowRequest { target }) => {
                let at = st.clock;
                st.graph.follow(activity.actor.clone(), target.clone(), at);
                if let Some(u) = st.users.get_mut(&target.user) {
                    u.followers += 1;
                }
            }
            (ActivityKind::Flag, ActivityPayload::Report { target, .. }) => {
                if let Some(u) = st.users.get_mut(&target.user) {
                    u.report_count += 1;
                }
            }
            _ => {}
        }
    }

    /// Side effects the pipeline has emitted so far (drained).
    pub fn drain_effects(&self) -> Vec<SideEffect> {
        std::mem::take(&mut self.state.write().effect_log)
    }

    /// Read access to the timelines (for the API layer and tests).
    pub fn with_timelines<R>(&self, f: impl FnOnce(&Timelines) -> R) -> R {
        f(&self.state.read().timelines)
    }

    /// Read access to the follow graph.
    pub fn with_graph<R>(&self, f: impl FnOnce(&FollowGraph) -> R) -> R {
        f(&self.state.read().graph)
    }

    /// Read access to the inbox (tests).
    pub fn with_inbox<R>(&self, f: impl FnOnce(&Inbox) -> R) -> R {
        f(&self.state.read().inbox)
    }

    /// Read access to the outbox (tests).
    pub fn with_outbox<R>(&self, f: impl FnOnce(&Outbox) -> R) -> R {
        f(&self.state.read().outbox)
    }

    /// Iterates local users (snapshot).
    pub fn users_snapshot(&self) -> Vec<User> {
        self.state.read().users.values().cloned().collect()
    }

    /// Applies an MRF tag to a local user (admin action; `TagPolicy`).
    pub fn tag_user(&self, id: UserId, tag: &str) -> bool {
        let mut st = self.state.write();
        if let Some(u) = st.users.get_mut(&id) {
            if !u.mrf_tags.iter().any(|t| t == tag) {
                u.mrf_tags.push(tag.to_string());
            }
            true
        } else {
            false
        }
    }
}

/// Snapshot view over the user table implementing [`ActorDirectory`].
/// Remote actors are unknown (None/empty), matching what a real instance
/// knows synchronously at filter time.
struct DirectoryView<'a> {
    users: &'a HashMap<UserId, User>,
    local: &'a Domain,
}

impl ActorDirectory for DirectoryView<'_> {
    fn is_bot(&self, actor: &UserRef) -> bool {
        self.users.get(&actor.user).map(|u| u.bot).unwrap_or(false)
    }
    fn followers(&self, actor: &UserRef) -> Option<u32> {
        self.users.get(&actor.user).map(|u| u.followers)
    }
    fn created(&self, actor: &UserRef) -> Option<SimTime> {
        self.users.get(&actor.user).map(|u| u.created)
    }
    fn mrf_tags(&self, actor: &UserRef) -> Vec<String> {
        if &actor.domain == self.local {
            self.users
                .get(&actor.user)
                .map(|u| u.mrf_tags.clone())
                .unwrap_or_default()
        } else {
            // Tags are admin-local; for remote actors the *local* admin's
            // tag store is keyed by the remote ref. We keep remote tags in
            // the same table keyed by user id (globally unique), so this
            // lookup works for tagged remote accounts too.
            self.users
                .get(&actor.user)
                .map(|u| u.mrf_tags.clone())
                .unwrap_or_default()
        }
    }
    fn report_count(&self, actor: &UserRef) -> u32 {
        self.users
            .get(&actor.user)
            .map(|u| u.report_count)
            .unwrap_or(0)
    }
}

/// Builds an account-age helper used by tests.
#[allow(dead_code)]
fn account_age(user: &User, now: SimTime) -> SimDuration {
    now.since(user.created)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fediscope_core::catalog::PolicyKind;
    use fediscope_core::id::{InstanceId, PostId};
    use fediscope_core::model::{InstanceKind, SoftwareVersion, Visibility};
    use fediscope_core::mrf::policies::{SimpleAction, SimplePolicy};

    fn profile(domain: &str) -> InstanceProfile {
        InstanceProfile {
            id: InstanceId(1),
            domain: Domain::new(domain),
            kind: InstanceKind::Pleroma(SoftwareVersion::new(2, 2, 0)),
            title: format!("Test {domain}"),
            registrations_open: true,
            founded: SimTime(0),
            exposes_policies: true,
            public_timeline_open: true,
        }
    }

    fn local_user(id: u64, domain: &str) -> User {
        User {
            id: UserId(id),
            instance: InstanceId(1),
            domain: Domain::new(domain),
            handle: format!("user{id}"),
            created: SimTime(0),
            bot: false,
            followers: 0,
            following: 0,
            mrf_tags: Vec::new(),
            report_count: 0,
        }
    }

    fn make_server(domain: &str) -> InstanceServer {
        let server =
            InstanceServer::new(profile(domain), InstanceModerationConfig::pleroma_default());
        server.add_user(local_user(1, domain));
        server
    }

    fn remote_create(id: u64, domain: &str, content: &str) -> Activity {
        let author = UserRef::new(UserId(1000 + id), Domain::new(domain));
        Activity::create(
            ActivityId(id),
            Post::stub(
                PostId(5000 + id),
                author,
                fediscope_core::time::CAMPAIGN_START,
                content,
            ),
        )
    }

    #[test]
    fn publish_stores_on_public_timeline() {
        let s = make_server("home.example");
        let author = UserRef::new(UserId(1), Domain::new("home.example"));
        let post = Post::stub(
            PostId(1),
            author,
            fediscope_core::time::CAMPAIGN_START,
            "hello",
        );
        let act = s.publish(post).unwrap();
        assert_eq!(act.kind, ActivityKind::Create);
        assert_eq!(s.post_count(), 1);
        s.with_timelines(|t| {
            assert_eq!(
                t.timeline_len(fediscope_activitypub::TimelineKind::PublicLocal, None),
                1
            );
        });
        assert_eq!(s.with_outbox(|o| o.len()), 1);
    }

    #[test]
    fn publish_by_unknown_author_fails() {
        let s = make_server("home.example");
        let ghost = UserRef::new(UserId(99), Domain::new("home.example"));
        let post = Post::stub(PostId(1), ghost.clone(), SimTime(0), "boo");
        assert_eq!(
            s.publish(post).unwrap_err(),
            PublishError::UnknownAuthor(ghost)
        );
    }

    #[test]
    fn ingest_remote_lands_on_whole_known_network() {
        let s = make_server("home.example");
        let outcome = s.ingest_remote(remote_create(1, "remote.example", "hi there"));
        assert!(outcome.accepted());
        s.with_timelines(|t| {
            assert_eq!(
                t.timeline_len(fediscope_activitypub::TimelineKind::WholeKnownNetwork, None),
                1
            );
        });
        // Federation link recorded → peers API shows the remote domain.
        assert_eq!(s.peers(), vec![Domain::new("remote.example")]);
        assert_eq!(s.stats().accepted.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn simple_policy_reject_blocks_ingestion() {
        let s = make_server("home.example");
        let mut config = InstanceModerationConfig::pleroma_default();
        config.set_simple(
            SimplePolicy::new().with_target(SimpleAction::Reject, Domain::new("bad.example")),
        );
        s.set_moderation(config);
        let outcome = s.ingest_remote(remote_create(1, "bad.example", "spam"));
        assert!(!outcome.accepted());
        assert_eq!(outcome.rejection().unwrap().policy, PolicyKind::Simple);
        assert_eq!(s.post_count(), 0);
        assert_eq!(s.stats().rejected.load(Ordering::Relaxed), 1);
        // Unrelated instances still get through.
        assert!(s
            .ingest_remote(remote_create(2, "ok.example", "fine"))
            .accepted());
    }

    #[test]
    fn duplicate_deliveries_are_idempotent() {
        let s = make_server("home.example");
        let act = remote_create(1, "remote.example", "once");
        assert!(s.ingest_remote(act.clone()).accepted());
        assert!(s.ingest_remote(act).accepted());
        assert_eq!(s.post_count(), 1, "replay must not duplicate the post");
    }

    #[test]
    fn remote_follow_increases_follower_count() {
        let s = make_server("home.example");
        let local = UserRef::new(UserId(1), Domain::new("home.example"));
        let remote = UserRef::new(UserId(500), Domain::new("fan.example"));
        let follow = Activity::follow(ActivityId(7), remote, local.clone(), SimTime(10));
        assert!(s.ingest_remote(follow).accepted());
        assert_eq!(s.user(UserId(1)).unwrap().followers, 1);
        // Subsequent post delivery reaches... (graph holds the edge)
        s.with_graph(|g| assert_eq!(g.follower_count(&local), 1));
    }

    #[test]
    fn reports_increment_report_count() {
        let s = make_server("home.example");
        let target = UserRef::new(UserId(1), Domain::new("home.example"));
        let reporter = UserRef::new(UserId(9), Domain::new("remote.example"));
        let flag = Activity::report(ActivityId(3), reporter, target, "rude", SimTime(5));
        assert!(s.ingest_remote(flag).accepted());
        assert_eq!(s.user(UserId(1)).unwrap().report_count, 1);
    }

    #[test]
    fn remote_delete_removes_post() {
        let s = make_server("home.example");
        s.ingest_remote(remote_create(1, "remote.example", "to be deleted"));
        assert_eq!(s.post_count(), 1);
        let actor = UserRef::new(UserId(1001), Domain::new("remote.example"));
        let del = Activity::delete(ActivityId(2), actor, PostId(5001), SimTime(20));
        assert!(s.ingest_remote(del).accepted());
        assert_eq!(s.post_count(), 0);
    }

    #[test]
    fn tag_user_drives_tag_policy() {
        use fediscope_core::model::mrf_tags;
        let s = make_server("home.example");
        let mut config = InstanceModerationConfig::pleroma_default();
        config.enable(PolicyKind::Tag);
        s.set_moderation(config);
        // Register the remote troublemaker locally (admin has tagged them).
        let mut remote_user = local_user(1001, "remote.example");
        remote_user.domain = Domain::new("remote.example");
        s.add_user(remote_user);
        assert!(s.tag_user(UserId(1001), mrf_tags::FORCE_UNLISTED));
        let outcome = s.ingest_remote(remote_create(1, "remote.example", "tagged"));
        let act = outcome.verdict.expect_pass();
        assert_eq!(act.note().unwrap().visibility, Visibility::Unlisted);
        assert!(!s.tag_user(UserId(4242), "nope"), "unknown user");
    }

    #[test]
    fn install_post_bypasses_mrf() {
        let s = make_server("home.example");
        let mut config = InstanceModerationConfig::pleroma_default();
        config.set_simple(
            SimplePolicy::new().with_target(SimpleAction::Reject, Domain::new("bad.example")),
        );
        s.set_moderation(config);
        let author = UserRef::new(UserId(1000), Domain::new("bad.example"));
        s.install_post(Post::stub(PostId(9), author, SimTime(0), "generator state"));
        assert_eq!(s.post_count(), 1, "install_post is ground-truth injection");
    }

    #[test]
    fn clock_is_settable() {
        let s = make_server("home.example");
        s.set_clock(SimTime(123_456));
        assert_eq!(s.clock(), SimTime(123_456));
    }

    #[test]
    fn defederate_blocks_and_tears_down_links() {
        let s = make_server("home.example");
        let local = UserRef::new(UserId(1), Domain::new("home.example"));
        let fan = UserRef::new(UserId(1001), Domain::new("bad.example"));
        s.follow(fan.clone(), local.clone());
        s.follow(local.clone(), fan.clone());
        let severed = s.defederate(&Domain::new("bad.example"));
        assert_eq!(severed, 2);
        s.with_graph(|g| {
            assert!(!g.follows(&fan, &local));
            assert!(!g.follows(&local, &fan));
            // Ever-federated: the peer record outlives the block.
            assert!(g
                .peers_of(&Domain::new("home.example"))
                .contains(&Domain::new("bad.example")));
        });
        // The rebuilt pipeline now rejects everything from bad.example.
        let outcome = s.ingest_remote(remote_create(7, "bad.example", "still here?"));
        assert!(!outcome.accepted());
        assert!(s
            .moderation()
            .simple
            .as_ref()
            .unwrap()
            .matches(SimpleAction::Reject, &Domain::new("bad.example")));
    }

    #[test]
    fn defederate_twice_and_on_unknown_domains_is_idempotent() {
        let s = make_server("home.example");
        let local = UserRef::new(UserId(1), Domain::new("home.example"));
        let fan = UserRef::new(UserId(1001), Domain::new("bad.example"));
        s.follow(fan.clone(), local.clone());
        assert_eq!(s.defederate(&Domain::new("bad.example")), 1);
        // A repeated block finds no edges left and must not grow the
        // reject list (a cascade replaying the same block, or a bridge
        // mirroring a re-applied event, must stay a no-op).
        assert_eq!(s.defederate(&Domain::new("bad.example")), 0);
        let rejects = s
            .moderation()
            .simple
            .as_ref()
            .unwrap()
            .targets(SimpleAction::Reject)
            .len();
        assert_eq!(rejects, 1, "reject list must not double-add");
        // Defederating from a domain with no links: the block is
        // recorded (an admin can pre-emptively blocklist), but zero
        // edges fall and repeating it still adds nothing.
        assert_eq!(s.defederate(&Domain::new("never-met.example")), 0);
        assert_eq!(s.defederate(&Domain::new("never-met.example")), 0);
        let m = s.moderation();
        let targets = m.simple.as_ref().unwrap().targets(SimpleAction::Reject);
        assert_eq!(targets.len(), 2);
    }
}
