//! # fediscope-server
//!
//! Simulated fediverse instance servers. A [`InstanceServer`] hosts users,
//! posts and (for Pleroma) an MRF policy pipeline, and serves the public
//! APIs the paper's measurement campaign used:
//!
//! | Endpoint | Paper usage |
//! |---|---|
//! | `GET /api/v1/instance` | metadata every 4 h: user/post counts, version, registrations, **enabled policies and their targets** |
//! | `GET /api/v1/instance/peers` | discovery: "the list of instances that each Pleroma instance has ever federated with" |
//! | `GET /api/v1/timelines/public?local=true` | the post collection (14.5 M posts) |
//! | `GET /.well-known/nodeinfo`, `/nodeinfo/2.0` | software identification (Pleroma vs Mastodon) |
//! | `POST /inbox` | federation deliveries (Create/Follow/...), filtered through MRF |
//!
//! Pleroma instances expose their moderation configuration through the
//! instance metadata (unless the admin hides it — 8.1% do, §4.1); Mastodon
//! instances serve the same Mastodon API surface but never expose policies,
//! which is exactly why the paper centres on Pleroma.
//!
//! [`Federator`] glues servers to `fediscope-simnet`: it fans out published
//! activities to follower instances' inboxes over the simulated network.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod api;
mod federate;
mod metrics;
mod server;

pub use api::{register_on, status_json, DEFAULT_PAGE, MAX_PAGE};
pub use federate::{DeliveryReport, Federator};
pub use metrics::prometheus_text;
pub use server::{InstanceServer, PublishError, ServerStats};
