//! The differential oracle for the sender-majorized measurement phase:
//! [`MeasureMode::Batched`] must produce whole-trace bit-identical
//! results to the per-post [`MeasureMode::Reference`] path — for every
//! shipped scenario family, for a rewriting-MRF world that forces the
//! batched path's clone fallback, and at 1, 2 and 8 worker threads.
//!
//! Thread counts are swept by resetting the global rayon pool size
//! between runs (the shim allows it); nothing else in this binary
//! touches the pool, so the sweep is race-free.

use fediscope_core::mrf::policies::{DropPolicy, RewritePolicy};
use fediscope_core::time::SimTime;
use fediscope_dynamics::scenarios::{
    CascadeConfig, ChurnConfig, ChurnScenario, Composite, DefederationCascadeScenario,
    PolicyRolloutScenario, ReliabilityScenario, RolloutConfig, StormConfig, ToxicityStormScenario,
};
use fediscope_dynamics::{
    DynamicsConfig, DynamicsEngine, DynamicsTrace, EventQueue, MeasureMode, NetworkState, Scenario,
};
use fediscope_synthgen::{ScenarioSeeds, World, WorldConfig};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use std::sync::{Arc, OnceLock};

fn seeds() -> &'static ScenarioSeeds {
    static SEEDS: OnceLock<ScenarioSeeds> = OnceLock::new();
    SEEDS.get_or_init(|| ScenarioSeeds::from_world(&World::generate(WorldConfig::test_small())))
}

/// Wraps any scenario and pushes an always-rewriting MRF policy into
/// every third instance's pipeline at init. `RewritePolicy` keeps the
/// conservative `rewrites_content()` default, so its `judge_ref` is
/// `NeedsClone` unconditionally — those receivers exercise the batched
/// path's cloning fallback on every distinct template.
struct WithRewriters(Box<dyn Scenario>);

impl Scenario for WithRewriters {
    fn name(&self) -> &'static str {
        "with-rewriters"
    }
    fn init(
        &mut self,
        start: SimTime,
        state: &mut NetworkState,
        queue: &mut EventQueue,
        rng: &mut SmallRng,
    ) {
        for (i, inst) in state.instances.iter_mut().enumerate() {
            if i % 3 == 0 {
                Arc::make_mut(&mut inst.pipeline).push(Arc::new(RewritePolicy {
                    rules: vec![("e".to_string(), "3".to_string())],
                }));
            }
        }
        self.0.init(start, state, queue, rng);
    }
    fn after_event(
        &mut self,
        event: &fediscope_dynamics::Scheduled,
        applied: bool,
        state: &NetworkState,
        queue: &mut EventQueue,
        rng: &mut SmallRng,
    ) {
        self.0.after_event(event, applied, state, queue, rng);
    }
}

/// The five scenario families, the reactive composition, the
/// retry-armed composite, and the rewriting-MRF world.
fn scenario_by_id(id: usize) -> Box<dyn Scenario> {
    match id % 8 {
        0 => Box::new(PolicyRolloutScenario::new(RolloutConfig::default())),
        1 => Box::new(DefederationCascadeScenario::new(CascadeConfig::default())),
        2 => Box::new(ChurnScenario::new(ChurnConfig::default())),
        3 => Box::new(ToxicityStormScenario::new(StormConfig::default())),
        4 => Box::new(
            Composite::new()
                .with(Box::new(ToxicityStormScenario::new(StormConfig::default())))
                .with(Box::new(ChurnScenario::new(ChurnConfig::default())))
                .with(Box::new(PolicyRolloutScenario::new(
                    RolloutConfig::default(),
                ))),
        ),
        5 => Box::new(
            Composite::new()
                .with(Box::new(DefederationCascadeScenario::new(
                    CascadeConfig::default(),
                )))
                .with(Box::new(ChurnScenario::new(ChurnConfig::default()))),
        ),
        // Retry composite: churn with the delivery-reliability layer
        // armed, so retry/recover/dead-letter columns are exercised too.
        6 => Box::new(
            Composite::new()
                .with(Box::new(ReliabilityScenario::default()))
                .with(Box::new(ChurnScenario::new(ChurnConfig {
                    transient_p: 0.5,
                    ..ChurnConfig::default()
                }))),
        ),
        // Rewriting-MRF world over a storm: forces the clone fallback.
        _ => Box::new(WithRewriters(Box::new(ToxicityStormScenario::new(
            StormConfig::default(),
        )))),
    }
}

fn run(
    scenario_id: usize,
    engine_seed: u64,
    threads: usize,
    measure: MeasureMode,
) -> DynamicsTrace {
    let _ = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build_global();
    let config = DynamicsConfig {
        seed: engine_seed,
        ticks: 6,
        measure,
        ..DynamicsConfig::default()
    };
    let mut engine = DynamicsEngine::new(config, seeds());
    let mut scenario = scenario_by_id(scenario_id);
    engine.run(scenario.as_mut())
}

proptest! {
    /// Whole-trace equality (not just digests) between the batched and
    /// reference measurement paths, with the batched side swept across
    /// 1, 2 and 8 threads.
    #[test]
    fn batched_measurement_matches_reference(
        scenario_id in 0_usize..8,
        engine_seed in 0_u64..1_000_000,
    ) {
        let reference = run(scenario_id, engine_seed, 1, MeasureMode::Reference);
        for threads in [1_usize, 2, 8] {
            let batched = run(scenario_id, engine_seed, threads, MeasureMode::Batched);
            prop_assert_eq!(
                reference.digest(),
                batched.digest(),
                "batched digest diverged at {} threads (scenario {})",
                threads,
                scenario_id
            );
            prop_assert!(
                reference == batched,
                "batched trace diverged at {} threads (scenario {})",
                threads,
                scenario_id
            );
        }
    }
}

/// Pins that run-length grouping and verdict memoization never change
/// `rejected_authors` (distinct `(sender, author)` pairs) counting.
///
/// Every instance is cut down to a single template, so each sender's
/// whole tick collapses into one maximal run, and a reject-all pipeline
/// rejects every delivery. The batched path must still count exactly one
/// author per live `(receiver, sender)` edge — the same as the per-post
/// oracle — not one per emission.
#[test]
fn run_length_grouping_preserves_rejected_author_counting() {
    struct SingleTemplateRejectAll;
    impl Scenario for SingleTemplateRejectAll {
        fn name(&self) -> &'static str {
            "single-template-reject-all"
        }
        fn init(
            &mut self,
            _start: SimTime,
            state: &mut NetworkState,
            _queue: &mut EventQueue,
            _rng: &mut SmallRng,
        ) {
            for inst in &mut state.instances {
                if inst.templates.len() > 1 {
                    inst.templates = Arc::from(&inst.templates[..1]);
                }
                Arc::make_mut(&mut inst.pipeline).push(Arc::new(DropPolicy));
            }
        }
    }
    let run = |measure| {
        let config = DynamicsConfig {
            ticks: 4,
            measure,
            ..DynamicsConfig::default()
        };
        DynamicsEngine::new(config, seeds()).run(&mut SingleTemplateRejectAll)
    };
    let reference = run(MeasureMode::Reference);
    let batched = run(MeasureMode::Batched);
    assert_eq!(reference.digest(), batched.digest());
    assert_eq!(reference, batched);
    assert!(reference.total_rejected() > 0, "DropPolicy rejects all");
    for tick in &batched.ticks {
        // Many rejections, few authors: the memoized runs really did
        // collapse, yet the distinct-author count stayed exact.
        assert!(tick.rejected_authors > 0);
        assert!(
            tick.rejected_authors < tick.rejected,
            "tick {}: expected run-length collapse ({} authors vs {} rejections)",
            tick.tick,
            tick.rejected_authors,
            tick.rejected
        );
    }
}
