//! The differential oracle for pipeline interning and Arc-shared
//! instance columns: a [`NetworkState`] built through the interned,
//! column-sharing path (`from_seeds`) must produce whole-trace
//! bit-identical results to one built by `from_seeds_reference` — which
//! compiles every pipeline per instance and shares nothing — for every
//! shipped scenario family, at 1, 2 and 8 worker threads.
//!
//! The sweep keeps every copy-on-write divergence site hot, not just
//! covered: rollouts apply mid-run waves (`apply_wave`), cascades
//! defederate (`defederate`), the blocklist-import family resets
//! moderation back to the fresh install (`reset_moderation_default`),
//! and the rewriter family `Arc::make_mut`s shared pipelines at init.
//!
//! Thread counts are swept by resetting the global rayon pool size
//! between runs (the shim allows it); nothing else in this binary
//! touches the pool, so the sweep is race-free.

use fediscope_core::mrf::policies::RewritePolicy;
use fediscope_core::time::SimTime;
use fediscope_dynamics::scenarios::{
    AdoptionModel, BlocklistImportScenario, CascadeConfig, ChurnConfig, ChurnScenario, Composite,
    DefederationCascadeScenario, ImportConfig, PolicyRolloutScenario, ReliabilityScenario,
    RolloutConfig, StormConfig, ToxicityStormScenario,
};
use fediscope_dynamics::{
    DynamicsConfig, DynamicsEngine, DynamicsTrace, EventQueue, NetworkState, Scenario,
};
use fediscope_synthgen::{ScenarioSeeds, World, WorldConfig};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use std::sync::{Arc, OnceLock};

fn seeds() -> &'static ScenarioSeeds {
    static SEEDS: OnceLock<ScenarioSeeds> = OnceLock::new();
    SEEDS.get_or_init(|| ScenarioSeeds::from_world(&World::generate(WorldConfig::test_small())))
}

/// Wraps any scenario and `Arc::make_mut`s every third instance's
/// pipeline at init to push a rewriting policy — on the interned state
/// those pipelines are shared, so this is the COW divergence branch
/// firing across a third of the population before the first tick.
struct WithRewriters(Box<dyn Scenario>);

impl Scenario for WithRewriters {
    fn name(&self) -> &'static str {
        "with-rewriters"
    }
    fn init(
        &mut self,
        start: SimTime,
        state: &mut NetworkState,
        queue: &mut EventQueue,
        rng: &mut SmallRng,
    ) {
        for (i, inst) in state.instances.iter_mut().enumerate() {
            if i % 3 == 0 {
                Arc::make_mut(&mut inst.pipeline).push(Arc::new(RewritePolicy {
                    rules: vec![("e".to_string(), "3".to_string())],
                }));
            }
        }
        self.0.init(start, state, queue, rng);
    }
    fn after_event(
        &mut self,
        event: &fediscope_dynamics::Scheduled,
        applied: bool,
        state: &NetworkState,
        queue: &mut EventQueue,
        rng: &mut SmallRng,
    ) {
        self.0.after_event(event, applied, state, queue, rng);
    }
}

/// The five scenario families, the reactive compositions, the
/// reset-to-default blocklist import, and the rewriting-MRF world.
fn scenario_by_id(id: usize) -> Box<dyn Scenario> {
    match id % 9 {
        0 => Box::new(PolicyRolloutScenario::new(RolloutConfig::default())),
        1 => Box::new(DefederationCascadeScenario::new(CascadeConfig::default())),
        2 => Box::new(ChurnScenario::new(ChurnConfig::default())),
        3 => Box::new(ToxicityStormScenario::new(StormConfig::default())),
        4 => Box::new(
            Composite::new()
                .with(Box::new(ToxicityStormScenario::new(StormConfig::default())))
                .with(Box::new(ChurnScenario::new(ChurnConfig::default())))
                .with(Box::new(PolicyRolloutScenario::new(
                    RolloutConfig::default(),
                ))),
        ),
        5 => Box::new(
            Composite::new()
                .with(Box::new(DefederationCascadeScenario::new(
                    CascadeConfig::default(),
                )))
                .with(Box::new(ChurnScenario::new(ChurnConfig::default()))),
        ),
        6 => Box::new(
            Composite::new()
                .with(Box::new(ReliabilityScenario::default()))
                .with(Box::new(ChurnScenario::new(ChurnConfig {
                    transient_p: 0.5,
                    ..ChurnConfig::default()
                }))),
        ),
        // Reset-to-default import: every adopter replaces its moderation
        // Arc wholesale (`reset_moderation_default`) before importing.
        7 => Box::new(BlocklistImportScenario::new(ImportConfig {
            adoption: AdoptionModel::Full,
            reset_to_default: true,
            ..ImportConfig::default()
        })),
        // Rewriting-MRF world over a storm: COW at init, verdicts after.
        _ => Box::new(WithRewriters(Box::new(ToxicityStormScenario::new(
            StormConfig::default(),
        )))),
    }
}

fn run(scenario_id: usize, engine_seed: u64, threads: usize, reference: bool) -> DynamicsTrace {
    let _ = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build_global();
    let config = DynamicsConfig {
        seed: engine_seed,
        ticks: 6,
        ..DynamicsConfig::default()
    };
    let mut engine = if reference {
        DynamicsEngine::from_state(config, NetworkState::from_seeds_reference(seeds()))
    } else {
        DynamicsEngine::new(config, seeds())
    };
    let mut scenario = scenario_by_id(scenario_id);
    engine.run(scenario.as_mut())
}

proptest! {
    /// Whole-trace equality (not just digests) between the interned and
    /// reference state constructions, with the interned side swept
    /// across 1, 2 and 8 threads.
    #[test]
    fn interned_state_matches_reference(
        scenario_id in 0_usize..9,
        engine_seed in 0_u64..1_000_000,
    ) {
        let reference = run(scenario_id, engine_seed, 1, true);
        for threads in [1_usize, 2, 8] {
            let interned = run(scenario_id, engine_seed, threads, false);
            prop_assert_eq!(
                reference.digest(),
                interned.digest(),
                "interned digest diverged at {} threads (scenario {})",
                threads,
                scenario_id
            );
            prop_assert!(
                reference == interned,
                "interned trace diverged at {} threads (scenario {})",
                threads,
                scenario_id
            );
        }
    }
}

/// Pins the mid-run wave COW branch deterministically (no proptest
/// shrink needed when it breaks): a rollout over the interned state
/// diverges waved instances' pipelines from their intern pool entries
/// and still matches the share-nothing reference bit for bit.
#[test]
fn mid_run_wave_diverges_cow_and_matches_reference() {
    let reference = run(0, 42, 1, true);
    let interned = run(0, 42, 1, false);
    assert_eq!(reference.digest(), interned.digest());
    assert_eq!(reference, interned);
    assert!(
        reference
            .ticks
            .iter()
            .any(|t| t.adopted > 0 || t.rejected > 0),
        "rollout should actually moderate something"
    );
}
