//! The observability zero-drift contract ("observe, never perturb"):
//! arming the global telemetry registry must not change a single bit of
//! any [`DynamicsTrace`], at any thread count.
//!
//! Tested adversarially, like `determinism.rs`: random engine seeds, a
//! scenario pool that includes the retry-enabled composite (backoff +
//! jitter redeliveries are the events most tempting to instrument
//! intrusively), and whole-trace `==` — not just digests — between a
//! disarmed baseline and armed runs at 1, 2 and 8 worker threads.
//!
//! The second property covers the registry's other invariant: sharded
//! counter merges are order-stable — the merged value depends only on
//! the multiset of additions, never on which worker landed on which
//! shard or in what order the threads ran.
//!
//! The armed/disarmed sweep is the only test in this binary that touches
//! the process-global registry, so concurrently-running tests here can
//! never observe a half-armed state.

use fediscope_dynamics::scenarios::{
    CascadeConfig, ChurnConfig, ChurnScenario, Composite, DefederationCascadeScenario,
    PolicyRolloutScenario, ReliabilityScenario, RolloutConfig, StormConfig, ToxicityStormScenario,
};
use fediscope_dynamics::{DynamicsConfig, DynamicsEngine, DynamicsTrace, Scenario};
use fediscope_synthgen::{ScenarioSeeds, World, WorldConfig};
use fediscope_telemetry::{HotCounter, ShardedCounter, Telemetry};
use proptest::prelude::*;
use std::sync::OnceLock;

fn seeds() -> &'static ScenarioSeeds {
    static SEEDS: OnceLock<ScenarioSeeds> = OnceLock::new();
    SEEDS.get_or_init(|| ScenarioSeeds::from_world(&World::generate(WorldConfig::test_small())))
}

/// The same scenario pool `determinism.rs` sweeps, ending with the
/// retry-enabled churn composite — every shipped event source that
/// telemetry observes.
fn scenario_by_id(id: usize) -> Box<dyn Scenario> {
    match id % 5 {
        0 => Box::new(ToxicityStormScenario::new(StormConfig::default())),
        1 => Box::new(ChurnScenario::new(ChurnConfig::default())),
        2 => Box::new(PolicyRolloutScenario::new(RolloutConfig::default())),
        3 => Box::new(DefederationCascadeScenario::new(CascadeConfig::default())),
        _ => Box::new(
            Composite::new()
                .with(Box::new(ReliabilityScenario::default()))
                .with(Box::new(ChurnScenario::new(ChurnConfig {
                    transient_p: 0.5,
                    ..ChurnConfig::default()
                }))),
        ),
    }
}

fn run_with_threads(scenario_id: usize, engine_seed: u64, threads: usize) -> DynamicsTrace {
    // The shim rayon re-sizes the global pool freely; real rayon would
    // Err after the first call and the sweep degrades to same-size
    // repeats (still a valid armed-vs-disarmed check).
    let _ = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build_global();
    let config = DynamicsConfig {
        seed: engine_seed,
        ticks: 6,
        ..DynamicsConfig::default()
    };
    let mut engine = DynamicsEngine::new(config, seeds());
    let mut scenario = scenario_by_id(scenario_id);
    engine.run(scenario.as_mut())
}

proptest! {
    /// Disarmed baseline vs armed runs at 1, 2 and 8 threads: every
    /// trace bit-identical, and the armed runs must have genuinely
    /// recorded readings (an accidentally-dead registry would make this
    /// test vacuous).
    #[test]
    fn armed_trace_is_bit_identical_to_disarmed(
        scenario_id in 0_usize..5,
        engine_seed in 0_u64..1_000_000,
    ) {
        let telemetry = Telemetry::global();
        telemetry.disarm();
        let disarmed = run_with_threads(scenario_id, engine_seed, 1);

        telemetry.reset();
        telemetry.arm();
        for threads in [1_usize, 2, 8] {
            let armed = run_with_threads(scenario_id, engine_seed, threads);
            prop_assert_eq!(
                disarmed.digest(),
                armed.digest(),
                "digest drifted with telemetry armed at {} threads (scenario {})",
                threads,
                scenario_id
            );
            prop_assert!(
                disarmed == armed,
                "trace drifted with telemetry armed at {} threads (scenario {})",
                threads,
                scenario_id
            );
        }
        let events = telemetry.counter(HotCounter::EventsApplied);
        let deliveries = telemetry.counter(HotCounter::EngineDeliveries);
        telemetry.disarm();
        telemetry.reset();
        prop_assert!(
            events > 0 || deliveries > 0,
            "armed runs must actually record readings (scenario {})",
            scenario_id
        );
    }

    /// Counter merges are order-stable: feed the same additions through
    /// any permutation of spawn order (so threads land on different home
    /// shards), the merged value is always the plain sum.
    #[test]
    fn counter_merge_is_order_stable(
        amounts in proptest::collection::vec(1_u64..10_000, 2..12),
        rotate in 0_usize..12,
    ) {
        let expected: u64 = amounts.iter().sum();
        let mut rotated = amounts.clone();
        rotated.rotate_left(rotate % amounts.len());
        for work in [amounts, rotated] {
            let counter = ShardedCounter::new();
            std::thread::scope(|scope| {
                for n in &work {
                    scope.spawn(|| counter.add(*n));
                }
            });
            prop_assert_eq!(counter.get(), expected);
        }
    }
}
