//! The determinism contract: same seed ⇒ bit-identical [`DynamicsTrace`]
//! at 1, 2 and 8 worker threads, and across repeated runs.
//!
//! This is the property the engine's whole design serves (totally-ordered
//! control phase, per-`(seed, tick, sender)` RNG streams, fixed-order
//! float reduction), so it is tested adversarially: every shipped
//! scenario, random engine seeds, whole-trace `==` (not just digests).
//!
//! Thread counts are swept inside a single `#[test]` body by resetting
//! the global rayon pool size between runs; nothing else in this binary
//! touches the pool, so the sweep is race-free.

use fediscope_dynamics::scenarios::{
    CascadeConfig, ChurnConfig, ChurnScenario, DefederationCascadeScenario, PolicyRolloutScenario,
    RolloutConfig, StormConfig, ToxicityStormScenario,
};
use fediscope_dynamics::{DynamicsConfig, DynamicsEngine, DynamicsTrace, Scenario};
use fediscope_synthgen::{ScenarioSeeds, World, WorldConfig};
use proptest::prelude::*;
use std::sync::OnceLock;

fn seeds() -> &'static ScenarioSeeds {
    static SEEDS: OnceLock<ScenarioSeeds> = OnceLock::new();
    SEEDS.get_or_init(|| ScenarioSeeds::from_world(&World::generate(WorldConfig::test_small())))
}

fn scenario_by_id(id: usize) -> Box<dyn Scenario> {
    match id % 4 {
        0 => Box::new(PolicyRolloutScenario::new(RolloutConfig::default())),
        1 => Box::new(DefederationCascadeScenario::new(CascadeConfig::default())),
        2 => Box::new(ChurnScenario::new(ChurnConfig::default())),
        _ => Box::new(ToxicityStormScenario::new(StormConfig::default())),
    }
}

fn run_with_threads(scenario_id: usize, engine_seed: u64, threads: usize) -> DynamicsTrace {
    // The shim rayon lets the global pool size be re-set freely, which
    // is what makes the in-process sweep possible. Real rayon would
    // return Err on every call after the first — in that case the sweep
    // degrades to repeated same-size runs (still a valid repeat check)
    // instead of panicking, so the planned shim→real swap stays
    // manifest-only.
    let _ = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build_global();
    let config = DynamicsConfig {
        seed: engine_seed,
        ticks: 6,
        ..DynamicsConfig::default()
    };
    let mut engine = DynamicsEngine::new(config, seeds());
    let mut scenario = scenario_by_id(scenario_id);
    engine.run(scenario.as_mut())
}

proptest! {
    /// Bit-identical traces at 1, 2 and 8 threads, and across two runs
    /// with the same seed.
    #[test]
    fn trace_is_bit_identical_across_thread_counts(
        scenario_id in 0_usize..4,
        engine_seed in 0_u64..1_000_000,
    ) {
        let reference = run_with_threads(scenario_id, engine_seed, 1);
        let repeat = run_with_threads(scenario_id, engine_seed, 1);
        prop_assert_eq!(reference.digest(), repeat.digest());
        prop_assert!(reference == repeat, "same-seed repeat must be identical");
        for threads in [2_usize, 8] {
            let parallel = run_with_threads(scenario_id, engine_seed, threads);
            prop_assert_eq!(
                reference.digest(),
                parallel.digest(),
                "digest diverged at {} threads (scenario {})",
                threads,
                scenario_id
            );
            prop_assert!(
                reference == parallel,
                "trace diverged at {} threads (scenario {})",
                threads,
                scenario_id
            );
        }
        // Different engine seeds must *not* collide (the digest really
        // covers the measurement phase).
        let other = run_with_threads(scenario_id, engine_seed ^ 0xdead_beef, 1);
        prop_assert_ne!(reference.digest(), other.digest());
    }
}
