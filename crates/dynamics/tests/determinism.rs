//! The determinism contract: same seed ⇒ bit-identical [`DynamicsTrace`]
//! at 1, 2 and 8 worker threads, and across repeated runs.
//!
//! This is the property the engine's whole design serves (totally-ordered
//! control phase, per-`(seed, tick, sender)` RNG streams, fixed-order
//! float reduction), so it is tested adversarially: every shipped
//! scenario, random engine seeds, whole-trace `==` (not just digests).
//!
//! Thread counts are swept inside a single `#[test]` body by resetting
//! the global rayon pool size between runs; nothing else in this binary
//! touches the pool, so the sweep is race-free.

use fediscope_dynamics::scenarios::{
    CascadeConfig, ChurnConfig, ChurnScenario, Composite, DefederationCascadeScenario,
    PolicyRolloutScenario, ReliabilityScenario, RolloutConfig, StormConfig, ToxicityStormScenario,
};
use fediscope_dynamics::{DynamicsConfig, DynamicsEngine, DynamicsTrace, Scenario};
use fediscope_synthgen::{ScenarioSeeds, World, WorldConfig};
use proptest::prelude::*;
use std::sync::OnceLock;

fn seeds() -> &'static ScenarioSeeds {
    static SEEDS: OnceLock<ScenarioSeeds> = OnceLock::new();
    SEEDS.get_or_init(|| ScenarioSeeds::from_world(&World::generate(WorldConfig::test_small())))
}

/// The composable (non-reactive) trio, in any registration order.
fn trio_in_order(order: [usize; 3]) -> Composite {
    let mut composite = Composite::new();
    for id in order {
        composite.push(match id {
            0 => Box::new(ToxicityStormScenario::new(StormConfig::default())),
            1 => Box::new(ChurnScenario::new(ChurnConfig::default())),
            _ => Box::new(PolicyRolloutScenario::new(RolloutConfig::default())),
        });
    }
    composite
}

fn scenario_by_id(id: usize) -> Box<dyn Scenario> {
    match id % 7 {
        0 => Box::new(PolicyRolloutScenario::new(RolloutConfig::default())),
        1 => Box::new(DefederationCascadeScenario::new(CascadeConfig::default())),
        2 => Box::new(ChurnScenario::new(ChurnConfig::default())),
        3 => Box::new(ToxicityStormScenario::new(StormConfig::default())),
        // Composites are scenarios too: the full trio, and a reactive
        // composition that includes the imitation cascade.
        4 => Box::new(trio_in_order([0, 1, 2])),
        5 => Box::new(
            Composite::new()
                .with(Box::new(DefederationCascadeScenario::new(
                    CascadeConfig::default(),
                )))
                .with(Box::new(ChurnScenario::new(ChurnConfig::default()))),
        ),
        // Churn with the delivery-reliability layer armed: retry events
        // (backoff + per-(seed, sender, attempt) jitter) must obey the
        // same bit-identical contract as every other event.
        _ => Box::new(
            Composite::new()
                .with(Box::new(ReliabilityScenario::default()))
                .with(Box::new(ChurnScenario::new(ChurnConfig {
                    transient_p: 0.5,
                    ..ChurnConfig::default()
                }))),
        ),
    }
}

fn run_with_threads(scenario_id: usize, engine_seed: u64, threads: usize) -> DynamicsTrace {
    // The shim rayon lets the global pool size be re-set freely, which
    // is what makes the in-process sweep possible. Real rayon would
    // return Err on every call after the first — in that case the sweep
    // degrades to repeated same-size runs (still a valid repeat check)
    // instead of panicking, so the planned shim→real swap stays
    // manifest-only.
    let _ = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build_global();
    let config = DynamicsConfig {
        seed: engine_seed,
        ticks: 6,
        ..DynamicsConfig::default()
    };
    let mut engine = DynamicsEngine::new(config, seeds());
    let mut scenario = scenario_by_id(scenario_id);
    engine.run(scenario.as_mut())
}

proptest! {
    /// Bit-identical traces at 1, 2 and 8 threads, and across two runs
    /// with the same seed — for every shipped scenario *and* for
    /// composed scenarios (the trio, and a reactive cascade+churn mix).
    #[test]
    fn trace_is_bit_identical_across_thread_counts(
        scenario_id in 0_usize..7,
        engine_seed in 0_u64..1_000_000,
    ) {
        let reference = run_with_threads(scenario_id, engine_seed, 1);
        let repeat = run_with_threads(scenario_id, engine_seed, 1);
        prop_assert_eq!(reference.digest(), repeat.digest());
        prop_assert!(reference == repeat, "same-seed repeat must be identical");
        for threads in [2_usize, 8] {
            let parallel = run_with_threads(scenario_id, engine_seed, threads);
            prop_assert_eq!(
                reference.digest(),
                parallel.digest(),
                "digest diverged at {} threads (scenario {})",
                threads,
                scenario_id
            );
            prop_assert!(
                reference == parallel,
                "trace diverged at {} threads (scenario {})",
                threads,
                scenario_id
            );
        }
        // Different engine seeds must *not* collide (the digest really
        // covers the measurement phase).
        let other = run_with_threads(scenario_id, engine_seed ^ 0xdead_beef, 1);
        prop_assert_ne!(reference.digest(), other.digest());
    }

    /// Registration-order invariance for the composable trio
    /// (storm/churn/rollout): their events commute — disjoint state
    /// fields, no-op `after_event` hooks, per-sub RNG streams keyed by
    /// scenario *name* rather than position — so any permutation yields
    /// the bit-identical trace, at any thread count.
    ///
    /// This is exactly where semantics allow it. A *reactive* sub (the
    /// defederation cascade) is excluded by design: its imitation draws
    /// follow the merged event order, so for compositions containing it
    /// the documented tie-break applies instead — same-tick events fire
    /// in sub-registration order — and only same-order determinism is
    /// guaranteed (covered by `trace_is_bit_identical_across_thread_counts`,
    /// scenario id 5).
    #[test]
    fn composite_trio_is_registration_order_invariant(
        perm in 0_usize..6,
        engine_seed in 0_u64..1_000_000,
        threads in prop_oneof![Just(1_usize), Just(2), Just(8)],
    ) {
        const PERMS: [[usize; 3]; 6] = [
            [0, 1, 2], [0, 2, 1], [1, 0, 2], [1, 2, 0], [2, 0, 1], [2, 1, 0],
        ];
        let _ = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build_global();
        let run = |order: [usize; 3]| {
            let config = DynamicsConfig {
                seed: engine_seed,
                ticks: 6,
                ..DynamicsConfig::default()
            };
            let mut engine = DynamicsEngine::new(config, seeds());
            let mut scenario = trio_in_order(order);
            engine.run(&mut scenario)
        };
        let reference = run(PERMS[0]);
        let permuted = run(PERMS[perm]);
        prop_assert_eq!(
            reference.digest(),
            permuted.digest(),
            "trio diverged under registration order {:?}",
            PERMS[perm]
        );
        prop_assert!(reference == permuted);
    }
}
