//! The experiment harness's zero-drift contract: a paired arm's trace is
//! **bit-identical** to a standalone [`DynamicsEngine`] run of the same
//! scenario over the same seeds and config — at `FEDISCOPE_THREADS`
//! 1/2/8 and under any arm registration order.
//!
//! This is what makes [`TraceDelta`]s exact counterfactuals instead of
//! harness artifacts: if wrapping a scenario in an [`Experiment`] could
//! shift a single RNG draw or float reduction, every per-tick delta
//! would carry that noise. The test is adversarial the same way
//! `determinism.rs` is — random engine seeds, whole-trace `==`, a
//! thread-count sweep inside one test body (the shim rayon allows
//! re-sizing the global pool; real rayon would degrade the sweep to
//! repeated same-size runs, still a valid repeat check).

use fediscope_core::time::SimDuration;
use fediscope_dynamics::scenarios::{
    AdoptionModel, BlocklistImportScenario, ImportConfig, InactionScenario, PolicyRolloutScenario,
    RolloutConfig,
};
use fediscope_dynamics::{
    Arm, DynamicsConfig, DynamicsEngine, EngineBuilder, Experiment, Scenario,
};
use fediscope_synthgen::{ScenarioSeeds, World, WorldConfig};
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};

fn seeds_arc() -> Arc<ScenarioSeeds> {
    static SEEDS: OnceLock<Arc<ScenarioSeeds>> = OnceLock::new();
    Arc::clone(SEEDS.get_or_init(|| {
        Arc::new(ScenarioSeeds::from_world(&World::generate(
            WorldConfig::test_small(),
        )))
    }))
}

/// The three arms under permutation: inaction baseline, staged rollout,
/// §4.2-partial blocklist import — exactly the trio the counterfactual
/// example compares.
const ARM_IDS: [usize; 3] = [0, 1, 2];

fn scenario_for(id: usize) -> Box<dyn Scenario> {
    match id {
        0 => Box::new(InactionScenario),
        1 => Box::new(PolicyRolloutScenario::new(RolloutConfig::default())),
        _ => Box::new(BlocklistImportScenario::new(ImportConfig {
            chunk: 8,
            window: SimDuration::days(2),
            adoption: AdoptionModel::HeavyTail { alpha: 3.0 },
            reset_to_default: true,
        })),
    }
}

fn arm_for(id: usize) -> Arm {
    let name = ["inaction", "rollout", "import-partial"][id];
    Arm::new(name, move || scenario_for(id))
}

fn config(engine_seed: u64) -> DynamicsConfig {
    DynamicsConfig {
        seed: engine_seed,
        ticks: 6,
        ..DynamicsConfig::default()
    }
}

proptest! {
    /// For every arm-order permutation and thread count: each arm's
    /// trace equals the standalone run of the same scenario, bitwise.
    /// (The standalone references are computed at 1 worker; per-run
    /// thread-independence is determinism.rs's own contract, so any
    /// mismatch here is drift introduced by the harness itself.)
    #[test]
    fn paired_arms_match_standalone_runs(
        perm in 0_usize..6,
        engine_seed in 0_u64..1_000_000,
        threads in prop_oneof![Just(1_usize), Just(2), Just(8)],
    ) {
        const PERMS: [[usize; 3]; 6] = [
            [0, 1, 2], [0, 2, 1], [1, 0, 2], [1, 2, 0], [2, 0, 1], [2, 1, 0],
        ];
        // Standalone references, single-threaded.
        let _ = rayon::ThreadPoolBuilder::new().num_threads(1).build_global();
        let standalone: Vec<_> = ARM_IDS
            .iter()
            .map(|&id| {
                let mut engine = DynamicsEngine::new(config(engine_seed), &seeds_arc());
                let mut scenario = scenario_for(id);
                engine.run(scenario.as_mut())
            })
            .collect();
        let _ = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build_global();
        let mut experiment = Experiment::new(EngineBuilder::new(config(engine_seed), seeds_arc()));
        for &id in &PERMS[perm] {
            experiment.push(arm_for(id));
        }
        let result = experiment.run();
        prop_assert_eq!(result.arms.len(), 3);
        for &id in &ARM_IDS {
            let name = ["inaction", "rollout", "import-partial"][id];
            let arm = result.arm(name).expect("every arm ran");
            prop_assert_eq!(
                arm.trace.digest(),
                standalone[id].digest(),
                "arm {} drifted from its standalone run ({} threads, order {:?})",
                name,
                threads,
                PERMS[perm]
            );
            prop_assert!(
                arm.trace == standalone[id],
                "arm {} trace differs bitwise ({} threads, order {:?})",
                name,
                threads,
                PERMS[perm]
            );
        }
        // And the paired deltas are order-invariant by construction:
        // the baseline designation follows the *name*, not the slot.
        let baseline_name = ["inaction", "rollout", "import-partial"][PERMS[perm][0]];
        prop_assert_eq!(result.baseline().name.as_str(), baseline_name);
    }
}

/// Deterministic spot check (no proptest shrink noise): the same
/// experiment run twice is bit-identical, arms and deltas alike.
#[test]
fn experiment_repeats_are_bit_identical() {
    let build = || {
        Experiment::new(EngineBuilder::new(config(1534), seeds_arc()))
            .with_arm(arm_for(0))
            .with_arm(arm_for(1))
            .with_arm(arm_for(2))
            .with_baseline("inaction")
    };
    let a = build().run();
    let b = build().run();
    assert_eq!(a, b);
    let da = a.deltas();
    let db = b.deltas();
    assert_eq!(da, db);
    assert_eq!(da.len(), 2);
    // The rollout arm prevents exposure relative to inaction.
    let rollout = a.delta("rollout").unwrap();
    assert!(rollout.prevented_exposure() > 0.0);
    assert!(rollout.blocked_deliveries() > 0);
}
