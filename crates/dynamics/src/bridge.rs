//! The dynamics ↔ simnet round-trip: driving a *live* network from the
//! event stream.
//!
//! Everything the engine simulates — §3 failure churn, defederation,
//! recovery — normally stays inside [`NetworkState`]. [`LiveNetBridge`]
//! mirrors it onto a shared [`SimNet`] as events apply: `GoDown` and
//! `Recover` become [`SimNet::set_failure`] calls, `Defederate` tears
//! down the blocker's follow edges via
//! [`InstanceServer::defederate`]. The crawler can then be pointed at
//! the bridged network *mid-scenario* and the §3 census re-measured
//! against a decaying fleet — the measurement layer and the simulation
//! layer coupled for the first time.
//!
//! The census side of the round-trip is captured in [`CensusSnapshot`]
//! rows (true vs. observed instance counts plus the per-status failure
//! taxonomy of the probes) paced by a [`CensusCadence`]; the async
//! driver that actually runs the crawler between ticks lives in the
//! root `fediscope::census` module, because the dynamics crate itself
//! stays crawler-free.

use crate::event::Event;
use crate::sink::EventSink;
use crate::state::NetworkState;
use fediscope_core::id::Domain;
use fediscope_core::time::SimTime;
use fediscope_server::InstanceServer;
use fediscope_simnet::{FailureMode, SimNet};
use serde::Serialize;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

#[derive(Debug, Default)]
struct BridgeCounters {
    failures: AtomicU64,
    recoveries: AtomicU64,
    defederations: AtomicU64,
    follow_edges: AtomicU64,
}

/// A read handle on a bridge's mirroring counters. Cheap to clone;
/// stays valid after the bridge itself was boxed into the engine via
/// [`crate::DynamicsEngine::attach_sink`].
#[derive(Debug, Clone)]
pub struct BridgeStats {
    counters: Arc<BridgeCounters>,
}

impl BridgeStats {
    /// `GoDown` events mirrored to the net.
    pub fn failures_applied(&self) -> u64 {
        self.counters.failures.load(Ordering::Relaxed)
    }

    /// `Recover` events mirrored to the net.
    pub fn recoveries_applied(&self) -> u64 {
        self.counters.recoveries.load(Ordering::Relaxed)
    }

    /// `Defederate` events that severed a live engine link.
    pub fn defederations_applied(&self) -> u64 {
        self.counters.defederations.load(Ordering::Relaxed)
    }

    /// Follow edges destroyed on bridged servers by those defederations.
    pub fn follow_edges_severed(&self) -> u64 {
        self.counters.follow_edges.load(Ordering::Relaxed)
    }
}

/// Mirrors engine events onto a live [`SimNet`] (and its servers).
///
/// Attach via [`crate::DynamicsEngine::attach_sink`]. The bridge is a
/// pure observer: it applies the engine's *outcomes* to the network and
/// never feeds anything back, so a bridged run produces the exact same
/// [`crate::DynamicsTrace`] as an unbridged one.
pub struct LiveNetBridge {
    net: Arc<SimNet>,
    /// Seed-index → domain table, frozen at construction (instance
    /// indexing is immutable for a run).
    domains: Vec<Domain>,
    /// Servers to tear follow edges down on, by domain. Optional: a
    /// domain without a server still gets failure injection (exactly
    /// like the §3 dead instances, which answer without any endpoint).
    servers: HashMap<Domain, Arc<InstanceServer>>,
    counters: Arc<BridgeCounters>,
}

impl LiveNetBridge {
    /// A bridge from `state`'s instance table onto `net`.
    pub fn new(net: Arc<SimNet>, state: &NetworkState) -> Self {
        LiveNetBridge {
            net,
            domains: state.instances.iter().map(|i| i.domain.clone()).collect(),
            servers: HashMap::new(),
            counters: Arc::new(BridgeCounters::default()),
        }
    }

    /// Adds the servers whose follow graphs `Defederate` events tear
    /// down (typically the `harness::Materialized` server map).
    pub fn with_servers<I>(mut self, servers: I) -> Self
    where
        I: IntoIterator<Item = (Domain, Arc<InstanceServer>)>,
    {
        self.servers.extend(servers);
        self
    }

    /// The bridged network.
    pub fn net(&self) -> &Arc<SimNet> {
        &self.net
    }

    /// A counter handle that outlives attaching the bridge.
    pub fn stats(&self) -> BridgeStats {
        BridgeStats {
            counters: Arc::clone(&self.counters),
        }
    }
}

impl EventSink for LiveNetBridge {
    fn sync(&mut self, state: &NetworkState) {
        for inst in &state.instances {
            self.net.set_failure(inst.domain.clone(), inst.failure);
        }
    }

    fn on_event(&mut self, event: &Event, applied: bool, _state: &NetworkState) {
        match event {
            Event::GoDown { instance, mode } => {
                self.counters.failures.fetch_add(1, Ordering::Relaxed);
                self.net
                    .set_failure(self.domains[*instance as usize].clone(), *mode);
            }
            Event::Recover { instance } => {
                self.counters.recoveries.fetch_add(1, Ordering::Relaxed);
                self.net.set_failure(
                    self.domains[*instance as usize].clone(),
                    FailureMode::Healthy,
                );
            }
            Event::Defederate { instance, target } => {
                // Only a block that actually severed an engine link tears
                // the live graph down: re-blocking an already-severed
                // pair must stay a no-op on the bridged side too.
                if applied {
                    self.counters.defederations.fetch_add(1, Ordering::Relaxed);
                    let target = &self.domains[*target as usize];
                    if let Some(server) = self.servers.get(&self.domains[*instance as usize]) {
                        let severed = server.defederate(target) as u64;
                        self.counters
                            .follow_edges
                            .fetch_add(severed, Ordering::Relaxed);
                    }
                }
            }
            // Retry redeliveries are an engine-internal reliability
            // mechanism: they change counters, not network reachability,
            // so there is nothing to mirror onto the live net.
            Event::AdoptWave { .. } | Event::SetRate { .. } | Event::RetryDelivery { .. } => {}
        }
    }
}

/// How often the round-trip driver re-runs the census, in ticks.
///
/// `every_ticks = 1` censuses after every tick; the default of 6 (one
/// simulated day of 4-hour ticks) matches the paper's daily reporting
/// granularity while keeping crawl volume manageable.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct CensusCadence {
    /// Ticks between censuses. A census always runs after tick 0 and
    /// after the final tick, whatever the cadence.
    pub every_ticks: u64,
}

impl Default for CensusCadence {
    fn default() -> Self {
        CensusCadence { every_ticks: 6 }
    }
}

impl CensusCadence {
    /// Whether a census is due after `tick` of a `total_ticks` run.
    pub fn due(&self, tick: u64, total_ticks: u64) -> bool {
        tick == 0 || tick + 1 == total_ticks || tick.is_multiple_of(self.every_ticks.max(1))
    }
}

/// One census of the live network, mid-scenario: what the crawler saw
/// versus what was actually true.
///
/// `taxonomy` counts *instances* whose probe failed with each §3
/// status during this census — the paper's per-instance accounting —
/// in the paper's reporting order `[404, 403, 502, 503, 410]`, the
/// same order as `NetStats::failure_taxonomy()` (which keeps the
/// request-level cumulative view on the net itself).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CensusSnapshot {
    /// Tick after which the census ran.
    pub tick: u64,
    /// Logical time of that tick.
    pub at: SimTime,
    /// Ground truth: Pleroma instances in the engine state.
    pub true_total: u64,
    /// Ground truth: Pleroma instances answering the network.
    pub true_up: u64,
    /// Pleroma instances the crawler successfully crawled.
    pub observed: u64,
    /// Instances whose probe answered a failure status.
    pub failed_probes: u64,
    /// Instances the crawler never reached (no endpoint, no injection).
    pub unreachable: u64,
    /// §3 status-code counts for this census: `[404, 403, 502, 503, 410]`.
    pub taxonomy: [u64; 5],
}

impl CensusSnapshot {
    /// The census under-count: live Pleroma instances the crawl missed.
    /// Negative only in the pathological case of an instance dying
    /// between its probe and the end of the tick's census.
    pub fn undercount(&self) -> i64 {
        self.true_up as i64 - self.observed as i64
    }

    /// Under-count as a share of the live fleet (0 when nothing is up).
    pub fn undercount_share(&self) -> f64 {
        if self.true_up == 0 {
            0.0
        } else {
            self.undercount() as f64 / self.true_up as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{DynamicsConfig, DynamicsEngine};
    use crate::scenarios::{ChurnConfig, ChurnScenario};
    use crate::testutil::seeds;

    fn bridged_engine(ticks: u64) -> (DynamicsEngine, Arc<SimNet>, BridgeStats) {
        let config = DynamicsConfig {
            ticks,
            ..DynamicsConfig::default()
        };
        let mut engine = DynamicsEngine::new(config, seeds());
        let net = Arc::new(SimNet::new());
        let bridge = LiveNetBridge::new(Arc::clone(&net), engine.state());
        let stats = bridge.stats();
        engine.attach_sink(Box::new(bridge));
        (engine, net, stats)
    }

    #[test]
    fn bridge_mirrors_churn_onto_the_net() {
        let (mut engine, net, stats) = bridged_engine(36);
        let mut scenario = ChurnScenario::new(ChurnConfig::default());
        engine.run(&mut scenario);
        // After the full ramp the live net agrees with the engine state,
        // instance by instance.
        for inst in &engine.state().instances {
            assert_eq!(
                net.failure_of(&inst.domain),
                inst.failure,
                "{} diverged between engine and net",
                inst.domain
            );
        }
        // Every scheduled death went over the bridge, and every
        // transient recovered.
        assert_eq!(
            stats.failures_applied(),
            scenario.permanent_deaths() + scenario.transients()
        );
        assert_eq!(stats.recoveries_applied(), scenario.transients());
    }

    #[test]
    fn bridge_sync_applies_init_rewrites() {
        // Churn's init resets everyone healthy *before* tick 0 — the
        // sync hook must propagate that, or the net would keep the seed
        // failure modes the scenario explicitly cleared.
        let (mut engine, net, _stats) = bridged_engine(36);
        let mut scenario = ChurnScenario::new(ChurnConfig::default());
        engine.begin(&mut scenario);
        for inst in &engine.state().instances {
            assert_eq!(net.failure_of(&inst.domain), FailureMode::Healthy);
        }
    }

    #[test]
    fn bridged_run_traces_identically_to_unbridged() {
        let config = DynamicsConfig {
            ticks: 12,
            ..DynamicsConfig::default()
        };
        let mut plain = DynamicsEngine::new(config.clone(), seeds());
        let unbridged = plain.run(&mut ChurnScenario::new(ChurnConfig::default()));
        let (mut engine, _net, _stats) = bridged_engine(12);
        let bridged = engine.run(&mut ChurnScenario::new(ChurnConfig::default()));
        assert_eq!(unbridged.digest(), bridged.digest());
        assert_eq!(unbridged, bridged);
    }

    #[test]
    fn cadence_hits_endpoints_and_period() {
        let c = CensusCadence { every_ticks: 5 };
        assert!(c.due(0, 12));
        assert!(c.due(5, 12));
        assert!(c.due(10, 12));
        assert!(c.due(11, 12), "final tick always censuses");
        assert!(!c.due(3, 12));
        // Degenerate cadence never divides by zero.
        let z = CensusCadence { every_ticks: 0 };
        assert!(z.due(7, 12));
    }

    #[test]
    fn undercount_math() {
        let snap = CensusSnapshot {
            tick: 3,
            at: SimTime(0),
            true_total: 100,
            true_up: 80,
            observed: 72,
            failed_probes: 20,
            unreachable: 0,
            taxonomy: [10, 5, 3, 1, 1],
        };
        assert_eq!(snap.undercount(), 8);
        assert!((snap.undercount_share() - 0.1).abs() < 1e-12);
        let empty = CensusSnapshot {
            true_up: 0,
            observed: 0,
            ..snap
        };
        assert_eq!(empty.undercount_share(), 0.0);
    }
}
