//! The shipped scenarios: rollout, cascade, churn, storm — and the
//! [`Composite`] multiplexer that runs any of them in one timeline.

mod cascade;
mod churn;
mod composite;
mod rollout;
mod storm;

pub use cascade::{
    follower_weight, imitation_probability, CascadeConfig, DefederationCascadeScenario,
    REFERENCE_FOLLOWERS,
};
pub use churn::{ChurnConfig, ChurnScenario};
pub use composite::Composite;
pub use rollout::{PolicyRolloutScenario, RolloutConfig};
pub use storm::{StormConfig, ToxicityStormScenario};
