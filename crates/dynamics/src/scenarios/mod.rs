//! The shipped scenarios: rollout (and its inaction null arm), cascade,
//! churn, storm, blocklist imports (full or §4.2-partial), the
//! delivery-reliability enabler — and the [`Composite`] multiplexer
//! that runs any of them in one timeline.

mod cascade;
mod churn;
mod composite;
mod import;
mod reliability;
mod rollout;
mod storm;

pub use cascade::{
    follower_weight, imitation_probability, CascadeConfig, DefederationCascadeScenario,
    REFERENCE_FOLLOWERS,
};
pub use churn::{ChurnConfig, ChurnScenario};
pub use composite::Composite;
pub use import::{
    heavy_tail_fraction, AdoptionModel, BlocklistImportScenario, ImportConfig,
    MIN_ADOPTION_FRACTION,
};
pub use reliability::ReliabilityScenario;
pub use rollout::{InactionScenario, PolicyRolloutScenario, RolloutConfig};
pub use storm::{StormConfig, ToxicityStormScenario};
