//! The shipped scenarios: rollout, cascade, churn, storm.

mod cascade;
mod churn;
mod rollout;
mod storm;

pub use cascade::{CascadeConfig, DefederationCascadeScenario};
pub use churn::{ChurnConfig, ChurnScenario};
pub use rollout::{PolicyRolloutScenario, RolloutConfig};
pub use storm::{StormConfig, ToxicityStormScenario};
