//! Scenario 6 — circulating blocklist imports, full or partial.
//!
//! *Understanding Community-Level Blocklists* motivates the two arms
//! this scenario provides: a shared blocklist (here: the union of every
//! seed instance's final reject list) circulates, and each Pleroma
//! admin either imports it wholesale or — as §4.2's heavy-tailed
//! moderation effort suggests — adopts only a subset. Adoption
//! fractions are drawn per adopter from a heavy-tailed curve
//! ([`heavy_tail_fraction`]): most admins import a sliver, a few import
//! nearly everything.
//!
//! Full imports schedule one shared [`RolloutWave`] per chunk to every
//! importer (`Arc` refcount bump — one artifact, many admins); partial
//! imports clone per-adopter subset waves through
//! [`RolloutWave::subset_simple`], the core-side counterfactual-arm
//! primitive. Both paths are pure control-phase load: every event is an
//! `AdoptWave` mutating a compiled pipeline through the O(delta) MRF
//! API, which is why `perf_dynamics` floods exactly this scenario.

use crate::event::{Event, EventQueue};
use crate::scenario::Scenario;
use crate::state::NetworkState;
use fediscope_core::id::Domain;
use fediscope_core::mrf::policies::{SimpleAction, SimplePolicy};
use fediscope_core::rollout::RolloutWave;
use fediscope_core::time::{SimDuration, SimTime};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Smallest adoption fraction a partial importer lands on — even the
/// laziest admin copies *something* from a list they bothered to open.
pub const MIN_ADOPTION_FRACTION: f64 = 0.02;

/// Maps a uniform draw `u ∈ [0, 1]` to a heavy-tailed adoption
/// fraction: `clamp(u^alpha, MIN_ADOPTION_FRACTION, 1)`.
///
/// For `alpha > 1` the density of the result is `∝ f^(1/alpha − 1)` —
/// monotonically decreasing, so mass concentrates near the floor while
/// the tail still reaches full adoption (`u → 1 ⇒ f → 1`): the §4.2
/// shape where a handful of heavy moderators carry most of the imported
/// volume. `alpha = 3` gives a median fraction of 0.125 and a mean of
/// ≈ 0.25. The curve is pinned by test; change it deliberately.
pub fn heavy_tail_fraction(u: f64, alpha: f64) -> f64 {
    // The upper clamp matters for out-of-domain alphas (< 1 inverts the
    // curve; negative sends u^alpha above 1): the result always stays a
    // fraction, so a mis-typed alpha degrades to heavier adoption
    // instead of breaking the [MIN, 1] contract downstream code pins.
    u.clamp(0.0, 1.0)
        .powf(alpha)
        .clamp(MIN_ADOPTION_FRACTION, 1.0)
}

/// How much of the circulating list each adopter imports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AdoptionModel {
    /// Every importer adopts the whole union (the pre-PR 5 bench
    /// behaviour — shared waves, refcount-bump scheduling).
    Full,
    /// Each importer draws a heavy-tailed adoption fraction
    /// ([`heavy_tail_fraction`] with this `alpha`) and keeps each union
    /// entry independently with that probability.
    HeavyTail {
        /// Skew exponent (≥ 1; larger = heavier concentration near the
        /// minimum fraction).
        alpha: f64,
    },
}

/// Import shape.
#[derive(Debug, Clone)]
pub struct ImportConfig {
    /// Union entries per [`RolloutWave`] chunk (1 = one event per
    /// domain, the maximum-pressure flood shape).
    pub chunk: usize,
    /// Window the chunks spread over.
    pub window: SimDuration,
    /// Full or heavy-tailed subset adoption.
    pub adoption: AdoptionModel,
    /// Strip every instance to the fresh-install default first. Leave
    /// `false` to import on top of the seed configs (the flood/bench
    /// shape); set `true` for counterfactual arms so the import starts
    /// from the same null state as an inaction or rollout arm.
    pub reset_to_default: bool,
}

impl Default for ImportConfig {
    fn default() -> Self {
        ImportConfig {
            chunk: 16,
            window: SimDuration::days(3),
            adoption: AdoptionModel::HeavyTail { alpha: 3.0 },
            reset_to_default: false,
        }
    }
}

/// The blocklist-import scenario.
#[derive(Debug, Default)]
pub struct BlocklistImportScenario {
    config: ImportConfig,
    union_size: usize,
    fractions: Vec<f64>,
    scheduled_events: u64,
}

impl BlocklistImportScenario {
    /// A scenario with the given shape.
    pub fn new(config: ImportConfig) -> Self {
        BlocklistImportScenario {
            config,
            union_size: 0,
            fractions: Vec::new(),
            scheduled_events: 0,
        }
    }

    /// Size of the circulating union list (after `init`).
    pub fn union_size(&self) -> usize {
        self.union_size
    }

    /// Per-adopter adoption fractions, in importer index order (after
    /// `init`; all `1.0` under [`AdoptionModel::Full`]).
    pub fn adoption_fractions(&self) -> &[f64] {
        &self.fractions
    }

    /// `AdoptWave` events scheduled (after `init`).
    pub fn scheduled_events(&self) -> u64 {
        self.scheduled_events
    }
}

impl Scenario for BlocklistImportScenario {
    fn name(&self) -> &'static str {
        match self.config.adoption {
            AdoptionModel::Full => "blocklist_import_full",
            AdoptionModel::HeavyTail { .. } => "blocklist_import_partial",
        }
    }

    fn init(
        &mut self,
        start: SimTime,
        state: &mut NetworkState,
        queue: &mut EventQueue,
        rng: &mut SmallRng,
    ) {
        if self.config.reset_to_default {
            for i in 0..state.len() {
                state.reset_moderation_default(i);
            }
        }
        // The circulating blocklist: union of every seed *target* reject
        // list (targets survive resets), deduplicated in deterministic
        // instance order.
        let mut seen = std::collections::HashSet::new();
        let mut union: Vec<Domain> = Vec::new();
        for inst in &state.instances {
            if let Some(simple) = inst.target.simple.as_ref() {
                for d in simple.targets(SimpleAction::Reject) {
                    if seen.insert(d.as_str().to_string()) {
                        union.push(d.clone());
                    }
                }
            }
        }
        self.union_size = union.len();
        let importers: Vec<u32> = (0..state.len())
            .filter(|&i| state.instances[i].pleroma)
            .map(|i| i as u32)
            .collect();
        // One shared wave per chunk: a full import schedules it to every
        // importer by refcount bump, exactly how a circulating blocklist
        // is one artifact applied by many admins.
        let waves: Vec<(Arc<RolloutWave>, usize)> = union
            .chunks(self.config.chunk.max(1))
            .map(|c| {
                let mut s = SimplePolicy::new();
                for d in c {
                    s.add_target(SimpleAction::Reject, d.clone());
                }
                (
                    Arc::new(RolloutWave {
                        offset: SimDuration(0),
                        enable: Vec::new(),
                        simple: Some(s),
                    }),
                    c.len(),
                )
            })
            .collect();
        let n = waves.len().max(1) as u64;
        // Per-adopter draws come off the control stream in importer
        // index order — deterministic, and independent of chunking.
        for &i in &importers {
            let fraction = match self.config.adoption {
                AdoptionModel::Full => 1.0,
                AdoptionModel::HeavyTail { alpha } => heavy_tail_fraction(rng.gen(), alpha),
            };
            self.fractions.push(fraction);
            let mut keep_rng = SmallRng::seed_from_u64(rng.gen());
            for (pos, (wave, entries)) in waves.iter().enumerate() {
                let at = start + SimDuration(self.config.window.0 * pos as u64 / n);
                let scheduled = if fraction >= 1.0 {
                    Some(Arc::clone(wave))
                } else {
                    // Fork a per-(adopter, wave) stream, count the keeps,
                    // and only clone a *proper* subset: a fully-kept
                    // chunk shares the circulating wave by refcount bump
                    // and an empty one schedules nothing — with 1-entry
                    // chunks (the flood shape) partial imports therefore
                    // never allocate a policy at all.
                    let stream = keep_rng.gen::<u64>();
                    let mut count_rng = SmallRng::seed_from_u64(stream);
                    let kept = (0..*entries)
                        .filter(|_| count_rng.gen::<f64>() < fraction)
                        .count();
                    if kept == 0 {
                        None
                    } else if kept == *entries {
                        Some(Arc::clone(wave))
                    } else {
                        let mut pick_rng = SmallRng::seed_from_u64(stream);
                        Some(Arc::new(
                            wave.subset_simple(|_, _| pick_rng.gen::<f64>() < fraction),
                        ))
                    }
                };
                if let Some(wave) = scheduled {
                    self.scheduled_events += 1;
                    queue.schedule(at, Event::AdoptWave { instance: i, wave });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{DynamicsConfig, DynamicsEngine};
    use crate::testutil::seeds;

    fn run(config: ImportConfig, ticks: u64) -> (crate::DynamicsTrace, BlocklistImportScenario) {
        let engine_config = DynamicsConfig {
            ticks,
            ..DynamicsConfig::default()
        };
        let mut engine = DynamicsEngine::new(engine_config, seeds());
        let mut scenario = BlocklistImportScenario::new(config);
        let trace = engine.run(&mut scenario);
        (trace, scenario)
    }

    #[test]
    fn heavy_tail_curve_is_pinned() {
        // The exact shape partial imports depend on — change deliberately.
        assert_eq!(heavy_tail_fraction(0.5, 3.0), 0.125);
        assert_eq!(heavy_tail_fraction(1.0, 3.0), 1.0);
        assert_eq!(heavy_tail_fraction(0.0, 3.0), MIN_ADOPTION_FRACTION);
        assert_eq!(heavy_tail_fraction(-1.0, 3.0), MIN_ADOPTION_FRACTION);
        assert_eq!(heavy_tail_fraction(2.0, 3.0), 1.0);
        // Monotone in u.
        let mut last = 0.0;
        for i in 0..=100 {
            let f = heavy_tail_fraction(i as f64 / 100.0, 3.0);
            assert!(f >= last);
            last = f;
        }
        // alpha = 1 is uniform (above the floor).
        assert_eq!(heavy_tail_fraction(0.4, 1.0), 0.4);
        // Out-of-domain alphas stay inside [MIN, 1] instead of blowing
        // past full adoption (negative exponents invert the curve).
        assert_eq!(heavy_tail_fraction(0.5, -2.0), 1.0);
        assert_eq!(heavy_tail_fraction(0.0, -2.0), 1.0);
    }

    #[test]
    fn full_import_converges_everyone_to_the_union() {
        let (trace, scenario) = run(
            ImportConfig {
                chunk: 16,
                window: SimDuration::days(2),
                adoption: AdoptionModel::Full,
                reset_to_default: false,
            },
            18,
        );
        assert!(scenario.union_size() > 0);
        assert!(scenario.adoption_fractions().iter().all(|&f| f == 1.0));
        assert!(trace.ticks.iter().map(|t| t.events).sum::<u64>() >= scenario.scheduled_events());
        // Every Pleroma importer ends with the whole union rejected.
        let last = trace.ticks.last().unwrap();
        assert!(last.adopted > 0);
    }

    #[test]
    fn partial_import_fractions_follow_the_heavy_tail() {
        let (_, scenario) = run(
            ImportConfig {
                chunk: 8,
                window: SimDuration::days(2),
                adoption: AdoptionModel::HeavyTail { alpha: 3.0 },
                reset_to_default: false,
            },
            2,
        );
        let fractions = scenario.adoption_fractions();
        assert!(
            fractions.len() >= 20,
            "the seed world must have enough Pleroma importers ({})",
            fractions.len()
        );
        // Pinned distribution shape: floor respected, right-skewed
        // (mean > median), small typical adoption, heavy tail present.
        assert!(fractions
            .iter()
            .all(|&f| (MIN_ADOPTION_FRACTION..=1.0).contains(&f)));
        let mean = fractions.iter().sum::<f64>() / fractions.len() as f64;
        let mut sorted = fractions.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[sorted.len() / 2];
        assert!(
            median < mean,
            "heavy tail must be right-skewed (median {median:.3} vs mean {mean:.3})"
        );
        assert!(
            (0.05..0.5).contains(&mean),
            "alpha=3 mean adoption should sit near 0.25, got {mean:.3}"
        );
        let small = fractions.iter().filter(|&&f| f <= 0.25).count();
        let large = fractions.iter().filter(|&&f| f >= 0.7).count();
        assert!(large >= 1, "someone imports nearly everything");
        assert!(
            small > fractions.len() / 2,
            "most admins import a sliver ({small}/{})",
            fractions.len()
        );
        assert!(small > large);
    }

    #[test]
    fn partial_import_schedules_fewer_events_than_full() {
        let full = run(
            ImportConfig {
                chunk: 1,
                window: SimDuration::days(2),
                adoption: AdoptionModel::Full,
                reset_to_default: false,
            },
            2,
        )
        .1;
        let partial = run(
            ImportConfig {
                chunk: 1,
                window: SimDuration::days(2),
                adoption: AdoptionModel::HeavyTail { alpha: 3.0 },
                reset_to_default: false,
            },
            2,
        )
        .1;
        assert!(partial.scheduled_events() < full.scheduled_events());
        assert!(partial.scheduled_events() > 0);
    }

    #[test]
    fn partial_import_is_deterministic() {
        let config = || ImportConfig {
            chunk: 4,
            window: SimDuration::days(2),
            adoption: AdoptionModel::HeavyTail { alpha: 3.0 },
            reset_to_default: true,
        };
        let (a, sa) = run(config(), 12);
        let (b, sb) = run(config(), 12);
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a, b);
        assert_eq!(sa.adoption_fractions(), sb.adoption_fractions());
    }

    #[test]
    fn reset_to_default_starts_from_the_null_state() {
        let (trace, _) = run(
            ImportConfig {
                chunk: 16,
                window: SimDuration::days(2),
                adoption: AdoptionModel::HeavyTail { alpha: 3.0 },
                reset_to_default: true,
            },
            12,
        );
        // Tick 0 fires the first chunks inside the control phase, so the
        // cleanest null-state evidence is adoption accounting: only
        // importers ever adopt, and rejections ramp from the imports
        // alone (the seed configs were stripped).
        assert!(trace.ticks.last().unwrap().adopted > 0);
        assert!(trace.total_rejected() > 0);
    }
}
