//! Scenario 4 — toxicity-storm burst workload.
//!
//! The harmful population (instances with rejects against them — the
//! §4.2 targets) multiplies its posting rate for a burst window,
//! driving the receivers' `MrfPipeline::filter_fast` and the
//! Perspective scorer at full rate. This is the engine's saturation
//! workload: the `perf_dynamics` bench runs exactly this scenario and
//! gates on ≥ 1 M post-deliveries/sec through the filter path. The
//! trace shows the exposure spike and how much of it the already-rolled-
//! out reject edges absorb.

use crate::event::{Event, EventQueue};
use crate::scenario::Scenario;
use crate::state::NetworkState;
use fediscope_core::time::{SimDuration, SimTime};
use rand::rngs::SmallRng;

/// Storm shape.
#[derive(Debug, Clone)]
pub struct StormConfig {
    /// When the burst starts, relative to the run start.
    pub start_offset: SimDuration,
    /// Burst length.
    pub duration: SimDuration,
    /// Emission multiplier during the burst.
    pub multiplier: f64,
}

impl Default for StormConfig {
    fn default() -> Self {
        StormConfig {
            start_offset: SimDuration::hours(16),
            duration: SimDuration::days(1),
            multiplier: 8.0,
        }
    }
}

/// The toxicity-storm scenario.
#[derive(Debug, Default)]
pub struct ToxicityStormScenario {
    config: StormConfig,
    stormers: u64,
}

impl ToxicityStormScenario {
    /// A scenario with the given shape.
    pub fn new(config: StormConfig) -> Self {
        ToxicityStormScenario {
            config,
            stormers: 0,
        }
    }

    /// Instances that surge during the burst (after `init`).
    pub fn stormers(&self) -> u64 {
        self.stormers
    }
}

impl Scenario for ToxicityStormScenario {
    fn name(&self) -> &'static str {
        "toxicity_storm"
    }

    fn init(
        &mut self,
        start: SimTime,
        state: &mut NetworkState,
        queue: &mut EventQueue,
        _rng: &mut SmallRng,
    ) {
        let burst_start = start + self.config.start_offset;
        let burst_end = burst_start + self.config.duration;
        for i in 0..state.len() {
            let inst = &state.instances[i];
            // The storm comes from the rejected (harmful) population.
            if inst.rejects_received == 0 || inst.templates.is_empty() {
                continue;
            }
            self.stormers += 1;
            queue.schedule(
                burst_start,
                Event::SetRate {
                    instance: i as u32,
                    rate: self.config.multiplier,
                },
            );
            queue.schedule(
                burst_end,
                Event::SetRate {
                    instance: i as u32,
                    rate: 1.0,
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{DynamicsConfig, DynamicsEngine};
    use crate::testutil::seeds;

    #[test]
    fn burst_spikes_volume_and_exposure() {
        let config = DynamicsConfig {
            ticks: 24, // 4 days: pre-burst, burst (ticks 4..10), post
            ..DynamicsConfig::default()
        };
        let mut engine = DynamicsEngine::new(config, seeds());
        let mut scenario = ToxicityStormScenario::new(StormConfig::default());
        let trace = engine.run(&mut scenario);
        assert!(scenario.stormers() > 0);
        // Ticks 0..4 are pre-burst, 4..10 in-burst, 12.. post-burst.
        let pre = trace.ticks[2].delivered;
        let during = trace.ticks[6].delivered;
        let post = trace.ticks[16].delivered;
        assert!(
            during > pre * 2,
            "burst must multiply volume: pre {pre}, during {during}"
        );
        assert_eq!(pre, post, "rates return to baseline after the burst");
        assert!(
            trace.ticks[6].toxic_exposure > trace.ticks[2].toxic_exposure,
            "the storm is toxic"
        );
        // The seed world's reject edges absorb part of the storm.
        assert!(trace.ticks[6].exposure_prevented > trace.ticks[2].exposure_prevented);
    }
}
