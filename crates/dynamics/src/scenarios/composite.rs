//! Scenario 5 — composition: several scenarios sharing one timeline.
//!
//! The interesting dynamics questions are *interactions*: does a staged
//! MRF rollout keep up with a toxicity storm that erupts during an
//! outage wave? [`Composite`] multiplexes any number of sub-scenarios
//! over one engine run — each seeds its own events and reacts to the
//! merged stream — so storm + churn + rollout run against the same
//! evolving state instead of three disconnected worlds.
//!
//! # Determinism and ordering
//!
//! Two rules make composed runs reproducible and (where semantics
//! allow) independent of registration order:
//!
//! 1. **Per-sub RNG stream splitting.** `init` draws one base value
//!    from the engine's control RNG, then derives each sub-scenario's
//!    private `SmallRng` as `base ⊕ fnv1a(sub.name())`. A sub's draws
//!    therefore never depend on how many draws its siblings made *or*
//!    on its registration position. Same-name duplicates are salted by
//!    per-name occurrence (so their draws stay decorrelated), which
//!    ties a duplicate's stream to its position among its namesakes —
//!    order invariance is promised across *distinct* names only.
//! 2. **Fixed merge order.** Sub-scenarios `init` and observe
//!    `after_event` in registration order, and the event queue's
//!    `(time, seq)` order means same-tick events from different subs
//!    apply in registration order too. That is the documented
//!    tie-break: for the shipped storm/churn/rollout trio the order is
//!    irrelevant (their events commute — they touch disjoint state
//!    fields — and their `after_event` hooks are no-ops), so the trace
//!    is bit-identical under any registration permutation; a *reactive*
//!    sub like the defederation cascade breaks that invariance, because
//!    its imitation draws follow the merged event order. The
//!    registration-order proptests in `tests/determinism.rs` pin
//!    exactly this contract.
//!
//! Scenarios that rewrite state in `init` (rollout strips moderation,
//! churn resets failure modes) do so in registration order as well;
//! the shipped trio touches disjoint fields, so composition order does
//! not change the post-`init` state.

use crate::event::{EventQueue, Scheduled};
use crate::scenario::Scenario;
use crate::state::NetworkState;
use fediscope_core::time::SimTime;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// FNV-1a over a scenario name — the stream-split key.
fn name_stream(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

struct Sub {
    scenario: Box<dyn Scenario>,
    /// Private control stream, split off in `init`.
    rng: Option<SmallRng>,
}

/// Multiplexes several scenarios over one engine run.
#[derive(Default)]
pub struct Composite {
    subs: Vec<Sub>,
}

impl Composite {
    /// An empty composition (a no-op scenario until subs are added).
    pub fn new() -> Self {
        Composite::default()
    }

    /// Builder-style [`push`](Self::push).
    pub fn with(mut self, scenario: Box<dyn Scenario>) -> Self {
        self.push(scenario);
        self
    }

    /// Registers a sub-scenario. Registration order is the merge order:
    /// `init`/`after_event` fan out in this order, and same-tick events
    /// apply in it.
    pub fn push(&mut self, scenario: Box<dyn Scenario>) {
        self.subs.push(Sub {
            scenario,
            rng: None,
        });
    }

    /// Number of registered sub-scenarios.
    pub fn len(&self) -> usize {
        self.subs.len()
    }

    /// True when no sub-scenario is registered.
    pub fn is_empty(&self) -> bool {
        self.subs.is_empty()
    }

    /// Registered sub-scenario names, in merge order.
    pub fn sub_names(&self) -> Vec<&'static str> {
        self.subs.iter().map(|s| s.scenario.name()).collect()
    }
}

impl Scenario for Composite {
    fn name(&self) -> &'static str {
        "composite"
    }

    fn init(
        &mut self,
        start: SimTime,
        state: &mut NetworkState,
        queue: &mut EventQueue,
        rng: &mut SmallRng,
    ) {
        // One draw regardless of sub count or order: the split base.
        let base: u64 = rng.gen();
        // Duplicate names are salted by per-name occurrence so two subs
        // of the same scenario still get decorrelated streams (among
        // same-name duplicates the stream follows registration
        // position, so order invariance only ever holds across
        // *distinct* names — the module-doc contract).
        let mut occurrence: std::collections::HashMap<&str, u64> = std::collections::HashMap::new();
        for sub in &mut self.subs {
            let name = sub.scenario.name();
            let salt = occurrence.entry(name).or_insert(0);
            let seed = base ^ name_stream(name) ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            *salt += 1;
            let mut stream = SmallRng::seed_from_u64(seed);
            sub.scenario.init(start, state, queue, &mut stream);
            sub.rng = Some(stream);
        }
    }

    fn after_event(
        &mut self,
        event: &Scheduled,
        applied: bool,
        state: &NetworkState,
        queue: &mut EventQueue,
        _rng: &mut SmallRng,
    ) {
        // Every sub observes every event (it cannot know which sibling
        // scheduled it), each reacting through its own stream.
        for sub in &mut self.subs {
            let stream = sub.rng.as_mut().expect("init splits the streams");
            sub.scenario
                .after_event(event, applied, state, queue, stream);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{DynamicsConfig, DynamicsEngine};
    use crate::scenarios::{
        ChurnConfig, ChurnScenario, PolicyRolloutScenario, RolloutConfig, StormConfig,
        ToxicityStormScenario,
    };
    use crate::testutil::seeds;

    fn trio() -> Composite {
        Composite::new()
            .with(Box::new(ToxicityStormScenario::new(StormConfig::default())))
            .with(Box::new(ChurnScenario::new(ChurnConfig::default())))
            .with(Box::new(PolicyRolloutScenario::new(
                RolloutConfig::default(),
            )))
    }

    fn run(scenario: &mut Composite, ticks: u64) -> crate::DynamicsTrace {
        let config = DynamicsConfig {
            ticks,
            ..DynamicsConfig::default()
        };
        DynamicsEngine::new(config, seeds()).run(scenario)
    }

    #[test]
    fn composite_superimposes_all_three_dynamics() {
        let mut scenario = trio();
        assert_eq!(scenario.len(), 3);
        assert_eq!(
            scenario.sub_names(),
            vec!["toxicity_storm", "instance_churn", "policy_rollout"]
        );
        let trace = run(&mut scenario, 36);
        let last = trace.ticks.last().unwrap();
        // Churn: the fleet decays to the seeded taxonomy.
        assert!(last.instances_up < trace.ticks[0].instances_up);
        assert!(last.failure_mix.iter().sum::<u64>() > 0);
        // Rollout: adopters converge.
        assert!(last.adopted > 0);
        // Storm: the burst window (ticks 4..10) spikes delivered volume
        // over the pre-burst baseline.
        assert!(trace.ticks[6].delivered > trace.ticks[2].delivered);
        // Deliveries are lost to churn *while* the rollout prevents
        // exposure — the composed interaction the trio exists for.
        assert!(trace.ticks.iter().map(|t| t.failed).sum::<u64>() > 0);
        assert!(trace.total_prevented() > 0.0);
    }

    #[test]
    fn empty_composite_is_steady_state() {
        let mut scenario = Composite::new();
        let trace = run(&mut scenario, 6);
        assert_eq!(trace.ticks.iter().map(|t| t.events).sum::<u64>(), 0);
        assert_eq!(trace.initial_links(), trace.final_links());
    }

    #[test]
    fn same_name_duplicates_get_decorrelated_streams() {
        use std::cell::Cell;
        use std::rc::Rc;

        // A probe that records the first draw of its private stream.
        struct Probe(Rc<Cell<u64>>);
        impl Scenario for Probe {
            fn name(&self) -> &'static str {
                "probe"
            }
            fn init(
                &mut self,
                _start: SimTime,
                _state: &mut NetworkState,
                _queue: &mut EventQueue,
                rng: &mut SmallRng,
            ) {
                self.0.set(rng.gen());
            }
        }

        let draws = || {
            let a = Rc::new(Cell::new(0));
            let b = Rc::new(Cell::new(0));
            let mut composite = Composite::new()
                .with(Box::new(Probe(Rc::clone(&a))))
                .with(Box::new(Probe(Rc::clone(&b))));
            let mut rng = SmallRng::seed_from_u64(7);
            let mut state = NetworkState::from_seeds(seeds());
            let mut queue = EventQueue::new();
            composite.init(
                fediscope_core::time::CAMPAIGN_START,
                &mut state,
                &mut queue,
                &mut rng,
            );
            (a.get(), b.get())
        };
        let (a, b) = draws();
        assert_ne!(a, b, "same-name subs must not share a stream");
        // And the salting is itself deterministic.
        assert_eq!(draws(), (a, b));
    }

    #[test]
    fn trio_is_registration_order_invariant() {
        // Non-reactive subs with commuting events: any permutation
        // produces the bit-identical trace (the module-doc contract).
        let reference = run(&mut trio(), 18);
        let mut reversed = Composite::new()
            .with(Box::new(PolicyRolloutScenario::new(
                RolloutConfig::default(),
            )))
            .with(Box::new(ChurnScenario::new(ChurnConfig::default())))
            .with(Box::new(ToxicityStormScenario::new(StormConfig::default())));
        let got = run(&mut reversed, 18);
        // Scenario name is the composite's own, so whole traces compare.
        assert_eq!(reference.digest(), got.digest());
        assert_eq!(reference, got);
    }
}
