//! Scenario 6 — the delivery-reliability enabler.
//!
//! Real Pleroma never treats a failed inbox POST as terminal: its
//! federator publisher parks the delivery on a retry queue and redrives
//! it on an exponential-backoff schedule, giving up only after repeated
//! permanent failures. This scenario turns the engine's equivalent on:
//! it enables the [`RetryPolicy`] on the network state in `init` and
//! schedules nothing itself — the engine's control phase opens retry
//! chains whenever an instance drops off the network.
//!
//! Enablement is deliberately a *scenario* (not an engine knob): paired
//! experiment arms must share one `DynamicsConfig`, so "retries on" vs
//! "retries off" has to live in the one thing arms are allowed to vary.
//! Compose it with any failure-producing scenario:
//!
//! ```
//! use fediscope_dynamics::scenarios::{ChurnScenario, Composite, ReliabilityScenario};
//! let retry_churn = Composite::new()
//!     .with(Box::new(ReliabilityScenario::default()))
//!     .with(Box::new(ChurnScenario::default()));
//! ```
//!
//! The enabler draws nothing from its control stream and touches no
//! state other scenarios read, so registration order is irrelevant and
//! the composed churn events stay bit-identical to an un-composed
//! churn run.

use crate::event::EventQueue;
use crate::scenario::Scenario;
use crate::state::{NetworkState, RetryPolicy};
use fediscope_core::time::SimTime;
use rand::rngs::SmallRng;

/// Turns the engine's delivery-reliability layer on for the run.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReliabilityScenario {
    policy: RetryPolicy,
}

impl ReliabilityScenario {
    /// An enabler installing the given policy.
    pub fn new(policy: RetryPolicy) -> Self {
        ReliabilityScenario { policy }
    }

    /// The policy this enabler installs.
    pub fn policy(&self) -> RetryPolicy {
        self.policy
    }
}

impl Scenario for ReliabilityScenario {
    fn name(&self) -> &'static str {
        "delivery_reliability"
    }

    fn init(
        &mut self,
        _start: SimTime,
        state: &mut NetworkState,
        _queue: &mut EventQueue,
        _rng: &mut SmallRng,
    ) {
        state.enable_retries(self.policy);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{DynamicsConfig, DynamicsEngine, EngineBuilder};
    use crate::experiment::{Arm, Experiment};
    use crate::scenarios::{ChurnConfig, ChurnScenario, Composite};
    use crate::testutil::{seeds, seeds_arc};

    fn churn_shape() -> ChurnConfig {
        // Plenty of transient episodes so recoveries are guaranteed on
        // the small test world; everything else stays at the defaults
        // (12 h outages against a 1 h-base backoff reaching ~31 h).
        ChurnConfig {
            transient_p: 0.5,
            ..ChurnConfig::default()
        }
    }

    fn config() -> DynamicsConfig {
        // The 4-day death ramp is 24 ticks; give late chains (outage at
        // the ramp edge + ~31 h of backoff) room to settle.
        DynamicsConfig {
            ticks: 36,
            ..DynamicsConfig::default()
        }
    }

    #[test]
    fn enabler_arms_the_state_and_resets_between_runs() {
        let mut engine = DynamicsEngine::new(config(), seeds());
        let mut on = Composite::new()
            .with(Box::new(ReliabilityScenario::default()))
            .with(Box::new(ChurnScenario::new(churn_shape())));
        engine.begin(&mut on);
        assert_eq!(
            engine.state().retry_policy(),
            Some(RetryPolicy::default()),
            "the enabler arms the state in init"
        );
        // A later run without the enabler starts with reliability off —
        // nothing leaks across begin().
        let mut off = ChurnScenario::new(churn_shape());
        engine.begin(&mut off);
        assert_eq!(engine.state().retry_policy(), None);
        assert_eq!(engine.state().pending_retry_count(), 0);
    }

    #[test]
    fn churn_run_with_retries_recovers_and_dead_letters() {
        let mut engine = DynamicsEngine::new(config(), seeds());
        let mut scenario = Composite::new()
            .with(Box::new(ReliabilityScenario::default()))
            .with(Box::new(ChurnScenario::new(churn_shape())));
        let trace = engine.run(&mut scenario);
        assert!(trace.total_retried() > 0, "some attempts must reschedule");
        assert!(
            trace.total_recovered() > 0,
            "12 h outages recover within the backoff reach"
        );
        assert!(
            trace.total_dead_lettered() > 0,
            "permanent seed deaths dead-letter their inbound batches"
        );
        // Settled chains balance: every recovery/dead-letter closed a
        // chain, and what is still open stays on the state.
        let settled = engine.state().recovered_total() + engine.state().dead_letter_total();
        assert_eq!(
            settled,
            trace.total_recovered() + trace.total_dead_lettered()
        );
    }

    #[test]
    fn retry_on_vs_retry_off_arms_attribute_recoveries_per_tick() {
        // The PR-6 acceptance pair: same seed, same config, same churn
        // stream — the arms differ only in the reliability enabler.
        let experiment = Experiment::new(EngineBuilder::new(config(), seeds_arc()))
            .with_arm(Arm::new("churn", || {
                Box::new(Composite::new().with(Box::new(ChurnScenario::new(churn_shape()))))
            }))
            .with_arm(Arm::new("churn_retry", || {
                Box::new(
                    Composite::new()
                        .with(Box::new(ReliabilityScenario::default()))
                        .with(Box::new(ChurnScenario::new(churn_shape()))),
                )
            }))
            .with_baseline("churn");
        let result = experiment.run();
        let off = result.baseline();
        let on = result.arm("churn_retry").unwrap();
        assert_eq!(
            off.trace.total_retried()
                + off.trace.total_recovered()
                + off.trace.total_dead_lettered(),
            0,
            "retry-off arm never touches the reliability layer"
        );
        assert!(on.trace.total_recovered() > 0);
        assert!(on.trace.total_dead_lettered() > 0);
        let delta = result.delta("churn_retry").unwrap();
        // Exact per-tick attribution: with a zero baseline, the delta's
        // reliability columns ARE the arm's — and nothing else moves,
        // because redelivery bookkeeping never feeds back into the
        // failure/link/emission state the measurement phase reads.
        for (td, at) in delta.ticks.iter().zip(&on.trace.ticks) {
            assert_eq!(td.retried, at.retried as i64);
            assert_eq!(td.recovered, at.recovered as i64);
            assert_eq!(td.dead_lettered, at.dead_lettered as i64);
            assert_eq!(td.links, 0);
            assert_eq!(td.instances_up, 0);
            assert_eq!(td.delivered, 0);
            assert_eq!(td.accepted, 0);
            assert_eq!(td.blocked, 0);
            assert_eq!(td.failed, 0);
            assert_eq!(td.toxic_exposure, 0.0);
            assert_eq!(td.exposure_prevented, 0.0);
        }
        assert!(delta.recovered_deliveries() > 0);
        assert!(delta.dead_lettered_deliveries() > 0);
    }
}
