//! Scenario 3 — instance churn replaying the §3 failure taxonomy.
//!
//! The paper found 236 of 1,534 Pleroma instances unreachable: 110×404,
//! 84×403, 24×502, 11×503, 7×410. The generated world assigns those
//! modes statically; this scenario replays them as *deaths over time* —
//! everyone starts healthy, the doomed instances go down in their seed
//! failure mode across a ramp window, and a configurable fraction of
//! healthy instances suffers transient 502/503 outages with recovery.
//! The trace's `failure_mix` converges to exactly the seeded taxonomy,
//! and `failed` counts the deliveries the churn destroyed.

use crate::event::{Event, EventQueue};
use crate::scenario::Scenario;
use crate::state::NetworkState;
use fediscope_core::time::{SimDuration, SimTime};
use fediscope_simnet::FailureMode;
use rand::rngs::SmallRng;
use rand::Rng;

/// Churn shape.
#[derive(Debug, Clone)]
pub struct ChurnConfig {
    /// Window over which the seeded (permanent) deaths are spread.
    pub ramp: SimDuration,
    /// Probability that a healthy instance suffers transient outages.
    pub transient_p: f64,
    /// Length of a transient outage.
    pub outage: SimDuration,
    /// Transient outage+recovery episodes each affected instance
    /// suffers (default 1 — the historical behaviour; event-flood
    /// benches crank it to stress the control phase). Episode start
    /// times are drawn independently across the ramp window, so
    /// episodes of one instance may overlap; a `Recover` always re-arms
    /// the instance, so overlapping windows coalesce (an earlier
    /// episode's recovery ends a later episode's outage early) — total
    /// downtime does *not* scale linearly with `rounds`.
    pub rounds: u32,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            ramp: SimDuration::days(4),
            transient_p: 0.05,
            outage: SimDuration::hours(12),
            rounds: 1,
        }
    }
}

/// The churn scenario.
#[derive(Debug, Default)]
pub struct ChurnScenario {
    config: ChurnConfig,
    permanent_deaths: u64,
    transients: u64,
}

impl ChurnScenario {
    /// A scenario with the given shape.
    pub fn new(config: ChurnConfig) -> Self {
        ChurnScenario {
            config,
            permanent_deaths: 0,
            transients: 0,
        }
    }

    /// Seeded (permanent) deaths scheduled (after `init`).
    pub fn permanent_deaths(&self) -> u64 {
        self.permanent_deaths
    }

    /// Transient outages scheduled (after `init`).
    pub fn transients(&self) -> u64 {
        self.transients
    }
}

impl Scenario for ChurnScenario {
    fn name(&self) -> &'static str {
        "instance_churn"
    }

    fn init(
        &mut self,
        start: SimTime,
        state: &mut NetworkState,
        queue: &mut EventQueue,
        rng: &mut SmallRng,
    ) {
        // Everyone starts alive; the taxonomy is *replayed*, not assumed.
        let doomed: Vec<(u32, FailureMode)> = (0..state.len())
            .filter_map(|i| {
                let mode = state.instances[i].seed_failure;
                (mode != FailureMode::Healthy).then_some((i as u32, mode))
            })
            .collect();
        for i in 0..state.len() {
            state.set_failure(i as u32, FailureMode::Healthy);
        }
        self.permanent_deaths = doomed.len() as u64;
        let n = doomed.len().max(1) as u64;
        for (pos, (i, mode)) in doomed.into_iter().enumerate() {
            let at = start + SimDuration(self.config.ramp.0 * pos as u64 / n);
            queue.schedule(at, Event::GoDown { instance: i, mode });
        }
        // Transient outages on the survivors: 502/503 with recovery,
        // scheduled from the deterministic control RNG.
        for i in 0..state.len() {
            if state.instances[i].seed_failure != FailureMode::Healthy {
                continue;
            }
            if !rng.gen_bool(self.config.transient_p) {
                continue;
            }
            for _ in 0..self.config.rounds.max(1) {
                self.transients += 1;
                let mode = if rng.gen_bool(0.7) {
                    FailureMode::BadGateway
                } else {
                    FailureMode::Unavailable
                };
                let offset = SimDuration(rng.gen_range(0..self.config.ramp.0.max(1)));
                let down_at = start + offset;
                queue.schedule(
                    down_at,
                    Event::GoDown {
                        instance: i as u32,
                        mode,
                    },
                );
                queue.schedule(
                    down_at + self.config.outage,
                    Event::Recover { instance: i as u32 },
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{DynamicsConfig, DynamicsEngine};
    use crate::testutil::seeds;

    fn churn_config() -> DynamicsConfig {
        DynamicsConfig {
            ticks: 36, // 6 days of 4h ticks: past the 4-day ramp + outages
            ..DynamicsConfig::default()
        }
    }

    #[test]
    fn failure_mix_converges_to_the_seed_taxonomy() {
        let mut engine = DynamicsEngine::new(churn_config(), seeds());
        let mut scenario = ChurnScenario::new(ChurnConfig::default());
        let trace = engine.run(&mut scenario);
        assert!(scenario.permanent_deaths() > 0);
        // Tick 0: everyone alive (the ramp's first death fires at t0,
        // so allow up to one early casualty).
        let first = &trace.ticks[0];
        let down0: u64 = first.failure_mix.iter().sum();
        assert!(down0 <= 1, "churn must start from a healthy fleet");
        // Final tick: the taxonomy matches the seeds exactly (all
        // transients have recovered by then).
        let want: Vec<u64> = {
            let s = seeds();
            let mut mix = vec![0u64; 5];
            for &failure in &s.failures {
                if let Some(idx) = crate::trace::failure_mix_index(failure) {
                    mix[idx] += 1;
                }
            }
            mix
        };
        assert_eq!(trace.ticks.last().unwrap().failure_mix, want);
        assert_eq!(
            trace.ticks.last().unwrap().failure_mix.iter().sum::<u64>(),
            scenario.permanent_deaths()
        );
    }

    #[test]
    fn churn_destroys_deliveries() {
        let mut engine = DynamicsEngine::new(churn_config(), seeds());
        let mut scenario = ChurnScenario::new(ChurnConfig::default());
        let trace = engine.run(&mut scenario);
        let failed: u64 = trace.ticks.iter().map(|t| t.failed).sum();
        assert!(failed > 0, "dead receivers must lose deliveries");
        // The fleet shrinks over the ramp.
        assert!(trace.ticks.last().unwrap().instances_up < trace.ticks[0].instances_up);
    }
}
