//! Scenario 2 — defederation/blocklist cascade.
//!
//! Seed blocks come from the generated moderation profiles: every
//! instance whose final config reject-lists a linked peer defederates
//! from it early in the run. Each applied block then propagates along
//! federation links — a neighbor that still federates with both the
//! blocker and the target imitates the block after a delay, with a
//! probability weighted by the blocker's follower mass
//! ([`follower_weight`]): admins copy the lists of instances they
//! trust, and trust follows size — exactly the shared-blocklist dynamic
//! of the follow-up literature. The trace's falling link count is the
//! fragmentation curve.

use crate::event::{Event, EventQueue, Scheduled};
use crate::scenario::Scenario;
use crate::state::NetworkState;
use fediscope_core::mrf::policies::SimpleAction;
use fediscope_core::time::{SimDuration, SimTime};
use rand::rngs::SmallRng;
use rand::Rng;

/// Cascade shape.
#[derive(Debug, Clone)]
pub struct CascadeConfig {
    /// Base probability that a neighbor of a blocker imitates an applied
    /// block (per neighbor, per applied block), at the reference blocker
    /// size — scaled by [`follower_weight`] of the blocker's user count.
    pub imitation_p: f64,
    /// Delay before an imitated block fires.
    pub imitation_delay: SimDuration,
    /// Window over which the seed blocks are spread.
    pub seed_window: SimDuration,
}

/// Blocker size at which [`follower_weight`] is exactly 1.0, i.e.
/// [`CascadeConfig::imitation_p`] applies unscaled.
pub const REFERENCE_FOLLOWERS: u32 = 100;

/// Multiplier on the imitation probability from the *blocker's* user
/// count (the follower proxy): admins copy the blocklists of instances
/// people actually follow, so a block applied by a large curated-list
/// instance propagates harder than the same block from a single-user
/// server. Log-scaled — `ln(1 + users) / ln(1 + REFERENCE_FOLLOWERS)` —
/// and clamped to `[0.05, 2.5]`, so tiny blockers still occasionally
/// propagate and giants cannot push the probability past certainty.
pub fn follower_weight(users: u32) -> f64 {
    let reference = (1.0 + REFERENCE_FOLLOWERS as f64).ln();
    ((1.0 + users as f64).ln() / reference).clamp(0.05, 2.5)
}

/// The per-neighbor imitation probability for a block applied by an
/// instance with `users` registered users.
pub fn imitation_probability(base_p: f64, users: u32) -> f64 {
    (base_p * follower_weight(users)).clamp(0.0, 1.0)
}

impl Default for CascadeConfig {
    fn default() -> Self {
        CascadeConfig {
            imitation_p: 0.3,
            imitation_delay: SimDuration::hours(8),
            seed_window: SimDuration::days(1),
        }
    }
}

/// The defederation-cascade scenario.
#[derive(Debug, Default)]
pub struct DefederationCascadeScenario {
    config: CascadeConfig,
    seed_blocks: u64,
    imitations: u64,
}

impl DefederationCascadeScenario {
    /// A scenario with the given shape.
    pub fn new(config: CascadeConfig) -> Self {
        DefederationCascadeScenario {
            config,
            seed_blocks: 0,
            imitations: 0,
        }
    }

    /// Blocks seeded from the moderation profiles (after `init`).
    pub fn seed_blocks(&self) -> u64 {
        self.seed_blocks
    }

    /// Imitated blocks scheduled so far.
    pub fn imitations(&self) -> u64 {
        self.imitations
    }
}

impl Scenario for DefederationCascadeScenario {
    fn name(&self) -> &'static str {
        "defederation_cascade"
    }

    fn init(
        &mut self,
        start: SimTime,
        state: &mut NetworkState,
        queue: &mut EventQueue,
        _rng: &mut SmallRng,
    ) {
        // Every reject edge of the seed configs that is also a live
        // federation link becomes a seed block, spread over the window.
        // Reciprocal rejects (a↔t) are deduplicated: the undirected link
        // can only fall once, and one block per pair keeps `seed_blocks`
        // equal to the links the seeds alone will sever.
        let mut seen: std::collections::HashSet<(u32, u32)> = std::collections::HashSet::new();
        let mut edges: Vec<(u32, u32)> = Vec::new();
        for a in 0..state.len() {
            let inst = &state.instances[a];
            // Only instances running a defederation-class policy
            // (SimplePolicy / Block / AutoReject) can seed blocks.
            if !inst
                .moderation
                .enabled
                .iter()
                .any(|k| k.severs_federation())
            {
                continue;
            }
            let Some(simple) = inst.moderation.simple.as_ref() else {
                continue;
            };
            for target in simple.targets(SimpleAction::Reject) {
                if let Some(t) = state.index_of(target.as_str()) {
                    let a = a as u32;
                    if state.linked(a, t) && seen.insert((a.min(t), a.max(t))) {
                        edges.push((a, t));
                    }
                }
            }
        }
        self.seed_blocks = edges.len() as u64;
        let n = edges.len().max(1) as u64;
        for (pos, (a, t)) in edges.into_iter().enumerate() {
            let at = start + SimDuration(self.config.seed_window.0 * pos as u64 / n);
            queue.schedule(
                at,
                Event::Defederate {
                    instance: a,
                    target: t,
                },
            );
        }
    }

    fn after_event(
        &mut self,
        event: &Scheduled,
        applied: bool,
        state: &NetworkState,
        queue: &mut EventQueue,
        rng: &mut SmallRng,
    ) {
        let Event::Defederate { instance, target } = &event.event else {
            return;
        };
        if !applied {
            return; // the link was already gone — nothing new to imitate
        }
        // Neighbors that still federate with both the blocker and the
        // target hear about the block and may copy it — with probability
        // weighted by how followed the *blocker* is (big curated-list
        // instances get copied more, §4.2's shared-blocklist dynamic).
        let p = imitation_probability(
            self.config.imitation_p,
            state.instances[*instance as usize].users,
        );
        for &b in state.neighbors(*instance as usize) {
            if b != *target && state.linked(b, *target) && rng.gen_bool(p) {
                self.imitations += 1;
                queue.schedule(
                    event.at + self.config.imitation_delay,
                    Event::Defederate {
                        instance: b,
                        target: *target,
                    },
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{DynamicsConfig, DynamicsEngine};
    use crate::testutil::seeds;

    #[test]
    fn cascade_fragments_the_network() {
        let config = DynamicsConfig {
            ticks: 24,
            ..DynamicsConfig::default()
        };
        let mut engine = DynamicsEngine::new(config, seeds());
        let mut scenario = DefederationCascadeScenario::new(CascadeConfig::default());
        let trace = engine.run(&mut scenario);
        assert!(scenario.seed_blocks() > 0, "seed configs must yield blocks");
        assert!(
            trace.final_links() < trace.initial_links(),
            "links must fall: {} -> {}",
            trace.initial_links(),
            trace.final_links()
        );
        // Link counts are monotonically non-increasing: defederation
        // only ever tears down.
        for w in trace.ticks.windows(2) {
            assert!(w[1].links <= w[0].links);
        }
    }

    #[test]
    fn zero_imitation_stops_at_the_seed_blocks() {
        let config = DynamicsConfig {
            ticks: 24,
            ..DynamicsConfig::default()
        };
        let mut engine = DynamicsEngine::new(config, seeds());
        // Measure from the pre-run state: the first seed block fires
        // inside tick 0's control phase, before the first trace row.
        let before = engine.state().link_count();
        let mut scenario = DefederationCascadeScenario::new(CascadeConfig {
            imitation_p: 0.0,
            ..CascadeConfig::default()
        });
        let trace = engine.run(&mut scenario);
        assert_eq!(scenario.imitations(), 0);
        assert_eq!(
            before - trace.final_links(),
            scenario.seed_blocks(),
            "without imitation exactly the seed edges fall"
        );
    }

    #[test]
    fn follower_weighting_is_pinned() {
        // Exactly 1.0 at the reference size: `imitation_p` is the
        // probability a 100-user blocker's block is copied.
        assert!((follower_weight(REFERENCE_FOLLOWERS) - 1.0).abs() < 1e-12);
        // The formula itself is pinned: ln(1+u)/ln(101).
        let expect = |u: u32| ((1.0 + u as f64).ln() / 101_f64.ln()).clamp(0.05, 2.5);
        for users in [0, 1, 10, 100, 1_800, 17_900, 1_000_000] {
            assert!(
                (follower_weight(users) - expect(users)).abs() < 1e-12,
                "weight({users})"
            );
        }
        // Monotone in the blocker's size, and clamped at both ends.
        assert!(follower_weight(1) < follower_weight(10));
        assert!(follower_weight(10) < follower_weight(1_000));
        assert_eq!(follower_weight(0), 0.05);
        assert_eq!(follower_weight(u32::MAX), 2.5);
        // The effective probability scales with the weight and stays a
        // probability.
        assert!(
            imitation_probability(0.3, 17_900) > imitation_probability(0.3, 1),
            "big blockers must be copied more"
        );
        assert_eq!(imitation_probability(0.0, u32::MAX), 0.0);
        assert_eq!(imitation_probability(1.0, u32::MAX), 1.0);
    }

    #[test]
    fn imitation_amplifies_fragmentation() {
        let run = |p: f64| {
            let config = DynamicsConfig {
                ticks: 24,
                ..DynamicsConfig::default()
            };
            let mut engine = DynamicsEngine::new(config, seeds());
            let mut scenario = DefederationCascadeScenario::new(CascadeConfig {
                imitation_p: p,
                ..CascadeConfig::default()
            });
            let trace = engine.run(&mut scenario);
            trace.initial_links() - trace.final_links()
        };
        assert!(
            run(0.6) > run(0.0),
            "imitation must sever strictly more links"
        );
    }
}
