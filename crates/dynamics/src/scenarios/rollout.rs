//! Scenario 1 — staged MRF policy rollout.
//!
//! Every instance starts from the fresh-install default (`ObjectAge` +
//! `NoOp`, §4.1) and adopts its seed-world moderation profile in waves:
//! the heaviest moderators (largest reject lists — the curated-blocklist
//! crowd) move first, in cohorts, each instance splitting its final
//! config into [`fediscope_core::rollout::PolicyRollout`] waves. The
//! trace then answers the question the paper's static snapshot cannot:
//! how much toxic exposure does each stage of adoption actually prevent?

use crate::event::{Event, EventQueue};
use crate::scenario::Scenario;
use crate::state::NetworkState;
use fediscope_core::rollout::PolicyRollout;
use fediscope_core::time::{SimDuration, SimTime};
use rand::rngs::SmallRng;

/// Rollout shape.
#[derive(Debug, Clone)]
pub struct RolloutConfig {
    /// Waves each instance splits its target config into.
    pub waves: usize,
    /// Spacing between one instance's waves.
    pub wave_interval: SimDuration,
    /// Number of adoption cohorts (instances are dealt into cohorts in
    /// adoption order; cohort `c` starts `c × cohort_stagger` in).
    pub cohorts: usize,
    /// Delay between successive cohorts' starts.
    pub cohort_stagger: SimDuration,
}

impl Default for RolloutConfig {
    fn default() -> Self {
        RolloutConfig {
            waves: 3,
            wave_interval: SimDuration::hours(8),
            cohorts: 5,
            cohort_stagger: SimDuration::hours(12),
        }
    }
}

/// The staged-rollout scenario.
#[derive(Debug, Default)]
pub struct PolicyRolloutScenario {
    config: RolloutConfig,
    adopters: usize,
}

impl PolicyRolloutScenario {
    /// A scenario with the given shape.
    pub fn new(config: RolloutConfig) -> Self {
        PolicyRolloutScenario {
            config,
            adopters: 0,
        }
    }

    /// Instances scheduled to adopt (available after `init`).
    pub fn adopters(&self) -> usize {
        self.adopters
    }
}

impl Scenario for PolicyRolloutScenario {
    fn name(&self) -> &'static str {
        "policy_rollout"
    }

    fn init(
        &mut self,
        start: SimTime,
        state: &mut NetworkState,
        queue: &mut EventQueue,
        _rng: &mut SmallRng,
    ) {
        // Everyone back to the fresh install.
        for i in 0..state.len() {
            state.reset_moderation_default(i);
        }
        // Adoption order: the canonical `ScenarioSeeds::adoption_order`
        // (heaviest final reject lists first, ties by index), carried on
        // the state — deterministic without touching the RNG.
        let order: Vec<u32> = state.adoption_order().to_vec();
        self.adopters = order.len();
        let cohorts = self.config.cohorts.max(1);
        for (pos, i) in order.into_iter().enumerate() {
            let cohort = pos * cohorts / self.adopters.max(1);
            let cohort_start = start + SimDuration(self.config.cohort_stagger.0 * cohort as u64);
            let rollout = PolicyRollout::staged(
                &state.instances[i as usize].target,
                self.config.waves,
                self.config.wave_interval,
            );
            for wave in rollout.waves {
                let at = cohort_start + wave.offset;
                queue.schedule(
                    at,
                    Event::AdoptWave {
                        instance: i,
                        wave: std::sync::Arc::new(wave),
                    },
                );
            }
        }
    }
}

/// The counterfactual null arm: every instance is stripped to the
/// fresh-install default — exactly the state a [`PolicyRolloutScenario`]
/// starts from — and *nothing is ever adopted*. The "admins do nothing"
/// world of the *Will Admins Cope?* comparison: pairing this against a
/// rollout arm in a [`crate::Experiment`] isolates what adoption itself
/// prevents, because both arms share identical initial moderation and
/// identical traffic.
#[derive(Debug, Default)]
pub struct InactionScenario;

impl Scenario for InactionScenario {
    fn name(&self) -> &'static str {
        "inaction"
    }

    fn init(
        &mut self,
        _start: SimTime,
        state: &mut NetworkState,
        _queue: &mut EventQueue,
        _rng: &mut SmallRng,
    ) {
        // The same strip a rollout performs — and then silence.
        for i in 0..state.len() {
            state.reset_moderation_default(i);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{DynamicsConfig, DynamicsEngine};
    use crate::testutil::seeds;

    #[test]
    fn inaction_never_adopts() {
        let config = DynamicsConfig {
            ticks: 8,
            ..DynamicsConfig::default()
        };
        let mut engine = DynamicsEngine::new(config, seeds());
        let trace = engine.run(&mut InactionScenario);
        assert_eq!(trace.ticks.iter().map(|t| t.events).sum::<u64>(), 0);
        assert!(trace.ticks.iter().all(|t| t.adopted == 0));
        // Stripped pipelines still run the fresh-install defaults, which
        // reject nothing by domain: exposure flows freely.
        assert!(trace.total_exposure() > 0.0);
    }

    #[test]
    fn rollout_ramps_rejections_up() {
        let config = DynamicsConfig {
            ticks: 30,
            ..DynamicsConfig::default()
        };
        let mut engine = DynamicsEngine::new(config, seeds());
        let mut scenario = PolicyRolloutScenario::new(RolloutConfig::default());
        let trace = engine.run(&mut scenario);
        assert!(scenario.adopters() > 0);
        // Tick 0 fires the first cohort's first wave inside the control
        // phase, so some rejects may exist immediately; but the late
        // trace must reject strictly more than the early one, and end
        // with every adopter done.
        let early: u64 = trace.ticks[..5].iter().map(|t| t.rejected).sum();
        let late: u64 = trace.ticks[trace.ticks.len() - 5..]
            .iter()
            .map(|t| t.rejected)
            .sum();
        assert!(
            late > early,
            "adoption must ramp rejections: early {early}, late {late}"
        );
        assert_eq!(
            trace.ticks.last().unwrap().adopted,
            scenario.adopters() as u64
        );
        assert!(trace.total_prevented() > 0.0);
    }

    #[test]
    fn fully_rolled_out_config_matches_target() {
        let config = DynamicsConfig {
            ticks: 40,
            ..DynamicsConfig::default()
        };
        let mut engine = DynamicsEngine::new(config, seeds());
        let mut scenario = PolicyRolloutScenario::new(RolloutConfig::default());
        engine.run(&mut scenario);
        use fediscope_core::mrf::policies::SimpleAction;
        for inst in &engine.state().instances {
            let want = inst
                .target
                .simple
                .as_ref()
                .map(|s| s.targets(SimpleAction::Reject).len())
                .unwrap_or(0);
            let got = inst
                .moderation
                .simple
                .as_ref()
                .map(|s| s.targets(SimpleAction::Reject).len())
                .unwrap_or(0);
            assert_eq!(got, want, "{} must converge to its target", inst.domain);
        }
    }
}
