//! Counterfactual experiments: paired arms over one shared world.
//!
//! The engine answers "what does this scenario do?"; an [`Experiment`]
//! answers the *causal* question — "what did the intervention change?"
//! — by running N [`Arm`]s (named scenario factories) against engines
//! stamped from one [`EngineBuilder`]: identical seed, identical tick
//! budget, identical world (shared `Arc<ScenarioSeeds>`), different
//! scenario per arm. Because every per-arm run is bit-reproducible on
//! its own, the paired per-tick differences ([`TraceDelta`]) are exact
//! counterfactuals, not noise estimates: the same sender would have
//! drawn the same posts in every arm, so any delta is attributable to
//! the arms' diverging moderation state.
//!
//! # Determinism contract
//!
//! The harness adds **zero behavioural drift**: an arm's trace is
//! bit-identical to a standalone [`DynamicsEngine::run`] of the same
//! scenario over the same seeds and config — at any `FEDISCOPE_THREADS`
//! and regardless of arm registration order (arms share nothing mutable;
//! execution across the rayon pool only decides *when* an arm runs,
//! never what it computes). `tests/experiment_identity.rs` proptests
//! exactly this at 1/2/8 workers under arm-order permutation.

use crate::delta::TraceDelta;
use crate::engine::{DynamicsEngine, EngineBuilder};
use crate::scenario::Scenario;
use crate::sink::EventSink;
use crate::state::NetworkState;
use crate::trace::DynamicsTrace;
use rayon::prelude::*;
use serde::Serialize;

/// Produces a fresh scenario per run (arms own their scenario state).
type ScenarioFactory = Box<dyn Fn() -> Box<dyn Scenario> + Send + Sync>;

/// Produces an [`EventSink`] wired to a freshly built arm state.
type SinkFactory = Box<dyn Fn(&NetworkState) -> Box<dyn EventSink> + Send + Sync>;

/// One experimental arm: a name and the scenario it runs.
///
/// The factory is called once per [`Experiment::run`] so the scenario's
/// internal state (adoption counters, scheduled cohorts) never leaks
/// between runs or arms.
pub struct Arm {
    name: String,
    scenario: ScenarioFactory,
    sink: Option<SinkFactory>,
}

impl Arm {
    /// An arm running the scenario `factory` produces.
    pub fn new(
        name: impl Into<String>,
        factory: impl Fn() -> Box<dyn Scenario> + Send + Sync + 'static,
    ) -> Self {
        Arm {
            name: name.into(),
            scenario: Box::new(factory),
            sink: None,
        }
    }

    /// Attaches a per-run [`EventSink`] factory (e.g. a
    /// [`crate::LiveNetBridge`] over the arm's own `SimNet`). The sink
    /// observes, never feeds back, so the determinism contract holds
    /// with or without it.
    pub fn with_sink(
        mut self,
        factory: impl Fn(&NetworkState) -> Box<dyn EventSink> + Send + Sync + 'static,
    ) -> Self {
        self.sink = Some(Box::new(factory));
        self
    }

    /// The arm's name (must be unique within an experiment — it is the
    /// baseline designator and the delta-table label).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Runs this arm on a fresh engine from `builder`.
    fn run(&self, builder: &EngineBuilder) -> ArmRun {
        let mut engine: DynamicsEngine = builder.build();
        if let Some(sink) = &self.sink {
            engine.attach_sink(sink(engine.state()));
        }
        let mut scenario = (self.scenario)();
        let trace = engine.run(scenario.as_mut());
        ArmRun {
            name: self.name.clone(),
            trace,
        }
    }
}

/// A paired-arm experiment over one shared world.
pub struct Experiment {
    builder: EngineBuilder,
    arms: Vec<Arm>,
    baseline: Option<String>,
}

impl Experiment {
    /// An experiment whose arms all run engines from `builder`.
    pub fn new(builder: EngineBuilder) -> Self {
        Experiment {
            builder,
            arms: Vec::new(),
            baseline: None,
        }
    }

    /// Registers an arm (builder style).
    ///
    /// # Panics
    ///
    /// On a duplicate arm name — names designate baselines and label
    /// deltas, so they must be unique.
    pub fn with_arm(mut self, arm: Arm) -> Self {
        self.push(arm);
        self
    }

    /// Registers an arm. Panics on a duplicate name.
    pub fn push(&mut self, arm: Arm) {
        assert!(
            self.arms.iter().all(|a| a.name != arm.name),
            "duplicate arm name {:?}",
            arm.name
        );
        self.arms.push(arm);
    }

    /// Designates the baseline arm by name (builder style). Without a
    /// designation the first registered arm is the baseline.
    pub fn with_baseline(mut self, name: impl Into<String>) -> Self {
        self.baseline = Some(name.into());
        self
    }

    /// Number of registered arms.
    pub fn len(&self) -> usize {
        self.arms.len()
    }

    /// True when no arm is registered.
    pub fn is_empty(&self) -> bool {
        self.arms.is_empty()
    }

    /// Registered arm names, in registration order.
    pub fn arm_names(&self) -> Vec<&str> {
        self.arms.iter().map(|a| a.name()).collect()
    }

    /// The shared engine builder.
    pub fn builder(&self) -> &EngineBuilder {
        &self.builder
    }

    /// Runs every arm across the rayon pool and returns the paired
    /// result. Results land in registration order regardless of which
    /// worker finished first; each arm's trace is bit-identical to a
    /// standalone run of its scenario (the zero-drift contract).
    ///
    /// # Panics
    ///
    /// When no arm is registered, or the designated baseline name
    /// matches no arm.
    pub fn run(&self) -> ExperimentResult {
        assert!(
            !self.arms.is_empty(),
            "an experiment needs at least one arm"
        );
        let baseline = match &self.baseline {
            None => 0,
            Some(name) => self
                .arms
                .iter()
                .position(|a| &a.name == name)
                .unwrap_or_else(|| panic!("baseline arm {name:?} is not registered")),
        };
        let builder = &self.builder;
        let arms: Vec<ArmRun> = self.arms.par_iter().map(|arm| arm.run(builder)).collect();
        ExperimentResult {
            seed: self.builder.config().seed,
            baseline,
            arms,
        }
    }
}

/// One arm's completed run.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ArmRun {
    /// The arm name.
    pub name: String,
    /// The arm's trace — bit-identical to a standalone run of the same
    /// scenario over the same seeds and config.
    pub trace: DynamicsTrace,
}

/// Every arm's trace plus the baseline designation.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ExperimentResult {
    /// The shared engine seed.
    pub seed: u64,
    /// Index of the baseline arm in [`arms`](Self::arms).
    pub baseline: usize,
    /// Arm runs, in registration order.
    pub arms: Vec<ArmRun>,
}

impl ExperimentResult {
    /// The baseline arm's run.
    pub fn baseline(&self) -> &ArmRun {
        &self.arms[self.baseline]
    }

    /// The named arm's run.
    pub fn arm(&self, name: &str) -> Option<&ArmRun> {
        self.arms.iter().find(|a| a.name == name)
    }

    /// Pairs `arm` against the baseline, labelling the delta with *arm*
    /// names (the experiment's vocabulary) rather than the scenario
    /// names inside the traces — two arms may run the same scenario
    /// under different knobs, and the arm name is what distinguishes
    /// them.
    fn paired(&self, arm: &ArmRun) -> TraceDelta {
        let baseline = self.baseline();
        let mut delta = TraceDelta::paired(&baseline.trace, &arm.trace);
        delta.baseline = baseline.name.clone();
        delta.arm = arm.name.clone();
        delta
    }

    /// Paired per-tick deltas of every non-baseline arm against the
    /// baseline, in registration order, labelled by arm name.
    pub fn deltas(&self) -> Vec<TraceDelta> {
        self.arms
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != self.baseline)
            .map(|(_, arm)| self.paired(arm))
            .collect()
    }

    /// The named arm's paired delta against the baseline (`None` for
    /// unknown arms and for the baseline itself).
    pub fn delta(&self, name: &str) -> Option<TraceDelta> {
        if self.baseline().name == name {
            return None;
        }
        self.arm(name).map(|arm| self.paired(arm))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::DynamicsConfig;
    use crate::scenarios::{InactionScenario, PolicyRolloutScenario, RolloutConfig};
    use crate::testutil::seeds_arc;

    fn builder(ticks: u64) -> EngineBuilder {
        let config = DynamicsConfig {
            ticks,
            ..DynamicsConfig::default()
        };
        EngineBuilder::new(config, seeds_arc())
    }

    fn rollout_vs_inaction(ticks: u64) -> Experiment {
        Experiment::new(builder(ticks))
            .with_arm(Arm::new("inaction", || Box::new(InactionScenario)))
            .with_arm(Arm::new("rollout", || {
                Box::new(PolicyRolloutScenario::new(RolloutConfig::default()))
            }))
            .with_baseline("inaction")
    }

    #[test]
    fn rollout_prevents_exposure_vs_inaction() {
        let result = rollout_vs_inaction(24).run();
        assert_eq!(result.baseline().name, "inaction");
        assert_eq!(result.arms.len(), 2);
        let deltas = result.deltas();
        assert_eq!(deltas.len(), 1);
        let delta = &deltas[0];
        // Deltas speak the experiment's vocabulary: arm names, not the
        // scenario names embedded in the traces.
        assert_eq!(delta.baseline, "inaction");
        assert_eq!(delta.arm, "rollout");
        // The rollout blocks deliveries the inaction baseline accepts,
        // and keeps toxic mass out of timelines.
        assert!(delta.blocked_deliveries() > 0);
        assert!(delta.prevented_exposure() > 0.0);
        // Prevention accrues: the cumulative curve is non-decreasing
        // once adoption starts, and ends at the total.
        let cumulative = delta.cumulative_prevented();
        assert!(
            (cumulative.last().unwrap() - delta.prevented_exposure()).abs() < 1e-9,
            "cumulative curve must end at the total"
        );
        // Identical traffic in both arms: same deliveries tick by tick
        // (neither arm churns or storms), so the delivered delta is 0.
        assert!(delta.ticks.iter().all(|t| t.delivered == 0));
    }

    #[test]
    fn arm_traces_match_standalone_runs() {
        let result = rollout_vs_inaction(12).run();
        let b = builder(12);
        let mut standalone_engine = DynamicsEngine::new(b.config().clone(), b.seeds());
        let mut scenario = PolicyRolloutScenario::new(RolloutConfig::default());
        let standalone = standalone_engine.run(&mut scenario);
        let arm = result.arm("rollout").unwrap();
        assert_eq!(arm.trace.digest(), standalone.digest());
        assert_eq!(arm.trace, standalone);
    }

    #[test]
    fn default_baseline_is_the_first_arm() {
        let result = Experiment::new(builder(6))
            .with_arm(Arm::new("a", || Box::new(InactionScenario)))
            .with_arm(Arm::new("b", || Box::new(InactionScenario)))
            .run();
        assert_eq!(result.baseline, 0);
        assert_eq!(result.baseline().name, "a");
        // Two arms of the same scenario: deltas are exactly zero.
        let delta = result.delta("b").unwrap();
        assert_eq!(delta.blocked_deliveries(), 0);
        assert_eq!(delta.prevented_exposure(), 0.0);
        // The baseline has no delta against itself.
        assert!(result.delta("a").is_none());
    }

    #[test]
    #[should_panic(expected = "duplicate arm name")]
    fn duplicate_arm_names_are_rejected() {
        let _ = Experiment::new(builder(6))
            .with_arm(Arm::new("a", || Box::new(InactionScenario)))
            .with_arm(Arm::new("a", || Box::new(InactionScenario)));
    }

    #[test]
    #[should_panic(expected = "is not registered")]
    fn unknown_baseline_is_rejected() {
        let _ = Experiment::new(builder(6))
            .with_arm(Arm::new("a", || Box::new(InactionScenario)))
            .with_baseline("nope")
            .run();
    }
}
