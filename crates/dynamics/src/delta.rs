//! Paired per-tick trace differences — the counterfactual observable.
//!
//! A single [`DynamicsTrace`] answers "what happened"; the paper's
//! causal question (§4–§5: how much harmful exposure do MRF policies
//! actually *prevent*?) needs "what happened *relative to the world
//! where the policy never shipped*". [`TraceDelta`] computes that:
//! given two traces of the **same seed and tick budget** — a designated
//! baseline arm and a treatment arm — it pairs the ticks and diffs
//! every per-tick metric, so prevention is attributed tick by tick
//! instead of eyeballed across end-of-run totals.
//!
//! # Sign convention
//!
//! Every [`TickDelta`] field is **arm − baseline**. A rollout arm
//! compared against a no-rollout baseline therefore shows *negative*
//! `toxic_exposure` (the arm exposed less) and *positive* `blocked`
//! (the arm rejected more); the accessor
//! [`TraceDelta::prevented_exposure`] flips the sign once so the
//! headline number reads positive.
//!
//! Pairing is only meaningful under the [`crate::Experiment`] contract:
//! identical engine seed, tick budget and world. [`TraceDelta::paired`]
//! asserts both, so a mispaired diff fails loudly instead of producing
//! a plausible-looking artifact.

use crate::trace::{DynamicsTrace, TickTrace};
use fediscope_core::time::SimTime;
use serde::Serialize;

/// One tick's paired difference, every field arm − baseline.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TickDelta {
    /// Tick index (0-based, identical in both traces).
    pub tick: u64,
    /// Logical time of the tick.
    pub at: SimTime,
    /// Δ live federation links.
    pub links: i64,
    /// Δ instances answering the network.
    pub instances_up: i64,
    /// Δ instances that changed moderation since the run began.
    pub adopted: i64,
    /// Δ deliveries attempted.
    pub delivered: i64,
    /// Δ deliveries that passed the receiver's MRF pipeline.
    pub accepted: i64,
    /// Δ deliveries rejected (blocked) by MRF pipelines.
    pub blocked: i64,
    /// Δ deliveries lost to down receivers.
    pub failed: i64,
    /// Δ accepted toxic mass. Negative when the arm exposed users to
    /// less toxicity than the baseline.
    pub toxic_exposure: f64,
    /// Δ rejected toxic mass.
    pub exposure_prevented: f64,
    /// Δ retry attempts that rescheduled (zero unless an arm enables
    /// the reliability layer).
    pub retried: i64,
    /// Δ delivery batches redelivered after recovery.
    pub recovered: i64,
    /// Δ delivery batches dead-lettered.
    pub dead_lettered: i64,
    /// Δ down instances per §3 failure slot (`[404, 403, 502, 503,
    /// 410]`).
    pub failure_mix: Vec<i64>,
}

impl TickDelta {
    /// Toxic mass this tick of the baseline run that the arm kept out
    /// of timelines: `baseline exposure − arm exposure`, the positive
    /// reading of [`toxic_exposure`](Self::toxic_exposure).
    pub fn prevented_vs_baseline(&self) -> f64 {
        -self.toxic_exposure
    }
}

/// A whole paired comparison: one [`TickDelta`] per tick.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TraceDelta {
    /// Name of the baseline arm (the subtrahend).
    pub baseline: String,
    /// Name of the compared arm (the minuend).
    pub arm: String,
    /// The shared engine seed both traces ran under.
    pub seed: u64,
    /// Per-tick differences, in tick order.
    pub ticks: Vec<TickDelta>,
}

impl TraceDelta {
    /// Diffs `arm` against `baseline`, tick by tick.
    ///
    /// # Panics
    ///
    /// When the traces are not a valid pair: different seeds or
    /// different tick counts (arms of one [`crate::Experiment`] always
    /// satisfy both).
    pub fn paired(baseline: &DynamicsTrace, arm: &DynamicsTrace) -> TraceDelta {
        assert_eq!(
            baseline.seed, arm.seed,
            "paired traces must share the engine seed ({} vs {})",
            baseline.seed, arm.seed
        );
        assert_eq!(
            baseline.ticks.len(),
            arm.ticks.len(),
            "paired traces must share the tick budget ({} vs {} ticks)",
            baseline.ticks.len(),
            arm.ticks.len()
        );
        let ticks = baseline
            .ticks
            .iter()
            .zip(&arm.ticks)
            .map(|(b, a)| Self::tick_delta(b, a))
            .collect();
        TraceDelta {
            baseline: baseline.scenario.clone(),
            arm: arm.scenario.clone(),
            seed: arm.seed,
            ticks,
        }
    }

    fn tick_delta(b: &TickTrace, a: &TickTrace) -> TickDelta {
        let d = |x: u64, y: u64| x as i64 - y as i64;
        TickDelta {
            tick: a.tick,
            at: a.at,
            links: d(a.links, b.links),
            instances_up: d(a.instances_up, b.instances_up),
            adopted: d(a.adopted, b.adopted),
            delivered: d(a.delivered, b.delivered),
            accepted: d(a.accepted, b.accepted),
            blocked: d(a.rejected, b.rejected),
            failed: d(a.failed, b.failed),
            toxic_exposure: a.toxic_exposure - b.toxic_exposure,
            exposure_prevented: a.exposure_prevented - b.exposure_prevented,
            retried: d(a.retried, b.retried),
            recovered: d(a.recovered, b.recovered),
            dead_lettered: d(a.dead_lettered, b.dead_lettered),
            failure_mix: a
                .failure_mix
                .iter()
                .zip(&b.failure_mix)
                .map(|(&x, &y)| x as i64 - y as i64)
                .collect(),
        }
    }

    /// Total toxic mass the arm kept out relative to the baseline
    /// (positive = the arm's users saw less toxicity).
    pub fn prevented_exposure(&self) -> f64 {
        self.ticks.iter().map(|t| t.prevented_vs_baseline()).sum()
    }

    /// Total extra deliveries the arm's pipelines blocked relative to
    /// the baseline.
    pub fn blocked_deliveries(&self) -> i64 {
        self.ticks.iter().map(|t| t.blocked).sum()
    }

    /// Δ live federation links at the final tick — the fragmentation
    /// cost the arm paid (negative = the arm severed more links).
    pub fn final_links(&self) -> i64 {
        self.ticks.last().map(|t| t.links).unwrap_or(0)
    }

    /// Total extra delivery batches the arm redelivered after receiver
    /// recovery, relative to the baseline — the reliability layer's
    /// headline gain under churn.
    pub fn recovered_deliveries(&self) -> i64 {
        self.ticks.iter().map(|t| t.recovered).sum()
    }

    /// Total extra delivery batches the arm dead-lettered relative to
    /// the baseline — what even retries could not save.
    pub fn dead_lettered_deliveries(&self) -> i64 {
        self.ticks.iter().map(|t| t.dead_lettered).sum()
    }

    /// Running per-tick cumulative prevented exposure
    /// ([`TickDelta::prevented_vs_baseline`] partial sums) — the curve
    /// a rollout scenario is after: how prevention accrues as waves
    /// land.
    pub fn cumulative_prevented(&self) -> Vec<f64> {
        let mut acc = 0.0;
        self.ticks
            .iter()
            .map(|t| {
                acc += t.prevented_vs_baseline();
                acc
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(scenario: &str, seed: u64, exposures: &[f64], rejected: &[u64]) -> DynamicsTrace {
        let ticks = exposures
            .iter()
            .zip(rejected)
            .enumerate()
            .map(|(i, (&exposure, &rej))| TickTrace {
                tick: i as u64,
                at: SimTime(1000 + i as u64 * 100),
                links: 50 - i as u64,
                instances_up: 40,
                adopted: i as u64,
                events: 1,
                delivered: 100,
                accepted: 100 - rej,
                rejected: rej,
                failed: 2,
                rejected_authors: rej.min(3),
                toxic_exposure: exposure,
                exposure_prevented: rej as f64 * 0.5,
                retried: rej / 2,
                recovered: rej / 5,
                dead_lettered: rej / 10,
                failure_mix: vec![i as u64, 0, 0, 0, 0],
                per_instance_exposure: vec![exposure],
            })
            .collect();
        DynamicsTrace {
            scenario: scenario.into(),
            seed,
            ticks,
        }
    }

    #[test]
    fn paired_diffs_tick_by_tick() {
        let baseline = trace("inaction", 7, &[4.0, 6.0, 8.0], &[0, 0, 0]);
        let arm = trace("rollout", 7, &[4.0, 3.0, 1.0], &[0, 10, 25]);
        let delta = TraceDelta::paired(&baseline, &arm);
        assert_eq!(delta.baseline, "inaction");
        assert_eq!(delta.arm, "rollout");
        assert_eq!(delta.ticks.len(), 3);
        // Tick 0 is identical; the rollout has not landed yet.
        assert_eq!(delta.ticks[0].blocked, 0);
        assert!((delta.ticks[0].toxic_exposure).abs() < 1e-12);
        // Tick 2: 25 more blocked, 7.0 less exposure.
        assert_eq!(delta.ticks[2].blocked, 25);
        assert!((delta.ticks[2].toxic_exposure - (-7.0)).abs() < 1e-12);
        assert!((delta.ticks[2].prevented_vs_baseline() - 7.0).abs() < 1e-12);
        // Totals and the cumulative curve.
        assert!((delta.prevented_exposure() - 10.0).abs() < 1e-12);
        assert_eq!(delta.blocked_deliveries(), 35);
        let cumulative = delta.cumulative_prevented();
        assert!((cumulative[0] - 0.0).abs() < 1e-12);
        assert!((cumulative[1] - 3.0).abs() < 1e-12);
        assert!((cumulative[2] - 10.0).abs() < 1e-12);
        // The reliability columns diff like everything else: the arm's
        // per-tick retried/recovered/dead-lettered minus the baseline's
        // (all zero here), with run totals on the accessors.
        assert_eq!(delta.ticks[2].retried, 12);
        assert_eq!(delta.ticks[2].recovered, 5);
        assert_eq!(delta.ticks[2].dead_lettered, 2);
        assert_eq!(delta.recovered_deliveries(), 7);
        assert_eq!(delta.dead_lettered_deliveries(), 3);
        // Same link trajectory in both runs: flat link delta.
        assert_eq!(delta.final_links(), 0);
        // Arm − baseline of identical failure ramps is zero per slot.
        assert_eq!(delta.ticks[2].failure_mix, vec![0, 0, 0, 0, 0]);
    }

    #[test]
    fn identical_traces_have_zero_delta() {
        let a = trace("x", 3, &[1.0, 2.0], &[5, 6]);
        let delta = TraceDelta::paired(&a, &a.clone());
        assert!(delta.ticks.iter().all(|t| {
            t.links == 0
                && t.delivered == 0
                && t.blocked == 0
                && t.toxic_exposure == 0.0
                && t.exposure_prevented == 0.0
        }));
        assert_eq!(delta.prevented_exposure(), 0.0);
    }

    #[test]
    #[should_panic(expected = "tick budget")]
    fn mismatched_tick_budgets_refuse_to_pair() {
        let a = trace("a", 1, &[1.0], &[0]);
        let b = trace("b", 1, &[1.0, 2.0], &[0, 0]);
        TraceDelta::paired(&a, &b);
    }

    #[test]
    #[should_panic(expected = "engine seed")]
    fn mismatched_seeds_refuse_to_pair() {
        let a = trace("a", 1, &[1.0], &[0]);
        let b = trace("b", 2, &[1.0], &[0]);
        TraceDelta::paired(&a, &b);
    }
}
