//! The discrete-event engine: a control phase that applies events in a
//! total order, and a measurement phase that fans out per instance.
//!
//! # Determinism
//!
//! Three properties make a run bit-reproducible at any thread count:
//!
//! 1. **Total event order.** The control phase is single-threaded and
//!    consumes the queue in `(time, sequence)` order; all state
//!    mutation happens here.
//! 2. **Scheduling-independent randomness.** The measurement phase
//!    derives a fresh RNG per `(seed, tick, sender)` — never from a
//!    shared stream — so which worker processes which instance cannot
//!    change a single draw.
//! 3. **Ordered reduction.** Per-instance metrics are collected into a
//!    vector in instance order and summed sequentially; the f64
//!    accumulation order is therefore fixed regardless of how the rayon
//!    pool chunked the work.
//!
//! # The two-stage (sender-majorized) measurement phase
//!
//! [`delivery_seed`] is receiver-independent: every receiver replays the
//! *same* emission stream for a given `(seed, tick, sender)`. The default
//! measurement path ([`MeasureMode::Batched`]) exploits that:
//!
//! - **Stage 1 — parallel over senders.** Each sender's tick emissions
//!   are drawn exactly once into a [`SenderBatch`]: run-length groups of
//!   `(template slot, draw count)` in draw order, plus one memoized
//!   `scorer.analyze` toxicity per *distinct* template. Scorer calls drop
//!   from O(edges × emissions) to O(senders × distinct templates).
//! - **Stage 2 — parallel over receivers.** Each up receiver consumes its
//!   neighbors' batches in the same neighbor order and the same draw
//!   order as the per-post path. MRF verdicts are memoized per
//!   `(receiver, sender, distinct template)` and obtained clone-free via
//!   [`MrfPipeline::filter_fast_ref`]; only a pipeline that would
//!   actually rewrite *this* activity falls back to the cloning path.
//!
//! Bit-identity with the reference path holds because the draws are the
//! same RNG stream, integer counters are multiplied by run length (exact),
//! and the f64 exposure columns still accumulate one addition per
//! emission in draw order. The per-post path is retained as
//! [`MeasureMode::Reference`] (env: `FEDISCOPE_MEASURE=reference`) and
//! serves as the differential oracle in tests.
//!
//! [`MrfPipeline::filter_fast_ref`]: fediscope_core::mrf::MrfPipeline::filter_fast_ref

use crate::event::{Event, EventQueue};
use crate::scenario::Scenario;
use crate::sink::EventSink;
use crate::state::{NetworkState, RetryPolicy, SharedColumns};
use fediscope_simnet::FailureClass;

use crate::trace::{DynamicsTrace, TickTrace};
use fediscope_core::mrf::{NullActorDirectory, PolicyContext, PolicyVerdict, RefVerdict};
use fediscope_core::time::{SimDuration, SimTime, CAMPAIGN_START, SNAPSHOT_INTERVAL};
use fediscope_perspective::Scorer;
use fediscope_synthgen::ScenarioSeeds;
use fediscope_telemetry::{GaugeId, HotCounter, Phase, PhaseTimer, Telemetry};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use std::cell::RefCell;
use std::collections::HashSet;
use std::sync::Arc;

/// Which measurement-phase implementation [`DynamicsEngine::step`] runs.
///
/// Both produce bit-identical traces; they differ only in cost. The
/// batched path is the default, the per-post path is the differential
/// oracle (and an escape hatch, via `FEDISCOPE_MEASURE=reference`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MeasureMode {
    /// Two-stage sender-majorized batching: draw each sender's emissions
    /// once, score once per distinct template, memoize MRF verdicts per
    /// `(receiver, sender, template)`.
    Batched,
    /// The original per-post path: every `(receiver, sender)` edge
    /// replays the sender's draws and clones + filters every emission.
    Reference,
}

impl MeasureMode {
    /// Resolves the mode from the `FEDISCOPE_MEASURE` environment
    /// variable: `reference` (case-insensitive) opts into the oracle
    /// path, anything else — including unset — is [`Self::Batched`].
    pub fn from_env() -> Self {
        match std::env::var("FEDISCOPE_MEASURE") {
            Ok(v) if v.eq_ignore_ascii_case("reference") => MeasureMode::Reference,
            _ => MeasureMode::Batched,
        }
    }
}

/// Engine knobs.
#[derive(Debug, Clone)]
pub struct DynamicsConfig {
    /// Engine seed (scenario control RNG and per-tick delivery draws).
    pub seed: u64,
    /// Number of ticks to run.
    pub ticks: u64,
    /// Logical tick length (default: the paper's 4-hour snapshot cadence).
    pub tick_len: SimDuration,
    /// Logical start time.
    pub start: SimTime,
    /// Per-sender per-tick emission cap (keeps one giant instance from
    /// dominating a storm).
    pub emission_cap: u64,
    /// Measurement-phase implementation (default: [`MeasureMode::Batched`],
    /// overridable at process level with `FEDISCOPE_MEASURE=reference`).
    pub measure: MeasureMode,
}

impl Default for DynamicsConfig {
    fn default() -> Self {
        DynamicsConfig {
            seed: 1534,
            ticks: 42,
            tick_len: SNAPSHOT_INTERVAL,
            start: CAMPAIGN_START,
            emission_cap: 64,
            measure: MeasureMode::from_env(),
        }
    }
}

impl DynamicsConfig {
    /// Default knobs with an explicit seed.
    pub fn with_seed(seed: u64) -> Self {
        DynamicsConfig {
            seed,
            ..DynamicsConfig::default()
        }
    }
}

/// Per-instance metrics of one tick's measurement phase.
#[derive(Debug, Default, Clone)]
struct InstanceTick {
    delivered: u64,
    accepted: u64,
    rejected: u64,
    failed: u64,
    rejected_authors: u64,
    exposure: f64,
    prevented: f64,
}

/// A reusable engine factory over one shared seed extract.
///
/// [`DynamicsEngine::new`] fuses seed consumption, state construction
/// and sink wiring into a single non-reusable path — fine for one run,
/// wasteful for a counterfactual experiment that needs N engines over
/// the *same* world. The builder holds the [`ScenarioSeeds`] behind an
/// [`Arc`] and stamps out fresh engines from it: each [`build`]
/// constructs a new mutable [`NetworkState`] (arms must not share
/// mutable state), while the seed extract — domains, templates, links,
/// target configs — is read through the shared allocation.
///
/// Every engine a builder produces is configured identically (same
/// [`DynamicsConfig`]: seed, tick budget, emission cap), which is
/// exactly the pairing contract of [`crate::Experiment`]: arm traces
/// differ only because their scenarios differ.
///
/// [`build`]: Self::build
#[derive(Clone)]
pub struct EngineBuilder {
    config: DynamicsConfig,
    seeds: Arc<ScenarioSeeds>,
    /// The interned seed-derived columns (compiled pipelines, configs,
    /// template sets), built once: every engine this builder stamps out
    /// aliases them by refcount instead of rebuilding per arm.
    columns: Arc<SharedColumns>,
}

impl EngineBuilder {
    /// A builder producing engines with `config` over the shared seeds.
    /// Builds the interned [`SharedColumns`] once, up front.
    pub fn new(config: DynamicsConfig, seeds: Arc<ScenarioSeeds>) -> Self {
        let columns = Arc::new(SharedColumns::build(&seeds));
        EngineBuilder {
            config,
            seeds,
            columns,
        }
    }

    /// The configuration every built engine runs.
    pub fn config(&self) -> &DynamicsConfig {
        &self.config
    }

    /// The shared seed extract.
    pub fn seeds(&self) -> &Arc<ScenarioSeeds> {
        &self.seeds
    }

    /// The shared seed-derived columns every built engine aliases.
    pub fn columns(&self) -> &Arc<SharedColumns> {
        &self.columns
    }

    /// Stamps out a fresh engine: new state, no sink, tick 0. The
    /// state's `Arc` columns alias the builder's [`SharedColumns`].
    pub fn build(&self) -> DynamicsEngine {
        DynamicsEngine::assemble(
            self.config.clone(),
            NetworkState::from_seeds_shared(&self.seeds, &self.columns),
        )
    }
}

/// The engine: state + queue + clock.
pub struct DynamicsEngine {
    config: DynamicsConfig,
    state: NetworkState,
    queue: EventQueue,
    scorer: Scorer,
    sink: Option<Box<dyn EventSink>>,
    ctrl_rng: Option<SmallRng>,
    next_tick: u64,
    /// Tick-local reliability counters (batches): retry attempts that
    /// rescheduled, redeliveries that landed, batches given up on.
    /// Reset at the top of every [`Self::step`]; folded into the tick's
    /// trace row by [`Self::aggregate`].
    tick_retried: u64,
    tick_recovered: u64,
    tick_dead_lettered: u64,
    /// Reusable sender-id buffer for [`Self::on_receiver_down`]: a churn
    /// storm takes an instance down every few ticks, and re-allocating
    /// the inbound-edge list per outage showed up in the retry-storm
    /// profile.
    down_scratch: Vec<u32>,
}

impl DynamicsEngine {
    /// Builds an engine over the seeded network.
    pub fn new(config: DynamicsConfig, seeds: &ScenarioSeeds) -> Self {
        DynamicsEngine::assemble(config, NetworkState::from_seeds(seeds))
    }

    /// Builds an engine over an explicitly constructed state — the hook
    /// the differential tests and benches use to run the engine over
    /// [`NetworkState::from_seeds_reference`] (or a pre-shared state)
    /// without going through the interned default path.
    pub fn from_state(config: DynamicsConfig, state: NetworkState) -> Self {
        DynamicsEngine::assemble(config, state)
    }

    /// The one assembly path every constructor funnels through
    /// ([`Self::new`] and [`EngineBuilder::build`]): wires a built state
    /// to a fresh queue, scorer and clock.
    fn assemble(config: DynamicsConfig, state: NetworkState) -> Self {
        DynamicsEngine {
            config,
            state,
            queue: EventQueue::new(),
            scorer: Scorer::new(),
            sink: None,
            ctrl_rng: None,
            next_tick: 0,
            tick_retried: 0,
            tick_recovered: 0,
            tick_dead_lettered: 0,
            down_scratch: Vec::new(),
        }
    }

    /// The current network state.
    pub fn state(&self) -> &NetworkState {
        &self.state
    }

    /// The engine configuration.
    pub fn config(&self) -> &DynamicsConfig {
        &self.config
    }

    /// Attaches an [`EventSink`] that mirrors every applied event (and
    /// scenario-`init` state rewrites, via [`EventSink::sync`]) onto an
    /// external system — a [`crate::LiveNetBridge`] keeping a live
    /// `SimNet` in step with the engine. The sink never feeds back into
    /// the engine, so the determinism contract is unaffected.
    pub fn attach_sink(&mut self, sink: Box<dyn EventSink>) {
        self.sink = Some(sink);
    }

    /// Detaches the sink, returning it (e.g. to read bridge counters).
    pub fn detach_sink(&mut self) -> Option<Box<dyn EventSink>> {
        self.sink.take()
    }

    /// Applies one event; returns whether it changed state (the
    /// propagation gate scenarios key their follow-up scheduling on).
    /// `now` is the event's fire time — the origin every follow-up the
    /// reliability layer schedules (backoff retries) is offset from.
    fn apply(&mut self, event: &Event, now: SimTime) -> bool {
        let applied = match event {
            Event::AdoptWave { instance, wave } => self.state.apply_wave(*instance, wave),
            Event::Defederate { instance, target } => self.state.defederate(*instance, *target),
            Event::GoDown { instance, mode } => {
                let was_up = self.state.instances[*instance as usize].up();
                let applied = self.state.set_failure(*instance, *mode);
                // Retry chains open on the up→down edge only: a mode
                // change while already down is covered by the chains
                // opened at the original outage (their next attempt
                // re-reads the current class).
                if applied && was_up {
                    self.on_receiver_down(*instance, now);
                }
                applied
            }
            Event::Recover { instance } => self
                .state
                .set_failure(*instance, fediscope_simnet::FailureMode::Healthy),
            Event::SetRate { instance, rate } => self.state.set_rate(*instance, *rate),
            Event::RetryDelivery {
                sender,
                receiver,
                attempt,
                posts,
            } => self.apply_retry(*sender, *receiver, *attempt, *posts, now),
        };
        if let Some(sink) = self.sink.as_mut() {
            sink.on_event(event, applied, &self.state);
        }
        applied
    }

    /// Reliability hook for an instance that just dropped off the
    /// network (single-threaded control phase — the measurement fan-out
    /// never schedules). No-op unless the run opted in via
    /// [`NetworkState::enable_retries`].
    ///
    /// One delivery batch per inbound edge: a transient outage opens a
    /// retry chain per sender (attempt 1 scheduled at `now + backoff`),
    /// a permanent death short-circuits every batch straight to the
    /// senders' dead-letter queues — there is nothing to wait for.
    fn on_receiver_down(&mut self, receiver: u32, now: SimTime) {
        let Some(policy) = self.state.retry_policy() else {
            return;
        };
        let Some(class) = self.state.failure_class_of(receiver) else {
            return;
        };
        let cap = self.config.emission_cap;
        let mut senders = std::mem::take(&mut self.down_scratch);
        senders.clear();
        senders.extend_from_slice(self.state.neighbors(receiver as usize));
        for &s in &senders {
            let posts = self.state.instances[s as usize].emissions(cap);
            match class {
                FailureClass::Permanent => {
                    self.state.settle_dead_letter(s, receiver, posts);
                    self.tick_dead_lettered += 1;
                }
                FailureClass::Transient => {
                    if self.state.open_retry_chain(s, receiver) {
                        let delay = backoff_delay(&policy, self.config.seed, s, 1);
                        self.queue.schedule(
                            now + delay,
                            Event::RetryDelivery {
                                sender: s,
                                receiver,
                                attempt: 1,
                                posts,
                            },
                        );
                    }
                }
            }
        }
        self.down_scratch = senders;
    }

    /// One redelivery attempt fires. Resolution order: a severed link
    /// dead-letters (defederation is permanent by definition); a
    /// recovered receiver takes the batch; a permanently-dead receiver
    /// dead-letters; a still-transient outage reschedules until the
    /// attempt budget is spent, then dead-letters.
    fn apply_retry(
        &mut self,
        sender: u32,
        receiver: u32,
        attempt: u32,
        posts: u64,
        now: SimTime,
    ) -> bool {
        let Some(policy) = self.state.retry_policy() else {
            return false;
        };
        // Stale event (chain already settled): scenarios scheduling raw
        // `RetryDelivery` events by hand cannot double-settle a batch.
        if !self.state.retry_pending(sender, receiver) {
            return false;
        }
        if !self.state.linked(sender, receiver) {
            self.state.settle_dead_letter(sender, receiver, posts);
            self.tick_dead_lettered += 1;
            return true;
        }
        match self.state.failure_class_of(receiver) {
            None => {
                self.state.settle_recovered(sender, receiver, posts);
                self.tick_recovered += 1;
            }
            Some(FailureClass::Permanent) => {
                self.state.settle_dead_letter(sender, receiver, posts);
                self.tick_dead_lettered += 1;
            }
            Some(FailureClass::Transient) => {
                if attempt >= policy.max_attempts {
                    self.state.settle_dead_letter(sender, receiver, posts);
                    self.tick_dead_lettered += 1;
                } else {
                    let next = attempt + 1;
                    self.state.bump_retry_attempt(sender, receiver, next);
                    self.tick_retried += 1;
                    let delay = backoff_delay(&policy, self.config.seed, sender, next);
                    self.queue.schedule(
                        now + delay,
                        Event::RetryDelivery {
                            sender,
                            receiver,
                            attempt: next,
                            posts,
                        },
                    );
                }
            }
        }
        true
    }

    /// Starts a run: resets the clock and queue, seeds the control RNG,
    /// lets `scenario` prepare state and schedule its opening events, and
    /// re-syncs any attached sink to the post-`init` state (scenarios
    /// rewrite state directly in `init` — failure resets, moderation
    /// strips — which never flows through [`Self::apply`]).
    ///
    /// [`Self::run`] calls this internally; call it directly only when
    /// driving the tick loop by hand via [`Self::step`] — the
    /// dynamics↔simnet round-trip does, to interleave census crawls
    /// between ticks.
    pub fn begin(&mut self, scenario: &mut dyn Scenario) {
        let telemetry = Telemetry::global();
        let _span = PhaseTimer::start_on(telemetry, Phase::Begin);
        if telemetry.armed() {
            telemetry.set_instance_labels(self.state.instances.iter().map(|i| i.domain.as_str()));
        }
        // One deterministic control stream for the whole run; only the
        // single-threaded control phase draws from it.
        let mut ctrl_rng = SmallRng::seed_from_u64(
            self.config
                .seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(0x5ced_1534),
        );
        self.queue = EventQueue::new();
        self.next_tick = 0;
        self.tick_retried = 0;
        self.tick_recovered = 0;
        self.tick_dead_lettered = 0;
        // Reliability is opt-in per run: clear any policy, open chains
        // and counters a previous run left behind, then let the scenario
        // re-enable in `init` if it wants retries.
        self.state.reset_reliability();
        scenario.init(
            self.config.start,
            &mut self.state,
            &mut self.queue,
            &mut ctrl_rng,
        );
        self.ctrl_rng = Some(ctrl_rng);
        if let Some(sink) = self.sink.as_mut() {
            sink.sync(&self.state);
        }
    }

    /// Runs one tick — control phase (events in total order), then the
    /// parallel measurement phase — and returns its trace row. Returns
    /// `None` once the configured tick budget is spent. Requires
    /// [`Self::begin`] first.
    pub fn step(&mut self, scenario: &mut dyn Scenario) -> Option<TickTrace> {
        if self.next_tick >= self.config.ticks {
            return None;
        }
        let tick = self.next_tick;
        self.next_tick += 1;
        let now = self.config.start + SimDuration(self.config.tick_len.0 * tick);
        // ---- control phase: apply due events in total order ----
        let mut ctrl_rng = self
            .ctrl_rng
            .take()
            .expect("begin() must run before step()");
        let telemetry = Telemetry::global();
        let mut events = 0u64;
        self.tick_retried = 0;
        self.tick_recovered = 0;
        self.tick_dead_lettered = 0;
        {
            let _control = PhaseTimer::start_on(telemetry, Phase::Control);
            while let Some(scheduled) = self.queue.pop_due(now) {
                // Retry-chain events get their own sub-span: the drain is
                // the reliability layer's share of the control phase.
                let _retry = matches!(scheduled.event, Event::RetryDelivery { .. })
                    .then(|| PhaseTimer::start_on(telemetry, Phase::RetryDrain));
                let applied = self.apply(&scheduled.event, scheduled.at);
                drop(_retry);
                scenario.after_event(
                    &scheduled,
                    applied,
                    &self.state,
                    &mut self.queue,
                    &mut ctrl_rng,
                );
                events += 1;
            }
        }
        self.ctrl_rng = Some(ctrl_rng);
        // ---- measurement phase: read-only per-instance fan-out ----
        // Control-phase isolation: a zero emission cap means no sender
        // can emit, so every per-instance metric is exactly zero — skip
        // the fan-out (and its per-receiver context/allocation work)
        // instead of computing 0 the long way. Bit-identical by
        // construction, and what lets an event flood measure the control
        // phase alone.
        if self.config.emission_cap == 0 {
            let _close = PhaseTimer::start_on(telemetry, Phase::TickClose);
            return Some(self.aggregate(tick, now, events, &[]));
        }
        // Refresh the hoisted emissions column before the immutable
        // fan-out borrows state. O(1) on churn-free ticks.
        if self.config.measure == MeasureMode::Batched {
            self.state.refresh_emissions(self.config.emission_cap);
        }
        let state = &self.state;
        let scorer = &self.scorer;
        let config = &self.config;
        let mut fresh_scores = 0u64;
        let metrics: Vec<InstanceTick> = {
            let _measure = PhaseTimer::start_on(telemetry, Phase::Measurement);
            match config.measure {
                MeasureMode::Reference => (0..state.len())
                    .into_par_iter()
                    .map(|r| measure_receiver_reference(state, config, scorer, tick, now, r))
                    .collect(),
                MeasureMode::Batched => {
                    // Stage 1: one batch per sender — draws + scores once.
                    let emissions = state.emissions_col();
                    let batches: Vec<SenderBatch> = (0..state.len())
                        .into_par_iter()
                        .map(|s| build_sender_batch(state, config, scorer, tick, s, emissions[s]))
                        .collect();
                    fresh_scores = batches.iter().map(|b| b.distinct.len() as u64).sum();
                    // Stage 2: receivers consume the shared batches.
                    (0..state.len())
                        .into_par_iter()
                        .map(|r| {
                            MEASURE_SCRATCH.with(|scratch| {
                                measure_receiver_batched(
                                    state,
                                    &batches,
                                    emissions,
                                    now,
                                    r,
                                    &mut scratch.borrow_mut(),
                                )
                            })
                        })
                        .collect()
                }
            }
        };
        let _close = PhaseTimer::start_on(telemetry, Phase::TickClose);
        let trace = self.aggregate(tick, now, events, &metrics);
        // Counter-only accounting (never read back by simulation code):
        // every delivery beyond the fresh per-distinct analyses was
        // served from a stage-1 memo.
        if config.measure == MeasureMode::Batched && telemetry.armed() {
            telemetry.add(
                HotCounter::ScorerMemoHits,
                trace.delivered.saturating_sub(fresh_scores),
            );
        }
        Some(trace)
    }

    /// Assembles the run's trace from stepped-out tick rows — the one
    /// definition of trace construction, shared by [`Self::run`] and
    /// external step drivers (the census round-trip).
    pub fn finish(&self, scenario: &dyn Scenario, ticks: Vec<TickTrace>) -> DynamicsTrace {
        DynamicsTrace {
            scenario: scenario.name().to_string(),
            seed: self.config.seed,
            ticks,
        }
    }

    /// Runs `scenario` for the configured number of ticks and returns
    /// the trace.
    pub fn run(&mut self, scenario: &mut dyn Scenario) -> DynamicsTrace {
        self.begin(scenario);
        let mut ticks = Vec::with_capacity(self.config.ticks as usize);
        while let Some(tick) = self.step(scenario) {
            ticks.push(tick);
        }
        self.finish(scenario, ticks)
    }

    /// Sequentially folds per-instance metrics into a [`TickTrace`] —
    /// fixed order, so float sums never depend on the thread count.
    ///
    /// An empty `metrics` slice is the idle (zero-emission) tick: all
    /// delivery metrics are zero and the per-instance exposure row is
    /// all zeros, exactly what folding `state.len()` default metrics
    /// would produce. The up/adopted/failure-mix columns come from the
    /// state's O(1) counters either way — the tick close never sweeps
    /// the instance vector.
    fn aggregate(
        &self,
        tick: u64,
        now: SimTime,
        events: u64,
        metrics: &[InstanceTick],
    ) -> TickTrace {
        let mut t = TickTrace {
            tick,
            at: now,
            links: self.state.link_count(),
            instances_up: self.state.up_count(),
            adopted: self.state.adopted_count(),
            events,
            delivered: 0,
            accepted: 0,
            rejected: 0,
            failed: 0,
            rejected_authors: 0,
            toxic_exposure: 0.0,
            exposure_prevented: 0.0,
            retried: self.tick_retried,
            recovered: self.tick_recovered,
            dead_lettered: self.tick_dead_lettered,
            failure_mix: self.state.failure_mix().to_vec(),
            per_instance_exposure: Vec::with_capacity(self.state.len()),
        };
        if metrics.is_empty() {
            t.per_instance_exposure = vec![0.0; self.state.len()];
            self.observe_tick(&t, metrics);
            return t;
        }
        for m in metrics {
            t.delivered += m.delivered;
            t.accepted += m.accepted;
            t.rejected += m.rejected;
            t.failed += m.failed;
            t.rejected_authors += m.rejected_authors;
            t.toxic_exposure += m.exposure;
            t.exposure_prevented += m.prevented;
            t.per_instance_exposure.push(m.exposure);
        }
        self.observe_tick(&t, metrics);
        t
    }

    /// Publishes the tick's telemetry — gauges, control/reliability
    /// counters, per-instance volumes. Write-only into the registry
    /// (nothing here is ever read back by simulation code), and a no-op
    /// beyond one relaxed load while disarmed.
    fn observe_tick(&self, t: &TickTrace, metrics: &[InstanceTick]) {
        let telemetry = Telemetry::global();
        if !telemetry.armed() {
            return;
        }
        telemetry.add(HotCounter::EventsApplied, t.events);
        telemetry.add(HotCounter::RetryEvents, t.retried);
        telemetry.add(HotCounter::RecoveredBatches, t.recovered);
        telemetry.add(HotCounter::DeadLetteredBatches, t.dead_lettered);
        telemetry.set_gauge(GaugeId::Links, t.links);
        telemetry.set_gauge(GaugeId::InstancesUp, t.instances_up);
        telemetry.set_gauge(GaugeId::Adopted, t.adopted);
        telemetry.add_instance_volumes(
            metrics
                .iter()
                .enumerate()
                .map(|(i, m)| (i, m.delivered, m.rejected)),
        );
    }
}

/// Mixes the engine seed, tick, and sender index into a per-stream RNG
/// seed. Every receiver recomputes the same stream for a given sender,
/// so a sender "posts" the same sequence to all its peers — and no
/// stream ever depends on thread scheduling.
fn delivery_seed(seed: u64, tick: u64, sender: u64) -> u64 {
    seed ^ tick.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ sender.wrapping_mul(0xc2b2_ae3d_27d4_eb4f)
}

/// Mixes the engine seed, sender, and attempt number into the jitter
/// stream seed — the same construction as [`delivery_seed`], keyed on
/// the attempt instead of the tick, so every chain's whole schedule is a
/// pure function of `(seed, sender, attempt)` and never of thread
/// scheduling or of *when* the chain happened to open.
fn retry_seed(seed: u64, sender: u64, attempt: u64) -> u64 {
    seed ^ sender.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ attempt.wrapping_mul(0xc2b2_ae3d_27d4_eb4f)
}

/// The jittered backoff delay before `attempt` of `sender`'s chain:
/// `base · 2^(attempt-1)` plus a uniform draw from `[0, base)` off the
/// [`retry_seed`] stream (full jitter keeps simultaneous outages from
/// retrying in lockstep).
fn backoff_delay(policy: &RetryPolicy, seed: u64, sender: u32, attempt: u32) -> SimDuration {
    let jitter = if policy.base_backoff.0 == 0 {
        0
    } else {
        let mut rng = SmallRng::seed_from_u64(retry_seed(seed, sender as u64, attempt as u64));
        rng.gen_range(0..policy.base_backoff.0)
    };
    policy.backoff(attempt, jitter)
}

/// One receiver's tick, per-post reference path: pull every live
/// neighbor's emissions through the receiver's MRF pipeline, scoring and
/// cloning each post individually.
///
/// This is the differential oracle for [`measure_receiver_batched`] —
/// kept deliberately simple and unbatched. Any run can opt into it with
/// `FEDISCOPE_MEASURE=reference` ([`MeasureMode::from_env`]).
fn measure_receiver_reference(
    state: &NetworkState,
    config: &DynamicsConfig,
    scorer: &Scorer,
    tick: u64,
    now: SimTime,
    r: usize,
) -> InstanceTick {
    let mut m = InstanceTick::default();
    let receiver = &state.instances[r];
    if !receiver.up() {
        // A down receiver loses every inbound delivery; senders keep
        // POSTing (they cannot know) and the mass lands in `failed`.
        for &s in state.neighbors(r) {
            m.failed += state.instances[s as usize].emissions(config.emission_cap);
        }
        observe_receiver(&m);
        return m;
    }
    let actors = NullActorDirectory;
    let ctx = PolicyContext::new(&receiver.domain, now, &actors);
    let mut rejected_authors: HashSet<(u32, u64)> = HashSet::new();
    for &s in state.neighbors(r) {
        let sender = &state.instances[s as usize];
        let emissions = sender.emissions(config.emission_cap);
        if emissions == 0 {
            continue;
        }
        let mut draws = SmallRng::seed_from_u64(delivery_seed(config.seed, tick, s as u64));
        for _ in 0..emissions {
            let template = &sender.templates[draws.gen_range(0..sender.templates.len())];
            m.delivered += 1;
            let toxic = scorer.analyze(&template.content).max();
            let mut activity = template.activity.clone();
            activity.published = now;
            if let Some(post) = activity.note_mut() {
                post.created = now;
            }
            match receiver.pipeline.filter_fast(&ctx, activity) {
                PolicyVerdict::Pass(_) => {
                    m.accepted += 1;
                    m.exposure += toxic;
                }
                PolicyVerdict::Reject(_) => {
                    m.rejected += 1;
                    m.prevented += toxic;
                    if rejected_authors.insert((s, template.author)) {
                        m.rejected_authors += 1;
                    }
                }
            }
        }
    }
    // Side effects (emoji steals, prefetch warms) are intentionally
    // dropped with the context: the trace measures moderation outcomes.
    drop(ctx);
    observe_receiver(&m);
    m
}

/// One sender's pre-drawn tick emissions (stage 1 of the batched
/// measurement phase), shared read-only by every receiver in stage 2.
///
/// Columns are SoA: `distinct`/`toxic` hold one entry per distinct
/// template drawn this tick (first-draw order), `run_slot`/`run_len`
/// run-length encode the draw sequence as groups of consecutive
/// identical draws. Replaying the runs in order reproduces the per-post
/// path's draw order exactly.
#[derive(Debug, Default)]
struct SenderBatch {
    /// Distinct template indices into the sender's template table.
    distinct: Vec<u32>,
    /// Memoized `scorer.analyze(..).max()` per distinct template
    /// (parallel to `distinct`).
    toxic: Vec<f64>,
    /// Per run: index into `distinct`.
    run_slot: Vec<u32>,
    /// Per run: how many consecutive draws hit that template.
    run_len: Vec<u32>,
}

/// Draws sender `s`'s emissions for `tick` once and scores each distinct
/// template once. The RNG stream is exactly the one every receiver used
/// to replay in the reference path, so consuming the runs in order is
/// bit-identical to re-drawing.
fn build_sender_batch(
    state: &NetworkState,
    config: &DynamicsConfig,
    scorer: &Scorer,
    tick: u64,
    s: usize,
    emissions: u64,
) -> SenderBatch {
    let mut batch = SenderBatch::default();
    if emissions == 0 {
        return batch;
    }
    let sender = &state.instances[s];
    let mut draws = SmallRng::seed_from_u64(delivery_seed(config.seed, tick, s as u64));
    let mut last_slot = u32::MAX;
    for _ in 0..emissions {
        let t = draws.gen_range(0..sender.templates.len()) as u32;
        // Linear scan: the distinct set is bounded by the emission cap
        // (default 64) and is usually far smaller.
        let slot = match batch.distinct.iter().position(|&d| d == t) {
            Some(i) => i as u32,
            None => {
                batch.distinct.push(t);
                batch
                    .toxic
                    .push(scorer.analyze(&sender.templates[t as usize].content).max());
                (batch.distinct.len() - 1) as u32
            }
        };
        if slot == last_slot {
            *batch.run_len.last_mut().expect("run exists") += 1;
        } else {
            batch.run_slot.push(slot);
            batch.run_len.push(1);
            last_slot = slot;
        }
    }
    batch
}

/// Per-worker reusable scratch for stage 2 — cleared, never reallocated,
/// between receivers handled by the same worker.
struct MeasureScratch {
    /// Distinct `(sender, author)` pairs rejected this receiver-tick.
    rejected_authors: HashSet<(u32, u64)>,
    /// Verdict memo per distinct-template slot of the current neighbor:
    /// 0 = unjudged, 1 = pass, 2 = reject.
    verdicts: Vec<u8>,
}

thread_local! {
    static MEASURE_SCRATCH: RefCell<MeasureScratch> = RefCell::new(MeasureScratch {
        rejected_authors: HashSet::new(),
        verdicts: Vec::new(),
    });
}

/// One receiver's tick, batched path (stage 2): consume every live
/// neighbor's [`SenderBatch`] in the reference path's neighbor and draw
/// order. One MRF verdict per `(receiver, sender, distinct template)` —
/// clone-free via `filter_fast_ref`, with a cloning fallback only when a
/// rewriting policy would actually mutate that activity.
fn measure_receiver_batched(
    state: &NetworkState,
    batches: &[SenderBatch],
    emissions: &[u64],
    now: SimTime,
    r: usize,
    scratch: &mut MeasureScratch,
) -> InstanceTick {
    let mut m = InstanceTick::default();
    let receiver = &state.instances[r];
    if !receiver.up() {
        // A down receiver loses every inbound delivery; senders keep
        // POSTing (they cannot know) and the mass lands in `failed`.
        for &s in state.neighbors(r) {
            m.failed += emissions[s as usize];
        }
        observe_receiver(&m);
        return m;
    }
    let actors = NullActorDirectory;
    let ctx = PolicyContext::new(&receiver.domain, now, &actors);
    scratch.rejected_authors.clear();
    for &s in state.neighbors(r) {
        let batch = &batches[s as usize];
        if batch.distinct.is_empty() {
            continue;
        }
        let sender = &state.instances[s as usize];
        scratch.verdicts.clear();
        scratch.verdicts.resize(batch.distinct.len(), 0);
        for (&slot, &len) in batch.run_slot.iter().zip(&batch.run_len) {
            let slot = slot as usize;
            let toxic = batch.toxic[slot];
            let len = len as u64;
            m.delivered += len;
            let pass = match scratch.verdicts[slot] {
                1 => true,
                2 => false,
                _ => {
                    let template = &sender.templates[batch.distinct[slot] as usize];
                    let pass =
                        match receiver
                            .pipeline
                            .filter_fast_ref(&ctx, &template.activity, now)
                        {
                            RefVerdict::Pass => true,
                            RefVerdict::Reject(_) => false,
                            RefVerdict::NeedsClone => {
                                // A rewriting policy would mutate this
                                // activity: take the cloning path once; the
                                // verdict is still memoized for the rest of
                                // this neighbor's runs.
                                let mut activity = template.activity.clone();
                                activity.published = now;
                                if let Some(post) = activity.note_mut() {
                                    post.created = now;
                                }
                                matches!(
                                    receiver.pipeline.filter_fast(&ctx, activity),
                                    PolicyVerdict::Pass(_)
                                )
                            }
                        };
                    scratch.verdicts[slot] = if pass { 1 } else { 2 };
                    pass
                }
            };
            if pass {
                m.accepted += len;
                // f64 bit-identity: one addition per emission in draw
                // order, exactly as the reference path accumulates.
                for _ in 0..len {
                    m.exposure += toxic;
                }
            } else {
                m.rejected += len;
                for _ in 0..len {
                    m.prevented += toxic;
                }
                let author = sender.templates[batch.distinct[slot] as usize].author;
                if scratch.rejected_authors.insert((s, author)) {
                    m.rejected_authors += 1;
                }
            }
        }
    }
    // Side effects are intentionally dropped with the context, exactly
    // as in the reference path.
    drop(ctx);
    observe_receiver(&m);
    m
}

/// Batch-publishes one receiver's tick counters: the counts were already
/// accumulated locally, so the parallel fan-out pays at most four
/// sharded adds per receiver per tick, never one per post.
#[inline]
fn observe_receiver(m: &InstanceTick) {
    let telemetry = Telemetry::global();
    if !telemetry.armed() {
        return;
    }
    telemetry.add(HotCounter::EngineDeliveries, m.delivered);
    telemetry.add(HotCounter::FilterFastHits, m.accepted);
    telemetry.add(HotCounter::FilterFastRejects, m.rejected);
    telemetry.add(HotCounter::FailedDeliveries, m.failed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;
    use crate::testutil::seeds;

    /// A scenario that does nothing: steady-state traffic only.
    struct Steady;
    impl Scenario for Steady {
        fn name(&self) -> &'static str {
            "steady"
        }
        fn init(
            &mut self,
            _start: SimTime,
            _state: &mut NetworkState,
            _queue: &mut EventQueue,
            _rng: &mut SmallRng,
        ) {
        }
    }

    fn short_config() -> DynamicsConfig {
        DynamicsConfig {
            ticks: 6,
            ..DynamicsConfig::default()
        }
    }

    #[test]
    fn steady_state_delivers_and_scores() {
        let mut engine = DynamicsEngine::new(short_config(), seeds());
        let trace = engine.run(&mut Steady);
        assert_eq!(trace.ticks.len(), 6);
        assert!(trace.total_delivered() > 0, "live links must carry posts");
        assert!(trace.total_exposure() > 0.0, "some toxicity gets through");
        // The seed world already runs its full configs: rejections and
        // prevented exposure are nonzero from tick zero.
        assert!(trace.total_rejected() > 0);
        assert!(trace.total_prevented() > 0.0);
        // Steady state: links never change without events.
        assert_eq!(trace.initial_links(), trace.final_links());
    }

    #[test]
    fn identical_runs_are_bit_identical() {
        let a = DynamicsEngine::new(short_config(), seeds()).run(&mut Steady);
        let b = DynamicsEngine::new(short_config(), seeds()).run(&mut Steady);
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut c1 = short_config();
        c1.seed = 1;
        let mut c2 = short_config();
        c2.seed = 2;
        let a = DynamicsEngine::new(c1, seeds()).run(&mut Steady);
        let b = DynamicsEngine::new(c2, seeds()).run(&mut Steady);
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn events_count_in_the_trace() {
        struct OneShot;
        impl Scenario for OneShot {
            fn name(&self) -> &'static str {
                "oneshot"
            }
            fn init(
                &mut self,
                start: SimTime,
                _state: &mut NetworkState,
                queue: &mut EventQueue,
                _rng: &mut SmallRng,
            ) {
                queue.schedule(
                    start + SimDuration::hours(4),
                    Event::SetRate {
                        instance: 0,
                        rate: 2.0,
                    },
                );
            }
        }
        let trace = DynamicsEngine::new(short_config(), seeds()).run(&mut OneShot);
        assert_eq!(trace.ticks[0].events, 0);
        assert_eq!(trace.ticks[1].events, 1);
        assert_eq!(trace.ticks.iter().map(|t| t.events).sum::<u64>(), 1);
    }
}
