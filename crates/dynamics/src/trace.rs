//! Per-tick metrics — the engine's observable output.
//!
//! A [`DynamicsTrace`] is the contract the determinism guarantee is
//! stated over: the same seeds and scenario must produce a bit-identical
//! trace at any worker-thread count. [`DynamicsTrace::digest`] folds
//! every field (floats by bit pattern) into one `u64` so tests and
//! benches can compare whole runs cheaply.

use fediscope_core::time::SimTime;
use fediscope_simnet::FailureMode;
use serde::Serialize;

/// Everything measured in one tick.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TickTrace {
    /// Tick index (0-based).
    pub tick: u64,
    /// Logical time of the tick.
    pub at: SimTime,
    /// Live federation links (undirected).
    pub links: u64,
    /// Instances answering the network.
    pub instances_up: u64,
    /// Instances that changed moderation since the run began.
    pub adopted: u64,
    /// Events applied in this tick's control phase.
    pub events: u64,
    /// Inbound post deliveries attempted.
    pub delivered: u64,
    /// Deliveries that passed the receiver's MRF pipeline.
    pub accepted: u64,
    /// Deliveries rejected by the receiver's MRF pipeline.
    pub rejected: u64,
    /// Deliveries lost to down receivers.
    pub failed: u64,
    /// Distinct `(receiver, author)` pairs rejected this tick.
    pub rejected_authors: u64,
    /// Toxic mass (max attribute score) of accepted deliveries.
    pub toxic_exposure: f64,
    /// Toxic mass the pipelines kept out (rejected deliveries).
    pub exposure_prevented: f64,
    /// Retry attempts that fired and rescheduled (receiver still in a
    /// transient outage, budget left). Zero unless the run enabled the
    /// reliability layer.
    pub retried: u64,
    /// Delivery batches redelivered to a recovered receiver.
    pub recovered: u64,
    /// Delivery batches given up on: retry budget exhausted, permanent
    /// receiver death, or mid-retry defederation.
    pub dead_lettered: u64,
    /// Down instances by §3 failure mode: `[404, 403, 502, 503, 410]`.
    pub failure_mix: Vec<u64>,
    /// Accepted toxic mass per receiving instance (seed index order).
    pub per_instance_exposure: Vec<f64>,
}

/// Index of a failure mode in [`TickTrace::failure_mix`].
pub fn failure_mix_index(mode: FailureMode) -> Option<usize> {
    match mode {
        FailureMode::Healthy => None,
        FailureMode::NotFound => Some(0),
        FailureMode::Forbidden => Some(1),
        FailureMode::BadGateway => Some(2),
        FailureMode::Unavailable => Some(3),
        FailureMode::Gone => Some(4),
    }
}

/// A whole run: scenario name, seed, and one [`TickTrace`] per tick.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct DynamicsTrace {
    /// Scenario that produced the trace.
    pub scenario: String,
    /// Engine seed.
    pub seed: u64,
    /// Per-tick metrics, in tick order.
    pub ticks: Vec<TickTrace>,
}

impl DynamicsTrace {
    /// FNV-1a over every field, floats by bit pattern. Two traces are
    /// bit-identical iff their digests match (up to hash collisions —
    /// tests additionally compare with `==`, which `PartialEq` makes
    /// exact).
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut word = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        for b in self.scenario.bytes() {
            word(b as u64);
        }
        word(self.seed);
        for t in &self.ticks {
            for v in [
                t.tick,
                t.at.0,
                t.links,
                t.instances_up,
                t.adopted,
                t.events,
                t.delivered,
                t.accepted,
                t.rejected,
                t.failed,
                t.rejected_authors,
                t.toxic_exposure.to_bits(),
                t.exposure_prevented.to_bits(),
                t.retried,
                t.recovered,
                t.dead_lettered,
            ] {
                word(v);
            }
            for &c in &t.failure_mix {
                word(c);
            }
            for &e in &t.per_instance_exposure {
                word(e.to_bits());
            }
        }
        h
    }

    /// Total deliveries attempted across the run.
    pub fn total_delivered(&self) -> u64 {
        self.ticks.iter().map(|t| t.delivered).sum()
    }

    /// Total deliveries rejected across the run.
    pub fn total_rejected(&self) -> u64 {
        self.ticks.iter().map(|t| t.rejected).sum()
    }

    /// Total toxic mass that got through.
    pub fn total_exposure(&self) -> f64 {
        self.ticks.iter().map(|t| t.toxic_exposure).sum()
    }

    /// Total toxic mass the pipelines prevented.
    pub fn total_prevented(&self) -> f64 {
        self.ticks.iter().map(|t| t.exposure_prevented).sum()
    }

    /// Link count at the first tick.
    pub fn initial_links(&self) -> u64 {
        self.ticks.first().map(|t| t.links).unwrap_or(0)
    }

    /// Link count at the last tick.
    pub fn final_links(&self) -> u64 {
        self.ticks.last().map(|t| t.links).unwrap_or(0)
    }

    /// Total retry attempts that rescheduled across the run.
    pub fn total_retried(&self) -> u64 {
        self.ticks.iter().map(|t| t.retried).sum()
    }

    /// Total delivery batches recovered across the run.
    pub fn total_recovered(&self) -> u64 {
        self.ticks.iter().map(|t| t.recovered).sum()
    }

    /// Total delivery batches dead-lettered across the run.
    pub fn total_dead_lettered(&self) -> u64 {
        self.ticks.iter().map(|t| t.dead_lettered).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tick(tick: u64, exposure: f64) -> TickTrace {
        TickTrace {
            tick,
            at: SimTime(tick * 100),
            links: 10,
            instances_up: 5,
            adopted: 0,
            events: 0,
            delivered: 20,
            accepted: 18,
            rejected: 2,
            failed: 0,
            rejected_authors: 1,
            toxic_exposure: exposure,
            exposure_prevented: 0.5,
            retried: 3,
            recovered: 2,
            dead_lettered: 1,
            failure_mix: vec![0; 5],
            per_instance_exposure: vec![exposure],
        }
    }

    #[test]
    fn digest_separates_different_traces() {
        let a = DynamicsTrace {
            scenario: "x".into(),
            seed: 1,
            ticks: vec![tick(0, 1.0), tick(1, 2.0)],
        };
        let mut b = a.clone();
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a, b);
        b.ticks[1].toxic_exposure += 1e-9;
        assert_ne!(a.digest(), b.digest());
        assert_ne!(a, b);
        // The reliability columns are digested too.
        let mut c = a.clone();
        c.ticks[0].recovered += 1;
        assert_ne!(a.digest(), c.digest());
    }

    #[test]
    fn totals_sum_over_ticks() {
        let t = DynamicsTrace {
            scenario: "x".into(),
            seed: 1,
            ticks: vec![tick(0, 1.0), tick(1, 2.0)],
        };
        assert_eq!(t.total_delivered(), 40);
        assert_eq!(t.total_rejected(), 4);
        assert_eq!(t.total_retried(), 6);
        assert_eq!(t.total_recovered(), 4);
        assert_eq!(t.total_dead_lettered(), 2);
        assert!((t.total_exposure() - 3.0).abs() < 1e-12);
        assert!((t.total_prevented() - 1.0).abs() < 1e-12);
        assert_eq!(t.initial_links(), 10);
        assert_eq!(t.final_links(), 10);
    }

    #[test]
    fn failure_mix_indexing_covers_the_taxonomy() {
        assert_eq!(failure_mix_index(FailureMode::Healthy), None);
        let idx: Vec<usize> = FailureMode::PAPER_TAXONOMY
            .iter()
            .filter_map(|&(m, _)| failure_mix_index(m))
            .collect();
        assert_eq!(idx, vec![0, 1, 2, 3, 4]);
    }
}
