//! The event queue: a time-bucketed calendar over logical time.
//!
//! Events are ordered by `(time, sequence)` — the sequence number is
//! assigned at scheduling time, so two events scheduled for the same tick
//! pop in scheduling order. That total order is what makes a run
//! replayable: the control phase (event application) is single-threaded
//! and consumes events in exactly this order, regardless of how the
//! measurement phase fans out.
//!
//! The queue was a binary heap through PR 3; 100 K-event floods spend
//! real time sifting 40-byte elements through log-depth levels, so it is
//! now a calendar: a `BTreeMap` from fire time to the bucket of events
//! scheduled for that instant. Appends within a bucket arrive in
//! ascending sequence order by construction (the counter is monotone),
//! so a bucket is popped front to back — O(1) per event — and the map
//! keeps buckets time-ordered. Scheduling into an *earlier* due bucket
//! mid-drain (a zero-delay follow-up) stays correct because every pop
//! re-reads the first bucket.

use fediscope_core::rollout::RolloutWave;
use fediscope_core::time::SimTime;
use fediscope_simnet::FailureMode;
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

/// A state transition the engine knows how to apply.
///
/// Instances are addressed by their seed index (dense `u32`), not by
/// domain: event application is the hot control path of cascade runs and
/// never needs a hash lookup. Wave payloads ride behind an `Arc` so a
/// shared blocklist import (one wave, thousands of adopters) schedules
/// by refcount bump instead of deep-cloning target lists per instance.
#[derive(Debug, Clone)]
pub enum Event {
    /// A staged-rollout wave lands on an instance: enable the wave's
    /// policy kinds and merge its `SimplePolicy` targets.
    AdoptWave {
        /// Adopting instance.
        instance: u32,
        /// The wave to apply (shared — imports schedule one wave to
        /// many instances).
        wave: Arc<RolloutWave>,
    },
    /// `instance` defederates from `target`: reject-lists the target's
    /// domain and tears the federation link down.
    Defederate {
        /// The blocking instance.
        instance: u32,
        /// The blocked instance.
        target: u32,
    },
    /// The instance stops answering, in the given §3 failure mode.
    GoDown {
        /// The failing instance.
        instance: u32,
        /// How it fails (404/403/502/503/410).
        mode: FailureMode,
    },
    /// The instance comes back.
    Recover {
        /// The recovering instance.
        instance: u32,
    },
    /// Sets the instance's emission-rate multiplier (storm bursts).
    SetRate {
        /// The instance whose posting rate changes.
        instance: u32,
        /// New multiplier (1.0 = baseline).
        rate: f64,
    },
    /// A scheduled redelivery attempt for a batch that failed
    /// transiently: `sender` retries its pending deliveries to
    /// `receiver`. Scheduled by the engine itself when a retry-enabled
    /// run sees an instance go down in a transient §3 mode; fires on the
    /// same calendar as every other event, so the backoff schedule is
    /// part of the deterministic total order.
    RetryDelivery {
        /// The instance retrying its outbound batch.
        sender: u32,
        /// The instance the batch is addressed to.
        receiver: u32,
        /// Which attempt this is (1-based; bounded by the retry budget).
        attempt: u32,
        /// Posts riding in the batch (what was lost when the receiver
        /// went down; 0 under `emission_cap: 0` flood configs — the
        /// batch itself is still tracked).
        posts: u64,
    },
}

/// An event with its scheduled time and tie-breaking sequence number.
#[derive(Debug, Clone)]
pub struct Scheduled {
    /// When the event fires.
    pub at: SimTime,
    /// Scheduling order among same-time events.
    pub seq: u64,
    /// The event itself.
    pub event: Event,
}

/// A deterministic future-event list: a calendar of per-instant buckets,
/// consumed in exact `(time, sequence)` order.
#[derive(Debug, Default)]
pub struct EventQueue {
    /// Fire time → events at that instant, each bucket in ascending
    /// `seq` order (appends only; the counter is monotone).
    buckets: BTreeMap<SimTime, VecDeque<(u64, Event)>>,
    next_seq: u64,
    pending: usize,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedules `event` at `at`.
    pub fn schedule(&mut self, at: SimTime, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending += 1;
        self.buckets.entry(at).or_default().push_back((seq, event));
    }

    /// Pops the earliest event due at or before `now`, if any — O(1)
    /// per event plus amortised bucket bookkeeping.
    pub fn pop_due(&mut self, now: SimTime) -> Option<Scheduled> {
        let mut entry = self.buckets.first_entry()?;
        let at = *entry.key();
        if at > now {
            return None;
        }
        let bucket = entry.get_mut();
        let (seq, event) = bucket.pop_front().expect("buckets are never left empty");
        if bucket.is_empty() {
            entry.remove();
        }
        self.pending -= 1;
        Some(Scheduled { at, seq, event })
    }

    /// When the next event fires, if any are pending.
    pub fn next_at(&self) -> Option<SimTime> {
        self.buckets.keys().next().copied()
    }

    /// Pending events.
    pub fn len(&self) -> usize {
        self.pending
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.pending == 0
    }

    /// Total events ever scheduled on this queue.
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rate(instance: u32, rate: f64) -> Event {
        Event::SetRate { instance, rate }
    }

    #[test]
    fn pops_in_time_then_fifo_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(20), rate(1, 1.0));
        q.schedule(SimTime(10), rate(2, 1.0));
        q.schedule(SimTime(10), rate(3, 1.0));
        q.schedule(SimTime(30), rate(4, 1.0));
        let order: Vec<(u64, u64)> = std::iter::from_fn(|| q.pop_due(SimTime(25)))
            .map(|s| (s.at.0, s.seq))
            .collect();
        // Same-time events keep scheduling order (seq 1 before seq 2);
        // the t=30 event is not yet due.
        assert_eq!(order, vec![(10, 1), (10, 2), (20, 0)]);
        assert_eq!(q.len(), 1);
        assert_eq!(q.next_at(), Some(SimTime(30)));
    }

    #[test]
    fn mid_drain_scheduling_into_an_earlier_instant_pops_first() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(20), rate(1, 1.0));
        q.schedule(SimTime(10), rate(2, 1.0));
        let first = q.pop_due(SimTime(25)).unwrap();
        assert_eq!((first.at.0, first.seq), (10, 1));
        // A zero-delay follow-up lands between already-queued instants
        // (earlier bucket, later seq) and still pops in time order; a
        // same-instant follow-up pops after the bucket's earlier seqs.
        q.schedule(SimTime(15), rate(3, 1.0));
        q.schedule(SimTime(20), rate(4, 1.0));
        let order: Vec<(u64, u64)> = std::iter::from_fn(|| q.pop_due(SimTime(25)))
            .map(|s| (s.at.0, s.seq))
            .collect();
        assert_eq!(order, vec![(15, 2), (20, 0), (20, 3)]);
        assert!(q.is_empty());
        assert_eq!(q.scheduled_total(), 4);
    }

    #[test]
    fn empty_queue_pops_nothing() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert!(q.pop_due(SimTime(u64::MAX)).is_none());
        assert_eq!(q.scheduled_total(), 0);
    }
}
