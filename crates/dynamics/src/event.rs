//! The event queue: a binary heap over logical time.
//!
//! Events are ordered by `(time, sequence)` — the sequence number is
//! assigned at scheduling time, so two events scheduled for the same tick
//! pop in scheduling order. That total order is what makes a run
//! replayable: the control phase (event application) is single-threaded
//! and consumes events in exactly this order, regardless of how the
//! measurement phase fans out.

use fediscope_core::rollout::RolloutWave;
use fediscope_core::time::SimTime;
use fediscope_simnet::FailureMode;
use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

/// A state transition the engine knows how to apply.
///
/// Instances are addressed by their seed index (dense `u32`), not by
/// domain: event application is the hot control path of cascade runs and
/// never needs a hash lookup.
#[derive(Debug, Clone)]
pub enum Event {
    /// A staged-rollout wave lands on an instance: enable the wave's
    /// policy kinds and merge its `SimplePolicy` targets.
    AdoptWave {
        /// Adopting instance.
        instance: u32,
        /// The wave to apply.
        wave: RolloutWave,
    },
    /// `instance` defederates from `target`: reject-lists the target's
    /// domain and tears the federation link down.
    Defederate {
        /// The blocking instance.
        instance: u32,
        /// The blocked instance.
        target: u32,
    },
    /// The instance stops answering, in the given §3 failure mode.
    GoDown {
        /// The failing instance.
        instance: u32,
        /// How it fails (404/403/502/503/410).
        mode: FailureMode,
    },
    /// The instance comes back.
    Recover {
        /// The recovering instance.
        instance: u32,
    },
    /// Sets the instance's emission-rate multiplier (storm bursts).
    SetRate {
        /// The instance whose posting rate changes.
        instance: u32,
        /// New multiplier (1.0 = baseline).
        rate: f64,
    },
}

/// An event with its scheduled time and tie-breaking sequence number.
#[derive(Debug, Clone)]
pub struct Scheduled {
    /// When the event fires.
    pub at: SimTime,
    /// Scheduling order among same-time events.
    pub seq: u64,
    /// The event itself.
    pub event: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}

impl Eq for Scheduled {}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A deterministic future-event list.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<Scheduled>>,
    next_seq: u64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedules `event` at `at`.
    pub fn schedule(&mut self, at: SimTime, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Scheduled { at, seq, event }));
    }

    /// Pops the earliest event due at or before `now`, if any.
    pub fn pop_due(&mut self, now: SimTime) -> Option<Scheduled> {
        if self.heap.peek().is_some_and(|Reverse(s)| s.at <= now) {
            self.heap.pop().map(|Reverse(s)| s)
        } else {
            None
        }
    }

    /// When the next event fires, if any are pending.
    pub fn next_at(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(s)| s.at)
    }

    /// Pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total events ever scheduled on this queue.
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rate(instance: u32, rate: f64) -> Event {
        Event::SetRate { instance, rate }
    }

    #[test]
    fn pops_in_time_then_fifo_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(20), rate(1, 1.0));
        q.schedule(SimTime(10), rate(2, 1.0));
        q.schedule(SimTime(10), rate(3, 1.0));
        q.schedule(SimTime(30), rate(4, 1.0));
        let order: Vec<(u64, u64)> = std::iter::from_fn(|| q.pop_due(SimTime(25)))
            .map(|s| (s.at.0, s.seq))
            .collect();
        // Same-time events keep scheduling order (seq 1 before seq 2);
        // the t=30 event is not yet due.
        assert_eq!(order, vec![(10, 1), (10, 2), (20, 0)]);
        assert_eq!(q.len(), 1);
        assert_eq!(q.next_at(), Some(SimTime(30)));
    }

    #[test]
    fn empty_queue_pops_nothing() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert!(q.pop_due(SimTime(u64::MAX)).is_none());
        assert_eq!(q.scheduled_total(), 0);
    }
}
