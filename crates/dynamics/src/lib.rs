//! # fediscope-dynamics
//!
//! A deterministic discrete-event simulation engine for *time-evolving*
//! moderation experiments over the synthetic fediverse.
//!
//! The paper measures Pleroma moderation as a static snapshot; its core
//! questions — how MRF policy adoption spreads, how defederation
//! fragments the network, how much toxic exposure a rollout actually
//! prevents — are dynamic. This crate adds the missing layer:
//!
//! * [`EventQueue`] — a time-bucketed calendar future-event list over
//!   logical [`fediscope_core::time::SimTime`] ticks (no wall clock
//!   anywhere; O(1) pops in exact `(time, seq)` order);
//! * [`NetworkState`] — the mutable network (per-instance moderation
//!   configs with compiled [`fediscope_core::mrf::MrfPipeline`]s,
//!   federation links, §3 failure modes, post templates), built from
//!   [`fediscope_synthgen::ScenarioSeeds`];
//! * [`DynamicsEngine`] — the tick loop: a single-threaded control
//!   phase applies events in `(time, sequence)` order, then a
//!   measurement phase fans out per instance across the rayon pool
//!   (sized by `FEDISCOPE_THREADS` via
//!   `rayon::ThreadPoolBuilder`), pushing every live neighbor's
//!   emissions through the receiver's `filter_fast` and the
//!   Perspective scorer;
//! * [`DynamicsTrace`] — per-tick metrics (federation link count,
//!   rejected posts/users, per-instance toxic exposure) that
//!   `fediscope-analysis` turns into time-series tables next to the
//!   paper's static figures;
//! * the [`Scenario`] trait with four shipped scenarios
//!   ([`scenarios`]): staged policy rollout, defederation cascade,
//!   §3-taxonomy instance churn, and a toxicity-storm burst workload —
//!   plus [`scenarios::Composite`], which multiplexes any of them over
//!   one timeline (storm + churn + rollout in a single run) with
//!   deterministic per-sub RNG stream splitting;
//! * [`LiveNetBridge`] — the dynamics ↔ simnet round-trip: an
//!   [`EventSink`] that mirrors `GoDown`/`Recover` onto a shared
//!   [`fediscope_simnet::SimNet`] via `set_failure` and tears follow
//!   edges down through `InstanceServer::defederate`, so the §3
//!   crawler can census a *churning* network mid-scenario (the async
//!   driver lives in the root crate's `fediscope::census`);
//! * the **experiment layer** — [`EngineBuilder`] stamps engines from
//!   one shared `Arc<ScenarioSeeds>`, [`Experiment`]/[`Arm`] run N
//!   named scenario arms (identical seed, tick budget and world) across
//!   the rayon pool, and [`TraceDelta`] pairs a treatment arm against a
//!   designated baseline arm tick by tick — the A/B harness that turns
//!   "how much toxic exposure did this rollout prevent?" from an
//!   eyeballed two-run comparison into an exact per-tick counterfactual.
//!
//! # Experiment determinism
//!
//! The experiment harness adds **zero behavioural drift**: an arm's
//! trace is bit-identical to a standalone [`DynamicsEngine::run`] of
//! the same scenario over the same seeds and config, at any
//! `FEDISCOPE_THREADS` and under any arm registration order — arms
//! share only immutable seeds, every arm builds its own state, and the
//! pool decides when an arm runs, never what it computes
//! (`tests/experiment_identity.rs` proptests this at 1/2/8 workers
//! under arm-order permutation). Paired deltas are therefore exact:
//! identical senders draw identical posts in every arm, so any
//! difference is attributable to the arms' diverging moderation state.
//!
//! # Time: ticks vs. wall clock
//!
//! The engine has no wall clock. One tick spans
//! [`DynamicsConfig::tick_len`] of *logical* time — by default the
//! paper's 4-hour snapshot cadence
//! ([`fediscope_core::time::SNAPSHOT_INTERVAL`]), so 6 ticks ≈ one
//! simulated day and the default 42-tick run ≈ one simulated week.
//! Tick `t` carries the logical timestamp `start + tick_len × t`;
//! nothing anywhere maps ticks to real seconds, which is why traces are
//! reproducible on any machine at any load. Round-trip census runs are
//! paced in the same units: [`CensusCadence::every_ticks`] (default 6,
//! i.e. one census per simulated day; tick 0 and the final tick always
//! census) decides after which ticks the crawler re-measures the
//! bridged network.
//!
//! # Determinism
//!
//! Same seeds + same scenario ⇒ **bit-identical trace at any thread
//! count**, by construction: all mutation happens in the totally-ordered
//! control phase; measurement randomness derives per `(seed, tick,
//! sender)` rather than from any shared stream; and per-instance floats
//! are reduced in fixed instance order. The crate's proptests run every
//! scenario at 1, 2 and 8 workers and compare whole traces with `==`.
//!
//! # Delivery-reliability contract
//!
//! Real Pleroma redrives failed inbox deliveries from a retry queue;
//! the engine models that as a first-class layer, off by default and
//! enabled per run by [`scenarios::ReliabilityScenario`] installing a
//! [`RetryPolicy`] on the [`NetworkState`]. The contract:
//!
//! * **Chain opening.** When a `GoDown` applies on an up→down edge in
//!   the control phase, every live federation neighbor's pending batch
//!   to that receiver opens a retry chain — at most one chain per
//!   directed `(sender, receiver)` edge, so overlapping outages never
//!   double-schedule. Receivers that go down with a *permanent* §3 mode
//!   (404/403/410) skip the queue and dead-letter immediately.
//! * **Backoff derivation.** Attempt `n` fires `base·2^(n−1) + jitter`
//!   after the previous one (doublings capped at 2^20, saturating
//!   arithmetic throughout). `jitter` is drawn uniformly from
//!   `[0, base)` by a throwaway `SmallRng` seeded with
//!   `seed ⊕ sender·0x9e3779b97f4a7c15 ⊕ attempt·0xc2b2ae3d27d4eb4f` —
//!   the same per-entity stream-splitting scheme the measurement phase
//!   uses, keyed on `(seed, sender, attempt)` instead of a shared
//!   stream. With the default policy (5 attempts, 1 h base) a chain
//!   reaches ≈ 31–36 h, deliberately straddling the churn scenario's
//!   12 h transient outages.
//! * **Determinism guarantee.** Retry events ride the same calendar
//!   [`EventQueue`] and are applied in the same single-threaded
//!   `(time, seq)` total order as every other event; jitter never
//!   touches the control RNG. Enabling retries therefore perturbs *no*
//!   other scenario's stream, and traces stay bit-identical at any
//!   `FEDISCOPE_THREADS` (proptested at 1/2/8 workers).
//! * **Dead-letter semantics.** A chain settles exactly once: as
//!   `recovered` (an attempt found the receiver up — credited to the
//!   receiver) or as `dead_lettered` (budget exhausted, permanent
//!   failure class at fire time, or the link was severed mid-window —
//!   credited to the sender). [`TickTrace`] carries per-tick
//!   `retried`/`recovered`/`dead_lettered` columns, digested and
//!   diffed by [`TraceDelta`] like every other metric, so a retry-on
//!   vs retry-off experiment pair attributes every redelivery to its
//!   exact tick.
//!
//! ```
//! use fediscope_dynamics::{DynamicsConfig, DynamicsEngine};
//! use fediscope_dynamics::scenarios::{CascadeConfig, DefederationCascadeScenario};
//! use fediscope_synthgen::{ScenarioSeeds, World, WorldConfig};
//!
//! let world = World::generate(WorldConfig::test_small());
//! let seeds = ScenarioSeeds::from_world(&world);
//! let mut engine = DynamicsEngine::new(DynamicsConfig::with_seed(seeds.seed), &seeds);
//! let mut scenario = DefederationCascadeScenario::new(CascadeConfig::default());
//! let trace = engine.run(&mut scenario);
//! assert!(trace.final_links() <= trace.initial_links());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod bridge;
mod delta;
mod engine;
mod event;
mod experiment;
mod scenario;
mod sink;
mod state;
mod trace;

pub mod scenarios;

pub use bridge::{BridgeStats, CensusCadence, CensusSnapshot, LiveNetBridge};
pub use delta::{TickDelta, TraceDelta};
pub use engine::{DynamicsConfig, DynamicsEngine, EngineBuilder, MeasureMode};
pub use event::{Event, EventQueue, Scheduled};
pub use experiment::{Arm, ArmRun, Experiment, ExperimentResult};
pub use scenario::Scenario;
pub use sink::EventSink;
pub use state::{InstanceState, NetworkState, PostTemplate, RetryPolicy, SharedColumns};
pub use trace::{failure_mix_index, DynamicsTrace, TickTrace};

#[cfg(test)]
pub(crate) mod testutil {
    use fediscope_synthgen::{ScenarioSeeds, World, WorldConfig};
    use std::sync::{Arc, OnceLock};

    /// One shared small-world seed set per test binary (world generation
    /// dominates test time; every test reads the same immutable extract).
    pub fn seeds() -> &'static ScenarioSeeds {
        static SEEDS: OnceLock<ScenarioSeeds> = OnceLock::new();
        SEEDS.get_or_init(|| ScenarioSeeds::from_world(&World::generate(WorldConfig::test_small())))
    }

    /// The same extract behind an [`Arc`], the shape [`crate::EngineBuilder`]
    /// shares across experiment arms.
    pub fn seeds_arc() -> Arc<ScenarioSeeds> {
        static ARC: OnceLock<Arc<ScenarioSeeds>> = OnceLock::new();
        Arc::clone(ARC.get_or_init(|| Arc::new(seeds().clone())))
    }
}
