//! The event-sink hook: mirroring engine state onto external systems.
//!
//! The engine's state lives entirely in memory ([`NetworkState`]); a
//! sink lets an external system — a live `SimNet` the crawler probes,
//! a metrics collector, a test recorder — track the same evolution
//! without the engine knowing anything about it. Sinks are strictly
//! one-way observers: they receive events *after* application and can
//! never influence the control phase, so attaching one cannot perturb
//! the determinism contract (same seed ⇒ bit-identical trace).

use crate::event::Event;
use crate::state::NetworkState;

/// Observes the engine's state transitions.
///
/// Implemented by [`crate::LiveNetBridge`] to keep a shared `SimNet`
/// in step with the simulation; tests implement it to record event
/// streams.
pub trait EventSink {
    /// Full-state resynchronisation. Called by
    /// [`crate::DynamicsEngine::begin`] after the scenario's `init` ran:
    /// scenarios rewrite state directly there (churn resets every
    /// failure mode, rollouts strip moderation), and none of those
    /// rewrites flow through the event queue.
    fn sync(&mut self, state: &NetworkState);

    /// Called after the engine applied `event` during a control phase.
    /// `applied` is false when the event was a no-op on engine state
    /// (link already gone, rate unchanged, ...); `state` is the
    /// post-application state.
    fn on_event(&mut self, event: &Event, applied: bool, state: &NetworkState);
}
