//! The pluggable scenario contract.

use crate::event::{EventQueue, Scheduled};
use crate::state::NetworkState;
use fediscope_core::time::SimTime;
use rand::rngs::SmallRng;

/// A scenario seeds the event queue and reacts to applied events.
///
/// The split of responsibilities is what keeps runs replayable:
///
/// * the **engine** owns every mechanical state transition (it applies
///   [`crate::Event`]s), so the same event stream always produces the
///   same state;
/// * the **scenario** owns the narrative — which events exist, when, and
///   what follows from them. Both its hooks run inside the
///   single-threaded control phase with a deterministic control RNG, so
///   anything it schedules is part of the total order.
pub trait Scenario {
    /// Display name (lands in the trace).
    fn name(&self) -> &'static str;

    /// Prepares initial state (e.g. stripping moderation for a rollout)
    /// and schedules the opening events. Called once before tick 0.
    fn init(
        &mut self,
        start: SimTime,
        state: &mut NetworkState,
        queue: &mut EventQueue,
        rng: &mut SmallRng,
    );

    /// Called after the engine applied `event`. `applied` is false when
    /// the event was a no-op (link already gone, rate unchanged, ...) —
    /// cascade scenarios use it as their propagation gate. Default: no
    /// reaction.
    fn after_event(
        &mut self,
        event: &Scheduled,
        applied: bool,
        state: &NetworkState,
        queue: &mut EventQueue,
        rng: &mut SmallRng,
    ) {
        let _ = (event, applied, state, queue, rng);
    }
}
