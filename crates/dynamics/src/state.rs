//! The mutable network state a scenario evolves.
//!
//! Built once from [`ScenarioSeeds`], then mutated only by the engine's
//! single-threaded control phase (event application). The parallel
//! measurement phase reads it immutably, which is what makes the
//! per-tick fan-out safe *and* bit-reproducible: no worker ever observes
//! a state another worker is changing.

use crate::trace::failure_mix_index;
use fediscope_core::catalog::PolicyKind;
use fediscope_core::config::{InstanceModerationConfig, PipelinePool};
use fediscope_core::id::{Domain, PostId, UserId, UserRef};
use fediscope_core::model::{Activity, Post};
use fediscope_core::mrf::policies::SimpleAction;
use fediscope_core::mrf::MrfPipeline;
use fediscope_core::rollout::RolloutWave;
use fediscope_core::time::{SimDuration, CAMPAIGN_START};
use fediscope_simnet::{FailureClass, FailureMode};
use fediscope_synthgen::ScenarioSeeds;
use fediscope_telemetry::{HotCounter, Telemetry};
use std::collections::HashMap;
use std::sync::Arc;

/// Configuration of the delivery-reliability layer: how a retry-enabled
/// run redelivers batches lost to transient failures.
///
/// Multiply-xor hasher for the retry ledger's dense `(sender, receiver)`
/// edge keys. The keys are small engine-internal integers, never
/// attacker-controlled, and the ledger is probed on every retry-chain
/// open/settle — std's SipHash would cost more than the rest of the
/// operation. The map is never iterated, so hash order cannot leak into
/// traces (determinism contract).
#[derive(Default)]
struct EdgeHasher(u64);

impl std::hash::Hasher for EdgeHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
    }

    fn write_u32(&mut self, n: u32) {
        self.0 = (self.0 ^ n as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        self.0 ^= self.0 >> 29;
    }
}

/// Attempt `n` (1-based) fires `base_backoff · 2^(n-1)` plus a jitter in
/// `[0, base_backoff)` after the previous failure — the classic
/// exponential-backoff-with-full-jitter schedule Pleroma's federator
/// publisher uses, with the jitter drawn from a per-`(seed, sender,
/// attempt)` stream so the schedule is a pure function of the run seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Redelivery attempts per batch before it dead-letters.
    pub max_attempts: u32,
    /// Base backoff delay (doubles each attempt).
    pub base_backoff: SimDuration,
}

impl Default for RetryPolicy {
    /// Five attempts on a 1-hour base: cumulative reach ≈ 1+2+4+8+16 =
    /// 31–36 h, enough to straddle the churn scenario's 12 h outages.
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 5,
            base_backoff: SimDuration::hours(1),
        }
    }
}

impl RetryPolicy {
    /// Delay before attempt `attempt` (1-based). `jitter` must already
    /// be reduced to `[0, base_backoff)` by the caller's deterministic
    /// stream. The exponential term saturates instead of overflowing.
    pub fn backoff(&self, attempt: u32, jitter_secs: u64) -> SimDuration {
        let doublings = attempt.saturating_sub(1).min(20);
        SimDuration(
            self.base_backoff
                .0
                .saturating_mul(1u64 << doublings)
                .saturating_add(jitter_secs),
        )
    }
}

/// A reusable inbound post: the pre-built `Create` activity plus the raw
/// text the scorer reads (kept separate so scoring never has to reach
/// through the payload).
#[derive(Debug, Clone)]
pub struct PostTemplate {
    /// Authoring user id.
    pub author: u64,
    /// Post text — the seed template's shared allocation, refcounted,
    /// never copied.
    pub content: std::sync::Arc<str>,
    /// The deliverable activity.
    pub activity: Activity,
}

/// One instance's live state.
#[derive(Debug)]
pub struct InstanceState {
    /// The instance domain.
    pub domain: Domain,
    /// Whether the instance runs Pleroma.
    pub pleroma: bool,
    /// Current network behaviour ([`FailureMode::Healthy`] = answering).
    pub failure: FailureMode,
    /// The §3 failure mode the world assigned (what churn replays).
    pub seed_failure: FailureMode,
    /// Emission-rate multiplier (storm bursts raise it).
    pub rate: f64,
    /// Posts emitted per tick at `rate == 1.0`.
    pub base_emission: u32,
    /// Whether the instance has changed moderation since the run began.
    pub adopted: bool,
    /// Currently active moderation configuration. Shared (`Arc`) with
    /// every instance whose seed config is structurally identical; the
    /// mutators below diverge it copy-on-write via `Arc::make_mut`, so
    /// an unmutated instance never owns a private copy.
    pub moderation: Arc<InstanceModerationConfig>,
    /// Compiled pipeline of `moderation`, kept in step incrementally:
    /// waves and blocks merge into it through the MRF delta API
    /// (O(delta)); only a full reset recompiles it from scratch.
    /// Interned: seed-identical configs share one compiled pipeline
    /// ([`PipelinePool`]) and diverge copy-on-write on first mutation.
    pub pipeline: Arc<MrfPipeline>,
    /// The final configuration the seeds prescribe (rollout target).
    /// Never mutated — at seed time it aliases `moderation`.
    pub target: Arc<InstanceModerationConfig>,
    /// Inbound-post templates — one shared column per instance, aliased
    /// by every engine built over the same [`SharedColumns`].
    pub templates: Arc<[PostTemplate]>,
    /// Registered users.
    pub users: u32,
    /// Ground truth: instances rejecting this one.
    pub rejects_received: u32,
    /// Delivery batches redelivered to this instance after it recovered
    /// from a transient outage (retry-enabled runs only).
    pub recovered_batches: u64,
    /// Posts riding in those recovered batches.
    pub recovered_posts: u64,
    /// Outbound batches this instance gave up on (budget exhausted,
    /// permanent receiver death, or mid-retry defederation).
    pub dead_letter_batches: u64,
    /// Posts riding in those dead-lettered batches.
    pub dead_letter_posts: u64,
}

impl InstanceState {
    /// Whether the instance answers the network.
    pub fn up(&self) -> bool {
        self.failure == FailureMode::Healthy
    }

    /// Posts this instance emits per tick right now, capped at `cap`.
    pub fn emissions(&self, cap: u64) -> u64 {
        if cap == 0 || self.templates.is_empty() || !self.up() {
            return 0;
        }
        ((self.base_emission as f64 * self.rate).round() as u64).min(cap)
    }
}

/// The whole simulated network.
#[derive(Debug)]
pub struct NetworkState {
    /// Per-instance state, indexed like the seeds. Mutate `failure`,
    /// `adopted` and moderation only through the state methods
    /// ([`set_failure`](Self::set_failure),
    /// [`apply_wave`](Self::apply_wave), …): they keep the O(1)
    /// aggregate counters below in step, which is what lets the engine
    /// close a tick without an O(instances) sweep.
    pub instances: Vec<InstanceState>,
    /// Sorted neighbor lists (undirected federation links).
    neighbors: Vec<Vec<u32>>,
    link_count: u64,
    by_domain: HashMap<String, u32>,
    adoption_order: Vec<u32>,
    /// Instances currently answering the network.
    up_count: u64,
    /// Instances whose moderation changed since the run began.
    adopted_count: u64,
    /// Down instances by §3 failure-taxonomy slot
    /// ([`failure_mix_index`]): `[404, 403, 502, 503, 410]`.
    failure_mix: [u64; 5],
    /// Reliability layer: `None` (the default) means failed deliveries
    /// are terminal, exactly the pre-retry engine behaviour. A scenario
    /// opts in via [`enable_retries`](Self::enable_retries) — enablement
    /// lives on the state, not the engine config, so paired experiment
    /// arms can differ on it while sharing one `DynamicsConfig`
    /// (zero-drift contract).
    retry: Option<RetryPolicy>,
    /// Open retry chains: `(sender, receiver) → last scheduled attempt`.
    /// At most one chain per directed edge; re-failures while a chain is
    /// open fold into it instead of double-scheduling. Keyed with
    /// [`EdgeHasher`]: a churn storm opens/settles a chain per inbound
    /// edge per outage, and std's SipHash dominated that drain.
    pending_retries: HashMap<(u32, u32), u32, std::hash::BuildHasherDefault<EdgeHasher>>,
    /// Batches recovered across all instances — maintained
    /// incrementally, O(1).
    recovered_total: u64,
    /// Batches dead-lettered across all instances — maintained
    /// incrementally, O(1).
    dead_letter_total: u64,
    /// Cached per-instance `emissions(cap)` column, rebuilt lazily by
    /// [`refresh_emissions`](Self::refresh_emissions). Invalidated by the
    /// churn mutators ([`set_failure`](Self::set_failure) /
    /// [`set_rate`](Self::set_rate)) — the only post-construction writes
    /// that change an instance's emission count.
    emissions_col: Vec<u64>,
    /// The cap the cached column was computed for.
    emissions_col_cap: u64,
    /// Whether a churn event invalidated the cached column.
    emissions_dirty: bool,
}

/// The per-instance template column for instance `i`: the seed template
/// set turned into deliverable activities. Ids embed the instance index,
/// so the column is a pure function of `(seeds, i)` — which is what lets
/// [`SharedColumns`] build it once and every engine alias it.
fn template_column(seeds: &ScenarioSeeds, i: usize) -> Vec<PostTemplate> {
    let domain = &seeds.domains[i];
    seeds.templates[i]
        .iter()
        .enumerate()
        .map(|(k, t)| {
            let author = UserRef::new(UserId(t.author), domain.clone());
            // The template body is the seed's shared allocation — the
            // engine never copies post text, only refcounts.
            let post = Post::stub(
                PostId(((i as u64) << 24) | k as u64),
                author,
                CAMPAIGN_START,
                t.content.clone(),
            );
            PostTemplate {
                author: t.author,
                content: t.content.clone(),
                activity: Activity::create(
                    fediscope_core::id::ActivityId((i as u64) << 24 | k as u64),
                    post,
                ),
            }
        })
        .collect()
}

/// The `Arc`-shared slice of one instance's state — what distinguishes
/// the interned construction path from the reference one.
struct InstanceParts {
    moderation: Arc<InstanceModerationConfig>,
    pipeline: Arc<MrfPipeline>,
    target: Arc<InstanceModerationConfig>,
    templates: Arc<[PostTemplate]>,
}

/// The seed-derived, instance-indexed columns every engine built over
/// the same [`ScenarioSeeds`] can share by refcount: interned compiled
/// pipelines, the moderation configs behind them, and the pre-built
/// template sets. Building the columns is the expensive part of
/// [`NetworkState::from_seeds`]; paired experiment arms (or repeated
/// runs over one seed set) pay it once via
/// [`NetworkState::from_seeds_shared`].
#[derive(Debug)]
pub struct SharedColumns {
    templates: Vec<Arc<[PostTemplate]>>,
    pipelines: Vec<Arc<MrfPipeline>>,
    configs: Vec<Arc<InstanceModerationConfig>>,
    intern_hits: u64,
    intern_misses: u64,
    intern_distinct: usize,
}

impl SharedColumns {
    /// Builds the columns: one [`PipelinePool`] lookup per instance (so
    /// seed-identical configs share one compiled pipeline), one template
    /// column per instance (empty sets all alias a single allocation).
    /// Reports the pool's hit/miss tallies to telemetry as two batched
    /// adds — no per-instance atomics, nothing the zero-drift contract
    /// can see.
    pub fn build(seeds: &ScenarioSeeds) -> SharedColumns {
        let mut pool = PipelinePool::new();
        let empty: Arc<[PostTemplate]> = Arc::from(Vec::new());
        let mut templates = Vec::with_capacity(seeds.len());
        let mut pipelines = Vec::with_capacity(seeds.len());
        let mut configs = Vec::with_capacity(seeds.len());
        for i in 0..seeds.len() {
            let column = template_column(seeds, i);
            templates.push(if column.is_empty() {
                Arc::clone(&empty)
            } else {
                Arc::from(column)
            });
            pipelines.push(pool.get(&seeds.moderation[i]));
            configs.push(Arc::new(seeds.moderation[i].clone()));
        }
        let telemetry = Telemetry::global();
        telemetry.add(HotCounter::PipelineInternHits, pool.hits());
        telemetry.add(HotCounter::PipelineInternMisses, pool.misses());
        SharedColumns {
            templates,
            pipelines,
            configs,
            intern_hits: pool.hits(),
            intern_misses: pool.misses(),
            intern_distinct: pool.distinct(),
        }
    }

    /// Pipeline lookups served by sharing during the build.
    pub fn intern_hits(&self) -> u64 {
        self.intern_hits
    }

    /// Pipeline lookups that compiled fresh during the build.
    pub fn intern_misses(&self) -> u64 {
        self.intern_misses
    }

    /// Distinct moderation configs across the seed set.
    pub fn intern_distinct(&self) -> usize {
        self.intern_distinct
    }

    /// Number of instances the columns cover.
    pub fn len(&self) -> usize {
        self.configs.len()
    }

    /// Whether the columns are empty.
    pub fn is_empty(&self) -> bool {
        self.configs.is_empty()
    }
}

impl NetworkState {
    /// Builds the initial state from seeds: every instance runs its final
    /// seed moderation, links come from the Peers API extract, and
    /// everyone starts in their seed failure mode. Compiled pipelines are
    /// interned ([`SharedColumns`]) — instances with structurally equal
    /// configs share one `Arc<MrfPipeline>` until a wave/block/reset
    /// diverges them copy-on-write.
    pub fn from_seeds(seeds: &ScenarioSeeds) -> NetworkState {
        NetworkState::from_seeds_shared(seeds, &SharedColumns::build(seeds))
    }

    /// Builds the state over pre-built [`SharedColumns`]: every `Arc`
    /// column is refcounted, not cloned, so a second engine over the same
    /// seeds costs O(instances) pointer bumps instead of a rebuild.
    pub fn from_seeds_shared(seeds: &ScenarioSeeds, columns: &SharedColumns) -> NetworkState {
        assert_eq!(columns.len(), seeds.len(), "columns must match the seeds");
        NetworkState::assemble(seeds, |i| InstanceParts {
            moderation: Arc::clone(&columns.configs[i]),
            pipeline: Arc::clone(&columns.pipelines[i]),
            target: Arc::clone(&columns.configs[i]),
            templates: Arc::clone(&columns.templates[i]),
        })
    }

    /// The pre-interning construction path, kept as the differential
    /// oracle: every instance compiles its own pipeline and owns private
    /// config/template allocations — no sharing anywhere. Traces from a
    /// state built here must be bit-identical to the interned path (the
    /// `interned_vs_reference` proptest pins this).
    pub fn from_seeds_reference(seeds: &ScenarioSeeds) -> NetworkState {
        NetworkState::assemble(seeds, |i| {
            let moderation = seeds.moderation[i].clone();
            let pipeline = Arc::new(moderation.build_pipeline());
            InstanceParts {
                moderation: Arc::new(moderation.clone()),
                pipeline,
                target: Arc::new(moderation),
                templates: Arc::from(template_column(seeds, i)),
            }
        })
    }

    /// The shared assembly under every construction path: scalar columns
    /// come straight from the seeds, the `Arc`-shared parts from
    /// `parts(i)`.
    fn assemble(
        seeds: &ScenarioSeeds,
        mut parts: impl FnMut(usize) -> InstanceParts,
    ) -> NetworkState {
        let instances: Vec<InstanceState> = (0..seeds.len())
            .map(|i| {
                let InstanceParts {
                    moderation,
                    pipeline,
                    target,
                    templates,
                } = parts(i);
                // Posty instances emit more per tick, saturating at 8 —
                // enough spread to make storm multipliers visible without
                // letting one giant drown the trace.
                let base_emission = if templates.is_empty() {
                    0
                } else {
                    1 + (seeds.posts_full_scale[i] / 25_000).min(7) as u32
                };
                InstanceState {
                    domain: seeds.domains[i].clone(),
                    pleroma: seeds.pleroma[i],
                    failure: seeds.failures[i],
                    seed_failure: seeds.failures[i],
                    rate: 1.0,
                    base_emission,
                    adopted: false,
                    pipeline,
                    target,
                    moderation,
                    templates,
                    users: seeds.users[i],
                    rejects_received: seeds.rejects_received[i],
                    recovered_batches: 0,
                    recovered_posts: 0,
                    dead_letter_batches: 0,
                    dead_letter_posts: 0,
                }
            })
            .collect();
        let mut neighbors: Vec<Vec<u32>> = vec![Vec::new(); instances.len()];
        for &(a, b) in &seeds.links {
            neighbors[a as usize].push(b);
            neighbors[b as usize].push(a);
        }
        for list in &mut neighbors {
            list.sort_unstable();
        }
        let by_domain = instances
            .iter()
            .enumerate()
            .map(|(i, inst)| (inst.domain.as_str().to_string(), i as u32))
            .collect();
        let mut up_count = 0;
        let mut failure_mix = [0u64; 5];
        for inst in &instances {
            if inst.up() {
                up_count += 1;
            } else if let Some(idx) = failure_mix_index(inst.failure) {
                failure_mix[idx] += 1;
            }
        }
        NetworkState {
            instances,
            neighbors,
            link_count: seeds.links.len() as u64,
            by_domain,
            adoption_order: seeds.adoption_order().iter().map(|&i| i as u32).collect(),
            up_count,
            adopted_count: 0,
            failure_mix,
            retry: None,
            pending_retries: HashMap::default(),
            recovered_total: 0,
            dead_letter_total: 0,
            emissions_col: Vec::new(),
            emissions_col_cap: 0,
            emissions_dirty: true,
        }
    }

    /// Rebuilds the cached emissions column for `cap` if a churn event
    /// invalidated it (or the cap changed) since the last refresh. O(1)
    /// when clean — the common case on churn-free ticks.
    pub fn refresh_emissions(&mut self, cap: u64) {
        if !self.emissions_dirty && self.emissions_col_cap == cap {
            return;
        }
        self.emissions_col.clear();
        self.emissions_col
            .extend(self.instances.iter().map(|inst| inst.emissions(cap)));
        self.emissions_col_cap = cap;
        self.emissions_dirty = false;
    }

    /// The cached per-instance emissions column. Only meaningful after a
    /// same-tick [`refresh_emissions`](Self::refresh_emissions) with the
    /// engine's cap.
    pub fn emissions_col(&self) -> &[u64] {
        &self.emissions_col
    }

    /// Turns the delivery-reliability layer on. Called from a scenario's
    /// `init`; the engine consults the policy when instances go down.
    pub fn enable_retries(&mut self, policy: RetryPolicy) {
        self.retry = Some(policy);
    }

    /// The active retry policy, if the run opted in.
    pub fn retry_policy(&self) -> Option<RetryPolicy> {
        self.retry
    }

    /// Clears every trace of the reliability layer: policy, open chains
    /// and all counters. The engine calls this at `begin()` so a reused
    /// engine never leaks retry state (or enablement) across runs.
    pub fn reset_reliability(&mut self) {
        self.retry = None;
        self.pending_retries.clear();
        self.recovered_total = 0;
        self.dead_letter_total = 0;
        for inst in &mut self.instances {
            inst.recovered_batches = 0;
            inst.recovered_posts = 0;
            inst.dead_letter_batches = 0;
            inst.dead_letter_posts = 0;
        }
    }

    /// Opens a retry chain for the directed edge `sender → receiver`,
    /// recording attempt 1 as scheduled. Returns `false` (and changes
    /// nothing) if a chain is already open — the existing schedule
    /// absorbs the new failure.
    pub fn open_retry_chain(&mut self, sender: u32, receiver: u32) -> bool {
        use std::collections::hash_map::Entry;
        match self.pending_retries.entry((sender, receiver)) {
            Entry::Occupied(_) => false,
            Entry::Vacant(v) => {
                v.insert(1);
                true
            }
        }
    }

    /// Records that the chain's next attempt is scheduled.
    pub fn bump_retry_attempt(&mut self, sender: u32, receiver: u32, attempt: u32) {
        self.pending_retries.insert((sender, receiver), attempt);
    }

    /// Closes the chain with a successful redelivery, crediting the
    /// recovered batch to the receiver.
    pub fn settle_recovered(&mut self, sender: u32, receiver: u32, posts: u64) {
        self.pending_retries.remove(&(sender, receiver));
        let inst = &mut self.instances[receiver as usize];
        inst.recovered_batches += 1;
        inst.recovered_posts += posts;
        self.recovered_total += 1;
    }

    /// Closes the chain by giving up, parking the batch in the sender's
    /// dead-letter queue.
    pub fn settle_dead_letter(&mut self, sender: u32, receiver: u32, posts: u64) {
        self.pending_retries.remove(&(sender, receiver));
        let inst = &mut self.instances[sender as usize];
        inst.dead_letter_batches += 1;
        inst.dead_letter_posts += posts;
        self.dead_letter_total += 1;
    }

    /// Whether a chain is open for the directed edge `sender → receiver`.
    pub fn retry_pending(&self, sender: u32, receiver: u32) -> bool {
        self.pending_retries.contains_key(&(sender, receiver))
    }

    /// Open retry chains right now.
    pub fn pending_retry_count(&self) -> usize {
        self.pending_retries.len()
    }

    /// Batches recovered across all instances — O(1).
    pub fn recovered_total(&self) -> u64 {
        self.recovered_total
    }

    /// Batches dead-lettered across all instances — O(1).
    pub fn dead_letter_total(&self) -> u64 {
        self.dead_letter_total
    }

    /// The retry class of instance `i`'s current condition: `None` while
    /// it answers, otherwise whether its §3 failure mode is worth
    /// retrying.
    pub fn failure_class_of(&self, i: u32) -> Option<FailureClass> {
        self.instances[i as usize].failure.class()
    }

    /// Instances currently answering the network — maintained
    /// incrementally, O(1).
    pub fn up_count(&self) -> u64 {
        self.up_count
    }

    /// Instances whose moderation changed since the run began —
    /// maintained incrementally, O(1).
    pub fn adopted_count(&self) -> u64 {
        self.adopted_count
    }

    /// Down instances by §3 failure-taxonomy slot (`[404, 403, 502,
    /// 503, 410]`, the [`failure_mix_index`] order) — maintained
    /// incrementally, O(1).
    pub fn failure_mix(&self) -> [u64; 5] {
        self.failure_mix
    }

    /// The canonical rollout adoption order, carried verbatim from
    /// [`ScenarioSeeds::adoption_order`]: instances with a non-default
    /// final config, heaviest reject lists first.
    pub fn adoption_order(&self) -> &[u32] {
        &self.adoption_order
    }

    /// Number of instances.
    pub fn len(&self) -> usize {
        self.instances.len()
    }

    /// True if the network is empty.
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }

    /// Current federation neighbors of `i`, sorted ascending.
    pub fn neighbors(&self, i: usize) -> &[u32] {
        &self.neighbors[i]
    }

    /// Live federation links (undirected).
    pub fn link_count(&self) -> u64 {
        self.link_count
    }

    /// Whether `a` and `b` are currently linked.
    pub fn linked(&self, a: u32, b: u32) -> bool {
        self.neighbors[a as usize].binary_search(&b).is_ok()
    }

    /// Instance index for a domain.
    pub fn index_of(&self, domain: &str) -> Option<u32> {
        self.by_domain.get(domain).copied()
    }

    /// Removes the undirected link `a`–`b`; returns whether it existed.
    pub fn unlink(&mut self, a: u32, b: u32) -> bool {
        let Ok(pos) = self.neighbors[a as usize].binary_search(&b) else {
            return false;
        };
        self.neighbors[a as usize].remove(pos);
        if let Ok(pos) = self.neighbors[b as usize].binary_search(&a) {
            self.neighbors[b as usize].remove(pos);
        }
        self.link_count -= 1;
        true
    }

    /// Applies a rollout wave to instance `i`, updating its compiled
    /// pipeline in place through the delta API — O(wave), never
    /// O(policy). Returns whether the wave changed anything.
    pub fn apply_wave(&mut self, i: u32, wave: &RolloutWave) -> bool {
        if wave.is_empty() {
            return false;
        }
        let inst = &mut self.instances[i as usize];
        // First wave on a shared config/pipeline diverges this instance
        // copy-on-write; later waves find the refcount at 1 and mutate in
        // place, so the delta API stays O(wave).
        let pipeline = Arc::make_mut(&mut inst.pipeline);
        Arc::make_mut(&mut inst.moderation).apply_wave_compiled(wave, pipeline);
        self.mark_adopted(i as usize);
        true
    }

    /// Flags instance `i` as having changed moderation, keeping the
    /// adopted counter in step.
    fn mark_adopted(&mut self, i: usize) {
        if !self.instances[i].adopted {
            self.instances[i].adopted = true;
            self.adopted_count += 1;
        }
    }

    /// Instance `a` defederates from `t`: reject-lists `t`'s domain as a
    /// one-target delta on the compiled pipeline, and tears the link
    /// down. Returns whether a live link was actually severed (the
    /// cascade propagation gate — re-blocking an already-severed pair is
    /// a no-op and must not re-trigger imitation).
    pub fn defederate(&mut self, a: u32, t: u32) -> bool {
        let target_domain = self.instances[t as usize].domain.clone();
        let inst = &mut self.instances[a as usize];
        let already = inst
            .moderation
            .simple
            .as_ref()
            .map(|s| s.matches(SimpleAction::Reject, &target_domain))
            .unwrap_or(false);
        if !already {
            // A block diverges a shared config/pipeline copy-on-write —
            // the instances still sharing the seed allocation are
            // untouched.
            let pipeline = Arc::make_mut(&mut inst.pipeline);
            let moderation = Arc::make_mut(&mut inst.moderation);
            moderation.enable_compiled(PolicyKind::Simple, pipeline);
            moderation
                .simple
                .get_or_insert_with(Default::default)
                .add_target(SimpleAction::Reject, target_domain.clone());
            if !pipeline.add_simple_target(SimpleAction::Reject, target_domain) {
                // Out-of-step pipeline (cannot happen through this API):
                // reference path.
                inst.pipeline = Arc::new(inst.moderation.build_pipeline());
            }
            self.mark_adopted(a as usize);
        }
        self.unlink(a, t)
    }

    /// Forces a failure mode; returns whether it changed. Keeps the
    /// up/failure-mix counters in step (O(1)).
    pub fn set_failure(&mut self, i: u32, mode: FailureMode) -> bool {
        let old = self.instances[i as usize].failure;
        if old == mode {
            return false;
        }
        match failure_mix_index(old) {
            None => self.up_count -= 1,
            Some(idx) => self.failure_mix[idx] -= 1,
        }
        match failure_mix_index(mode) {
            None => self.up_count += 1,
            Some(idx) => self.failure_mix[idx] += 1,
        }
        self.instances[i as usize].failure = mode;
        self.emissions_dirty = true;
        true
    }

    /// Sets the emission multiplier; returns whether it changed.
    pub fn set_rate(&mut self, i: u32, rate: f64) -> bool {
        let inst = &mut self.instances[i as usize];
        let changed = inst.rate != rate;
        inst.rate = rate;
        if changed {
            self.emissions_dirty = true;
        }
        changed
    }

    /// Resets instance `i` to the fresh-install moderation default
    /// (rollout scenarios start everyone here and replay adoption).
    ///
    /// Removal is the one mutation the additive delta API cannot
    /// express, so this is the reference-path site: the default config
    /// is compiled from scratch — O(2) stages, and it runs in scenario
    /// `init`, never in the per-event control phase.
    pub fn reset_moderation_default(&mut self, i: usize) {
        let inst = &mut self.instances[i];
        inst.moderation = Arc::new(if inst.pleroma {
            InstanceModerationConfig::pleroma_default()
        } else {
            InstanceModerationConfig::default()
        });
        inst.pipeline = Arc::new(inst.moderation.build_pipeline());
        if inst.adopted {
            inst.adopted = false;
            self.adopted_count -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::seeds;

    #[test]
    fn state_mirrors_seed_topology() {
        let s = seeds();
        let state = NetworkState::from_seeds(s);
        assert_eq!(state.len(), s.len());
        assert_eq!(state.link_count(), s.links.len() as u64);
        let &(a, b) = s.links.first().unwrap();
        assert!(state.linked(a, b));
        assert!(state.linked(b, a));
    }

    #[test]
    fn unlink_and_defederate() {
        let s = seeds();
        let mut state = NetworkState::from_seeds(s);
        let &(a, b) = s.links.first().unwrap();
        let before = state.link_count();
        assert!(state.defederate(a, b));
        assert!(!state.linked(a, b));
        assert_eq!(state.link_count(), before - 1);
        let target = state.instances[b as usize].domain.clone();
        assert!(state.instances[a as usize]
            .moderation
            .simple
            .as_ref()
            .unwrap()
            .matches(SimpleAction::Reject, &target));
        assert!(state.instances[a as usize].adopted);
        // Re-blocking the severed pair applies nothing new.
        assert!(!state.defederate(a, b));
    }

    #[test]
    fn reset_to_default_disarms_rejects() {
        let s = seeds();
        let mut state = NetworkState::from_seeds(s);
        let rejector = (0..state.len())
            .find(|&i| {
                state.instances[i]
                    .moderation
                    .simple
                    .as_ref()
                    .map(|sp| !sp.targets(SimpleAction::Reject).is_empty())
                    .unwrap_or(false)
            })
            .expect("the seed world has rejectors");
        state.reset_moderation_default(rejector);
        assert!(state.instances[rejector].moderation.simple.is_none());
        // The target config is untouched — rollouts replay it.
        assert!(state.instances[rejector].target.simple.as_ref().is_some());
    }

    #[test]
    fn aggregate_counters_stay_in_step_with_the_instances() {
        let s = seeds();
        let mut state = NetworkState::from_seeds(s);
        let recount = |state: &NetworkState| {
            let mut up = 0u64;
            let mut adopted = 0u64;
            let mut mix = [0u64; 5];
            for inst in &state.instances {
                if inst.up() {
                    up += 1;
                } else if let Some(idx) = failure_mix_index(inst.failure) {
                    mix[idx] += 1;
                }
                if inst.adopted {
                    adopted += 1;
                }
            }
            (up, adopted, mix)
        };
        let check = |state: &NetworkState, what: &str| {
            let (up, adopted, mix) = recount(state);
            assert_eq!(state.up_count(), up, "up after {what}");
            assert_eq!(state.adopted_count(), adopted, "adopted after {what}");
            assert_eq!(state.failure_mix(), mix, "mix after {what}");
        };
        check(&state, "from_seeds");
        state.set_failure(0, FailureMode::Gone);
        state.set_failure(0, FailureMode::Gone); // no-op repeat
        state.set_failure(1, FailureMode::BadGateway);
        check(&state, "failures");
        state.set_failure(0, FailureMode::Healthy);
        check(&state, "recovery");
        let &(a, b) = s.links.first().unwrap();
        state.defederate(a, b);
        state.defederate(a, b); // idempotent re-block
        check(&state, "defederate");
        state.reset_moderation_default(a as usize);
        state.reset_moderation_default(a as usize);
        check(&state, "reset");
        let wave = fediscope_core::rollout::PolicyRollout::staged(
            &state.instances[a as usize].target.clone(),
            1,
            fediscope_core::time::SimDuration::hours(1),
        )
        .waves
        .remove(0);
        state.apply_wave(a, &wave);
        state.apply_wave(a, &wave);
        check(&state, "wave");
    }

    #[test]
    fn reliability_counters_stay_in_step() {
        let s = seeds();
        let mut state = NetworkState::from_seeds(s);
        assert!(state.retry_policy().is_none(), "retries default off");
        state.enable_retries(RetryPolicy::default());
        assert!(state.retry_policy().is_some());
        assert!(state.open_retry_chain(0, 1));
        assert!(!state.open_retry_chain(0, 1), "one chain per directed edge");
        assert!(state.open_retry_chain(2, 1));
        state.bump_retry_attempt(0, 1, 2);
        assert_eq!(state.pending_retry_count(), 2);
        state.settle_recovered(0, 1, 7);
        state.settle_dead_letter(2, 1, 3);
        assert_eq!(state.pending_retry_count(), 0);
        assert_eq!(state.recovered_total(), 1);
        assert_eq!(state.dead_letter_total(), 1);
        // Recovered batches land on the receiver, dead letters on the
        // sender — and the O(1) totals agree with a recount.
        assert_eq!(state.instances[1].recovered_batches, 1);
        assert_eq!(state.instances[1].recovered_posts, 7);
        assert_eq!(state.instances[2].dead_letter_batches, 1);
        assert_eq!(state.instances[2].dead_letter_posts, 3);
        let recovered: u64 = state.instances.iter().map(|i| i.recovered_batches).sum();
        let dead: u64 = state.instances.iter().map(|i| i.dead_letter_batches).sum();
        assert_eq!(recovered, state.recovered_total());
        assert_eq!(dead, state.dead_letter_total());
        state.reset_reliability();
        assert!(state.retry_policy().is_none());
        assert_eq!(state.recovered_total() + state.dead_letter_total(), 0);
        assert_eq!(state.instances[1].recovered_batches, 0);
    }

    #[test]
    fn backoff_schedule_doubles_and_never_overflows() {
        let p = RetryPolicy {
            max_attempts: 3,
            base_backoff: SimDuration::hours(1),
        };
        assert_eq!(p.backoff(1, 0), SimDuration(3600));
        assert_eq!(p.backoff(2, 10), SimDuration(7210));
        assert_eq!(p.backoff(3, 0), SimDuration(14_400));
        let huge = RetryPolicy {
            max_attempts: u32::MAX,
            base_backoff: SimDuration(u64::MAX / 2),
        };
        assert!(huge.backoff(u32::MAX, u64::MAX) >= huge.backoff(1, 0));
    }

    #[test]
    fn failure_class_tracks_the_taxonomy() {
        let s = seeds();
        let mut state = NetworkState::from_seeds(s);
        state.set_failure(0, FailureMode::Healthy);
        assert_eq!(state.failure_class_of(0), None);
        state.set_failure(0, FailureMode::BadGateway);
        assert_eq!(state.failure_class_of(0), Some(FailureClass::Transient));
        state.set_failure(0, FailureMode::Gone);
        assert_eq!(state.failure_class_of(0), Some(FailureClass::Permanent));
    }

    #[test]
    fn interned_pipelines_are_shared_and_diverge_cow() {
        let s = seeds();
        let mut state = NetworkState::from_seeds(s);
        let mut pair = None;
        'outer: for a in 0..state.len() {
            for b in a + 1..state.len() {
                if Arc::ptr_eq(&state.instances[a].pipeline, &state.instances[b].pipeline) {
                    pair = Some((a, b));
                    break 'outer;
                }
            }
        }
        let (a, b) = pair.expect("the seed world repeats moderation configs");
        // At seed time an instance's active and target configs alias one
        // allocation.
        assert!(Arc::ptr_eq(
            &state.instances[a].moderation,
            &state.instances[a].target
        ));
        // A block on `a` diverges only `a`; `b` keeps the shared copy.
        let shared = Arc::clone(&state.instances[b].pipeline);
        let target = if a == 0 { 1 } else { 0 } as u32;
        state.defederate(a as u32, target);
        assert!(!Arc::ptr_eq(
            &state.instances[a].pipeline,
            &state.instances[b].pipeline
        ));
        assert!(Arc::ptr_eq(&state.instances[b].pipeline, &shared));
        assert!(state.instances[b]
            .moderation
            .simple
            .as_ref()
            .is_none_or(|sp| !sp.matches(
                SimpleAction::Reject,
                &state.instances[target as usize].domain
            )));
    }

    #[test]
    fn shared_columns_alias_across_states() {
        let s = seeds();
        let cols = SharedColumns::build(s);
        assert_eq!(cols.intern_hits() + cols.intern_misses(), s.len() as u64);
        assert_eq!(cols.intern_distinct() as u64, cols.intern_misses());
        let s1 = NetworkState::from_seeds_shared(s, &cols);
        let s2 = NetworkState::from_seeds_shared(s, &cols);
        for i in 0..s1.len() {
            assert!(Arc::ptr_eq(
                &s1.instances[i].pipeline,
                &s2.instances[i].pipeline
            ));
            assert!(Arc::ptr_eq(
                &s1.instances[i].templates,
                &s2.instances[i].templates
            ));
            assert!(Arc::ptr_eq(
                &s1.instances[i].moderation,
                &s2.instances[i].moderation
            ));
        }
    }

    #[test]
    fn emissions_scale_with_rate_and_cap() {
        let s = seeds();
        let mut state = NetworkState::from_seeds(s);
        let emitter = (0..state.len())
            .find(|&i| !state.instances[i].templates.is_empty())
            .expect("some instance has posts");
        let base = state.instances[emitter].emissions(64);
        assert!(base >= 1);
        state.set_rate(emitter as u32, 10.0);
        assert!(state.instances[emitter].emissions(u64::MAX) >= base * 9);
        assert_eq!(state.instances[emitter].emissions(2), 2);
        state.set_failure(emitter as u32, FailureMode::Gone);
        assert_eq!(state.instances[emitter].emissions(64), 0);
    }
}
