//! The crawl campaign.

use crate::dataset::{
    CollectedPost, CrawlOutcome, CrawledInstance, Dataset, InstanceMetadata, MetadataSnapshot,
    TimelineCrawl,
};
use fediscope_core::config::InstanceModerationConfig;
use fediscope_core::id::Domain;
use fediscope_core::time::{SimTime, CAMPAIGN_START, SNAPSHOT_INTERVAL};
use fediscope_simnet::{FailureClass, HttpResponse, NetError, SimNet, StatusCode};
use fediscope_telemetry::{ProbeClass, Telemetry};
use std::collections::HashSet;
use std::sync::Arc;
use tokio::sync::Semaphore;
use tokio::task::JoinSet;

/// Crawl parameters.
#[derive(Debug, Clone)]
pub struct CrawlerConfig {
    /// Maximum instances crawled concurrently.
    pub concurrency: usize,
    /// Timeline page size (the Mastodon API caps at 40).
    pub page_limit: usize,
    /// Safety cap on timeline pages per instance.
    pub max_pages_per_instance: usize,
    /// Number of periodic metadata snapshot rounds after discovery
    /// (the paper re-polled every 4 hours for ~5 months; benchmarks use a
    /// handful of rounds).
    pub snapshot_rounds: usize,
    /// Extra attempts granted to an outcome-deciding census probe that
    /// hits a *transient* §3 failure (502/503, refused connections).
    /// Permanent answers (404/403/410, unknown hosts) are always taken
    /// at face value on the first probe. The default single retry
    /// shrinks the census under-count from gateway flaps without
    /// resurrecting genuinely dead instances.
    pub transient_retries: usize,
    /// Directory-thinned crawl mode (§3 methodology): cap on how many
    /// entries are taken from each instance's Peers API response during
    /// discovery. `None` (the default) keeps the full lists — at small
    /// scales every instance is named by many peers, so discovery is
    /// redundant and the census misses only genuinely dead hosts. A cap
    /// models the real crawl's thinned view (rate limits, partial
    /// directories): instances not in the seed directory whose every
    /// surviving mention falls beyond the cap are never discovered,
    /// which is exactly the §3 under-count bias the full-scale analysis
    /// calibrates. Truncation keeps the first `cap` entries of the
    /// server-sorted list, so a thinned campaign is as deterministic as
    /// a full one.
    pub peer_list_cap: Option<usize>,
}

impl Default for CrawlerConfig {
    fn default() -> Self {
        CrawlerConfig {
            concurrency: 64,
            page_limit: 40,
            max_pages_per_instance: 100_000,
            snapshot_rounds: 3,
            transient_retries: 1,
            peer_list_cap: None,
        }
    }
}

/// The measurement crawler.
pub struct Crawler {
    net: Arc<SimNet>,
    config: CrawlerConfig,
}

impl Crawler {
    /// A crawler over the given network.
    pub fn new(net: Arc<SimNet>, config: CrawlerConfig) -> Self {
        Crawler { net, config }
    }

    /// Runs a full campaign: seed → BFS discovery → metadata + peers +
    /// timelines → periodic snapshots. Returns the dataset.
    pub async fn run(&self, directory: &[Domain]) -> Dataset {
        let started = CAMPAIGN_START;
        let directory_set: Arc<HashSet<Domain>> = Arc::new(directory.iter().cloned().collect());
        let semaphore = Arc::new(Semaphore::new(self.config.concurrency.max(1)));

        let mut seen: HashSet<Domain> = HashSet::new();
        let mut queue: Vec<Domain> = Vec::new();
        for d in directory {
            if seen.insert(d.clone()) {
                queue.push(d.clone());
            }
        }

        let mut instances: Vec<CrawledInstance> = Vec::new();
        let mut tasks: JoinSet<CrawledInstance> = JoinSet::new();

        // Work-stealing BFS: spawn while the frontier is non-empty, feed
        // newly discovered peers back into the frontier as tasks finish.
        loop {
            while let Some(domain) = queue.pop() {
                let net = Arc::clone(&self.net);
                let config = self.config.clone();
                let from_directory = directory_set.contains(&domain);
                let semaphore = Arc::clone(&semaphore);
                tasks.spawn(async move {
                    let _permit = semaphore.acquire_owned().await.expect("open semaphore");
                    crawl_one(&net, &config, domain, from_directory).await
                });
            }
            match tasks.join_next().await {
                Some(done) => {
                    let crawled = done.expect("crawl task never panics");
                    for peer in &crawled.peers {
                        if seen.insert(peer.clone()) {
                            queue.push(peer.clone());
                        }
                    }
                    instances.push(crawled);
                }
                None => break, // frontier empty and no tasks in flight
            }
        }

        // Periodic snapshot rounds (4-hour cadence in simulated time).
        let mut now = started;
        for _ in 0..self.config.snapshot_rounds {
            now += SNAPSHOT_INTERVAL;
            self.snapshot_round(&mut instances, now).await;
        }

        // Keep a stable order: discovery order is nondeterministic under
        // concurrency, so sort by domain for reproducible datasets.
        instances.sort_by(|a, b| a.domain.cmp(&b.domain));
        Dataset {
            started,
            finished: now,
            instances,
        }
    }

    async fn snapshot_round(&self, instances: &mut [CrawledInstance], at: SimTime) {
        for inst in instances.iter_mut() {
            if !inst.crawled() || !inst.is_pleroma() {
                continue;
            }
            if let Ok(resp) = self.net.get(&inst.domain, "/api/v1/instance").await {
                if resp.is_success() {
                    if let Ok(body) = resp.json_body() {
                        inst.snapshots.push(MetadataSnapshot {
                            at,
                            user_count: body["stats"]["user_count"].as_u64().unwrap_or(0),
                            status_count: body["stats"]["status_count"].as_u64().unwrap_or(0),
                        });
                    }
                }
            }
        }
    }
}

/// One outcome-deciding census probe with a bounded transient-retry
/// budget: a response in the transient §3 class (5xx) or a transient
/// network error is re-probed up to [`CrawlerConfig::transient_retries`]
/// extra times; anything permanent returns immediately.
///
/// Every attempt is observed through the telemetry registry: a
/// per-§3-class probe counter plus a [simulated-latency](probe_latency)
/// histogram, so a census under-count can be correlated with probe
/// slowness by status class.
async fn probe(
    net: &SimNet,
    config: &CrawlerConfig,
    domain: &Domain,
    path: &str,
) -> Result<HttpResponse, NetError> {
    let mut attempt = 0;
    loop {
        let outcome = net.get(domain, path).await;
        let class = probe_class(&outcome);
        Telemetry::global().record_probe(class, probe_latency(domain, class, attempt));
        if class != ProbeClass::Transient || attempt >= config.transient_retries {
            return outcome;
        }
        attempt += 1;
    }
}

/// Classifies one probe outcome into its §3 status class.
fn probe_class(outcome: &Result<HttpResponse, NetError>) -> ProbeClass {
    match outcome {
        Ok(resp) => match FailureClass::of_status(resp.status) {
            None => ProbeClass::Success,
            Some(FailureClass::Transient) => ProbeClass::Transient,
            Some(FailureClass::Permanent) => ProbeClass::Permanent,
        },
        Err(e) => match e.class() {
            // A refused connection is a live-but-flapping box; an
            // unknown host never produced an HTTP conversation at all.
            FailureClass::Transient => ProbeClass::Transient,
            FailureClass::Permanent => ProbeClass::NetError,
        },
    }
}

/// Simulated probe latency in nanoseconds. `SimNet` resolves requests
/// instantly (it has no latency model), so the histograms carry a
/// deterministic pseudo-latency instead: a per-class base — fast
/// permanent rejections, slow gateway flaps, slower-still dead-host
/// timeouts — plus an FNV-1a jitter keyed on `(domain, class, attempt)`.
/// Pure function of its inputs: identical campaigns produce identical
/// histograms regardless of crawl concurrency or task interleaving.
fn probe_latency(domain: &Domain, class: ProbeClass, attempt: usize) -> u64 {
    const MILLI: u64 = 1_000_000;
    let (base, spread) = match class {
        ProbeClass::Success => (80 * MILLI, 40 * MILLI),
        ProbeClass::Permanent => (60 * MILLI, 30 * MILLI),
        ProbeClass::Transient => (1_200 * MILLI, 800 * MILLI),
        ProbeClass::NetError => (5_000 * MILLI, 5_000 * MILLI),
    };
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in domain.as_str().as_bytes() {
        h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
    }
    h = (h ^ class as u64).wrapping_mul(0x1000_0000_01b3);
    h = (h ^ attempt as u64).wrapping_mul(0x1000_0000_01b3);
    base + h % spread
}

/// Crawls one domain end to end.
async fn crawl_one(
    net: &SimNet,
    config: &CrawlerConfig,
    domain: Domain,
    from_directory: bool,
) -> CrawledInstance {
    let mut out = CrawledInstance {
        domain: domain.clone(),
        outcome: CrawlOutcome::Unreachable,
        software: None,
        from_directory,
        metadata: None,
        peers: Vec::new(),
        timeline: TimelineCrawl::NotAttempted,
        snapshots: Vec::new(),
    };

    // 1. Classify via nodeinfo.
    match probe(net, config, &domain, "/nodeinfo/2.0").await {
        Err(_) => {
            out.outcome = CrawlOutcome::Unreachable;
            return out;
        }
        Ok(resp) if !resp.is_success() => {
            out.outcome = CrawlOutcome::Failed {
                status: resp.status.0,
            };
            return out;
        }
        Ok(resp) => {
            if let Ok(body) = resp.json_body() {
                out.software = body["software"]["name"].as_str().map(str::to_string);
            }
        }
    }
    if out.software.as_deref() != Some("pleroma") {
        out.outcome = CrawlOutcome::NonPleroma;
        return out;
    }

    // 2. Instance metadata (incl. exposed policies).
    match probe(net, config, &domain, "/api/v1/instance").await {
        Ok(resp) if resp.is_success() => {
            if let Ok(body) = resp.json_body() {
                out.metadata = Some(parse_metadata(&body));
            }
        }
        Ok(resp) => {
            out.outcome = CrawlOutcome::Failed {
                status: resp.status.0,
            };
            return out;
        }
        Err(_) => {
            out.outcome = CrawlOutcome::Unreachable;
            return out;
        }
    }

    // 3. Peers.
    if let Ok(resp) = net.get(&domain, "/api/v1/instance/peers").await {
        if resp.is_success() {
            if let Ok(body) = resp.json_body() {
                if let Some(list) = body.as_array() {
                    let cap = config.peer_list_cap.unwrap_or(usize::MAX);
                    out.peers = list
                        .iter()
                        .filter_map(|v| v.as_str())
                        .take(cap)
                        .map(Domain::new)
                        .collect();
                }
            }
        }
    }

    // 4. Timeline pagination.
    out.timeline = crawl_timeline(net, config, &domain).await;
    out.outcome = CrawlOutcome::Crawled;
    out
}

async fn crawl_timeline(net: &SimNet, config: &CrawlerConfig, domain: &Domain) -> TimelineCrawl {
    let mut posts: Vec<CollectedPost> = Vec::new();
    let mut max_id: Option<u64> = None;
    for _ in 0..config.max_pages_per_instance {
        let path = match max_id {
            Some(id) => format!(
                "/api/v1/timelines/public?local=true&limit={}&max_id={id}",
                config.page_limit
            ),
            None => format!(
                "/api/v1/timelines/public?local=true&limit={}",
                config.page_limit
            ),
        };
        let resp: HttpResponse = match net.get(domain, &path).await {
            Ok(r) => r,
            Err(_) => break,
        };
        if resp.status == StatusCode::FORBIDDEN {
            return TimelineCrawl::Forbidden;
        }
        if !resp.is_success() {
            break;
        }
        let Ok(body) = resp.json_body() else { break };
        let Some(page) = body.as_array() else { break };
        if page.is_empty() {
            break;
        }
        let before = posts.len();
        for status in page {
            if let Some(post) = CollectedPost::from_status_json(status) {
                posts.push(post);
            }
        }
        if posts.len() == before {
            break; // page full of unparseable statuses: bail out
        }
        max_id = posts.last().map(|p| p.id);
    }
    if posts.is_empty() {
        TimelineCrawl::Empty
    } else {
        TimelineCrawl::Posts(posts)
    }
}

fn parse_metadata(body: &serde_json::Value) -> InstanceMetadata {
    let policies = body
        .get("pleroma")
        .and_then(|p| p.get("metadata"))
        .and_then(|m| m.get("federation"))
        .map(InstanceModerationConfig::from_metadata_json);
    InstanceMetadata {
        user_count: body["stats"]["user_count"].as_u64().unwrap_or(0),
        status_count: body["stats"]["status_count"].as_u64().unwrap_or(0),
        domain_count: body["stats"]["domain_count"].as_u64().unwrap_or(0),
        version: body["version"].as_str().unwrap_or("").to_string(),
        registrations_open: body["registrations"].as_bool().unwrap_or(false),
        policies,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fediscope_core::catalog::PolicyKind;
    use fediscope_core::id::{InstanceId, PostId, UserId, UserRef};
    use fediscope_core::model::{InstanceKind, InstanceProfile, Post, SoftwareVersion, User};
    use fediscope_core::mrf::policies::{SimpleAction, SimplePolicy};
    use fediscope_server::InstanceServer;
    use fediscope_simnet::{Endpoint, FailureMode};

    fn make_server(domain: &str, id: u32, posts: u64) -> Arc<InstanceServer> {
        let profile = InstanceProfile {
            id: InstanceId(id),
            domain: Domain::new(domain),
            kind: InstanceKind::Pleroma(SoftwareVersion::new(2, 2, 0)),
            title: domain.into(),
            registrations_open: true,
            founded: SimTime(0),
            exposes_policies: true,
            public_timeline_open: true,
        };
        let mut config = InstanceModerationConfig::pleroma_default();
        config.set_simple(
            SimplePolicy::new().with_target(SimpleAction::Reject, Domain::new("gab.com")),
        );
        let server = Arc::new(InstanceServer::new(profile, config));
        let author = User {
            id: UserId(id as u64 * 100),
            instance: InstanceId(id),
            domain: Domain::new(domain),
            handle: "author".into(),
            created: SimTime(0),
            bot: false,
            followers: 1,
            following: 1,
            mrf_tags: Vec::new(),
            report_count: 0,
        };
        server.add_user(author.clone());
        for i in 0..posts {
            server
                .publish(Post::stub(
                    PostId(i + 1),
                    UserRef::new(author.id, Domain::new(domain)),
                    CAMPAIGN_START,
                    format!("post {i}"),
                ))
                .unwrap();
        }
        server
    }

    fn mastodon_server(domain: &str, id: u32) -> Arc<InstanceServer> {
        let profile = InstanceProfile {
            id: InstanceId(id),
            domain: Domain::new(domain),
            kind: InstanceKind::Mastodon,
            title: domain.into(),
            registrations_open: true,
            founded: SimTime(0),
            exposes_policies: false,
            public_timeline_open: true,
        };
        Arc::new(InstanceServer::new(
            profile,
            InstanceModerationConfig::default(),
        ))
    }

    fn register(net: &SimNet, server: Arc<InstanceServer>) {
        net.register(server.domain().clone(), server);
    }

    #[tokio::test]
    async fn full_campaign_small_network() {
        let net = Arc::new(SimNet::new());
        // Two healthy Pleroma instances that peer with each other and with
        // a Mastodon instance; one dead instance.
        let a = make_server("a.example", 1, 90);
        let b = make_server("b.example", 2, 5);
        a.note_peer(&Domain::new("b.example"));
        a.note_peer(&Domain::new("masto.example"));
        a.note_peer(&Domain::new("dead.example"));
        b.note_peer(&Domain::new("a.example"));
        register(&net, Arc::clone(&a));
        register(&net, Arc::clone(&b));
        register(&net, mastodon_server("masto.example", 3));
        net.set_failure(Domain::new("dead.example"), FailureMode::NotFound);

        let crawler = Crawler::new(Arc::clone(&net), CrawlerConfig::default());
        let dataset = crawler.run(&[Domain::new("a.example")]).await;

        // Discovery: a (seed), b + masto + dead via peers.
        assert_eq!(dataset.instances.len(), 4);
        let a_data = dataset.by_domain("a.example").unwrap();
        assert!(a_data.crawled());
        assert_eq!(a_data.timeline.posts().len(), 90, "paginated fully");
        // Pagination is newest-first; posts are ordered descending by id.
        let ids: Vec<u64> = a_data.timeline.posts().iter().map(|p| p.id).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable_by(|x, y| y.cmp(x));
        assert_eq!(ids, sorted);
        // Policy exposure.
        let policies = a_data.policies().unwrap();
        assert!(policies.has(PolicyKind::Simple));
        assert_eq!(
            policies
                .simple
                .as_ref()
                .unwrap()
                .targets(SimpleAction::Reject)[0]
                .as_str(),
            "gab.com"
        );
        // Mastodon classified, not crawled for data.
        let masto = dataset.by_domain("masto.example").unwrap();
        assert_eq!(masto.outcome, CrawlOutcome::NonPleroma);
        assert_eq!(masto.software.as_deref(), Some("mastodon"));
        // Dead instance recorded with its status.
        let dead = dataset.by_domain("dead.example").unwrap();
        assert_eq!(dead.outcome, CrawlOutcome::Failed { status: 404 });
        // Snapshots were taken for healthy Pleroma instances.
        assert_eq!(a_data.snapshots.len(), 3);
        assert!(a_data.snapshots[0].at > dataset.started);
        // Aggregates.
        assert_eq!(dataset.total_posts(), 95);
        assert_eq!(dataset.collected_posts(), 95);
        assert_eq!(dataset.reject_counts().len(), 1);
    }

    #[tokio::test]
    async fn forbidden_timeline_is_recorded() {
        let net = Arc::new(SimNet::new());
        let mut profile = InstanceProfile {
            id: InstanceId(1),
            domain: Domain::new("closed.example"),
            kind: InstanceKind::Pleroma(SoftwareVersion::new(2, 2, 0)),
            title: "closed".into(),
            registrations_open: true,
            founded: SimTime(0),
            exposes_policies: true,
            public_timeline_open: false,
        };
        profile.public_timeline_open = false;
        let server = Arc::new(InstanceServer::new(
            profile,
            InstanceModerationConfig::pleroma_default(),
        ));
        register(&net, server);
        let crawler = Crawler::new(Arc::clone(&net), CrawlerConfig::default());
        let dataset = crawler.run(&[Domain::new("closed.example")]).await;
        let inst = dataset.by_domain("closed.example").unwrap();
        assert!(inst.crawled(), "metadata still collected");
        assert!(matches!(inst.timeline, TimelineCrawl::Forbidden));
    }

    #[tokio::test]
    async fn unknown_hosts_are_unreachable() {
        let net = Arc::new(SimNet::new());
        let crawler = Crawler::new(Arc::clone(&net), CrawlerConfig::default());
        let dataset = crawler.run(&[Domain::new("ghost.example")]).await;
        assert_eq!(
            dataset.by_domain("ghost.example").unwrap().outcome,
            CrawlOutcome::Unreachable
        );
    }

    #[tokio::test]
    async fn discovery_depth_beyond_one_hop() {
        // a → b → c: c is only in b's peers; BFS must reach it.
        let net = Arc::new(SimNet::new());
        let a = make_server("a.example", 1, 1);
        let b = make_server("b.example", 2, 1);
        let c = make_server("c.example", 3, 1);
        a.note_peer(&Domain::new("b.example"));
        b.note_peer(&Domain::new("c.example"));
        register(&net, a);
        register(&net, b);
        register(&net, c);
        let crawler = Crawler::new(Arc::clone(&net), CrawlerConfig::default());
        let dataset = crawler.run(&[Domain::new("a.example")]).await;
        assert!(dataset.by_domain("c.example").unwrap().crawled());
    }

    #[tokio::test]
    async fn fully_down_network_census_is_empty_but_wellformed() {
        // Every §3 failure mode, no endpoint behind any of them: the
        // census dataset is empty of content but structurally sound.
        let net = Arc::new(SimNet::new());
        let modes = [
            FailureMode::NotFound,
            FailureMode::Forbidden,
            FailureMode::BadGateway,
            FailureMode::Unavailable,
            FailureMode::Gone,
        ];
        let directory: Vec<Domain> = modes
            .iter()
            .enumerate()
            .map(|(k, mode)| {
                let d = Domain::new(format!("dead{k}.example"));
                net.set_failure(d.clone(), *mode);
                d
            })
            .collect();
        let crawler = Crawler::new(Arc::clone(&net), CrawlerConfig::default());
        let dataset = crawler.run(&directory).await;
        // One record per directory entry, each with its exact status.
        assert_eq!(dataset.instances.len(), directory.len());
        for (k, d) in directory.iter().enumerate() {
            let inst = dataset.by_domain(d.as_str()).unwrap();
            let want = modes[k].forced_status().unwrap().0;
            assert_eq!(inst.outcome, CrawlOutcome::Failed { status: want });
            assert!(inst.snapshots.is_empty());
            assert!(inst.metadata.is_none());
            assert!(inst.peers.is_empty());
            assert!(matches!(inst.timeline, TimelineCrawl::NotAttempted));
        }
        // Aggregates degrade to empty, not to panics.
        assert_eq!(dataset.pleroma_crawled().count(), 0);
        assert_eq!(dataset.total_users(), 0);
        assert_eq!(dataset.total_posts(), 0);
        assert_eq!(dataset.collected_posts(), 0);
        assert!(dataset.reject_counts().is_empty());
        // The net saw one probe per permanently dead instance and two
        // (the probe + its single transient retry) per 502/503.
        let taxonomy = net.stats().failure_taxonomy();
        assert_eq!(taxonomy.as_array(), [1, 1, 2, 2, 1]);
        assert_eq!(taxonomy.permanent(), 3);
        assert_eq!(taxonomy.transient(), 4);
    }

    #[tokio::test]
    async fn transient_retry_shrinks_the_undercount_but_dead_stays_dead() {
        // A gateway flap: the first nodeinfo probe answers 502, every
        // later request is served normally. Without the retry budget the
        // census writes the instance off as Failed{502}; with the
        // default single retry it lands in the dataset — while a
        // genuinely Gone instance is still taken at face value on its
        // first (and only) probe.
        let net = Arc::new(SimNet::new());
        let flappy = make_server("flappy.example", 1, 4);
        let flapped = std::sync::atomic::AtomicBool::new(false);
        net.register_fn(Domain::new("flappy.example"), move |req| {
            if !flapped.swap(true, std::sync::atomic::Ordering::SeqCst) {
                return HttpResponse::status(StatusCode::BAD_GATEWAY);
            }
            flappy.handle(req)
        });
        let gone = Domain::new("gone.example");
        net.set_failure(gone.clone(), FailureMode::Gone);

        let without_retry = {
            let config = CrawlerConfig {
                transient_retries: 0,
                ..CrawlerConfig::default()
            };
            // A separate flap on a fresh net so both runs see attempt 1
            // fail. Reuse of `net` below gets the already-flapped server.
            let net = Arc::new(SimNet::new());
            let flappy = make_server("flappy.example", 1, 4);
            let flapped = std::sync::atomic::AtomicBool::new(false);
            net.register_fn(Domain::new("flappy.example"), move |req| {
                if !flapped.swap(true, std::sync::atomic::Ordering::SeqCst) {
                    return HttpResponse::status(StatusCode::BAD_GATEWAY);
                }
                flappy.handle(req)
            });
            let crawler = Crawler::new(Arc::clone(&net), config);
            crawler.run(&[Domain::new("flappy.example")]).await
        };
        assert_eq!(
            without_retry.by_domain("flappy.example").unwrap().outcome,
            CrawlOutcome::Failed { status: 502 },
            "no retry budget ⇒ the flap under-counts the live fleet"
        );

        let crawler = Crawler::new(Arc::clone(&net), CrawlerConfig::default());
        let dataset = crawler
            .run(&[Domain::new("flappy.example"), gone.clone()])
            .await;
        let inst = dataset.by_domain("flappy.example").unwrap();
        assert!(inst.crawled(), "the retry absorbs the flap");
        assert_eq!(inst.timeline.posts().len(), 4);
        // The permanent death was not retried: exactly one 410 probe.
        assert_eq!(
            dataset.by_domain("gone.example").unwrap().outcome,
            CrawlOutcome::Failed { status: 410 }
        );
        assert_eq!(net.stats().failure_taxonomy()[FailureMode::Gone], 1);
    }

    /// The mid-crawl transition contract, pinned: an instance's census
    /// outcome is decided by its failure mode *at the moment of its own
    /// first probe*. A `Recover` that lands before that probe includes
    /// the instance; one that lands after its outcome was recorded is
    /// invisible until a re-census. (The two tests below set up the
    /// transition deterministically: the flapping instance is only
    /// discoverable through a gateway instance whose first request
    /// triggers the flip, so the flip always precedes the probe.)
    #[tokio::test]
    async fn mid_crawl_recover_before_first_probe_is_included() {
        let net = Arc::new(SimNet::new());
        let gateway = make_server("gateway.example", 1, 1);
        gateway.note_peer(&Domain::new("lazarus.example"));
        let lazarus = make_server("lazarus.example", 2, 3);
        net.register(lazarus.domain().clone(), lazarus);
        net.set_failure(Domain::new("lazarus.example"), FailureMode::BadGateway);
        // The gateway's first served request heals lazarus — strictly
        // before lazarus can be discovered (discovery needs the
        // gateway's peers, i.e. a later request).
        let healed = std::sync::atomic::AtomicBool::new(false);
        let net2 = Arc::clone(&net);
        net.register_fn(Domain::new("gateway.example"), move |req| {
            if !healed.swap(true, std::sync::atomic::Ordering::SeqCst) {
                net2.set_failure(Domain::new("lazarus.example"), FailureMode::Healthy);
            }
            gateway.handle(req)
        });
        let crawler = Crawler::new(Arc::clone(&net), CrawlerConfig::default());
        let dataset = crawler.run(&[Domain::new("gateway.example")]).await;
        let inst = dataset.by_domain("lazarus.example").unwrap();
        assert!(inst.crawled(), "recovered before first probe ⇒ included");
        assert_eq!(inst.timeline.posts().len(), 3);
    }

    #[tokio::test]
    async fn mid_crawl_death_before_first_probe_is_excluded() {
        let net = Arc::new(SimNet::new());
        let gateway = make_server("gateway.example", 1, 1);
        gateway.note_peer(&Domain::new("victim.example"));
        let victim = make_server("victim.example", 2, 3);
        net.register(victim.domain().clone(), victim);
        // Healthy at campaign start; the gateway's first served request
        // kills it — before it can be discovered.
        let killed = std::sync::atomic::AtomicBool::new(false);
        let net2 = Arc::clone(&net);
        net.register_fn(Domain::new("gateway.example"), move |req| {
            if !killed.swap(true, std::sync::atomic::Ordering::SeqCst) {
                net2.set_failure(Domain::new("victim.example"), FailureMode::NotFound);
            }
            gateway.handle(req)
        });
        let crawler = Crawler::new(Arc::clone(&net), CrawlerConfig::default());
        let dataset = crawler.run(&[Domain::new("gateway.example")]).await;
        let inst = dataset.by_domain("victim.example").unwrap();
        assert_eq!(
            inst.outcome,
            CrawlOutcome::Failed { status: 404 },
            "died before first probe ⇒ excluded, with the §3 status"
        );
        assert!(inst.timeline.posts().is_empty());
    }

    #[tokio::test]
    async fn recovery_after_the_campaign_needs_a_recensus() {
        // Within one campaign a recorded outcome is never revisited:
        // snapshot rounds only repoll successfully crawled instances.
        // Recovery becomes visible exactly at the next census — the
        // round-trip driver's cadence is built on this contract.
        let net = Arc::new(SimNet::new());
        let a = make_server("a.example", 1, 2);
        register(&net, a);
        net.set_failure(Domain::new("a.example"), FailureMode::Unavailable);
        let crawler = Crawler::new(Arc::clone(&net), CrawlerConfig::default());
        let first = crawler.run(&[Domain::new("a.example")]).await;
        let inst = first.by_domain("a.example").unwrap();
        assert_eq!(inst.outcome, CrawlOutcome::Failed { status: 503 });
        assert!(
            inst.snapshots.is_empty(),
            "failed instances are not repolled"
        );
        net.set_failure(Domain::new("a.example"), FailureMode::Healthy);
        let second = crawler.run(&[Domain::new("a.example")]).await;
        let inst = second.by_domain("a.example").unwrap();
        assert!(inst.crawled(), "the re-census observes the recovery");
        assert_eq!(inst.timeline.posts().len(), 2);
    }

    #[test]
    fn probe_latency_is_deterministic_and_class_banded() {
        let d = Domain::new("a.example");
        for class in ProbeClass::ALL {
            let (a, b) = (probe_latency(&d, class, 0), probe_latency(&d, class, 0));
            assert_eq!(a, b, "pure function of (domain, class, attempt)");
            assert_ne!(
                probe_latency(&d, class, 0),
                probe_latency(&d, class, 1),
                "attempts jitter independently"
            );
        }
        // Class bands are ordered: permanent rejections come back fast,
        // transient flaps are slow, dead hosts are timeout-slow.
        let fast = probe_latency(&d, ProbeClass::Permanent, 0);
        let flap = probe_latency(&d, ProbeClass::Transient, 0);
        let dead = probe_latency(&d, ProbeClass::NetError, 0);
        assert!(fast < flap && flap < dead);
    }

    #[tokio::test]
    async fn peer_list_cap_thins_discovery_deterministically() {
        // Directory-thinned mode: `hub` peers with b, c, d (served
        // sorted); a cap of 2 keeps {b, c} and drops d, so d — absent
        // from the seed directory — is never discovered. That is the §3
        // under-count mechanism in miniature: a live instance missing
        // from the census purely because discovery was thinned.
        let build = || {
            let net = Arc::new(SimNet::new());
            let hub = make_server("hub.example", 1, 1);
            for peer in ["b.example", "c.example", "d.example"] {
                hub.note_peer(&Domain::new(peer));
            }
            register(&net, hub);
            register(&net, make_server("b.example", 2, 1));
            register(&net, make_server("c.example", 3, 1));
            register(&net, make_server("d.example", 4, 1));
            net
        };

        let thinned_config = CrawlerConfig {
            peer_list_cap: Some(2),
            ..CrawlerConfig::default()
        };
        let thinned = Crawler::new(build(), thinned_config.clone())
            .run(&[Domain::new("hub.example")])
            .await;
        assert_eq!(thinned.instances.len(), 3, "d.example was never found");
        assert!(thinned.by_domain("d.example").is_none());
        assert!(thinned.by_domain("c.example").unwrap().crawled());

        // The full crawl finds everyone — the gap IS the thinning.
        let full = Crawler::new(build(), CrawlerConfig::default())
            .run(&[Domain::new("hub.example")])
            .await;
        assert_eq!(full.instances.len(), 4);
        assert!(full.by_domain("d.example").unwrap().crawled());

        // Determinism: a re-run of the thinned campaign sees the same
        // census, same truncated peer lists.
        let again = Crawler::new(build(), thinned_config)
            .run(&[Domain::new("hub.example")])
            .await;
        assert_eq!(again.instances.len(), thinned.instances.len());
        assert_eq!(
            again.by_domain("hub.example").unwrap().peers,
            thinned.by_domain("hub.example").unwrap().peers
        );
    }

    #[tokio::test]
    async fn empty_timeline_is_empty_not_posts() {
        let net = Arc::new(SimNet::new());
        let a = make_server("quiet.example", 1, 0);
        register(&net, a);
        let crawler = Crawler::new(Arc::clone(&net), CrawlerConfig::default());
        let dataset = crawler.run(&[Domain::new("quiet.example")]).await;
        assert!(matches!(
            dataset.by_domain("quiet.example").unwrap().timeline,
            TimelineCrawl::Empty
        ));
    }
}
