//! Dataset persistence: campaigns took the paper five months; ours take
//! seconds, but downstream analysis still wants to work from a saved
//! dataset rather than re-crawling (and datasets are the natural artefact
//! to share for replication).

use crate::dataset::Dataset;
use std::io;
use std::path::Path;

impl Dataset {
    /// Serialises the dataset to pretty JSON.
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string_pretty(self)
    }

    /// Parses a dataset from JSON.
    pub fn from_json(json: &str) -> serde_json::Result<Dataset> {
        serde_json::from_str(json)
    }

    /// Writes the dataset to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let json = self
            .to_json()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        std::fs::write(path, json)
    }

    /// Reads a dataset from a file.
    pub fn load(path: impl AsRef<Path>) -> io::Result<Dataset> {
        let json = std::fs::read_to_string(path)?;
        Dataset::from_json(&json).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{CrawlOutcome, CrawledInstance, TimelineCrawl};
    use fediscope_core::id::Domain;
    use fediscope_core::time::SimTime;

    fn small_dataset() -> Dataset {
        Dataset {
            started: SimTime(100),
            finished: SimTime(200),
            instances: vec![CrawledInstance {
                domain: Domain::new("a.example"),
                outcome: CrawlOutcome::Failed { status: 502 },
                software: None,
                from_directory: true,
                metadata: None,
                peers: vec![Domain::new("b.example")],
                timeline: TimelineCrawl::NotAttempted,
                snapshots: Vec::new(),
            }],
        }
    }

    #[test]
    fn json_round_trip() {
        let ds = small_dataset();
        let json = ds.to_json().unwrap();
        let back = Dataset::from_json(&json).unwrap();
        assert_eq!(back.instances.len(), 1);
        assert_eq!(back.started, SimTime(100));
        assert_eq!(
            back.instances[0].outcome,
            CrawlOutcome::Failed { status: 502 }
        );
        assert_eq!(back.instances[0].peers[0].as_str(), "b.example");
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("fediscope-persist-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dataset.json");
        let ds = small_dataset();
        ds.save(&path).unwrap();
        let back = Dataset::load(&path).unwrap();
        assert_eq!(back.instances.len(), ds.instances.len());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_garbage() {
        assert!(Dataset::from_json("not json").is_err());
        assert!(Dataset::load("/nonexistent/fediscope.json").is_err());
    }
}
