//! # fediscope-crawler
//!
//! The measurement apparatus of §3, reimplemented:
//!
//! 1. **Seeding** — start from a directory of Pleroma instances (the
//!    distsn.org / the-federation.info stand-in);
//! 2. **Discovery** — expand through each Pleroma instance's Peers API
//!    (`/api/v1/instance/peers`), classifying every discovered domain via
//!    nodeinfo (Pleroma vs Mastodon vs other);
//! 3. **Metadata** — collect `/api/v1/instance` (user/post counts, version,
//!    registrations, and the exposed moderation policies with their
//!    `SimplePolicy` targets), with periodic re-polling (the paper polled
//!    every 4 hours for ~5 months);
//! 4. **Timelines** — page through
//!    `/api/v1/timelines/public?local=true` with `max_id` pagination to
//!    collect every public post;
//! 5. **Error taxonomy** — record the same failure classes the paper
//!    reports (404/403/502/503/410, plus DNS failures).
//!
//! The crawler is polite and concurrent: a `tokio` semaphore caps in-flight
//! instances, requests to one instance are sequential, and the whole run is
//! deterministic over `fediscope-simnet`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod crawl;
mod dataset;
mod persist;

pub use crawl::{Crawler, CrawlerConfig};
pub use dataset::{
    CollectedPost, CrawlOutcome, CrawledInstance, Dataset, InstanceMetadata, MetadataSnapshot,
    TimelineCrawl,
};
