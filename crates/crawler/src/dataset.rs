//! The dataset a measurement campaign produces.

use fediscope_core::config::InstanceModerationConfig;
use fediscope_core::id::Domain;
use fediscope_core::mrf::policies::SimpleAction;
use fediscope_core::time::SimTime;
use serde::{Deserialize, Serialize};

/// How the attempt to crawl one domain ended.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum CrawlOutcome {
    /// Full crawl succeeded.
    Crawled,
    /// The instance answered with an error status (the §3 taxonomy).
    Failed {
        /// HTTP status code received.
        status: u16,
    },
    /// DNS / connection failure — the domain never answered.
    Unreachable,
    /// Classified as non-Pleroma; only nodeinfo recorded (the paper
    /// collected metadata/posts from Pleroma instances only).
    NonPleroma,
}

/// Parsed `/api/v1/instance` payload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InstanceMetadata {
    /// Reported registered users.
    pub user_count: u64,
    /// Reported stored posts.
    pub status_count: u64,
    /// Reported known peers.
    pub domain_count: u64,
    /// Version string.
    pub version: String,
    /// Whether registrations are open.
    pub registrations_open: bool,
    /// The exposed moderation configuration, if the instance publishes it
    /// (§4.1: 91.9% of Pleroma instances do).
    pub policies: Option<InstanceModerationConfig>,
}

/// One periodic metadata snapshot (the paper polled every 4 hours).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MetadataSnapshot {
    /// When the snapshot was taken.
    pub at: SimTime,
    /// Users at that time.
    pub user_count: u64,
    /// Posts at that time.
    pub status_count: u64,
}

/// One post collected from a public timeline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CollectedPost {
    /// Post id (instance-local ordering token).
    pub id: u64,
    /// Author's numeric id.
    pub author_id: u64,
    /// Author's home domain.
    pub author_domain: Domain,
    /// Creation time.
    pub created: SimTime,
    /// Body text.
    pub content: String,
    /// Sensitive flag.
    pub sensitive: bool,
    /// Visibility string as served.
    pub visibility: String,
    /// Number of media attachments.
    pub media_count: usize,
    /// Hashtags.
    pub hashtags: Vec<String>,
    /// Number of mentions.
    pub mentions: usize,
}

impl CollectedPost {
    /// Parses a Mastodon `Status` JSON object.
    pub fn from_status_json(v: &serde_json::Value) -> Option<CollectedPost> {
        let id = v.get("id")?.as_str()?.parse().ok()?;
        let account = v.get("account")?;
        let acct = account.get("acct")?.as_str()?;
        let (author_id, author_domain) = match acct.split_once('@') {
            Some((id, domain)) => (id.parse().ok()?, Domain::new(domain)),
            None => (account.get("id")?.as_str()?.parse().ok()?, Domain::new("")),
        };
        Some(CollectedPost {
            id,
            author_id,
            author_domain,
            created: SimTime(v.get("created_at")?.as_u64()?),
            content: v.get("content")?.as_str()?.to_string(),
            sensitive: v.get("sensitive")?.as_bool()?,
            visibility: v.get("visibility")?.as_str()?.to_string(),
            media_count: v
                .get("media_attachments")
                .and_then(|m| m.as_array())
                .map(|a| a.len())
                .unwrap_or(0),
            hashtags: v
                .get("tags")
                .and_then(|t| t.as_array())
                .map(|a| {
                    a.iter()
                        .filter_map(|t| t.get("name").and_then(|n| n.as_str()))
                        .map(str::to_string)
                        .collect()
                })
                .unwrap_or_default(),
            mentions: v
                .get("mentions")
                .and_then(|m| m.as_array())
                .map(|a| a.len())
                .unwrap_or(0),
        })
    }
}

/// How the timeline collection for one instance went.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum TimelineCrawl {
    /// Not attempted (instance failed earlier, or non-Pleroma).
    NotAttempted,
    /// The public timeline required authorisation (§3: 38.7%).
    Forbidden,
    /// Readable but empty (§3: 119 instances had no posts).
    Empty,
    /// Posts collected.
    Posts(Vec<CollectedPost>),
}

impl TimelineCrawl {
    /// Collected posts, if any.
    pub fn posts(&self) -> &[CollectedPost] {
        match self {
            TimelineCrawl::Posts(p) => p,
            _ => &[],
        }
    }

    /// Whether posts were retrievable.
    pub fn has_posts(&self) -> bool {
        !self.posts().is_empty()
    }
}

/// Everything learned about one domain.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CrawledInstance {
    /// The domain.
    pub domain: Domain,
    /// Outcome class.
    pub outcome: CrawlOutcome,
    /// Software name from nodeinfo (`pleroma`, `mastodon`, ...).
    pub software: Option<String>,
    /// Whether the domain was on the seed directory (the paper's Pleroma
    /// list, which includes instances that later failed).
    pub from_directory: bool,
    /// Parsed metadata (Pleroma instances that answered).
    pub metadata: Option<InstanceMetadata>,
    /// Peers list (Pleroma instances that answered).
    pub peers: Vec<Domain>,
    /// Timeline collection result.
    pub timeline: TimelineCrawl,
    /// Periodic metadata snapshots.
    pub snapshots: Vec<MetadataSnapshot>,
}

impl CrawledInstance {
    /// Whether this is a Pleroma instance (directory membership or
    /// nodeinfo classification).
    pub fn is_pleroma(&self) -> bool {
        self.software.as_deref() == Some("pleroma")
            || (self.software.is_none() && self.from_directory)
    }

    /// Whether a full crawl succeeded.
    pub fn crawled(&self) -> bool {
        self.outcome == CrawlOutcome::Crawled
    }

    /// The exposed moderation config, if any.
    pub fn policies(&self) -> Option<&InstanceModerationConfig> {
        self.metadata.as_ref().and_then(|m| m.policies.as_ref())
    }

    /// Reported user count (0 when unknown).
    pub fn user_count(&self) -> u64 {
        self.metadata.as_ref().map(|m| m.user_count).unwrap_or(0)
    }

    /// Reported post count (0 when unknown).
    pub fn status_count(&self) -> u64 {
        self.metadata.as_ref().map(|m| m.status_count).unwrap_or(0)
    }
}

/// The full dataset of one campaign.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dataset {
    /// When the campaign started.
    pub started: SimTime,
    /// When it finished.
    pub finished: SimTime,
    /// Every domain attempted, in discovery order.
    pub instances: Vec<CrawledInstance>,
}

impl Dataset {
    /// Pleroma instances successfully crawled.
    pub fn pleroma_crawled(&self) -> impl Iterator<Item = &CrawledInstance> {
        self.instances
            .iter()
            .filter(|i| i.is_pleroma() && i.crawled())
    }

    /// Pleroma instances (crawled or failed).
    pub fn pleroma_all(&self) -> impl Iterator<Item = &CrawledInstance> {
        self.instances.iter().filter(|i| i.is_pleroma())
    }

    /// Non-Pleroma instances discovered.
    pub fn non_pleroma(&self) -> impl Iterator<Item = &CrawledInstance> {
        self.instances.iter().filter(|i| !i.is_pleroma())
    }

    /// Finds an instance by domain.
    pub fn by_domain(&self, domain: &str) -> Option<&CrawledInstance> {
        self.instances.iter().find(|i| i.domain.as_str() == domain)
    }

    /// Total users reported by crawled Pleroma instances.
    pub fn total_users(&self) -> u64 {
        self.pleroma_crawled().map(|i| i.user_count()).sum()
    }

    /// Total posts reported by crawled Pleroma instances.
    pub fn total_posts(&self) -> u64 {
        self.pleroma_crawled().map(|i| i.status_count()).sum()
    }

    /// Total posts actually collected from timelines.
    pub fn collected_posts(&self) -> u64 {
        self.pleroma_crawled()
            .map(|i| i.timeline.posts().len() as u64)
            .sum()
    }

    /// Every `(instance, action, target)` moderation event in the exposed
    /// SimplePolicy configs.
    pub fn moderation_events(
        &self,
    ) -> impl Iterator<Item = (&CrawledInstance, SimpleAction, &Domain)> {
        self.pleroma_crawled().flat_map(|i| {
            i.policies()
                .and_then(|p| p.simple.as_ref())
                .into_iter()
                .flat_map(move |s| s.events().map(move |(a, d)| (i, a, d)))
        })
    }

    /// Reject counts per target domain: how many crawled instances list
    /// each domain under `reject`.
    pub fn reject_counts(&self) -> std::collections::HashMap<&Domain, u32> {
        let mut counts = std::collections::HashMap::new();
        for (_, action, target) in self.moderation_events() {
            if action == SimpleAction::Reject {
                *counts.entry(target).or_insert(0) += 1;
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn collected_post_parses_status_json() {
        let v = json!({
            "id": "42",
            "created_at": 1000,
            "content": "hello world",
            "visibility": "public",
            "sensitive": false,
            "account": {"id": "7", "acct": "7@poa.st"},
            "media_attachments": [{"type": "image"}],
            "tags": [{"name": "nsfw"}],
            "mentions": [],
        });
        let p = CollectedPost::from_status_json(&v).unwrap();
        assert_eq!(p.id, 42);
        assert_eq!(p.author_id, 7);
        assert_eq!(p.author_domain.as_str(), "poa.st");
        assert_eq!(p.media_count, 1);
        assert_eq!(p.hashtags, vec!["nsfw"]);
        assert!(!p.sensitive);
    }

    #[test]
    fn malformed_status_json_is_none() {
        assert!(CollectedPost::from_status_json(&json!({"id": "x"})).is_none());
        assert!(CollectedPost::from_status_json(&json!(null)).is_none());
    }

    #[test]
    fn timeline_crawl_accessors() {
        assert!(!TimelineCrawl::NotAttempted.has_posts());
        assert!(!TimelineCrawl::Empty.has_posts());
        assert!(TimelineCrawl::Forbidden.posts().is_empty());
    }

    #[test]
    fn pleroma_classification_falls_back_to_directory() {
        let mk = |software: Option<&str>, from_directory| CrawledInstance {
            domain: Domain::new("x.example"),
            outcome: CrawlOutcome::Failed { status: 404 },
            software: software.map(str::to_string),
            from_directory,
            metadata: None,
            peers: Vec::new(),
            timeline: TimelineCrawl::NotAttempted,
            snapshots: Vec::new(),
        };
        assert!(mk(Some("pleroma"), false).is_pleroma());
        assert!(mk(None, true).is_pleroma(), "directory implies Pleroma");
        assert!(!mk(Some("mastodon"), false).is_pleroma());
        assert!(!mk(None, false).is_pleroma());
    }
}
