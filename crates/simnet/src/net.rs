//! The network fabric: registration, dispatch, failure injection, stats.

use crate::failure::{FailureClass, FailureMode};
use crate::http::{HttpRequest, HttpResponse, StatusCode};
use fediscope_core::id::Domain;
use parking_lot::RwLock;
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use tokio::sync::{mpsc, oneshot};

/// A served HTTP endpoint. Handlers are synchronous and must be fast —
/// they run on the instance's serving task.
pub trait Endpoint: Send + Sync + 'static {
    /// Handles one request.
    fn handle(&self, req: HttpRequest) -> HttpResponse;
}

/// Adapter turning a closure into an [`Endpoint`].
pub struct FnEndpoint<F>(pub F);

impl<F> Endpoint for FnEndpoint<F>
where
    F: Fn(HttpRequest) -> HttpResponse + Send + Sync + 'static,
{
    fn handle(&self, req: HttpRequest) -> HttpResponse {
        (self.0)(req)
    }
}

/// Why a request failed before producing an HTTP response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// No endpoint registered under the domain (DNS failure).
    UnknownHost(Domain),
    /// The instance's serving task is gone (connection refused).
    ConnectionRefused(Domain),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::UnknownHost(d) => write!(f, "unknown host: {d}"),
            NetError::ConnectionRefused(d) => write!(f, "connection refused: {d}"),
        }
    }
}

impl NetError {
    /// Retry classification: a dead serving task ([`NetError::ConnectionRefused`])
    /// may restart, so it is transient; a missing DNS entry
    /// ([`NetError::UnknownHost`]) never resolves differently, so it is
    /// permanent.
    pub fn class(&self) -> FailureClass {
        match self {
            NetError::UnknownHost(_) => FailureClass::Permanent,
            NetError::ConnectionRefused(_) => FailureClass::Transient,
        }
    }
}

impl std::error::Error for NetError {}

type ServingChannel = mpsc::UnboundedSender<(HttpRequest, oneshot::Sender<HttpResponse>)>;

/// The status codes the simulated fediverse ever answers with: the §3
/// failure taxonomy plus the success/client-error codes the API surface
/// produces. Fixed at compile time so the per-status counters stay
/// lock-free `AtomicU64`s on the request hot path (the crawler campaign
/// and the concurrent delivery fan-out both hammer it).
const TRACKED_STATUSES: [StatusCode; 8] = [
    StatusCode::OK,
    StatusCode::ACCEPTED,
    StatusCode::BAD_REQUEST,
    StatusCode::FORBIDDEN,
    StatusCode::NOT_FOUND,
    StatusCode::GONE,
    StatusCode::BAD_GATEWAY,
    StatusCode::SERVICE_UNAVAILABLE,
];

/// Aggregate request statistics.
#[derive(Debug, Default)]
pub struct NetStats {
    /// Total requests issued (including failed ones).
    pub requests: AtomicU64,
    /// Requests answered by a forced failure mode.
    pub injected_failures: AtomicU64,
    /// Requests that failed at the network level (unknown host etc.).
    pub net_errors: AtomicU64,
    /// Responses observed per tracked status code (injected failures and
    /// real endpoint answers alike), indexed like [`TRACKED_STATUSES`].
    /// Lets churn scenarios and the crawler error taxonomy assert the
    /// exact §3 404/403/502/503/410 mix.
    by_status: [AtomicU64; TRACKED_STATUSES.len()],
    /// Responses with a status outside [`TRACKED_STATUSES`].
    other_status: AtomicU64,
}

impl NetStats {
    /// Snapshot of the counters as plain numbers.
    pub fn snapshot(&self) -> (u64, u64, u64) {
        (
            self.requests.load(Ordering::Relaxed),
            self.injected_failures.load(Ordering::Relaxed),
            self.net_errors.load(Ordering::Relaxed),
        )
    }

    /// Records one response status.
    fn record_status(&self, status: StatusCode) {
        match TRACKED_STATUSES.iter().position(|&s| s == status) {
            Some(idx) => self.by_status[idx].fetch_add(1, Ordering::Relaxed),
            None => self.other_status.fetch_add(1, Ordering::Relaxed),
        };
    }

    /// Responses observed with exactly this status code (0 for codes
    /// outside the tracked set — see [`Self::status_other`]).
    pub fn status_count(&self, status: StatusCode) -> u64 {
        TRACKED_STATUSES
            .iter()
            .position(|&s| s == status)
            .map(|idx| self.by_status[idx].load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Responses with a status outside the tracked set.
    pub fn status_other(&self) -> u64 {
        self.other_status.load(Ordering::Relaxed)
    }

    /// Nonzero per-status counters, keyed by numeric code, ascending.
    pub fn status_counts(&self) -> BTreeMap<u16, u64> {
        TRACKED_STATUSES
            .iter()
            .enumerate()
            .map(|(idx, s)| (s.0, self.by_status[idx].load(Ordering::Relaxed)))
            .filter(|&(_, n)| n > 0)
            .collect()
    }

    /// A typed snapshot of the §3 error-taxonomy counters, indexable by
    /// [`FailureMode`] instead of positional tuple order.
    pub fn failure_taxonomy(&self) -> FailureTaxonomy {
        FailureTaxonomy {
            counts: [
                self.status_count(StatusCode::NOT_FOUND),
                self.status_count(StatusCode::FORBIDDEN),
                self.status_count(StatusCode::BAD_GATEWAY),
                self.status_count(StatusCode::SERVICE_UNAVAILABLE),
                self.status_count(StatusCode::GONE),
            ],
        }
    }
}

/// A point-in-time snapshot of the §3 error-taxonomy counters, indexed by
/// [`FailureMode`] rather than by positional status-code order (callers
/// used to decode a `(404, 403, 502, 503, 410)` tuple by memory).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FailureTaxonomy {
    /// Counts in the paper's reporting order (404, 403, 502, 503, 410),
    /// i.e. [`FailureTaxonomy::MODES`] order.
    counts: [u64; 5],
}

impl FailureTaxonomy {
    /// The failure modes this taxonomy tracks, in the paper's §3
    /// reporting order.
    pub const MODES: [FailureMode; 5] = [
        FailureMode::NotFound,
        FailureMode::Forbidden,
        FailureMode::BadGateway,
        FailureMode::Unavailable,
        FailureMode::Gone,
    ];

    /// Responses observed with this failure mode's status. Zero for
    /// [`FailureMode::Healthy`].
    pub fn count(&self, mode: FailureMode) -> u64 {
        Self::MODES
            .iter()
            .position(|&m| m == mode)
            .map(|idx| self.counts[idx])
            .unwrap_or(0)
    }

    /// The counts in the paper's reporting order `[404, 403, 502, 503, 410]`.
    pub fn as_array(&self) -> [u64; 5] {
        self.counts
    }

    /// All failures across the taxonomy.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Failures a retry could plausibly clear (502 + 503).
    pub fn transient(&self) -> u64 {
        self.by_class(FailureClass::Transient)
    }

    /// Failures no retry will ever clear (404 + 403 + 410).
    pub fn permanent(&self) -> u64 {
        self.by_class(FailureClass::Permanent)
    }

    /// Failures of a given retry class.
    pub fn by_class(&self, class: FailureClass) -> u64 {
        Self::MODES
            .iter()
            .zip(self.counts)
            .filter(|(m, _)| m.class() == Some(class))
            .map(|(_, n)| n)
            .sum()
    }
}

impl std::ops::Index<FailureMode> for FailureTaxonomy {
    type Output = u64;

    fn index(&self, mode: FailureMode) -> &u64 {
        match Self::MODES.iter().position(|&m| m == mode) {
            Some(idx) => &self.counts[idx],
            None => &0,
        }
    }
}

/// The simulated network. Cheap to clone via `Arc`.
pub struct SimNet {
    endpoints: RwLock<HashMap<Domain, ServingChannel>>,
    failures: RwLock<HashMap<Domain, FailureMode>>,
    stats: NetStats,
}

impl Default for SimNet {
    fn default() -> Self {
        Self::new()
    }
}

impl SimNet {
    /// An empty network.
    pub fn new() -> Self {
        SimNet {
            endpoints: RwLock::new(HashMap::new()),
            failures: RwLock::new(HashMap::new()),
            stats: NetStats::default(),
        }
    }

    /// Registers `endpoint` under `domain`, spawning its serving task.
    /// Requires a tokio runtime. Re-registering a domain replaces the old
    /// endpoint (its task drains and exits once the old channel drops).
    pub fn register(&self, domain: Domain, endpoint: Arc<dyn Endpoint>) {
        let (tx, mut rx) =
            mpsc::unbounded_channel::<(HttpRequest, oneshot::Sender<HttpResponse>)>();
        tokio::spawn(async move {
            while let Some((req, reply)) = rx.recv().await {
                // The receiver may have given up (crawler timeout); a failed
                // send is not an error.
                let _ = reply.send(endpoint.handle(req));
            }
        });
        self.endpoints.write().insert(domain, tx);
    }

    /// Convenience: register a closure endpoint.
    pub fn register_fn<F>(&self, domain: Domain, f: F)
    where
        F: Fn(HttpRequest) -> HttpResponse + Send + Sync + 'static,
    {
        self.register(domain, Arc::new(FnEndpoint(f)));
    }

    /// Sets the failure mode for a domain.
    pub fn set_failure(&self, domain: Domain, mode: FailureMode) {
        self.failures.write().insert(domain, mode);
    }

    /// Current failure mode for a domain.
    pub fn failure_of(&self, domain: &Domain) -> FailureMode {
        self.failures
            .read()
            .get(domain)
            .copied()
            .unwrap_or(FailureMode::Healthy)
    }

    /// Whether a domain is registered.
    pub fn knows(&self, domain: &Domain) -> bool {
        self.endpoints.read().contains_key(domain)
    }

    /// Number of registered domains.
    pub fn host_count(&self) -> usize {
        self.endpoints.read().len()
    }

    /// Request statistics.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Issues a request to `domain`.
    ///
    /// Failure-injected domains answer their forced status without ever
    /// reaching the endpoint — exactly how a dead or auth-walled instance
    /// presented itself to the paper's crawler.
    pub async fn request(
        &self,
        domain: &Domain,
        req: HttpRequest,
    ) -> Result<HttpResponse, NetError> {
        self.stats.requests.fetch_add(1, Ordering::Relaxed);
        if let Some(status) = self.failure_of(domain).forced_status() {
            self.stats.injected_failures.fetch_add(1, Ordering::Relaxed);
            self.stats.record_status(status);
            return Ok(HttpResponse::status(status));
        }
        let tx = {
            let endpoints = self.endpoints.read();
            match endpoints.get(domain) {
                Some(tx) => tx.clone(),
                None => {
                    self.stats.net_errors.fetch_add(1, Ordering::Relaxed);
                    return Err(NetError::UnknownHost(domain.clone()));
                }
            }
        };
        let (reply_tx, reply_rx) = oneshot::channel();
        if tx.send((req, reply_tx)).is_err() {
            self.stats.net_errors.fetch_add(1, Ordering::Relaxed);
            return Err(NetError::ConnectionRefused(domain.clone()));
        }
        match reply_rx.await {
            Ok(resp) => {
                self.stats.record_status(resp.status);
                Ok(resp)
            }
            Err(_) => {
                self.stats.net_errors.fetch_add(1, Ordering::Relaxed);
                Err(NetError::ConnectionRefused(domain.clone()))
            }
        }
    }

    /// GET convenience wrapper.
    pub async fn get(
        &self,
        domain: &Domain,
        path_and_query: &str,
    ) -> Result<HttpResponse, NetError> {
        self.request(domain, HttpRequest::get(path_and_query)).await
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::StatusCode;
    use serde_json::json;

    fn hello_endpoint() -> Arc<dyn Endpoint> {
        Arc::new(FnEndpoint(|req: HttpRequest| {
            if req.path == "/hello" {
                HttpResponse::json(&json!({"msg": "hi"}))
            } else {
                HttpResponse::status(StatusCode::NOT_FOUND)
            }
        }))
    }

    #[tokio::test]
    async fn round_trip_request() {
        let net = SimNet::new();
        let d = Domain::new("a.example");
        net.register(d.clone(), hello_endpoint());
        let resp = net.get(&d, "/hello").await.unwrap();
        assert!(resp.is_success());
        assert_eq!(resp.json_body().unwrap()["msg"], "hi");
        let resp = net.get(&d, "/nope").await.unwrap();
        assert_eq!(resp.status, StatusCode::NOT_FOUND);
    }

    #[tokio::test]
    async fn unknown_host_errors() {
        let net = SimNet::new();
        let err = net
            .get(&Domain::new("ghost.example"), "/hello")
            .await
            .unwrap_err();
        assert!(matches!(err, NetError::UnknownHost(_)));
        let (reqs, _, net_errs) = net.stats().snapshot();
        assert_eq!((reqs, net_errs), (1, 1));
    }

    #[tokio::test]
    async fn failure_injection_shields_endpoint() {
        let net = SimNet::new();
        let d = Domain::new("dead.example");
        net.register(d.clone(), hello_endpoint());
        net.set_failure(d.clone(), FailureMode::BadGateway);
        let resp = net.get(&d, "/hello").await.unwrap();
        assert_eq!(resp.status, StatusCode::BAD_GATEWAY);
        let (_, injected, _) = net.stats().snapshot();
        assert_eq!(injected, 1);
        // Healing the domain restores service.
        net.set_failure(d.clone(), FailureMode::Healthy);
        assert!(net.get(&d, "/hello").await.unwrap().is_success());
    }

    #[tokio::test]
    async fn failure_injection_works_without_endpoint() {
        // A 404-injected domain doesn't need a registered endpoint at all —
        // exactly like the 110 dead instances of §3.
        let net = SimNet::new();
        let d = Domain::new("vanished.example");
        net.set_failure(d.clone(), FailureMode::NotFound);
        let resp = net.get(&d, "/api/v1/instance").await.unwrap();
        assert_eq!(resp.status, StatusCode::NOT_FOUND);
    }

    #[tokio::test]
    async fn concurrent_requests_are_all_answered() {
        let net = Arc::new(SimNet::new());
        let d = Domain::new("busy.example");
        net.register(d.clone(), hello_endpoint());
        let mut handles = Vec::new();
        for _ in 0..64 {
            let net = Arc::clone(&net);
            let d = d.clone();
            handles.push(tokio::spawn(async move {
                net.get(&d, "/hello").await.unwrap().status
            }));
        }
        for h in handles {
            assert_eq!(h.await.unwrap(), StatusCode::OK);
        }
        assert_eq!(net.stats().snapshot().0, 64);
    }

    #[tokio::test]
    async fn per_status_counters_track_the_failure_taxonomy() {
        // A miniature §3 mix: 3×404, 2×403, 1×502, 1×503, 1×410, plus two
        // healthy 200s and a healthy 404 from a real endpoint.
        let net = SimNet::new();
        let plan = [
            (FailureMode::NotFound, 3u64),
            (FailureMode::Forbidden, 2),
            (FailureMode::BadGateway, 1),
            (FailureMode::Unavailable, 1),
            (FailureMode::Gone, 1),
        ];
        for (k, (mode, hits)) in plan.iter().enumerate() {
            let d = Domain::new(format!("fail{k}.example"));
            net.set_failure(d.clone(), *mode);
            for _ in 0..*hits {
                let _ = net.get(&d, "/api/v1/instance").await;
            }
        }
        let live = Domain::new("live.example");
        net.register(live.clone(), hello_endpoint());
        assert!(net.get(&live, "/hello").await.unwrap().is_success());
        assert!(net.get(&live, "/hello").await.unwrap().is_success());
        assert_eq!(
            net.get(&live, "/nope").await.unwrap().status,
            StatusCode::NOT_FOUND
        );
        // Injected and endpoint-served statuses both land in the counters.
        let taxonomy = net.stats().failure_taxonomy();
        assert_eq!(taxonomy.as_array(), [4, 2, 1, 1, 1]);
        assert_eq!(taxonomy[FailureMode::NotFound], 4);
        assert_eq!(taxonomy.count(FailureMode::Forbidden), 2);
        assert_eq!(taxonomy.count(FailureMode::Healthy), 0);
        assert_eq!(taxonomy.transient(), 2);
        assert_eq!(taxonomy.permanent(), 7);
        assert_eq!(taxonomy.total(), 9);
        assert_eq!(net.stats().status_count(StatusCode::OK), 2);
        let counts = net.stats().status_counts();
        assert_eq!(counts.values().sum::<u64>(), net.stats().snapshot().0);
    }

    #[tokio::test]
    async fn net_errors_record_no_status() {
        let net = SimNet::new();
        let _ = net.get(&Domain::new("ghost.example"), "/x").await;
        assert!(net.stats().status_counts().is_empty());
    }

    #[tokio::test]
    async fn status_counters_never_double_count() {
        // Every request lands in exactly one bucket — tracked status,
        // other status, or net error — no matter how often the failure
        // mode is (re-)set. A bridge re-applying `set_failure` with the
        // same mode each tick must not inflate anything on its own:
        // counters move on *requests*, never on configuration.
        let net = SimNet::new();
        let d = Domain::new("flappy.example");
        net.register(d.clone(), hello_endpoint());
        for _ in 0..5 {
            net.set_failure(d.clone(), FailureMode::BadGateway);
        }
        assert_eq!(net.stats().snapshot().0, 0, "set_failure is not a request");
        assert_eq!(net.stats().status_counts().values().sum::<u64>(), 0);
        for _ in 0..3 {
            let _ = net.get(&d, "/hello").await;
        }
        net.set_failure(d.clone(), FailureMode::Healthy);
        net.set_failure(d.clone(), FailureMode::Healthy);
        for _ in 0..2 {
            let _ = net.get(&d, "/hello").await;
        }
        let _ = net.get(&Domain::new("ghost.example"), "/x").await;
        let (requests, injected, net_errors) = net.stats().snapshot();
        assert_eq!(requests, 6);
        assert_eq!(injected, 3);
        assert_eq!(net_errors, 1);
        assert_eq!(net.stats().status_count(StatusCode::BAD_GATEWAY), 3);
        assert_eq!(net.stats().status_count(StatusCode::OK), 2);
        // The accounting identity: every request is counted exactly once.
        let by_status: u64 = net.stats().status_counts().values().sum();
        assert_eq!(
            by_status + net.stats().status_other() + net_errors,
            requests
        );
    }

    #[tokio::test]
    async fn host_registry_queries() {
        let net = SimNet::new();
        assert_eq!(net.host_count(), 0);
        let d = Domain::new("a.example");
        net.register(d.clone(), hello_endpoint());
        assert!(net.knows(&d));
        assert!(!net.knows(&Domain::new("b.example")));
        assert_eq!(net.host_count(), 1);
    }
}
