//! The network fabric: registration, dispatch, failure injection, stats.

use crate::failure::FailureMode;
use crate::http::{HttpRequest, HttpResponse};
use fediscope_core::id::Domain;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use tokio::sync::{mpsc, oneshot};

/// A served HTTP endpoint. Handlers are synchronous and must be fast —
/// they run on the instance's serving task.
pub trait Endpoint: Send + Sync + 'static {
    /// Handles one request.
    fn handle(&self, req: HttpRequest) -> HttpResponse;
}

/// Adapter turning a closure into an [`Endpoint`].
pub struct FnEndpoint<F>(pub F);

impl<F> Endpoint for FnEndpoint<F>
where
    F: Fn(HttpRequest) -> HttpResponse + Send + Sync + 'static,
{
    fn handle(&self, req: HttpRequest) -> HttpResponse {
        (self.0)(req)
    }
}

/// Why a request failed before producing an HTTP response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// No endpoint registered under the domain (DNS failure).
    UnknownHost(Domain),
    /// The instance's serving task is gone (connection refused).
    ConnectionRefused(Domain),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::UnknownHost(d) => write!(f, "unknown host: {d}"),
            NetError::ConnectionRefused(d) => write!(f, "connection refused: {d}"),
        }
    }
}

impl std::error::Error for NetError {}

type ServingChannel = mpsc::UnboundedSender<(HttpRequest, oneshot::Sender<HttpResponse>)>;

/// Aggregate request statistics.
#[derive(Debug, Default)]
pub struct NetStats {
    /// Total requests issued (including failed ones).
    pub requests: AtomicU64,
    /// Requests answered by a forced failure mode.
    pub injected_failures: AtomicU64,
    /// Requests that failed at the network level (unknown host etc.).
    pub net_errors: AtomicU64,
}

impl NetStats {
    /// Snapshot of the counters as plain numbers.
    pub fn snapshot(&self) -> (u64, u64, u64) {
        (
            self.requests.load(Ordering::Relaxed),
            self.injected_failures.load(Ordering::Relaxed),
            self.net_errors.load(Ordering::Relaxed),
        )
    }
}

/// The simulated network. Cheap to clone via `Arc`.
pub struct SimNet {
    endpoints: RwLock<HashMap<Domain, ServingChannel>>,
    failures: RwLock<HashMap<Domain, FailureMode>>,
    stats: NetStats,
}

impl Default for SimNet {
    fn default() -> Self {
        Self::new()
    }
}

impl SimNet {
    /// An empty network.
    pub fn new() -> Self {
        SimNet {
            endpoints: RwLock::new(HashMap::new()),
            failures: RwLock::new(HashMap::new()),
            stats: NetStats::default(),
        }
    }

    /// Registers `endpoint` under `domain`, spawning its serving task.
    /// Requires a tokio runtime. Re-registering a domain replaces the old
    /// endpoint (its task drains and exits once the old channel drops).
    pub fn register(&self, domain: Domain, endpoint: Arc<dyn Endpoint>) {
        let (tx, mut rx) =
            mpsc::unbounded_channel::<(HttpRequest, oneshot::Sender<HttpResponse>)>();
        tokio::spawn(async move {
            while let Some((req, reply)) = rx.recv().await {
                // The receiver may have given up (crawler timeout); a failed
                // send is not an error.
                let _ = reply.send(endpoint.handle(req));
            }
        });
        self.endpoints.write().insert(domain, tx);
    }

    /// Convenience: register a closure endpoint.
    pub fn register_fn<F>(&self, domain: Domain, f: F)
    where
        F: Fn(HttpRequest) -> HttpResponse + Send + Sync + 'static,
    {
        self.register(domain, Arc::new(FnEndpoint(f)));
    }

    /// Sets the failure mode for a domain.
    pub fn set_failure(&self, domain: Domain, mode: FailureMode) {
        self.failures.write().insert(domain, mode);
    }

    /// Current failure mode for a domain.
    pub fn failure_of(&self, domain: &Domain) -> FailureMode {
        self.failures
            .read()
            .get(domain)
            .copied()
            .unwrap_or(FailureMode::Healthy)
    }

    /// Whether a domain is registered.
    pub fn knows(&self, domain: &Domain) -> bool {
        self.endpoints.read().contains_key(domain)
    }

    /// Number of registered domains.
    pub fn host_count(&self) -> usize {
        self.endpoints.read().len()
    }

    /// Request statistics.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Issues a request to `domain`.
    ///
    /// Failure-injected domains answer their forced status without ever
    /// reaching the endpoint — exactly how a dead or auth-walled instance
    /// presented itself to the paper's crawler.
    pub async fn request(
        &self,
        domain: &Domain,
        req: HttpRequest,
    ) -> Result<HttpResponse, NetError> {
        self.stats.requests.fetch_add(1, Ordering::Relaxed);
        if let Some(status) = self.failure_of(domain).forced_status() {
            self.stats.injected_failures.fetch_add(1, Ordering::Relaxed);
            return Ok(HttpResponse::status(status));
        }
        let tx = {
            let endpoints = self.endpoints.read();
            match endpoints.get(domain) {
                Some(tx) => tx.clone(),
                None => {
                    self.stats.net_errors.fetch_add(1, Ordering::Relaxed);
                    return Err(NetError::UnknownHost(domain.clone()));
                }
            }
        };
        let (reply_tx, reply_rx) = oneshot::channel();
        if tx.send((req, reply_tx)).is_err() {
            self.stats.net_errors.fetch_add(1, Ordering::Relaxed);
            return Err(NetError::ConnectionRefused(domain.clone()));
        }
        match reply_rx.await {
            Ok(resp) => Ok(resp),
            Err(_) => {
                self.stats.net_errors.fetch_add(1, Ordering::Relaxed);
                Err(NetError::ConnectionRefused(domain.clone()))
            }
        }
    }

    /// GET convenience wrapper.
    pub async fn get(
        &self,
        domain: &Domain,
        path_and_query: &str,
    ) -> Result<HttpResponse, NetError> {
        self.request(domain, HttpRequest::get(path_and_query)).await
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::StatusCode;
    use serde_json::json;

    fn hello_endpoint() -> Arc<dyn Endpoint> {
        Arc::new(FnEndpoint(|req: HttpRequest| {
            if req.path == "/hello" {
                HttpResponse::json(&json!({"msg": "hi"}))
            } else {
                HttpResponse::status(StatusCode::NOT_FOUND)
            }
        }))
    }

    #[tokio::test]
    async fn round_trip_request() {
        let net = SimNet::new();
        let d = Domain::new("a.example");
        net.register(d.clone(), hello_endpoint());
        let resp = net.get(&d, "/hello").await.unwrap();
        assert!(resp.is_success());
        assert_eq!(resp.json_body().unwrap()["msg"], "hi");
        let resp = net.get(&d, "/nope").await.unwrap();
        assert_eq!(resp.status, StatusCode::NOT_FOUND);
    }

    #[tokio::test]
    async fn unknown_host_errors() {
        let net = SimNet::new();
        let err = net
            .get(&Domain::new("ghost.example"), "/hello")
            .await
            .unwrap_err();
        assert!(matches!(err, NetError::UnknownHost(_)));
        let (reqs, _, net_errs) = net.stats().snapshot();
        assert_eq!((reqs, net_errs), (1, 1));
    }

    #[tokio::test]
    async fn failure_injection_shields_endpoint() {
        let net = SimNet::new();
        let d = Domain::new("dead.example");
        net.register(d.clone(), hello_endpoint());
        net.set_failure(d.clone(), FailureMode::BadGateway);
        let resp = net.get(&d, "/hello").await.unwrap();
        assert_eq!(resp.status, StatusCode::BAD_GATEWAY);
        let (_, injected, _) = net.stats().snapshot();
        assert_eq!(injected, 1);
        // Healing the domain restores service.
        net.set_failure(d.clone(), FailureMode::Healthy);
        assert!(net.get(&d, "/hello").await.unwrap().is_success());
    }

    #[tokio::test]
    async fn failure_injection_works_without_endpoint() {
        // A 404-injected domain doesn't need a registered endpoint at all —
        // exactly like the 110 dead instances of §3.
        let net = SimNet::new();
        let d = Domain::new("vanished.example");
        net.set_failure(d.clone(), FailureMode::NotFound);
        let resp = net.get(&d, "/api/v1/instance").await.unwrap();
        assert_eq!(resp.status, StatusCode::NOT_FOUND);
    }

    #[tokio::test]
    async fn concurrent_requests_are_all_answered() {
        let net = Arc::new(SimNet::new());
        let d = Domain::new("busy.example");
        net.register(d.clone(), hello_endpoint());
        let mut handles = Vec::new();
        for _ in 0..64 {
            let net = Arc::clone(&net);
            let d = d.clone();
            handles.push(tokio::spawn(async move {
                net.get(&d, "/hello").await.unwrap().status
            }));
        }
        for h in handles {
            assert_eq!(h.await.unwrap(), StatusCode::OK);
        }
        assert_eq!(net.stats().snapshot().0, 64);
    }

    #[tokio::test]
    async fn host_registry_queries() {
        let net = SimNet::new();
        assert_eq!(net.host_count(), 0);
        let d = Domain::new("a.example");
        net.register(d.clone(), hello_endpoint());
        assert!(net.knows(&d));
        assert!(!net.knows(&Domain::new("b.example")));
        assert_eq!(net.host_count(), 1);
    }
}
