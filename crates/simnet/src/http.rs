//! Minimal HTTP request/response types — just enough surface for the
//! Mastodon-compatible APIs the paper crawled.

use bytes::Bytes;
use serde::Serialize;
use std::collections::BTreeMap;
use std::fmt;

/// HTTP method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// GET — every crawler request.
    Get,
    /// POST — federation inbox deliveries.
    Post,
}

/// An HTTP status code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StatusCode(pub u16);

impl StatusCode {
    /// 200 OK.
    pub const OK: StatusCode = StatusCode(200);
    /// 202 Accepted (inbox deliveries).
    pub const ACCEPTED: StatusCode = StatusCode(202);
    /// 400 Bad Request.
    pub const BAD_REQUEST: StatusCode = StatusCode(400);
    /// 403 Forbidden — "instances require authorisation for timeline
    /// viewing" (§3).
    pub const FORBIDDEN: StatusCode = StatusCode(403);
    /// 404 Not Found.
    pub const NOT_FOUND: StatusCode = StatusCode(404);
    /// 410 Gone.
    pub const GONE: StatusCode = StatusCode(410);
    /// 502 Bad Gateway.
    pub const BAD_GATEWAY: StatusCode = StatusCode(502);
    /// 503 Service Unavailable.
    pub const SERVICE_UNAVAILABLE: StatusCode = StatusCode(503);

    /// Whether this is a 2xx code.
    pub fn is_success(self) -> bool {
        (200..300).contains(&self.0)
    }
}

impl fmt::Display for StatusCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// An HTTP request addressed to an instance.
#[derive(Debug, Clone)]
pub struct HttpRequest {
    /// Method.
    pub method: Method,
    /// Path without query string, e.g. `/api/v1/instance/peers`.
    pub path: String,
    /// Parsed query parameters.
    pub query: BTreeMap<String, String>,
    /// Request body (inbox deliveries carry JSON activities).
    pub body: Bytes,
}

impl HttpRequest {
    /// A GET request for `path_and_query` (query string parsed off).
    pub fn get(path_and_query: &str) -> Self {
        let (path, query) = match path_and_query.split_once('?') {
            Some((p, q)) => (p.to_string(), parse_query(q)),
            None => (path_and_query.to_string(), BTreeMap::new()),
        };
        HttpRequest {
            method: Method::Get,
            path,
            query,
            body: Bytes::new(),
        }
    }

    /// A POST request with a JSON body.
    pub fn post_json<T: Serialize>(path: &str, body: &T) -> Self {
        Self::post_bytes(
            path,
            Bytes::from(serde_json::to_vec(body).expect("serializable body")),
        )
    }

    /// A POST request with a pre-serialized body. `Bytes` clones share
    /// the buffer, so a wide delivery fan-out serializes the activity
    /// once and hands every target a refcount, not a copy.
    pub fn post_bytes(path: &str, body: Bytes) -> Self {
        HttpRequest {
            method: Method::Post,
            path: path.to_string(),
            query: BTreeMap::new(),
            body,
        }
    }

    /// Query parameter accessor.
    pub fn param(&self, key: &str) -> Option<&str> {
        self.query.get(key).map(String::as_str)
    }

    /// Query parameter parsed to a number.
    pub fn param_u64(&self, key: &str) -> Option<u64> {
        self.param(key).and_then(|v| v.parse().ok())
    }
}

fn parse_query(q: &str) -> BTreeMap<String, String> {
    q.split('&')
        .filter(|kv| !kv.is_empty())
        .filter_map(|kv| {
            let (k, v) = kv.split_once('=')?;
            Some((k.to_string(), v.to_string()))
        })
        .collect()
}

/// An HTTP response.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// Status code.
    pub status: StatusCode,
    /// Response body (JSON for API endpoints).
    pub body: Bytes,
}

impl HttpResponse {
    /// A 200 response with a JSON body.
    pub fn json<T: Serialize>(value: &T) -> Self {
        HttpResponse {
            status: StatusCode::OK,
            body: Bytes::from(serde_json::to_vec(value).expect("serializable response")),
        }
    }

    /// An empty response with the given status.
    pub fn status(status: StatusCode) -> Self {
        HttpResponse {
            status,
            body: Bytes::new(),
        }
    }

    /// Parses the body as JSON.
    pub fn json_body(&self) -> Result<serde_json::Value, serde_json::Error> {
        serde_json::from_slice(&self.body)
    }

    /// Whether the response is a success.
    pub fn is_success(&self) -> bool {
        self.status.is_success()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_parses_query() {
        let req = HttpRequest::get("/api/v1/timelines/public?local=true&limit=40&max_id=99");
        assert_eq!(req.path, "/api/v1/timelines/public");
        assert_eq!(req.param("local"), Some("true"));
        assert_eq!(req.param_u64("limit"), Some(40));
        assert_eq!(req.param_u64("max_id"), Some(99));
        assert_eq!(req.param("missing"), None);
    }

    #[test]
    fn get_without_query() {
        let req = HttpRequest::get("/api/v1/instance");
        assert_eq!(req.path, "/api/v1/instance");
        assert!(req.query.is_empty());
    }

    #[test]
    fn malformed_query_pairs_are_skipped() {
        let req = HttpRequest::get("/x?ok=1&&novalue&k=v");
        assert_eq!(req.param("ok"), Some("1"));
        assert_eq!(req.param("k"), Some("v"));
        assert_eq!(req.query.len(), 2);
    }

    #[test]
    fn json_round_trip() {
        let resp = HttpResponse::json(&serde_json::json!({"users": 42}));
        assert!(resp.is_success());
        assert_eq!(resp.json_body().unwrap()["users"], 42);
    }

    #[test]
    fn status_constants() {
        assert!(StatusCode::OK.is_success());
        assert!(StatusCode::ACCEPTED.is_success());
        assert!(!StatusCode::NOT_FOUND.is_success());
        assert_eq!(StatusCode::BAD_GATEWAY.to_string(), "502");
    }

    #[test]
    fn post_json_carries_body() {
        let req = HttpRequest::post_json("/inbox", &serde_json::json!({"type": "Create"}));
        assert_eq!(req.method, Method::Post);
        let v: serde_json::Value = serde_json::from_slice(&req.body).unwrap();
        assert_eq!(v["type"], "Create");
    }
}
