//! Per-domain failure injection matching the paper's §3 taxonomy.

use crate::http::StatusCode;
use serde::{Deserialize, Serialize};

/// How a domain answers requests.
///
/// §3: of 1,534 Pleroma instances, 236 could not be crawled — "110 are not
/// found (404 status code), 84 instances require authorisation for timeline
/// viewing (403), 24 result in bad gateway (502), 11 in service unavailable
/// (503), and 7 return gone (410)."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FailureMode {
    /// Requests reach the endpoint normally.
    Healthy,
    /// Every request answers 404.
    NotFound,
    /// Every request answers 403.
    Forbidden,
    /// Every request answers 502.
    BadGateway,
    /// Every request answers 503.
    Unavailable,
    /// Every request answers 410.
    Gone,
}

/// Whether a failed request is worth retrying.
///
/// The split follows Pleroma's federation publisher: 5xx gateway errors
/// (502/503) signal an instance that is down *right now* but may come
/// back — its queue retries them on a backoff schedule — while 4xx
/// answers (404 vanished, 403 auth-walled, 410 intentionally gone) and
/// DNS failures signal an instance that will never answer differently,
/// so the delivery dead-letters immediately.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FailureClass {
    /// Retrying may succeed: the §3 502/503 outages and churn downtime.
    Transient,
    /// Retrying cannot succeed: 404/403/410 and dead DNS.
    Permanent,
}

impl FailureClass {
    /// Classifies a non-success HTTP status. Returns `None` for 2xx/3xx
    /// (the request succeeded; there is nothing to retry).
    pub fn of_status(status: StatusCode) -> Option<FailureClass> {
        match status.0 {
            200..=399 => None,
            500..=599 => Some(FailureClass::Transient),
            _ => Some(FailureClass::Permanent),
        }
    }
}

impl FailureMode {
    /// The status code this failure mode forces, if any.
    pub fn forced_status(self) -> Option<StatusCode> {
        match self {
            FailureMode::Healthy => None,
            FailureMode::NotFound => Some(StatusCode::NOT_FOUND),
            FailureMode::Forbidden => Some(StatusCode::FORBIDDEN),
            FailureMode::BadGateway => Some(StatusCode::BAD_GATEWAY),
            FailureMode::Unavailable => Some(StatusCode::SERVICE_UNAVAILABLE),
            FailureMode::Gone => Some(StatusCode::GONE),
        }
    }

    /// Whether this failure mode is worth retrying, if it is a failure
    /// at all (`None` for [`FailureMode::Healthy`]).
    pub fn class(self) -> Option<FailureClass> {
        self.forced_status().and_then(FailureClass::of_status)
    }

    /// The §3 failure modes with their paper-reported instance counts
    /// (useful for building calibrated failure plans).
    pub const PAPER_TAXONOMY: [(FailureMode, u32); 5] = [
        (FailureMode::NotFound, 110),
        (FailureMode::Forbidden, 84),
        (FailureMode::BadGateway, 24),
        (FailureMode::Unavailable, 11),
        (FailureMode::Gone, 7),
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_forces_nothing() {
        assert_eq!(FailureMode::Healthy.forced_status(), None);
    }

    #[test]
    fn failure_modes_map_to_paper_status_codes() {
        assert_eq!(
            FailureMode::NotFound.forced_status(),
            Some(StatusCode::NOT_FOUND)
        );
        assert_eq!(
            FailureMode::Forbidden.forced_status(),
            Some(StatusCode::FORBIDDEN)
        );
        assert_eq!(
            FailureMode::BadGateway.forced_status(),
            Some(StatusCode::BAD_GATEWAY)
        );
        assert_eq!(
            FailureMode::Unavailable.forced_status(),
            Some(StatusCode::SERVICE_UNAVAILABLE)
        );
        assert_eq!(FailureMode::Gone.forced_status(), Some(StatusCode::GONE));
    }

    #[test]
    fn taxonomy_totals_236() {
        let total: u32 = FailureMode::PAPER_TAXONOMY.iter().map(|(_, n)| n).sum();
        assert_eq!(total, 236);
    }

    #[test]
    fn gateway_errors_are_transient_the_rest_permanent() {
        assert_eq!(FailureMode::Healthy.class(), None);
        assert_eq!(
            FailureMode::BadGateway.class(),
            Some(FailureClass::Transient)
        );
        assert_eq!(
            FailureMode::Unavailable.class(),
            Some(FailureClass::Transient)
        );
        assert_eq!(FailureMode::NotFound.class(), Some(FailureClass::Permanent));
        assert_eq!(
            FailureMode::Forbidden.class(),
            Some(FailureClass::Permanent)
        );
        assert_eq!(FailureMode::Gone.class(), Some(FailureClass::Permanent));
    }

    #[test]
    fn status_classification_ignores_success() {
        assert_eq!(FailureClass::of_status(StatusCode::OK), None);
        assert_eq!(FailureClass::of_status(StatusCode::ACCEPTED), None);
        assert_eq!(
            FailureClass::of_status(StatusCode::BAD_REQUEST),
            Some(FailureClass::Permanent)
        );
        assert_eq!(
            FailureClass::of_status(StatusCode(500)),
            Some(FailureClass::Transient)
        );
    }
}
