//! Per-domain failure injection matching the paper's §3 taxonomy.

use crate::http::StatusCode;
use serde::{Deserialize, Serialize};

/// How a domain answers requests.
///
/// §3: of 1,534 Pleroma instances, 236 could not be crawled — "110 are not
/// found (404 status code), 84 instances require authorisation for timeline
/// viewing (403), 24 result in bad gateway (502), 11 in service unavailable
/// (503), and 7 return gone (410)."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FailureMode {
    /// Requests reach the endpoint normally.
    Healthy,
    /// Every request answers 404.
    NotFound,
    /// Every request answers 403.
    Forbidden,
    /// Every request answers 502.
    BadGateway,
    /// Every request answers 503.
    Unavailable,
    /// Every request answers 410.
    Gone,
}

impl FailureMode {
    /// The status code this failure mode forces, if any.
    pub fn forced_status(self) -> Option<StatusCode> {
        match self {
            FailureMode::Healthy => None,
            FailureMode::NotFound => Some(StatusCode::NOT_FOUND),
            FailureMode::Forbidden => Some(StatusCode::FORBIDDEN),
            FailureMode::BadGateway => Some(StatusCode::BAD_GATEWAY),
            FailureMode::Unavailable => Some(StatusCode::SERVICE_UNAVAILABLE),
            FailureMode::Gone => Some(StatusCode::GONE),
        }
    }

    /// The §3 failure modes with their paper-reported instance counts
    /// (useful for building calibrated failure plans).
    pub const PAPER_TAXONOMY: [(FailureMode, u32); 5] = [
        (FailureMode::NotFound, 110),
        (FailureMode::Forbidden, 84),
        (FailureMode::BadGateway, 24),
        (FailureMode::Unavailable, 11),
        (FailureMode::Gone, 7),
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_forces_nothing() {
        assert_eq!(FailureMode::Healthy.forced_status(), None);
    }

    #[test]
    fn failure_modes_map_to_paper_status_codes() {
        assert_eq!(
            FailureMode::NotFound.forced_status(),
            Some(StatusCode::NOT_FOUND)
        );
        assert_eq!(
            FailureMode::Forbidden.forced_status(),
            Some(StatusCode::FORBIDDEN)
        );
        assert_eq!(
            FailureMode::BadGateway.forced_status(),
            Some(StatusCode::BAD_GATEWAY)
        );
        assert_eq!(
            FailureMode::Unavailable.forced_status(),
            Some(StatusCode::SERVICE_UNAVAILABLE)
        );
        assert_eq!(FailureMode::Gone.forced_status(), Some(StatusCode::GONE));
    }

    #[test]
    fn taxonomy_totals_236() {
        let total: u32 = FailureMode::PAPER_TAXONOMY.iter().map(|(_, n)| n).sum();
        assert_eq!(total, 236);
    }
}
