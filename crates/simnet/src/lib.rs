//! # fediscope-simnet
//!
//! An in-memory simulated network standing in for the Internet the paper's
//! crawler ran over. Instances register HTTP-style endpoints under their
//! domain; clients issue requests by domain and get responses back over
//! tokio channels (one serving task per instance — requests to the same
//! instance are processed in order, like a single-queue server).
//!
//! The network injects the exact failure taxonomy of §3 — for the 236
//! unreachable Pleroma instances: 110×404, 84×403, 24×502, 11×503, 7×410 —
//! via per-domain [`FailureMode`]s, and keeps request statistics the crawl
//! census reports on.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod failure;
mod http;
mod net;

pub use failure::{FailureClass, FailureMode};
pub use http::{HttpRequest, HttpResponse, Method, StatusCode};
pub use net::{Endpoint, FailureTaxonomy, FnEndpoint, NetError, NetStats, SimNet};
