//! The unified lexicon automaton: one collision-free fingerprint probe
//! scores all three attributes at once, driven by a SIMD/SWAR word-mask
//! tokenizer.
//!
//! The naive scorer walks every token past every entry of every lexicon —
//! O(tokens × entries × lexicons) string comparisons, with a `Vec`
//! allocation per text to count tokens first. At campaign scale (the
//! paper scores 46.8 M posts) that scan dominates the entire measurement
//! pipeline. On realistic traffic (every post distinct) it is also
//! branch-predictor-hostile: each token's early-exit point in the entry
//! list is unpredictable.
//!
//! This module replaces it with three cooperating pieces:
//!
//! 1. **Packed token keys.** A token's key is its last ≤ 8 bytes packed
//!    big-endian into a `u64` (alphanumeric bytes are never NUL, so for
//!    tokens ≤ 8 bytes the key *is* the token — no spelling comparison
//!    needed). Keys are computed in O(1) per token by one unaligned load
//!    plus a mask, not per byte.
//! 2. **A collision-free fingerprint table.** At build time a
//!    deterministic search finds a multiply-shift hash under which all
//!    vocabulary keys land in distinct slots. A lookup is then a single
//!    compare against a 4 KiB, L1-resident key array — no probe loop. The
//!    handful of > 8-byte vocabulary entries store their full spelling
//!    and length and are verified exactly on the (rare) key match.
//! 3. **A word-mask tokenizer.** Text is classified 64 bytes at a time
//!    into an alphanumeric bitmask via portable branch-free SWAR range
//!    checks, and token runs are extracted with trailing-zeros
//!    arithmetic. The per-byte branch of a scalar tokenizer
//!    (mispredicted at every token boundary on real text) disappears
//!    entirely.
//!
//! The table is the single runtime source of truth for token weights:
//! [`crate::Scorer::analyze`], [`crate::Scorer::explain`] and
//! [`crate::Lexicon::weight`] all resolve through it. The retained naive
//! implementation lives in [`crate::reference`] and is differentially
//! tested (bit-identical scores) against this one.

use crate::lexicon::LEXICONS;
use crate::scorer::Attribute;
use std::sync::OnceLock;

/// Per-token weights for all three attributes, indexed by
/// [`Attribute::index`].
pub type WeightRow = [f64; 3];

/// Base multiplier for the multiply-shift hash; the build-time search
/// perturbs it until the vocabulary maps collision-free.
const HASH_MULTIPLIER: u64 = 0x9E37_79B9_7F4A_7C15;

/// Candidate table sizes (powers of two), smallest first so the key
/// array stays L1-resident. 512 slots ⇒ a 4 KiB key array at ~13% load.
const TABLE_SIZES: [usize; 4] = [512, 1024, 2048, 4096];

/// Multiplier perturbations tried per table size.
const HASH_SEARCH_TRIALS: u64 = 4096;

/// Slot metadata, consulted only after a fingerprint hit.
#[derive(Clone)]
struct SlotMeta {
    /// Token length in bytes (disambiguates truncated > 8-byte keys).
    len: u32,
    /// Full spelling, for byte-exact verification of > 8-byte tokens.
    word: &'static str,
    /// The token's weight in each attribute's lexicon.
    row: WeightRow,
}

const EMPTY_META: SlotMeta = SlotMeta {
    len: 0,
    word: "",
    row: [0.0; 3],
};

/// The unified token → weight-row automaton.
pub struct UnifiedLexicon {
    /// Searched multiplier under which all vocabulary keys are
    /// collision-free.
    mult: u64,
    /// `64 - log2(slots)`: the multiply-shift right shift.
    shift: u32,
    /// `slots - 1`.
    mask: usize,
    /// Packed keys, 0 = empty (no token packs to 0). Split from the
    /// metadata so the miss path — overwhelmingly the common case on
    /// benign vocabulary — touches only this small array.
    fps: Box<[u64]>,
    /// Parallel metadata, loaded only on a fingerprint hit.
    meta: Box<[SlotMeta]>,
    entries: usize,
}

/// The packed key of a full token: last ≤ 8 bytes, big-endian.
#[inline]
fn key_of(token: &str) -> u64 {
    let mut key = 0u64;
    for &b in token.as_bytes() {
        key = (key << 8) | b as u64;
    }
    key
}

/// The packed key of the token `bytes[s..e]`, in O(1) via one unaligned
/// load when the token ends at offset ≥ 8.
#[inline(always)]
fn key_of_span(bytes: &[u8], s: usize, e: usize) -> u64 {
    let len = e - s;
    if e >= 8 {
        let full = u64::from_be_bytes(bytes[e - 8..e].try_into().unwrap());
        if len >= 8 {
            full
        } else {
            full & (u64::MAX >> (64 - 8 * len as u32))
        }
    } else {
        let mut key = 0u64;
        for &b in &bytes[s..e] {
            key = (key << 8) | b as u64;
        }
        key
    }
}

/// Portable branch-free SWAR classification: bit `i` of the result is set
/// iff `x`'s byte `i` is an ASCII alphanumeric, as a 0x80-positioned mask.
#[inline(always)]
fn alnum_hi_bits(x: u64) -> u64 {
    const ONE: u64 = 0x0101_0101_0101_0101;
    const HI: u64 = 0x8080_8080_8080_8080;
    let low7 = x & !HI;
    // `| 0x20` folds 'A'-'Z' onto 'a'-'z' (digits are unaffected, but
    // other bytes may alias into the digit range — so digits are tested
    // on the unfolded value).
    let folded = low7 | (0x20 * ONE);
    let ge_a = folded.wrapping_add((0x80 - 0x61) * ONE) & HI;
    let le_z = !folded.wrapping_add((0x7f - 0x7a) * ONE) & HI;
    let ge_0 = low7.wrapping_add((0x80 - 0x30) * ONE) & HI;
    let le_9 = !low7.wrapping_add((0x7f - 0x39) * ONE) & HI;
    // Non-ASCII bytes (high bit set) are delimiters, exactly like the
    // char-level tokenizer, which splits on every non-ASCII-alphanumeric
    // `char`.
    ((ge_a & le_z) | (ge_0 & le_9)) & !(x & HI)
}

/// Alphanumeric bitmask (bit per byte, LSB = first byte) for the 64 text
/// bytes at `base`, zero-padded past the end of text — portable SWAR.
#[inline(always)]
fn mask64_swar(bytes: &[u8], base: usize) -> u64 {
    #[inline(always)]
    fn masked_chunks(buf: &[u8]) -> u64 {
        let mut out = 0u64;
        let mut c = 0;
        while c < 8 {
            let off = c * 8;
            let x = u64::from_le_bytes(buf[off..off + 8].try_into().unwrap());
            let hi = alnum_hi_bits(x);
            // Compress the eight 0x80-positioned bits to the low byte.
            let m8 = ((hi >> 7).wrapping_mul(0x0102_0408_1020_4080) >> 56) & 0xff;
            out |= m8 << (c * 8);
            c += 1;
        }
        out
    }
    let end = (base + 64).min(bytes.len());
    if end - base == 64 {
        masked_chunks(&bytes[base..end])
    } else {
        let mut buf = [0u8; 64];
        buf[..end - base].copy_from_slice(&bytes[base..end]);
        masked_chunks(&buf)
    }
}

/// The word-mask entry point. SWAR keeps the crate's
/// `#![forbid(unsafe_code)]` guarantee — an SSE2 classifier measures only
/// ~16% faster end to end and would need raw-pointer loads.
#[inline(always)]
fn mask64(bytes: &[u8], base: usize) -> u64 {
    mask64_swar(bytes, base)
}

impl UnifiedLexicon {
    /// Tries to place every vocabulary entry collision-free under one
    /// multiply-shift hash of the given table size.
    fn try_build(slots: usize) -> Option<UnifiedLexicon> {
        let mask = slots - 1;
        let shift = 64 - slots.trailing_zeros();
        for trial in 0..HASH_SEARCH_TRIALS {
            let mult = HASH_MULTIPLIER.wrapping_add(trial.wrapping_mul(0x0000_0001_0000_0001)) | 1;
            let mut fps = vec![0u64; slots].into_boxed_slice();
            let mut meta = vec![EMPTY_META; slots].into_boxed_slice();
            let mut entries = 0usize;
            let mut ok = true;
            'insert: for lexicon in LEXICONS {
                let attr = lexicon.attribute.index();
                for &(token, weight) in lexicon.entries {
                    let key = key_of(token);
                    let idx = (key.wrapping_mul(mult) >> shift) as usize & mask;
                    if fps[idx] == 0 {
                        fps[idx] = key;
                        meta[idx] = SlotMeta {
                            len: token.len() as u32,
                            word: token,
                            row: [0.0; 3],
                        };
                        entries += 1;
                    } else if fps[idx] != key || meta[idx].word != token {
                        // Slot taken by a different token (or by a
                        // truncated-key twin, which the table cannot
                        // represent): try the next multiplier.
                        ok = false;
                        break 'insert;
                    }
                    meta[idx].row[attr] = weight;
                }
            }
            if ok {
                return Some(UnifiedLexicon {
                    mult,
                    shift,
                    mask,
                    fps,
                    meta,
                    entries,
                });
            }
        }
        None
    }

    fn build() -> UnifiedLexicon {
        // Fail fast, with names, on the one conflict no multiplier can
        // separate: two distinct vocabulary entries sharing a packed key
        // (identical last ≤ 8 bytes). Without this check the search
        // below would grind through every size × multiplier combination
        // and panic uninformatively.
        let mut seen: Vec<(u64, &'static str)> = Vec::new();
        for lexicon in LEXICONS {
            for &(token, _) in lexicon.entries {
                let key = key_of(token);
                if let Some((_, twin)) = seen.iter().find(|(k, w)| *k == key && *w != token) {
                    panic!(
                        "lexicon entries {twin:?} and {token:?} share their last 8 bytes; \
                         the unified table cannot distinguish them — rename one"
                    );
                }
                seen.push((key, token));
            }
        }
        for slots in TABLE_SIZES {
            if let Some(table) = Self::try_build(slots) {
                return table;
            }
        }
        // Statistically unreachable: P(miss) per multiplier is far below
        // 50% at 4096 slots, and 4096 multipliers are tried per size. A
        // unit test pins the current vocabulary to the smallest size.
        panic!("no collision-free hash found for the lexicon vocabulary");
    }

    /// The process-wide table, built on first use.
    pub fn global() -> &'static UnifiedLexicon {
        static TABLE: OnceLock<UnifiedLexicon> = OnceLock::new();
        TABLE.get_or_init(UnifiedLexicon::build)
    }

    /// Number of slots in the fingerprint table.
    pub fn slots(&self) -> usize {
        self.mask + 1
    }

    #[inline(always)]
    fn slot_index(&self, key: u64) -> usize {
        (key.wrapping_mul(self.mult) >> self.shift) as usize & self.mask
    }

    /// Resolves the token `bytes[s..e]` and accumulates its weight row
    /// into `totals`. One key-array compare on the miss path; length and
    /// (for > 8-byte tokens) spelling are verified on the rare hit.
    #[inline(always)]
    fn probe_add(&self, bytes: &[u8], s: usize, e: usize, totals: &mut WeightRow) {
        let key = key_of_span(bytes, s, e);
        let idx = self.slot_index(key);
        if self.fps[idx] == key {
            let m = &self.meta[idx];
            let len = e - s;
            if m.len as usize == len && (len <= 8 || m.word.as_bytes() == &bytes[s..e]) {
                totals[0] += m.row[0];
                totals[1] += m.row[1];
                totals[2] += m.row[2];
            }
        }
    }

    /// Weight row for a token: `None` for benign vocabulary (the common
    /// case — one compare and out).
    #[inline]
    pub fn weights(&self, token: &str) -> Option<&WeightRow> {
        if token.is_empty() {
            return None;
        }
        let bytes = token.as_bytes();
        let key = key_of_span(bytes, 0, bytes.len());
        let idx = self.slot_index(key);
        if self.fps[idx] != key {
            return None;
        }
        let m = &self.meta[idx];
        if m.len as usize == bytes.len() && (bytes.len() <= 8 || m.word.as_bytes() == bytes) {
            Some(&m.row)
        } else {
            None
        }
    }

    /// Single-attribute weight (0.0 if the token is benign).
    #[inline]
    pub fn weight(&self, token: &str, attribute: Attribute) -> f64 {
        self.weights(token)
            .map(|row| row[attribute.index()])
            .unwrap_or(0.0)
    }

    /// The fused hot path: classifies the text 64 bytes at a time into an
    /// alphanumeric bitmask and extracts token runs with trailing-zeros
    /// arithmetic, accumulating the summed weight row over all tokens
    /// plus the token count — the two quantities
    /// [`crate::Scorer::analyze`] needs. No allocation, no UTF-8
    /// decoding, no per-byte branches.
    ///
    /// Weights accumulate in token order, so the sums are bit-identical
    /// to the naive per-lexicon `Σ weight(token)` (benign tokens
    /// contribute an exact `+0.0` there and nothing here — the same
    /// float either way, since weights are non-negative).
    #[inline]
    pub fn accumulate(&self, text: &str) -> (WeightRow, u64) {
        self.accumulate_with(text, mask64)
    }

    /// [`Self::accumulate`] over an explicit classifier, so tests can
    /// pin the SWAR classifier against a per-byte reference.
    #[inline(always)]
    fn accumulate_with<M: Fn(&[u8], usize) -> u64>(
        &self,
        text: &str,
        classify: M,
    ) -> (WeightRow, u64) {
        let bytes = text.as_bytes();
        let n = bytes.len();
        let mut totals: WeightRow = [0.0; 3];
        let mut tokens: u64 = 0;
        // Start of a token left unterminated by the previous word, or -1.
        let mut carry_start: isize = -1;
        let mut base = 0usize;
        while base < n {
            let mut m = classify(bytes, base);
            if carry_start >= 0 {
                if m & 1 == 1 {
                    // The carried token continues into this word.
                    let run = (!m).trailing_zeros() as usize;
                    if run == 64 {
                        base += 64;
                        continue;
                    }
                    tokens += 1;
                    self.probe_add(bytes, carry_start as usize, base + run, &mut totals);
                    carry_start = -1;
                    m &= !((1u64 << run) - 1);
                } else {
                    // The carried token ended exactly at the word seam.
                    tokens += 1;
                    self.probe_add(bytes, carry_start as usize, base, &mut totals);
                    carry_start = -1;
                }
            }
            if (m >> 63) & 1 == 1 {
                // The trailing run may continue into the next word; defer
                // it as the new carry.
                let t = (!m).leading_zeros() as usize;
                carry_start = (base + 64 - t) as isize;
                m = if t == 64 { 0 } else { m & (u64::MAX >> t) };
            }
            // Run boundaries: a start bit is a 1 not preceded by a 1, an
            // end bit is a 1 not followed by a 1. Both streams pop in
            // lockstep, one token per pair.
            let starts = m & !(m << 1);
            let mut e_bits = m & !(m >> 1);
            let mut s_bits = starts;
            tokens += u64::from(starts.count_ones());
            while s_bits != 0 {
                let s = s_bits.trailing_zeros() as usize;
                let e = e_bits.trailing_zeros() as usize;
                self.probe_add(bytes, base + s, base + e + 1, &mut totals);
                s_bits &= s_bits - 1;
                e_bits &= e_bits - 1;
            }
            base += 64;
        }
        if carry_start >= 0 {
            tokens += 1;
            self.probe_add(bytes, carry_start as usize, n, &mut totals);
        }
        (totals, tokens)
    }

    /// Number of distinct offending tokens across all lexicons.
    pub fn len(&self) -> usize {
        self.entries
    }

    /// Whether the table is empty (never, in practice).
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexicon::lexicon_for;

    #[test]
    fn table_covers_every_lexicon_entry() {
        let table = UnifiedLexicon::global();
        let total: usize = LEXICONS.iter().map(|l| l.entries.len()).sum();
        // Lexicons are disjoint, so the union is the sum.
        assert_eq!(table.len(), total);
        for lexicon in LEXICONS {
            for &(token, weight) in lexicon.entries {
                assert_eq!(table.weight(token, lexicon.attribute), weight, "{token}");
                let row = table.weights(token).unwrap();
                assert_eq!(row[lexicon.attribute.index()], weight);
            }
        }
    }

    #[test]
    fn hash_search_stays_at_the_smallest_table() {
        // The deterministic multiplier search must keep succeeding at 512
        // slots for the current vocabulary, so the key array stays 4 KiB
        // and L1-resident. If a vocabulary change trips this, either
        // reorder TABLE_SIZES expectations or widen the search.
        let table = UnifiedLexicon::global();
        assert_eq!(table.slots(), 512);
    }

    #[test]
    fn benign_tokens_miss() {
        let table = UnifiedLexicon::global();
        for w in crate::lexicon::BENIGN_WORDS {
            assert!(table.weights(w).is_none(), "{w} must miss the table");
        }
        assert!(table.weights("").is_none());
        assert!(table.weights("averyveryverylongtoken").is_none());
    }

    #[test]
    fn long_tokens_verify_full_bytes() {
        let table = UnifiedLexicon::global();
        // "worthless" (9 bytes) keys on its last 8 bytes "orthless"; a
        // same-length impostor sharing that suffix must still miss.
        assert!(table.weights("worthless").is_some());
        assert!(table.weights("borthless").is_none());
        assert!(table.weights("xorthless").is_none());
        // And the suffix alone (8 bytes, same packed key) must miss on
        // the length check.
        assert!(table.weights("orthless").is_none());
        assert!(table.weights("disgusting").is_some());
        assert!(table.weights("xisgusting").is_none());
        // A long token *ending* in a full ≤ 8-byte vocabulary word must
        // miss on length.
        assert!(table.weights("unsubhuman").is_none());
    }

    #[test]
    fn rows_agree_with_per_attribute_lexicons() {
        let table = UnifiedLexicon::global();
        for attribute in Attribute::ALL {
            let lexicon = lexicon_for(attribute);
            for &(token, _) in lexicon.entries {
                let row = table.weights(token).unwrap();
                for other in Attribute::ALL {
                    let expected = lexicon_for(other)
                        .entries
                        .iter()
                        .find(|(t, _)| *t == token)
                        .map(|(_, w)| *w)
                        .unwrap_or(0.0);
                    assert_eq!(row[other.index()], expected);
                }
            }
        }
    }

    #[test]
    fn accumulate_counts_and_sums() {
        let table = UnifiedLexicon::global();
        let (row, tokens) = table.accumulate("idiot coffee damn; lewd!!");
        assert_eq!(tokens, 4);
        assert_eq!(row[Attribute::Toxicity.index()], 1.0);
        assert_eq!(row[Attribute::Profanity.index()], 1.0);
        assert_eq!(row[Attribute::SexuallyExplicit.index()], 1.5);
        let (row, tokens) = table.accumulate("");
        assert_eq!(tokens, 0);
        assert_eq!(row, [0.0; 3]);
        // Multi-byte UTF-8 is a delimiter, exactly like the char-level
        // tokenizer.
        let (_, tokens) = table.accumulate("idiot→scum");
        assert_eq!(tokens, 2);
    }

    #[test]
    fn word_seam_edge_cases() {
        let table = UnifiedLexicon::global();
        // Tokens spanning, ending at, and starting at 64-byte word seams.
        let cases = [
            format!("{} scum", "q".repeat(64)),
            format!("{} scum", "q".repeat(130)),
            format!("ab {}", "q".repeat(63)),
            format!("{}idiot", "q".repeat(59)),   // crosses seam
            format!("{} idiot", "q".repeat(63)),  // token ends at bit 63
            format!("{}  idiot", "q".repeat(62)), // delimiter at seam
            "q".repeat(64),                       // one 64-byte token
            "q".repeat(200),                      // one 200-byte token
            format!("{} damn {}", "q".repeat(60), "r".repeat(60)),
        ];
        for text in &cases {
            let naive_tokens = crate::scorer::tokenize(text).count() as u64;
            let naive_row: WeightRow = {
                let mut row = [0.0; 3];
                for t in crate::scorer::tokenize(text) {
                    if let Some(r) = table.weights(t) {
                        row[0] += r[0];
                        row[1] += r[1];
                        row[2] += r[2];
                    }
                }
                row
            };
            let (row, tokens) = table.accumulate(text);
            assert_eq!(tokens, naive_tokens, "{text:?}");
            assert_eq!(row, naive_row, "{text:?}");
        }
    }

    /// A per-byte classifier with the same contract as [`mask64`],
    /// written the obvious slow way.
    fn mask64_per_byte(bytes: &[u8], base: usize) -> u64 {
        let end = (base + 64).min(bytes.len());
        let mut m = 0u64;
        for (i, &b) in bytes[base..end].iter().enumerate() {
            m |= u64::from(b.is_ascii_alphanumeric()) << i;
        }
        m
    }

    #[test]
    fn swar_classifier_matches_per_byte_reference() {
        // `accumulate` runs the SWAR classifier; pin it against the
        // per-byte one on texts that exercise every byte class.
        let table = UnifiedLexicon::global();
        let mut texts: Vec<String> = vec![
            String::new(),
            " ".into(),
            "idiot".into(),
            "Idiot SCUM MiXeD".into(),
            "0123456789 42 a1b2".into(),
            "ünïcode→damn £$%^ porn".into(),
            "\u{0}\u{1}\u{7f} idiot \u{80}".into(),
        ];
        // Every single byte value, embedded between tokens.
        for b in 0u8..=255 {
            texts.push(format!("idiot {}damn", char::from(b)));
        }
        for text in &texts {
            let fast = table.accumulate_with(text, mask64);
            let reference = table.accumulate_with(text, mask64_per_byte);
            assert_eq!(fast, reference, "{text:?}");
        }
    }

    #[test]
    fn swar_classifier_matches_char_tokenizer_per_byte() {
        for b in 0u8..=255 {
            let expected = b.is_ascii_alphanumeric();
            let mut buf = [0u8; 64];
            buf[0] = b;
            let got = mask64_swar(&buf, 0) & 1 == 1;
            assert_eq!(got, expected, "byte {b:#04x}");
        }
    }
}
