//! Attribute lexicons.
//!
//! Each attribute has a weighted vocabulary; weights reflect severity
//! (a weight-3 token saturates the score much faster than a weight-1
//! token). The synthetic world composes post text from these vocabularies
//! plus a benign base vocabulary, so scorer output is fully controlled by
//! token choice — mirroring how real communities' vocabulary drove the
//! paper's Perspective scores.
//!
//! The token lists mix mild real words with synthetic markers; no actual
//! slurs are embedded in the source.

use crate::scorer::Attribute;

/// A weighted vocabulary for one attribute.
#[derive(Debug, Clone)]
pub struct Lexicon {
    /// The attribute this lexicon scores.
    pub attribute: Attribute,
    /// `(token, weight)` pairs; tokens are lowercase.
    pub entries: &'static [(&'static str, f64)],
}

impl Lexicon {
    /// Weight of a token in this lexicon (0.0 if absent).
    ///
    /// For the three catalog lexicons this resolves through the
    /// process-wide [`UnifiedLexicon`](crate::UnifiedLexicon) — one hash
    /// probe instead of a linear scan of the entry list — so `explain()`
    /// and policy-side lookups share the scorer hot path's speed. A
    /// hand-built `Lexicon` with its own entry list falls back to the
    /// linear scan, so both methods of such a value answer from the same
    /// vocabulary. (The frozen always-linear scan also survives inside
    /// [`crate::reference`].)
    pub fn weight(&self, token: &str) -> f64 {
        let canonical = lexicon_for(self.attribute);
        if std::ptr::eq(self.entries, canonical.entries) {
            return crate::unified::UnifiedLexicon::global().weight(token, self.attribute);
        }
        self.entries
            .iter()
            .find(|(t, _)| *t == token)
            .map(|(_, w)| *w)
            .unwrap_or(0.0)
    }

    /// Tokens with at least the given weight.
    pub fn tokens_with_min_weight(&self, min: f64) -> Vec<&'static str> {
        self.entries
            .iter()
            .filter(|(_, w)| *w >= min)
            .map(|(t, _)| *t)
            .collect()
    }
}

/// Toxicity vocabulary: insults, identity attacks, threats.
pub static TOXIC_LEXICON: Lexicon = Lexicon {
    attribute: Attribute::Toxicity,
    entries: &[
        ("idiot", 1.0),
        ("stupid", 1.0),
        ("moron", 1.5),
        ("trash", 1.0),
        ("scum", 2.0),
        ("loser", 1.0),
        ("pathetic", 1.0),
        ("vermin", 2.5),
        ("subhuman", 3.0),
        ("degenerate", 2.0),
        ("parasite", 2.5),
        ("filth", 2.0),
        ("worthless", 1.5),
        ("disgusting", 1.0),
        ("hate", 1.5),
        ("destroy", 1.0),
        ("eradicate", 2.5),
        ("garbage", 1.0),
        ("clown", 0.8),
        ("cretin", 1.5),
        ("imbecile", 1.5),
        ("kys", 3.0),
        ("die", 2.0),
        ("threat", 1.5),
        ("grukk", 3.0), // synthetic slur marker
        ("vrelk", 3.0), // synthetic slur marker
        ("zhurr", 2.5), // synthetic identity-attack marker
    ],
};

/// Profanity vocabulary: swear/curse words (mild + synthetic markers).
pub static PROFANE_LEXICON: Lexicon = Lexicon {
    attribute: Attribute::Profanity,
    entries: &[
        ("damn", 1.0),
        ("hell", 0.8),
        ("crap", 1.0),
        ("piss", 1.5),
        ("arse", 1.5),
        ("bastard", 2.0),
        ("bollocks", 1.5),
        ("bugger", 1.2),
        ("shite", 2.0),
        ("feck", 1.5),
        ("frick", 1.0),
        ("fsck", 2.5), // synthetic strong-profanity marker
        ("shuk", 2.5), // synthetic strong-profanity marker
        ("dreck", 1.5),
        ("cuss", 1.0),
        ("swear", 0.8),
        ("profane", 1.0),
        ("vulgar", 1.0),
        ("blast", 0.6),
        ("curse", 0.8),
    ],
};

/// Sexually explicit vocabulary (sanitized + synthetic markers).
pub static SEXUAL_LEXICON: Lexicon = Lexicon {
    attribute: Attribute::SexuallyExplicit,
    entries: &[
        ("nsfw", 1.0),
        ("lewd", 1.5),
        ("nude", 2.0),
        ("naked", 1.5),
        ("explicit", 1.5),
        ("erotic", 2.0),
        ("porn", 2.5),
        ("hentai", 2.5),
        ("fetish", 2.0),
        ("kink", 1.5),
        ("smut", 2.0),
        ("xrated", 2.5),
        ("adult", 1.0),
        ("sensual", 1.2),
        ("strip", 1.2),
        ("lust", 1.2),
        ("obscene", 1.5),
        ("risque", 1.0),
        ("zmut", 3.0), // synthetic explicit marker
        ("qorn", 3.0), // synthetic explicit marker
    ],
};

/// Benign filler vocabulary for non-harmful text.
pub static BENIGN_WORDS: &[&str] = &[
    "coffee",
    "morning",
    "garden",
    "release",
    "server",
    "update",
    "music",
    "weather",
    "bread",
    "cat",
    "dog",
    "photo",
    "walk",
    "book",
    "game",
    "patch",
    "kernel",
    "fediverse",
    "instance",
    "friend",
    "lunch",
    "train",
    "paint",
    "story",
    "flower",
    "river",
    "keyboard",
    "window",
    "cloud",
    "coding",
    "tea",
    "bicycle",
    "garlic",
    "picture",
    "autumn",
    "winter",
    "spring",
    "summer",
    "melody",
    "library",
    "museum",
    "recipe",
    "puzzle",
    "market",
    "forest",
    "mountain",
    "valley",
    "harbor",
    "lantern",
    "notebook",
];

/// All three attribute lexicons.
pub static LEXICONS: [&Lexicon; 3] = [&TOXIC_LEXICON, &PROFANE_LEXICON, &SEXUAL_LEXICON];

/// The lexicon for an attribute.
pub fn lexicon_for(attribute: Attribute) -> &'static Lexicon {
    match attribute {
        Attribute::Toxicity => &TOXIC_LEXICON,
        Attribute::Profanity => &PROFANE_LEXICON,
        Attribute::SexuallyExplicit => &SEXUAL_LEXICON,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn lexicons_cover_their_attributes() {
        for lex in LEXICONS {
            assert!(!lex.entries.is_empty());
            assert_eq!(lexicon_for(lex.attribute).attribute, lex.attribute);
        }
    }

    #[test]
    fn tokens_are_lowercase_and_unique_within_lexicon() {
        for lex in LEXICONS {
            let mut seen = HashSet::new();
            for (t, w) in lex.entries {
                assert_eq!(*t, t.to_lowercase(), "{t} must be lowercase");
                assert!(seen.insert(*t), "duplicate token {t}");
                assert!(*w > 0.0 && *w <= 3.0, "weight of {t} in (0, 3]");
            }
        }
    }

    #[test]
    fn lexicons_do_not_overlap_each_other() {
        // A token scoring two attributes at once would make calibration
        // ambiguous; keep vocabularies disjoint.
        let sets: Vec<HashSet<&str>> = LEXICONS
            .iter()
            .map(|l| l.entries.iter().map(|(t, _)| *t).collect())
            .collect();
        for i in 0..sets.len() {
            for j in (i + 1)..sets.len() {
                let overlap: Vec<_> = sets[i].intersection(&sets[j]).collect();
                assert!(overlap.is_empty(), "overlap: {overlap:?}");
            }
        }
    }

    #[test]
    fn benign_words_hit_no_lexicon() {
        for w in BENIGN_WORDS {
            for lex in LEXICONS {
                assert_eq!(lex.weight(w), 0.0, "{w} must be benign");
            }
        }
    }

    #[test]
    fn custom_lexicon_answers_from_its_own_entries() {
        // A hand-built lexicon must not leak the global catalog's
        // vocabulary: both `weight` and `tokens_with_min_weight` answer
        // from the same entry list.
        let custom = Lexicon {
            attribute: Attribute::Toxicity,
            entries: &[("newslur", 3.0)],
        };
        assert_eq!(custom.weight("newslur"), 3.0);
        assert_eq!(
            custom.weight("idiot"),
            0.0,
            "catalog entry must not leak in"
        );
        assert_eq!(custom.tokens_with_min_weight(1.0), vec!["newslur"]);
        // Clones of the catalog lexicons still take the unified-table
        // path (the entries slice is the same static data).
        let clone = TOXIC_LEXICON.clone();
        assert_eq!(clone.weight("idiot"), 1.0);
    }

    #[test]
    fn weight_lookup() {
        assert_eq!(TOXIC_LEXICON.weight("subhuman"), 3.0);
        assert_eq!(TOXIC_LEXICON.weight("coffee"), 0.0);
        let severe = TOXIC_LEXICON.tokens_with_min_weight(3.0);
        assert!(severe.contains(&"grukk"));
        assert!(!severe.contains(&"idiot"));
    }
}
