//! # fediscope-perspective
//!
//! A synthetic stand-in for Google's Perspective API, which the paper used
//! to score all posts of reject-targeted instances on three attributes:
//! **toxicity**, **profanity** and **sexually explicit** content (§3,
//! *Harmful Classifications*).
//!
//! The real Perspective API is a paid, rate-limited ML service whose scores
//! drift over time; reproducing the paper requires a deterministic scorer
//! with the same interface and the same downstream semantics:
//!
//! * scores are probabilities in `[0, 1]` per attribute;
//! * a post is *harmful* if any attribute scores ≥ 0.8 (the threshold the
//!   paper takes from the Perspective developers);
//! * a user is *harmful* if the average of their posts' scores crosses the
//!   threshold on any attribute.
//!
//! Our scorer ([`Scorer`]) counts weighted lexicon hits and maps the hit
//! density through a saturating curve — monotone in the density of
//! offending vocabulary and analytically invertible, which is what lets
//! `fediscope-synthgen` author text that *measures* at a chosen score, the
//! same way real toxic communities produced high-scoring content for the
//! paper's crawl.
//!
//! [`PerspectiveClient`] wraps the scorer behind the AnalyzeComment-style
//! request/response types and simulates client-side QPS limiting, so the
//! annotation pipeline code looks exactly like code talking to the real
//! service.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod api;
mod client;
mod lexicon;
pub mod reference;
mod scorer;
mod unified;

pub use api::{AnalyzeCommentRequest, AnalyzeCommentResponse, AttributeScore};
pub use client::{ClientStats, PerspectiveClient};
pub use lexicon::{lexicon_for, Lexicon, BENIGN_WORDS, LEXICONS};
pub use scorer::{Attribute, AttributeScores, Scorer};
pub use unified::{UnifiedLexicon, WeightRow};
