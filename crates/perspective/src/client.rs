//! A rate-limited client around the scorer, mimicking how the paper's
//! pipeline talked to the hosted Perspective API.

use crate::api::{AnalyzeCommentRequest, AnalyzeCommentResponse};
use crate::scorer::{AttributeScores, Scorer};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use tokio::sync::Semaphore;

/// Client-side statistics.
#[derive(Debug, Default)]
pub struct ClientStats {
    /// Requests issued.
    pub requests: AtomicU64,
    /// Total comments scored (batch requests count each comment).
    pub comments_scored: AtomicU64,
}

/// An async client over the synthetic Perspective service.
///
/// The hosted API enforces a per-project QPS quota; the client models the
/// same back-pressure with a concurrency-limiting semaphore, so annotation
/// pipelines written against it exhibit realistic batching behaviour.
pub struct PerspectiveClient {
    scorer: Scorer,
    quota: Arc<Semaphore>,
    stats: ClientStats,
}

impl PerspectiveClient {
    /// A client with the default scorer and a concurrency quota of
    /// `max_in_flight` requests.
    pub fn new(max_in_flight: usize) -> Self {
        PerspectiveClient {
            scorer: Scorer::new(),
            quota: Arc::new(Semaphore::new(max_in_flight.max(1))),
            stats: ClientStats::default(),
        }
    }

    /// The underlying scorer (for synchronous bulk scoring where the API
    /// framing is not needed).
    pub fn scorer(&self) -> &Scorer {
        &self.scorer
    }

    /// Client statistics.
    pub fn stats(&self) -> &ClientStats {
        &self.stats
    }

    /// Scores one comment through the API framing.
    pub async fn analyze(&self, request: AnalyzeCommentRequest) -> AnalyzeCommentResponse {
        let _permit = self.quota.acquire().await.expect("semaphore never closed");
        self.stats.requests.fetch_add(1, Ordering::Relaxed);
        self.stats.comments_scored.fetch_add(1, Ordering::Relaxed);
        let scores = self.scorer.analyze(&request.comment);
        AnalyzeCommentResponse::from_scores(&scores, &request.requested_attributes)
    }

    /// Scores a batch of texts on all attributes, preserving order.
    pub async fn analyze_batch(&self, texts: &[String]) -> Vec<AttributeScores> {
        let mut out = Vec::with_capacity(texts.len());
        for text in texts {
            let resp = self
                .analyze(AnalyzeCommentRequest::all_attributes(text.clone()))
                .await;
            out.push(resp.to_scores());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scorer::Attribute;

    #[tokio::test]
    async fn analyze_round_trip() {
        let client = PerspectiveClient::new(4);
        let resp = client
            .analyze(AnalyzeCommentRequest::all_attributes("subhuman scum grukk"))
            .await;
        assert!(resp.score(Attribute::Toxicity).unwrap() > 0.8);
        assert_eq!(client.stats().requests.load(Ordering::Relaxed), 1);
    }

    #[tokio::test]
    async fn batch_preserves_order_and_counts() {
        let client = PerspectiveClient::new(2);
        let texts = vec![
            "coffee morning".to_string(),
            "grukk vrelk subhuman kys".to_string(),
            "lewd zmut qorn porn".to_string(),
        ];
        let scores = client.analyze_batch(&texts).await;
        assert_eq!(scores.len(), 3);
        assert!(scores[0].max() < 0.1);
        assert!(scores[1].toxicity > 0.8);
        assert!(scores[2].sexually_explicit > 0.8);
        assert_eq!(client.stats().comments_scored.load(Ordering::Relaxed), 3);
    }

    #[tokio::test]
    async fn concurrent_analyzes_respect_quota() {
        let client = Arc::new(PerspectiveClient::new(2));
        let mut handles = Vec::new();
        for i in 0..16 {
            let c = Arc::clone(&client);
            handles.push(tokio::spawn(async move {
                c.analyze(AnalyzeCommentRequest::all_attributes(format!(
                    "text number {i}"
                )))
                .await
            }));
        }
        for h in handles {
            h.await.unwrap();
        }
        assert_eq!(client.stats().requests.load(Ordering::Relaxed), 16);
    }
}
