//! The retained naive scorer, frozen for differential testing and as the
//! benchmark baseline.
//!
//! This is the original `Scorer::analyze`: collect tokens into a `Vec`,
//! then for each lexicon linearly scan every entry for every token. Kept
//! verbatim (scanning `Lexicon::entries` directly, so speeding up
//! [`crate::Lexicon::weight`] does not silently speed up the baseline).
//! The optimized scorer must stay bit-identical to this implementation —
//! see the `optimized_matches_reference` proptest in `scorer.rs`.

use crate::lexicon::{Lexicon, LEXICONS};
use crate::scorer::{Attribute, AttributeScores, Scorer};

/// Linear scan of one lexicon's entry list — the O(entries) lookup the
/// unified table replaces.
fn naive_weight(lexicon: &Lexicon, token: &str) -> f64 {
    lexicon
        .entries
        .iter()
        .find(|(t, _)| *t == token)
        .map(|(_, w)| *w)
        .unwrap_or(0.0)
}

/// Tokens of `text` that carry weight in the attribute's lexicon,
/// resolved by linear scan.
pub fn explain_naive(text: &str, attribute: Attribute) -> Vec<&str> {
    let lexicon = crate::lexicon::lexicon_for(attribute);
    crate::scorer::tokenize(text)
        .filter(|t| naive_weight(lexicon, t) > 0.0)
        .collect()
}

/// Scores a text exactly as the pre-optimization scorer did.
pub fn analyze_naive(scorer: &Scorer, text: &str) -> AttributeScores {
    let tokens: Vec<&str> = crate::scorer::tokenize(text).collect();
    if tokens.is_empty() {
        return AttributeScores::default();
    }
    let total = tokens.len() as f64;
    let mut scores = AttributeScores::default();
    for lexicon in LEXICONS {
        let weighted: f64 = tokens.iter().map(|t| naive_weight(lexicon, t)).sum();
        let density = weighted / total;
        scores.set(lexicon.attribute, scorer.density_to_score(density));
    }
    scores
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_reproduces_original_fixtures() {
        let scorer = Scorer::new();
        let s = analyze_naive(&scorer, "grukk vrelk subhuman scum kys");
        assert!(s.toxicity > 0.9);
        assert_eq!(s.profanity, 0.0);
        assert_eq!(analyze_naive(&scorer, "").max(), 0.0);
        assert_eq!(
            explain_naive("you absolute idiot drinking coffee", Attribute::Toxicity),
            vec!["idiot"]
        );
    }
}
