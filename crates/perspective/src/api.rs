//! AnalyzeComment-style request/response types, shaped like the real
//! Perspective API's JSON so the annotation pipeline reads identically.

use crate::scorer::{Attribute, AttributeScores};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A scoring request.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AnalyzeCommentRequest {
    /// The text to score.
    pub comment: String,
    /// Which attributes to score (API names, e.g. `TOXICITY`).
    pub requested_attributes: Vec<String>,
}

impl AnalyzeCommentRequest {
    /// Requests all three paper attributes for `comment`.
    pub fn all_attributes(comment: impl Into<String>) -> Self {
        AnalyzeCommentRequest {
            comment: comment.into(),
            requested_attributes: Attribute::ALL
                .iter()
                .map(|a| a.api_name().to_string())
                .collect(),
        }
    }
}

/// One attribute's score in the response (the API nests the value under
/// `summaryScore.value`).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AttributeScore {
    /// The summary score value in `[0, 1]`.
    pub value: f64,
}

/// A scoring response.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AnalyzeCommentResponse {
    /// Scores keyed by API attribute name.
    pub attribute_scores: BTreeMap<String, AttributeScore>,
}

impl AnalyzeCommentResponse {
    /// Builds a response from scorer output, restricted to the requested
    /// attributes.
    pub fn from_scores(scores: &AttributeScores, requested: &[String]) -> Self {
        let mut attribute_scores = BTreeMap::new();
        for attr in Attribute::ALL {
            let name = attr.api_name();
            if requested.iter().any(|r| r == name) {
                attribute_scores.insert(
                    name.to_string(),
                    AttributeScore {
                        value: scores.get(attr),
                    },
                );
            }
        }
        AnalyzeCommentResponse { attribute_scores }
    }

    /// Reads one attribute's value back.
    pub fn score(&self, attribute: Attribute) -> Option<f64> {
        self.attribute_scores
            .get(attribute.api_name())
            .map(|s| s.value)
    }

    /// Converts the response back into dense [`AttributeScores`]
    /// (missing attributes read as 0.0).
    pub fn to_scores(&self) -> AttributeScores {
        let mut scores = AttributeScores::default();
        for attr in Attribute::ALL {
            if let Some(v) = self.score(attr) {
                scores.set(attr, v);
            }
        }
        scores
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_builder_covers_all_attributes() {
        let req = AnalyzeCommentRequest::all_attributes("hello");
        assert_eq!(req.requested_attributes.len(), 3);
        assert!(req.requested_attributes.contains(&"PROFANITY".to_string()));
    }

    #[test]
    fn response_respects_requested_subset() {
        let scores = AttributeScores {
            toxicity: 0.7,
            profanity: 0.2,
            sexually_explicit: 0.1,
        };
        let resp = AnalyzeCommentResponse::from_scores(&scores, &["TOXICITY".to_string()]);
        assert_eq!(resp.score(Attribute::Toxicity), Some(0.7));
        assert_eq!(resp.score(Attribute::Profanity), None);
        // Round trip fills unrequested attributes with zero.
        let back = resp.to_scores();
        assert_eq!(back.toxicity, 0.7);
        assert_eq!(back.profanity, 0.0);
    }

    #[test]
    fn json_shape_matches_perspective() {
        let scores = AttributeScores {
            toxicity: 0.83,
            profanity: 0.0,
            sexually_explicit: 0.0,
        };
        let resp = AnalyzeCommentResponse::from_scores(
            &scores,
            &["TOXICITY".to_string(), "PROFANITY".to_string()],
        );
        let json = serde_json::to_value(&resp).unwrap();
        assert_eq!(json["attribute_scores"]["TOXICITY"]["value"], 0.83);
        let back: AnalyzeCommentResponse = serde_json::from_value(json).unwrap();
        assert_eq!(back.score(Attribute::Toxicity), Some(0.83));
    }
}
