//! The deterministic attribute scorer.

use crate::unified::UnifiedLexicon;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The three attributes the paper scores (§3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Attribute {
    /// Rude, disrespectful or unreasonable content.
    Toxicity,
    /// Swear/curse words.
    Profanity,
    /// Sexually explicit content.
    SexuallyExplicit,
}

impl Attribute {
    /// All three attributes.
    pub const ALL: [Attribute; 3] = [
        Attribute::Toxicity,
        Attribute::Profanity,
        Attribute::SexuallyExplicit,
    ];

    /// Dense index of the attribute in unified weight rows
    /// (`[toxicity, profanity, sexually_explicit]`).
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Attribute::Toxicity => 0,
            Attribute::Profanity => 1,
            Attribute::SexuallyExplicit => 2,
        }
    }

    /// The Perspective API attribute name (`TOXICITY`, ...).
    pub fn api_name(self) -> &'static str {
        match self {
            Attribute::Toxicity => "TOXICITY",
            Attribute::Profanity => "PROFANITY",
            Attribute::SexuallyExplicit => "SEXUALLY_EXPLICIT",
        }
    }
}

impl fmt::Display for Attribute {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Attribute::Toxicity => "toxicity",
            Attribute::Profanity => "profanity",
            Attribute::SexuallyExplicit => "sexually_explicit",
        })
    }
}

/// Scores for one text on all three attributes.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct AttributeScores {
    /// Toxicity probability.
    pub toxicity: f64,
    /// Profanity probability.
    pub profanity: f64,
    /// Sexually-explicit probability.
    pub sexually_explicit: f64,
}

impl AttributeScores {
    /// Score for one attribute.
    pub fn get(&self, attribute: Attribute) -> f64 {
        match attribute {
            Attribute::Toxicity => self.toxicity,
            Attribute::Profanity => self.profanity,
            Attribute::SexuallyExplicit => self.sexually_explicit,
        }
    }

    /// Sets one attribute's score.
    pub fn set(&mut self, attribute: Attribute, value: f64) {
        match attribute {
            Attribute::Toxicity => self.toxicity = value,
            Attribute::Profanity => self.profanity = value,
            Attribute::SexuallyExplicit => self.sexually_explicit = value,
        }
    }

    /// The maximum across attributes — the quantity the paper thresholds
    /// ("a score of ≥ 0.8 in at least one of the three attributes").
    pub fn max(&self) -> f64 {
        self.toxicity
            .max(self.profanity)
            .max(self.sexually_explicit)
    }

    /// Whether any attribute crosses `threshold` (post harmfulness, §3).
    pub fn harmful(&self, threshold: f64) -> bool {
        self.max() >= threshold
    }

    /// Element-wise sum (building block for user-level averaging).
    pub fn add(&self, other: &AttributeScores) -> AttributeScores {
        AttributeScores {
            toxicity: self.toxicity + other.toxicity,
            profanity: self.profanity + other.profanity,
            sexually_explicit: self.sexually_explicit + other.sexually_explicit,
        }
    }

    /// Element-wise division by a count.
    pub fn div(&self, n: f64) -> AttributeScores {
        AttributeScores {
            toxicity: self.toxicity / n,
            profanity: self.profanity / n,
            sexually_explicit: self.sexually_explicit / n,
        }
    }

    /// Averages a set of per-post scores into user-level scores (§3: "we
    /// classify a user as harmful when the average of all the user's posts
    /// for any of the attributes is ≥ 0.8").
    pub fn mean(scores: &[AttributeScores]) -> AttributeScores {
        if scores.is_empty() {
            return AttributeScores::default();
        }
        scores
            .iter()
            .fold(AttributeScores::default(), |acc, s| acc.add(s))
            .div(scores.len() as f64)
    }
}

/// The deterministic scorer.
///
/// For each attribute, the score is `d / (d + c)` where `d` is the
/// weighted lexicon-hit density (sum of token weights / total tokens) and
/// `c = 0.08` the half-saturation constant. The curve is:
///
/// * 0 for purely benign text,
/// * monotone increasing in offending-token density,
/// * analytically invertible (`d = c·s / (1 − s)`), which the generator
///   uses to author text at a target score.
#[derive(Debug, Clone, Copy)]
pub struct Scorer {
    /// Half-saturation constant of the density→score curve.
    pub half_saturation: f64,
}

impl Default for Scorer {
    fn default() -> Self {
        Scorer {
            half_saturation: Scorer::DEFAULT_HALF_SATURATION,
        }
    }
}

impl Scorer {
    /// Default half-saturation constant.
    pub const DEFAULT_HALF_SATURATION: f64 = 0.08;

    /// A scorer with the default calibration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Scores a text on all three attributes.
    ///
    /// Hot path: one fused byte-level pass
    /// ([`UnifiedLexicon::accumulate`]) — rolling packed keys, one probe
    /// per token scoring all three attributes at once, zero allocation.
    /// Bit-identical to [`crate::reference::analyze_naive`] (weights
    /// accumulate in the same token order; skipped benign tokens
    /// contribute an exact `+0.0` either way), which the
    /// `optimized_matches_reference` proptest enforces.
    #[inline]
    pub fn analyze(&self, text: &str) -> AttributeScores {
        fediscope_telemetry::Telemetry::global().inc(fediscope_telemetry::HotCounter::ScorerCalls);
        let (totals, token_count) = UnifiedLexicon::global().accumulate(text);
        if token_count == 0 {
            return AttributeScores::default();
        }
        let total = token_count as f64;
        AttributeScores {
            toxicity: self.density_to_score(totals[0] / total),
            profanity: self.density_to_score(totals[1] / total),
            sexually_explicit: self.density_to_score(totals[2] / total),
        }
    }

    /// The density→score curve.
    pub fn density_to_score(&self, density: f64) -> f64 {
        if density <= 0.0 {
            0.0
        } else {
            density / (density + self.half_saturation)
        }
    }

    /// Inverse of the curve: the weighted density needed to reach `score`.
    /// Scores ≥ 1.0 are unreachable; values are clamped to a density of 50.
    pub fn score_to_density(&self, score: f64) -> f64 {
        if score <= 0.0 {
            return 0.0;
        }
        let s = score.min(0.999);
        (self.half_saturation * s / (1.0 - s)).min(50.0)
    }

    /// Convenience: the tokens of `text` that hit the given attribute's
    /// lexicon (explainability output, as the real API's span annotations).
    pub fn explain<'t>(&self, text: &'t str, attribute: Attribute) -> Vec<&'t str> {
        let table = UnifiedLexicon::global();
        let idx = attribute.index();
        tokenize(text)
            .filter(|t| table.weights(t).is_some_and(|row| row[idx] > 0.0))
            .collect()
    }
}

/// Lowercased alphanumeric tokenization. Allocation-free per token for
/// already-lowercase ASCII text (the synthetic generator emits lowercase).
pub(crate) fn tokenize(text: &str) -> impl Iterator<Item = &str> {
    text.split(|c: char| !c.is_ascii_alphanumeric())
        .filter(|t| !t.is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benign_text_scores_zero() {
        let s = Scorer::new().analyze("coffee in the garden this morning");
        assert_eq!(s.toxicity, 0.0);
        assert_eq!(s.profanity, 0.0);
        assert_eq!(s.sexually_explicit, 0.0);
        assert!(!s.harmful(0.8));
    }

    #[test]
    fn empty_text_scores_zero() {
        assert_eq!(Scorer::new().analyze("").max(), 0.0);
        assert_eq!(Scorer::new().analyze("!!! ...").max(), 0.0);
    }

    #[test]
    fn toxic_text_scores_high_on_toxicity_only() {
        let s = Scorer::new().analyze("grukk vrelk subhuman scum kys");
        assert!(s.toxicity > 0.9, "toxicity {}", s.toxicity);
        assert_eq!(s.profanity, 0.0);
        assert_eq!(s.sexually_explicit, 0.0);
        assert!(s.harmful(0.8));
    }

    #[test]
    fn sexual_text_scores_high_on_sexual_attribute() {
        let s = Scorer::new().analyze("zmut qorn porn hentai lewd nude");
        assert!(s.sexually_explicit > 0.9);
        assert_eq!(s.toxicity, 0.0);
    }

    #[test]
    fn density_monotonicity() {
        let scorer = Scorer::new();
        let sparse = scorer.analyze("idiot coffee garden morning bread cat dog photo");
        let dense = scorer.analyze("idiot idiot idiot coffee");
        assert!(dense.toxicity > sparse.toxicity);
    }

    #[test]
    fn case_insensitive_tokenization() {
        let scorer = Scorer::new();
        // Uppercase tokens are split correctly but lexicon is lowercase;
        // mixed punctuation must not hide tokens.
        let a = scorer.analyze("idiot, idiot; idiot!");
        let b = scorer.analyze("idiot idiot idiot");
        assert_eq!(a.toxicity, b.toxicity);
    }

    #[test]
    fn curve_inverts() {
        let scorer = Scorer::new();
        for target in [0.1, 0.3, 0.5, 0.8, 0.9, 0.95] {
            let d = scorer.score_to_density(target);
            let s = scorer.density_to_score(d);
            assert!((s - target).abs() < 1e-9, "{target} -> {d} -> {s}");
        }
        assert_eq!(scorer.score_to_density(0.0), 0.0);
        assert!(scorer.score_to_density(1.0) <= 50.0);
    }

    #[test]
    fn mean_averages_posts() {
        let high = AttributeScores {
            toxicity: 0.9,
            profanity: 0.1,
            sexually_explicit: 0.0,
        };
        let low = AttributeScores {
            toxicity: 0.1,
            profanity: 0.1,
            sexually_explicit: 0.0,
        };
        let mean = AttributeScores::mean(&[high, low]);
        assert!((mean.toxicity - 0.5).abs() < 1e-9);
        assert!((mean.profanity - 0.1).abs() < 1e-9);
        assert_eq!(AttributeScores::mean(&[]).max(), 0.0);
    }

    #[test]
    fn max_and_harmful() {
        let s = AttributeScores {
            toxicity: 0.2,
            profanity: 0.85,
            sexually_explicit: 0.3,
        };
        assert_eq!(s.max(), 0.85);
        assert!(s.harmful(0.8));
        assert!(!s.harmful(0.9));
    }

    #[test]
    fn explain_lists_offending_tokens() {
        let scorer = Scorer::new();
        let hits = scorer.explain("you absolute idiot drinking coffee", Attribute::Toxicity);
        assert_eq!(hits, vec!["idiot"]);
        let none = scorer.explain("pure coffee", Attribute::Profanity);
        assert!(none.is_empty());
    }

    #[test]
    fn api_names() {
        assert_eq!(Attribute::Toxicity.api_name(), "TOXICITY");
        assert_eq!(Attribute::SexuallyExplicit.api_name(), "SEXUALLY_EXPLICIT");
        assert_eq!(Attribute::Profanity.to_string(), "profanity");
    }

    #[test]
    fn attribute_indices_are_dense_and_distinct() {
        let mut seen = [false; 3];
        for a in Attribute::ALL {
            assert!(!seen[a.index()], "duplicate index {}", a.index());
            seen[a.index()] = true;
        }
    }
}

#[cfg(test)]
mod differential {
    //! The optimized scorer must be bit-identical to the retained naive
    //! reference on arbitrary text — not merely approximately equal:
    //! downstream harmfulness thresholds (§3's 0.8 cut) must never flip
    //! between the two implementations.

    use super::*;
    use crate::lexicon::{BENIGN_WORDS, LEXICONS};
    use crate::reference;
    use proptest::prelude::*;

    /// Mixes free-form text with known-vocabulary words so lexicon hits
    /// are dense enough to exercise every accumulation path.
    fn arb_text() -> impl Strategy<Value = String> {
        (proptest::collection::vec(0usize..200, 0..40), "[ -~]{0,60}").prop_map(
            |(word_picks, free)| {
                let mut words: Vec<&str> = Vec::new();
                let flat: Vec<&str> = LEXICONS
                    .iter()
                    .flat_map(|l| l.entries.iter().map(|(t, _)| *t))
                    .chain(BENIGN_WORDS.iter().copied())
                    .collect();
                for pick in word_picks {
                    words.push(flat[pick % flat.len()]);
                }
                format!("{} {}", words.join(" "), free)
            },
        )
    }

    proptest! {
        /// Optimized output is bit-identical to the naive reference.
        #[test]
        fn optimized_matches_reference(text in arb_text()) {
            let scorer = Scorer::new();
            let fast = scorer.analyze(&text);
            let naive = reference::analyze_naive(&scorer, &text);
            prop_assert_eq!(fast.toxicity.to_bits(), naive.toxicity.to_bits());
            prop_assert_eq!(fast.profanity.to_bits(), naive.profanity.to_bits());
            prop_assert_eq!(
                fast.sexually_explicit.to_bits(),
                naive.sexually_explicit.to_bits()
            );
        }

        /// Explain output matches the naive linear-scan explain.
        #[test]
        fn explain_matches_reference(text in arb_text()) {
            let scorer = Scorer::new();
            for attribute in Attribute::ALL {
                prop_assert_eq!(
                    scorer.explain(&text, attribute),
                    reference::explain_naive(&text, attribute)
                );
            }
        }

        /// Non-default calibrations stay bit-identical too.
        #[test]
        fn calibration_invariant(text in arb_text(), c in 0.01f64..0.5) {
            let scorer = Scorer { half_saturation: c };
            let fast = scorer.analyze(&text);
            let naive = reference::analyze_naive(&scorer, &text);
            prop_assert_eq!(fast.max().to_bits(), naive.max().to_bits());
        }
    }
}
