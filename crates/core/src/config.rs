//! Per-instance moderation configuration.
//!
//! A Pleroma instance's enabled policies and `SimplePolicy` target lists
//! are exposed through its public metadata API
//! (`/api/v1/instance` → `pleroma.metadata.federation`), which is exactly
//! what the paper crawled every four hours. [`InstanceModerationConfig`] is
//! that configuration: it can be rendered to the JSON shape the API serves
//! and parsed back by the crawler, and it can be compiled into a runnable
//! [`MrfPipeline`].

use crate::catalog::PolicyKind;
use crate::mrf::policies::{
    ActivityExpirationPolicy, AmqpPolicy, AntiFollowbotPolicy, AntiHellthreadPolicy,
    AntiLinkSpamPolicy, AntispamSandboxPolicy, AutoRejectPolicy, BlockNotificationPolicy,
    BlockPolicy, BoardFilterPolicy, BonziEmojiReactionsPolicy, CdnWarmingPolicy, CuratedListPolicy,
    DropPolicy, EnsureRePrependedPolicy, ForceBotUnlistedPolicy, HashtagPolicy, HellthreadPolicy,
    KanayaBlogProcessPolicy, KeywordPolicy, LocalOnlyPolicy, MediaProxyWarmingPolicy,
    MentionPolicy, NoEmptyPolicy, NoIncomingDeletesPolicy, NoOpPolicy, NoPlaceholderTextPolicy,
    NormalizeMarkupPolicy, NotifyLocalUsersPolicy, ObjectAgePolicy, RacismRemoverPolicy,
    RejectCloudflarePolicy, RejectNonPublicPolicy, RewritePolicy, SandboxPolicy, SimplePolicy,
    SogigiMindWarmingPolicy, StealEmojiPolicy, TagPolicy, UserAllowListPolicy, VocabularyPolicy,
};
use crate::mrf::{MrfPipeline, MrfPolicy};
use serde::{Deserialize, Serialize};
use serde_json::{json, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// Extra configuration for policies that carry knobs beyond "enabled".
///
/// Policies not listed here are instantiated with their Pleroma defaults
/// when the pipeline is built.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum PolicyConfig {
    /// `ObjectAgePolicy` knobs.
    ObjectAge(ObjectAgePolicy),
    /// `HellthreadPolicy` thresholds.
    Hellthread(HellthreadPolicy),
    /// `KeywordPolicy` rules.
    Keyword(KeywordPolicy),
    /// `HashtagPolicy` sensitive tags.
    Hashtag(HashtagPolicy),
    /// `ActivityExpirationPolicy` lifetime.
    ActivityExpiration(ActivityExpirationPolicy),
    /// `RejectNonPublic` switches.
    RejectNonPublic(RejectNonPublicPolicy),
}

impl PolicyConfig {
    /// The policy kind this config belongs to.
    pub fn kind(&self) -> PolicyKind {
        match self {
            PolicyConfig::ObjectAge(_) => PolicyKind::ObjectAge,
            PolicyConfig::Hellthread(_) => PolicyKind::Hellthread,
            PolicyConfig::Keyword(_) => PolicyKind::Keyword,
            PolicyConfig::Hashtag(_) => PolicyKind::Hashtag,
            PolicyConfig::ActivityExpiration(_) => PolicyKind::ActivityExpiration,
            PolicyConfig::RejectNonPublic(_) => PolicyKind::RejectNonPublic,
        }
    }
}

/// The moderation configuration of one instance.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct InstanceModerationConfig {
    /// Enabled policies, in pipeline order.
    pub enabled: Vec<PolicyKind>,
    /// `SimplePolicy` target lists (present iff `Simple` is enabled).
    pub simple: Option<SimplePolicy>,
    /// Knobs for configurable policies.
    pub configs: Vec<PolicyConfig>,
}

impl InstanceModerationConfig {
    /// A fresh Pleroma ≥ 2.1.0 install: `ObjectAgePolicy` and `NoOpPolicy`
    /// enabled by default (§4.1).
    pub fn pleroma_default() -> Self {
        InstanceModerationConfig {
            enabled: vec![PolicyKind::ObjectAge, PolicyKind::NoOp],
            simple: None,
            configs: Vec::new(),
        }
    }

    /// Enables a policy (idempotent).
    pub fn enable(&mut self, kind: PolicyKind) {
        if !self.enabled.contains(&kind) {
            self.enabled.push(kind);
        }
        if kind == PolicyKind::Simple && self.simple.is_none() {
            self.simple = Some(SimplePolicy::new());
        }
    }

    /// Builder-style [`enable`](Self::enable).
    pub fn with(mut self, kind: PolicyKind) -> Self {
        self.enable(kind);
        self
    }

    /// Sets the `SimplePolicy` configuration (enabling it if needed).
    pub fn set_simple(&mut self, simple: SimplePolicy) {
        self.enable(PolicyKind::Simple);
        self.simple = Some(simple);
    }

    /// Whether a policy is enabled.
    pub fn has(&self, kind: PolicyKind) -> bool {
        self.enabled.contains(&kind)
    }

    /// Enables a policy on the config *and* appends its compiled stage to
    /// `pipeline` — the incremental counterpart of
    /// [`enable`](Self::enable) + [`build_pipeline`](Self::build_pipeline).
    ///
    /// `pipeline` must previously have been compiled from `self` (or kept
    /// in step via this delta API); because `enable` appends to `enabled`
    /// and this appends the matching stage, pipeline order stays equal to
    /// build order and the two paths remain verdict-identical (pinned by
    /// the `delta_api_matches_reference_compilation` proptest). No-op if
    /// the kind is already enabled.
    pub fn enable_compiled(&mut self, kind: PolicyKind, pipeline: &mut MrfPipeline) {
        if self.has(kind) {
            return;
        }
        self.enable(kind);
        if let Some(policy) = self.instantiate(kind) {
            pipeline.push(policy);
        }
    }

    /// Renders the `pleroma.metadata.federation` JSON block served by
    /// `/api/v1/instance` — the crawler's raw material.
    pub fn to_metadata_json(&self) -> Value {
        let policies: Vec<&str> = self.enabled.iter().map(|k| k.name()).collect();
        let mut federation = json!({ "mrf_policies": policies });
        if let Some(simple) = &self.simple {
            let mut mrf_simple = serde_json::Map::new();
            for action in crate::mrf::policies::SimpleAction::ALL {
                let targets: Vec<String> = simple
                    .targets(action)
                    .iter()
                    .map(|d| d.to_string())
                    .collect();
                mrf_simple.insert(action.config_key().to_string(), json!(targets));
            }
            federation["mrf_simple"] = Value::Object(mrf_simple);
        }
        federation
    }

    /// Parses the federation metadata JSON back into a config — the inverse
    /// of [`to_metadata_json`](Self::to_metadata_json), used by the crawler.
    /// Unknown policy names are ignored (the paper likewise bucketed
    /// unparseable custom policies into "Others").
    pub fn from_metadata_json(value: &Value) -> Self {
        let mut config = InstanceModerationConfig::default();
        if let Some(names) = value.get("mrf_policies").and_then(Value::as_array) {
            for name in names.iter().filter_map(Value::as_str) {
                if let Some(entry) = crate::catalog::PolicyCatalog::global().by_name(name) {
                    config.enable(entry.kind);
                }
            }
        }
        if let Some(mrf_simple) = value.get("mrf_simple").and_then(Value::as_object) {
            let mut simple = SimplePolicy::new();
            for (key, targets) in mrf_simple {
                let Some(action) = crate::mrf::policies::SimpleAction::parse(key) else {
                    continue;
                };
                if let Some(list) = targets.as_array() {
                    for d in list.iter().filter_map(Value::as_str) {
                        simple.add_target(action, crate::id::Domain::new(d));
                    }
                }
            }
            config.set_simple(simple);
        }
        config
    }

    /// Compiles the configuration into a runnable pipeline. Policies with a
    /// [`PolicyConfig`] entry use it; everything else gets Pleroma
    /// defaults. Stateful custom policies are freshly instantiated.
    pub fn build_pipeline(&self) -> MrfPipeline {
        let mut pipeline = MrfPipeline::new();
        for &kind in &self.enabled {
            if let Some(policy) = self.instantiate(kind) {
                pipeline.push(policy);
            }
        }
        pipeline
    }

    /// The canonical structural encoding of the config: its serialized
    /// form, which covers every field that feeds
    /// [`build_pipeline`](Self::build_pipeline) (enabled kinds in
    /// pipeline order, `SimplePolicy` target lists, policy knobs).
    /// Structurally equal configs — and only those — encode identically,
    /// so the encoding is a collision-proof interning key.
    fn canonical_key(&self) -> String {
        serde_json::to_string(self).expect("a moderation config always serializes")
    }

    /// A structural digest of the config: equal for structurally equal
    /// configs, and (modulo 64-bit hash collisions) distinct otherwise.
    /// [`PipelinePool`] keys on the full canonical encoding — the digest
    /// is the cheap fingerprint for logs and diagnostics.
    pub fn structural_digest(&self) -> u64 {
        // FNV-1a over the canonical encoding.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in self.canonical_key().as_bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
        h
    }

    fn configured<T, F>(&self, pick: F) -> Option<T>
    where
        T: Clone,
        F: Fn(&PolicyConfig) -> Option<&T>,
    {
        self.configs.iter().find_map(|c| pick(c).cloned())
    }

    fn instantiate(&self, kind: PolicyKind) -> Option<Arc<dyn MrfPolicy>> {
        Some(match kind {
            PolicyKind::ObjectAge => Arc::new(
                self.configured(|c| match c {
                    PolicyConfig::ObjectAge(p) => Some(p),
                    _ => None,
                })
                .unwrap_or_default(),
            ),
            PolicyKind::Tag => Arc::new(TagPolicy),
            PolicyKind::Simple => Arc::new(self.simple.clone().unwrap_or_default()),
            PolicyKind::NoOp => Arc::new(NoOpPolicy),
            PolicyKind::Hellthread => Arc::new(
                self.configured(|c| match c {
                    PolicyConfig::Hellthread(p) => Some(p),
                    _ => None,
                })
                .unwrap_or_default(),
            ),
            PolicyKind::StealEmoji => Arc::new(StealEmojiPolicy::default()),
            PolicyKind::Hashtag => Arc::new(
                self.configured(|c| match c {
                    PolicyConfig::Hashtag(p) => Some(p),
                    _ => None,
                })
                .unwrap_or_default(),
            ),
            PolicyKind::AntiFollowbot => Arc::new(AntiFollowbotPolicy),
            PolicyKind::MediaProxyWarming => Arc::new(MediaProxyWarmingPolicy),
            PolicyKind::Keyword => Arc::new(
                self.configured(|c| match c {
                    PolicyConfig::Keyword(p) => Some(p),
                    _ => None,
                })
                .unwrap_or_default(),
            ),
            PolicyKind::AntiLinkSpam => Arc::new(AntiLinkSpamPolicy),
            PolicyKind::ForceBotUnlisted => Arc::new(ForceBotUnlistedPolicy),
            PolicyKind::EnsureRePrepended => Arc::new(EnsureRePrependedPolicy),
            PolicyKind::ActivityExpiration => Arc::new(
                self.configured(|c| match c {
                    PolicyConfig::ActivityExpiration(p) => Some(p),
                    _ => None,
                })
                .unwrap_or_default(),
            ),
            // A bare Subchain without a body is the identity; instances
            // that really script subchains construct pipelines directly.
            PolicyKind::Subchain => Arc::new(NoOpPolicy),
            PolicyKind::Mention => Arc::new(MentionPolicy::default()),
            PolicyKind::Vocabulary => Arc::new(VocabularyPolicy::default()),
            PolicyKind::AntiHellthread => Arc::new(AntiHellthreadPolicy),
            PolicyKind::RejectNonPublic => Arc::new(
                self.configured(|c| match c {
                    PolicyConfig::RejectNonPublic(p) => Some(p),
                    _ => None,
                })
                .unwrap_or_default(),
            ),
            // FollowBot needs a bot account; without one it is inert.
            PolicyKind::FollowBot => Arc::new(NoOpPolicy),
            PolicyKind::Drop => Arc::new(DropPolicy),
            PolicyKind::NormalizeMarkup => Arc::new(NormalizeMarkupPolicy),
            PolicyKind::NoEmpty => Arc::new(NoEmptyPolicy),
            PolicyKind::NoPlaceholderText => Arc::new(NoPlaceholderTextPolicy),
            PolicyKind::UserAllowList => Arc::new(UserAllowListPolicy::default()),
            PolicyKind::Block => Arc::new(BlockPolicy::default()),
            PolicyKind::Amqp => Arc::new(AmqpPolicy::default()),
            PolicyKind::KanayaBlogProcess => Arc::new(KanayaBlogProcessPolicy {
                blog_domain: crate::id::Domain::new("blog.invalid"),
            }),
            PolicyKind::AntispamSandbox => Arc::new(AntispamSandboxPolicy),
            PolicyKind::SupSlashX => Arc::new(BoardFilterPolicy::new(kind, vec!["x".into()])),
            PolicyKind::SupSlashPol => Arc::new(BoardFilterPolicy::new(kind, vec!["pol".into()])),
            PolicyKind::SupSlashMlp => Arc::new(BoardFilterPolicy::new(kind, vec!["mlp".into()])),
            PolicyKind::SupSlashG => Arc::new(BoardFilterPolicy::new(kind, vec!["g".into()])),
            PolicyKind::SupSlashB => Arc::new(BoardFilterPolicy::new(kind, vec!["b".into()])),
            PolicyKind::BlockNotification => Arc::new(BlockNotificationPolicy),
            PolicyKind::NoIncomingDeletes => Arc::new(NoIncomingDeletesPolicy),
            PolicyKind::Rewrite => Arc::new(RewritePolicy::default()),
            PolicyKind::RejectCloudflare => Arc::new(RejectCloudflarePolicy::default()),
            PolicyKind::RacismRemover => Arc::new(RacismRemoverPolicy::default()),
            PolicyKind::CdnWarming => Arc::new(CdnWarmingPolicy),
            PolicyKind::NotifyLocalUsers => Arc::new(NotifyLocalUsersPolicy::default()),
            PolicyKind::BonziEmojiReactions => Arc::new(BonziEmojiReactionsPolicy),
            PolicyKind::SogigiMindWarming => Arc::new(SogigiMindWarmingPolicy),
            PolicyKind::AutoReject => Arc::new(AutoRejectPolicy::default()),
            PolicyKind::LocalOnly => Arc::new(LocalOnlyPolicy::default()),
            PolicyKind::SandboxCustom => Arc::new(SandboxPolicy::default()),
            PolicyKind::CuratedList => Arc::new(CuratedListPolicy::default()),
            // The remaining strawman policies need injected dependencies
            // (classifier); configs can't instantiate them standalone.
            PolicyKind::UserTagModeration | PolicyKind::RepeatOffender => return None,
        })
    }
}

/// A seed-time interning pool for compiled pipelines: configs that are
/// structurally identical share one `Arc<MrfPipeline>` instead of each
/// paying a fresh compile. In a paper-scale world the vast majority of
/// instances run one of a handful of configs (fresh-install defaults and
/// the common blocklist shapes), so interning turns ~10k compiles into a
/// few dozen. Callers that later mutate a shared pipeline diverge
/// copy-on-write via `Arc::make_mut`.
///
/// Keyed by the full canonical encoding (not the 64-bit digest), so a
/// hash collision can never alias two different configs to one pipeline.
#[derive(Debug, Default)]
pub struct PipelinePool {
    pool: HashMap<String, Arc<MrfPipeline>>,
    hits: u64,
    misses: u64,
}

impl PipelinePool {
    /// An empty pool.
    pub fn new() -> Self {
        PipelinePool::default()
    }

    /// The shared compiled pipeline for `config`: a refcount bump when a
    /// structurally equal config was seen before, a fresh
    /// [`build_pipeline`](InstanceModerationConfig::build_pipeline)
    /// otherwise.
    pub fn get(&mut self, config: &InstanceModerationConfig) -> Arc<MrfPipeline> {
        use std::collections::hash_map::Entry;
        match self.pool.entry(config.canonical_key()) {
            Entry::Occupied(e) => {
                self.hits += 1;
                Arc::clone(e.get())
            }
            Entry::Vacant(v) => {
                self.misses += 1;
                Arc::clone(v.insert(Arc::new(config.build_pipeline())))
            }
        }
    }

    /// Lookups served from the pool.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that compiled a fresh pipeline.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Distinct configs interned so far.
    pub fn distinct(&self) -> usize {
        self.pool.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::Domain;
    use crate::mrf::policies::SimpleAction;

    #[test]
    fn pleroma_default_config() {
        let c = InstanceModerationConfig::pleroma_default();
        assert!(c.has(PolicyKind::ObjectAge));
        assert!(c.has(PolicyKind::NoOp));
        assert!(!c.has(PolicyKind::Simple));
        assert_eq!(c.build_pipeline().len(), 2);
    }

    #[test]
    fn enable_is_idempotent() {
        let mut c = InstanceModerationConfig::default();
        c.enable(PolicyKind::Tag);
        c.enable(PolicyKind::Tag);
        assert_eq!(c.enabled.len(), 1);
    }

    #[test]
    fn enabling_simple_creates_empty_targets() {
        let mut c = InstanceModerationConfig::default();
        c.enable(PolicyKind::Simple);
        assert!(c.simple.is_some());
    }

    #[test]
    fn metadata_json_round_trip() {
        let mut c = InstanceModerationConfig::pleroma_default();
        let simple = SimplePolicy::new()
            .with_target(SimpleAction::Reject, Domain::new("gab.com"))
            .with_target(SimpleAction::MediaRemoval, Domain::new("lewd.example"));
        c.set_simple(simple);
        let json = c.to_metadata_json();
        // Shape checks: what the paper's crawler actually read.
        assert!(json["mrf_policies"]
            .as_array()
            .unwrap()
            .iter()
            .any(|v| v == "SimplePolicy"));
        assert_eq!(json["mrf_simple"]["reject"][0], "gab.com");
        // Round trip.
        let back = InstanceModerationConfig::from_metadata_json(&json);
        assert!(back.has(PolicyKind::ObjectAge));
        assert!(back.has(PolicyKind::Simple));
        let simple = back.simple.unwrap();
        assert_eq!(simple.targets(SimpleAction::Reject)[0].as_str(), "gab.com");
        assert_eq!(
            simple.targets(SimpleAction::MediaRemoval)[0].as_str(),
            "lewd.example"
        );
    }

    #[test]
    fn unknown_policy_names_are_ignored() {
        let json = serde_json::json!({ "mrf_policies": ["TotallyMadeUpPolicy", "TagPolicy"] });
        let c = InstanceModerationConfig::from_metadata_json(&json);
        assert_eq!(c.enabled, vec![PolicyKind::Tag]);
    }

    #[test]
    fn pipeline_respects_custom_configs() {
        use crate::mrf::policies::ObjectAgePolicy;
        use crate::time::SimDuration;
        let mut c = InstanceModerationConfig::default();
        c.enable(PolicyKind::ObjectAge);
        c.configs
            .push(PolicyConfig::ObjectAge(ObjectAgePolicy::rejecting()));
        let pipe = c.build_pipeline();
        assert_eq!(pipe.len(), 1);
        // Old post should now be rejected (default config would delist).
        use crate::id::{ActivityId, PostId, UserId, UserRef};
        use crate::model::{Activity, Post};
        use crate::mrf::{NullActorDirectory, PolicyContext};
        use crate::time::SimTime;
        let local = Domain::new("home.example");
        let dir = NullActorDirectory;
        let ctx = PolicyContext::new(&local, SimTime(SimDuration::days(30).as_secs()), &dir);
        let act = Activity::create(
            ActivityId(1),
            Post::stub(
                PostId(1),
                UserRef::new(UserId(1), Domain::new("r.example")),
                SimTime(0),
                "old",
            ),
        );
        assert!(!pipe.filter(&ctx, act).accepted());
    }

    #[test]
    fn every_observed_policy_is_instantiable() {
        for kind in PolicyKind::OBSERVED {
            let mut c = InstanceModerationConfig::default();
            c.enable(kind);
            let pipe = c.build_pipeline();
            assert_eq!(pipe.len(), 1, "{kind} must build");
        }
    }

    #[test]
    fn config_kind_mapping() {
        let cfg = PolicyConfig::Hellthread(HellthreadPolicy::default());
        assert_eq!(cfg.kind(), PolicyKind::Hellthread);
    }

    #[test]
    fn structural_digest_tracks_structure() {
        let a = InstanceModerationConfig::pleroma_default();
        assert_eq!(
            a.structural_digest(),
            InstanceModerationConfig::pleroma_default().structural_digest()
        );
        let with_tag = a.clone().with(PolicyKind::Tag);
        assert_ne!(a.structural_digest(), with_tag.structural_digest());
        // Same kinds, different SimplePolicy targets — must not collide
        // into one digest class.
        let mut gab = a.clone();
        gab.set_simple(
            SimplePolicy::new().with_target(SimpleAction::Reject, Domain::new("gab.com")),
        );
        let mut kiwi = a.clone();
        kiwi.set_simple(
            SimplePolicy::new().with_target(SimpleAction::Reject, Domain::new("kiwifarms.cc")),
        );
        assert_ne!(gab.structural_digest(), kiwi.structural_digest());
    }

    #[test]
    fn pipeline_pool_interns_structurally_equal_configs() {
        let mut pool = PipelinePool::new();
        let a = pool.get(&InstanceModerationConfig::pleroma_default());
        let b = pool.get(&InstanceModerationConfig::pleroma_default());
        assert!(Arc::ptr_eq(&a, &b), "equal configs share one pipeline");
        assert_eq!((pool.hits(), pool.misses(), pool.distinct()), (1, 1, 1));
        let mut other = InstanceModerationConfig::pleroma_default();
        other.set_simple(
            SimplePolicy::new().with_target(SimpleAction::Reject, Domain::new("gab.com")),
        );
        let c = pool.get(&other);
        assert!(!Arc::ptr_eq(&a, &c), "different configs must not alias");
        assert_eq!(c.len(), other.build_pipeline().len());
        assert_eq!((pool.hits(), pool.misses(), pool.distinct()), (1, 2, 2));
    }
}
