//! Identifiers for instances, users, posts and activities.
//!
//! All identifiers are small `Copy` newtypes so that datasets with hundreds
//! of thousands of posts stay compact. Human-readable addressing (domains
//! and `user@domain` references) is kept separate from the numeric ids used
//! in dense tables.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// Numeric identifier of an instance (dense, assigned by the world builder).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct InstanceId(pub u32);

/// Numeric identifier of a user, unique across the whole fediverse.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct UserId(pub u64);

/// Numeric identifier of a post, unique across the whole fediverse.
///
/// Post ids are *monotone in creation order within an instance*, which is
/// what makes Mastodon-style `max_id` pagination correct (see
/// `fediscope-server::api`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PostId(pub u64);

/// Numeric identifier of an ActivityPub activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ActivityId(pub u64);

impl fmt::Display for InstanceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

impl fmt::Display for UserId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

impl fmt::Display for PostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for ActivityId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// A fediverse domain name, e.g. `pleroma-0042.fedi.test`.
///
/// Domains are reference-counted strings: they are shared pervasively
/// (every post carries its origin domain) and cloning must be cheap.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Domain(Arc<str>);

impl Domain {
    /// Creates a domain from anything string-like. The name is lowercased,
    /// since DNS names (and Pleroma's MRF target matching) are
    /// case-insensitive.
    pub fn new(name: impl AsRef<str>) -> Self {
        let name = name.as_ref();
        if name.chars().any(|c| c.is_ascii_uppercase()) {
            Domain(Arc::from(name.to_ascii_lowercase().as_str()))
        } else {
            Domain(Arc::from(name))
        }
    }

    /// The domain as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// The shared backing string — a refcount bump, no allocation. Used
    /// by `SimplePolicy`'s membership index to key targets without
    /// duplicating the name.
    pub(crate) fn shared_str(&self) -> Arc<str> {
        Arc::clone(&self.0)
    }

    /// True if `self` equals `other` or is a subdomain of `other`
    /// (`media.example.com` matches `example.com`). This is the matching
    /// rule Pleroma's `SimplePolicy` uses for its target lists.
    pub fn matches(&self, other: &Domain) -> bool {
        self == other
            || (self.0.len() > other.0.len()
                && self.0.ends_with(other.as_str())
                && self.0.as_bytes()[self.0.len() - other.0.len() - 1] == b'.')
    }
}

impl fmt::Display for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Domain {
    fn from(s: &str) -> Self {
        Domain::new(s)
    }
}

impl From<String> for Domain {
    fn from(s: String) -> Self {
        Domain::new(s)
    }
}

impl Serialize for Domain {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(&self.0)
    }
}

impl<'de> Deserialize<'de> for Domain {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let s = String::deserialize(deserializer)?;
        Ok(Domain::new(s))
    }
}

/// A fully-qualified reference to a user: numeric id plus the domain of the
/// instance the account lives on (the `user@domain` of the fediverse).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct UserRef {
    /// The user's globally-unique id.
    pub user: UserId,
    /// Domain of the instance hosting the account.
    pub domain: Domain,
}

impl UserRef {
    /// Builds a reference from parts.
    pub fn new(user: UserId, domain: Domain) -> Self {
        UserRef { user, domain }
    }
}

impl fmt::Display for UserRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.user, self.domain)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domain_is_lowercased() {
        assert_eq!(Domain::new("Example.COM").as_str(), "example.com");
    }

    #[test]
    fn domain_matches_itself() {
        let d = Domain::new("kiwifarms.cc");
        assert!(d.matches(&d));
    }

    #[test]
    fn subdomain_matches_parent() {
        let sub = Domain::new("media.kiwifarms.cc");
        let parent = Domain::new("kiwifarms.cc");
        assert!(sub.matches(&parent));
        assert!(!parent.matches(&sub), "parent must not match subdomain");
    }

    #[test]
    fn suffix_without_dot_does_not_match() {
        // "evilkiwifarms.cc" ends with "kiwifarms.cc" but is a different
        // registrable domain; SimplePolicy must not block it.
        let evil = Domain::new("evilkiwifarms.cc");
        let target = Domain::new("kiwifarms.cc");
        assert!(!evil.matches(&target));
    }

    #[test]
    fn display_round_trips() {
        assert_eq!(Domain::new("poa.st").to_string(), "poa.st");
        assert_eq!(UserId(7).to_string(), "u7");
        assert_eq!(
            UserRef::new(UserId(7), Domain::new("poa.st")).to_string(),
            "u7@poa.st"
        );
    }

    #[test]
    fn serde_round_trip() {
        let d = Domain::new("spinster.xyz");
        let json = serde_json::to_string(&d).unwrap();
        assert_eq!(json, "\"spinster.xyz\"");
        let back: Domain = serde_json::from_str(&json).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn ids_order_by_value() {
        assert!(PostId(1) < PostId(2));
        assert!(InstanceId(0) < InstanceId(1));
    }
}
