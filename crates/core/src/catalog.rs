//! The catalog of every MRF policy type the paper observed in the wild.
//!
//! §4.1: *"These cover 46 unique policy types: 26 of these policies are
//! included in the Pleroma software package, instance administrators have
//! created the other 20."* This module enumerates all 46 (descriptions from
//! the paper's Table 3 where given, otherwise from the Pleroma source the
//! paper studied), plus the three "strawman" policies the paper proposes in
//! §7, which fediscope implements as extensions.
//!
//! Three of the 20 admin-created policies are not individually named in the
//! paper's figures (Figure 7 lists 43 of the 46); we give those three
//! representative names and flag them in [`PolicyEntry::named_in_paper`].

use serde::{Deserialize, Serialize};
use std::fmt;

/// Every policy type known to fediscope.
///
/// The first 26 variants are Pleroma in-built policies; the next 20 are
/// admin-created custom policies (Figure 7); the final 3 are the paper's §7
/// proposals implemented as fediscope extensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)] // each variant is documented via PolicyEntry::description
pub enum PolicyKind {
    // ---- In-built Pleroma policies (26) ----
    ObjectAge,
    Tag,
    Simple,
    NoOp,
    Hellthread,
    StealEmoji,
    Hashtag,
    AntiFollowbot,
    MediaProxyWarming,
    Keyword,
    AntiLinkSpam,
    ForceBotUnlisted,
    EnsureRePrepended,
    ActivityExpiration,
    Subchain,
    Mention,
    Vocabulary,
    AntiHellthread,
    RejectNonPublic,
    FollowBot,
    Drop,
    NormalizeMarkup,
    NoEmpty,
    NoPlaceholderText,
    UserAllowList,
    Block,
    // ---- Admin-created custom policies (20) ----
    Amqp,
    KanayaBlogProcess,
    AntispamSandbox,
    SupSlashX,
    SupSlashPol,
    SupSlashMlp,
    BlockNotification,
    SupSlashG,
    NoIncomingDeletes,
    Rewrite,
    RejectCloudflare,
    RacismRemover,
    CdnWarming,
    NotifyLocalUsers,
    BonziEmojiReactions,
    SogigiMindWarming,
    SupSlashB,
    AutoReject,
    LocalOnly,
    SandboxCustom,
    // ---- §7 strawman proposals (fediscope extensions) ----
    CuratedList,
    UserTagModeration,
    RepeatOffender,
}

impl PolicyKind {
    /// All 46 policy types observed by the paper (no strawman extensions).
    pub const OBSERVED: [PolicyKind; 46] = [
        PolicyKind::ObjectAge,
        PolicyKind::Tag,
        PolicyKind::Simple,
        PolicyKind::NoOp,
        PolicyKind::Hellthread,
        PolicyKind::StealEmoji,
        PolicyKind::Hashtag,
        PolicyKind::AntiFollowbot,
        PolicyKind::MediaProxyWarming,
        PolicyKind::Keyword,
        PolicyKind::AntiLinkSpam,
        PolicyKind::ForceBotUnlisted,
        PolicyKind::EnsureRePrepended,
        PolicyKind::ActivityExpiration,
        PolicyKind::Subchain,
        PolicyKind::Mention,
        PolicyKind::Vocabulary,
        PolicyKind::AntiHellthread,
        PolicyKind::RejectNonPublic,
        PolicyKind::FollowBot,
        PolicyKind::Drop,
        PolicyKind::NormalizeMarkup,
        PolicyKind::NoEmpty,
        PolicyKind::NoPlaceholderText,
        PolicyKind::UserAllowList,
        PolicyKind::Block,
        PolicyKind::Amqp,
        PolicyKind::KanayaBlogProcess,
        PolicyKind::AntispamSandbox,
        PolicyKind::SupSlashX,
        PolicyKind::SupSlashPol,
        PolicyKind::SupSlashMlp,
        PolicyKind::BlockNotification,
        PolicyKind::SupSlashG,
        PolicyKind::NoIncomingDeletes,
        PolicyKind::Rewrite,
        PolicyKind::RejectCloudflare,
        PolicyKind::RacismRemover,
        PolicyKind::CdnWarming,
        PolicyKind::NotifyLocalUsers,
        PolicyKind::BonziEmojiReactions,
        PolicyKind::SogigiMindWarming,
        PolicyKind::SupSlashB,
        PolicyKind::AutoReject,
        PolicyKind::LocalOnly,
        PolicyKind::SandboxCustom,
    ];

    /// The strawman policies the paper proposes in §7.
    pub const STRAWMAN: [PolicyKind; 3] = [
        PolicyKind::CuratedList,
        PolicyKind::UserTagModeration,
        PolicyKind::RepeatOffender,
    ];

    /// The display name used in the paper's figures (e.g. `SimplePolicy`).
    pub fn name(self) -> &'static str {
        self.entry().name
    }

    /// Whether this policy ships with the Pleroma software package.
    pub fn is_builtin(self) -> bool {
        self.entry().builtin
    }

    /// Whether this is one of fediscope's §7 strawman extensions.
    pub fn is_strawman(self) -> bool {
        self.entry().strawman
    }

    /// Whether a fresh Pleroma install enables this policy by default.
    /// §4.1: `ObjectAgePolicy` (since 2.1.0) and `NoOpPolicy`.
    pub fn default_enabled(self) -> bool {
        matches!(self, PolicyKind::ObjectAge | PolicyKind::NoOp)
    }

    /// Whether this policy can sever federation with a whole instance —
    /// the defederation class. `SimplePolicy` (via its `reject` action)
    /// blocks all connections from a target; `BlockPolicy` and
    /// `AutoRejectPolicy` reject at the instance level by construction.
    /// Defederation-cascade scenarios seed their imitation dynamics from
    /// instances running a policy in this class.
    pub fn severs_federation(self) -> bool {
        matches!(
            self,
            PolicyKind::Simple | PolicyKind::Block | PolicyKind::AutoReject
        )
    }

    /// Full catalog entry for this policy.
    pub fn entry(self) -> &'static PolicyEntry {
        PolicyCatalog::global().entry(self)
    }
}

impl fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Catalog metadata about one policy type.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PolicyEntry {
    /// The policy kind.
    pub kind: PolicyKind,
    /// Display name as in the paper's figures.
    pub name: &'static str,
    /// Description (Table 3 wording where the paper gives one).
    pub description: &'static str,
    /// Ships with Pleroma?
    pub builtin: bool,
    /// One of our §7 extensions (not observed in the wild)?
    pub strawman: bool,
    /// Whether the policy is individually named in the paper. Three of the
    /// 20 custom policies are aggregated into "Others" and carry
    /// representative names here.
    pub named_in_paper: bool,
}

/// The full policy catalog.
pub struct PolicyCatalog {
    entries: Vec<PolicyEntry>,
}

impl PolicyCatalog {
    /// The process-wide catalog (cheap to reference; entries are static).
    pub fn global() -> &'static PolicyCatalog {
        use std::sync::OnceLock;
        static CATALOG: OnceLock<PolicyCatalog> = OnceLock::new();
        CATALOG.get_or_init(PolicyCatalog::build)
    }

    fn build() -> PolicyCatalog {
        use PolicyKind::*;
        let mut entries = Vec::new();
        let mut push = |kind, name, description, builtin, strawman, named_in_paper| {
            entries.push(PolicyEntry {
                kind,
                name,
                description,
                builtin,
                strawman,
                named_in_paper,
            })
        };
        // ---- In-built (descriptions follow the paper's Table 3) ----
        push(
            ObjectAge,
            "ObjectAgePolicy",
            "Rejects or delists posts based on their age when received",
            true,
            false,
            true,
        );
        push(
            Tag,
            "TagPolicy",
            "Applies policies to individual users based on tags",
            true,
            false,
            true,
        );
        push(
            Simple,
            "SimplePolicy",
            "Restrict the visibility of activities from certain instances with a suite of actions",
            true,
            false,
            true,
        );
        push(
            NoOp,
            "NoOpPolicy",
            "Doesn't modify activities (default)",
            true,
            false,
            true,
        );
        push(Hellthread, "HellthreadPolicy", "De-list or reject messages when the set number of mentioned users threshold is exceeded", true, false, true);
        push(
            StealEmoji,
            "StealEmojiPolicy",
            "List of hosts to steal emojis from",
            true,
            false,
            true,
        );
        push(
            Hashtag,
            "HashtagPolicy",
            "List of hashtags to mark activities as sensitive (default: nsfw)",
            true,
            false,
            true,
        );
        push(
            AntiFollowbot,
            "AntiFollowbotPolicy",
            "Stop the automatic following of newly discovered users",
            true,
            false,
            true,
        );
        push(
            MediaProxyWarming,
            "MediaProxyWarmingPolicy",
            "Crawls attachments using their MediaProxy URLs so that the MediaProxy cache is primed",
            true,
            false,
            true,
        );
        push(
            Keyword,
            "KeywordPolicy",
            "A list of patterns which result in message being reject/unlisted/replaced",
            true,
            false,
            true,
        );
        push(AntiLinkSpam, "AntiLinkSpamPolicy", "Rejects posts from likely spambots by rejecting posts from new users that contain links", true, false, true);
        push(
            ForceBotUnlisted,
            "ForceBotUnlistedPolicy",
            "Makes all bot posts to disappear from public timelines",
            true,
            false,
            true,
        );
        push(EnsureRePrepended, "EnsureRePrepended", "Rewrites posts to ensure that replies to posts with subjects do not have an identical subject and instead begin with re:", true, false, true);
        push(
            ActivityExpiration,
            "ActivityExpirationPolicy",
            "Sets a default expiration on all posts made by users of the local instance",
            true,
            false,
            true,
        );
        push(
            Subchain,
            "SubchainPolicy",
            "Selectively runs other MRF policies when messages match",
            true,
            false,
            true,
        );
        push(
            Mention,
            "MentionPolicy",
            "Drops posts mentioning configurable users",
            true,
            false,
            true,
        );
        push(
            Vocabulary,
            "VocabularyPolicy",
            "Restricts activities to a configured set of vocabulary",
            true,
            false,
            true,
        );
        push(
            AntiHellthread,
            "AntiHellthreadPolicy",
            "Stops the use of the HellthreadPolicy",
            true,
            false,
            true,
        );
        push(
            RejectNonPublic,
            "RejectNonPublic",
            "Whether to allow followers-only/direct posts",
            true,
            false,
            true,
        );
        push(
            FollowBot,
            "FollowBotPolicy",
            "Automatically follows newly discovered users from the specified bot account",
            true,
            false,
            true,
        );
        push(
            Drop,
            "DropPolicy",
            "Drops all activities",
            true,
            false,
            true,
        );
        push(
            NormalizeMarkup,
            "NormalizeMarkup",
            "Scrubs HTML markup in posts down to a common subset",
            true,
            false,
            true,
        );
        push(
            NoEmpty,
            "NoEmptyPolicy",
            "Denies local users from sending posts with no text and no attachments",
            true,
            false,
            true,
        );
        push(
            NoPlaceholderText,
            "NoPlaceholderTextPolicy",
            "Strips placeholder text (\".\") from posts with media attachments",
            true,
            false,
            true,
        );
        push(
            UserAllowList,
            "UserAllowListPolicy",
            "Accepts activities only from an explicitly allowed set of users per instance",
            true,
            false,
            true,
        );
        push(
            Block,
            "BlockPolicy",
            "Applies instance-wide blocks configured outside SimplePolicy",
            true,
            false,
            true,
        );
        // ---- Admin-created custom policies (Figure 7) ----
        push(
            Amqp,
            "AMQPPolicy",
            "Mirrors every accepted activity onto an AMQP message bus for out-of-band processing",
            false,
            false,
            true,
        );
        push(
            KanayaBlogProcess,
            "KanayaBlogProcessPolicy",
            "Site-specific rewrite pipeline for a blog-bridging instance",
            false,
            false,
            true,
        );
        push(
            AntispamSandbox,
            "AntispamSandbox",
            "Forces posts from suspected spam accounts to followers-only visibility",
            false,
            false,
            true,
        );
        push(
            SupSlashX,
            "SupSlashX",
            "Board-specific custom filter (/x/)",
            false,
            false,
            true,
        );
        push(
            SupSlashPol,
            "SupSlashPOL",
            "Board-specific custom filter (/pol/)",
            false,
            false,
            true,
        );
        push(
            SupSlashMlp,
            "SupSlashMLP",
            "Board-specific custom filter (/mlp/)",
            false,
            false,
            true,
        );
        push(
            BlockNotification,
            "BlockNotification",
            "Announces incoming instance blocks to the local admin",
            false,
            false,
            true,
        );
        push(
            SupSlashG,
            "SupSlashG",
            "Board-specific custom filter (/g/)",
            false,
            false,
            true,
        );
        push(
            NoIncomingDeletes,
            "NoIncomingDeletes",
            "Ignores Delete activities from remote instances",
            false,
            false,
            true,
        );
        push(
            Rewrite,
            "RewritePolicy",
            "Rewrites configured substrings in incoming posts",
            false,
            false,
            true,
        );
        push(
            RejectCloudflare,
            "RejectCloudflarePolicy",
            "Rejects activities from instances fronted by a disliked CDN",
            false,
            false,
            true,
        );
        push(
            RacismRemover,
            "RacismRemover",
            "Drops posts matching a racism keyword list",
            false,
            false,
            true,
        );
        push(
            CdnWarming,
            "CdnWarmingPolicy",
            "Primes a CDN cache with incoming attachments",
            false,
            false,
            true,
        );
        push(
            NotifyLocalUsers,
            "NotifyLocalUsersPolicy",
            "Notifies local users when a followed remote account is targeted by a local policy",
            false,
            false,
            true,
        );
        push(BonziEmojiReactions, "BonziEmojiReactions", "Drops EmojiReact activities (instance-specific custom policy; full name in the paper's Figure 7)", false, false, true);
        push(
            SogigiMindWarming,
            "SogigiMindWarmingPolicy",
            "Instance-specific media cache warmer",
            false,
            false,
            true,
        );
        push(
            SupSlashB,
            "SupSlashB",
            "Board-specific custom filter (/b/)",
            false,
            false,
            true,
        );
        push(AutoReject, "AutoRejectPolicy", "Rejects activities from instances matching a local heuristic list (custom; not individually named in the paper)", false, false, false);
        push(LocalOnly, "LocalOnlyPolicy", "Keeps selected users' posts off the federation entirely (custom; not individually named in the paper)", false, false, false);
        push(SandboxCustom, "SandboxPolicy", "Quarantines new remote instances until manually reviewed (custom; not individually named in the paper)", false, false, false);
        // ---- §7 strawman extensions ----
        push(CuratedList, "CuratedListPolicy", "Subscribes to trusted curated blocklists (\"NoHate\", \"NoPorn\") maintained as a community effort (§7 proposal 1)", false, true, true);
        push(UserTagModeration, "UserTagModerationPolicy", "Per-user moderation driven by classifier-assisted tagging instead of instance-wide blocks (§7 proposal 2)", false, true, true);
        push(RepeatOffender, "RepeatOffenderPolicy", "Automatically escalates per-user actions (NSFW, media removal) after n reports or a classifier threshold (§7 proposal 3)", false, true, true);
        PolicyCatalog { entries }
    }

    /// Look up the entry for a policy kind.
    pub fn entry(&self, kind: PolicyKind) -> &PolicyEntry {
        self.entries
            .iter()
            .find(|e| e.kind == kind)
            .expect("catalog covers every PolicyKind")
    }

    /// All entries, observed-in-paper first, catalog order.
    pub fn entries(&self) -> &[PolicyEntry] {
        &self.entries
    }

    /// The 46 observed (non-strawman) entries.
    pub fn observed(&self) -> impl Iterator<Item = &PolicyEntry> {
        self.entries.iter().filter(|e| !e.strawman)
    }

    /// Find a policy by its display name.
    pub fn by_name(&self, name: &str) -> Option<&PolicyEntry> {
        self.entries.iter().find(|e| e.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_46_observed_plus_3_strawman() {
        let cat = PolicyCatalog::global();
        assert_eq!(cat.observed().count(), 46);
        assert_eq!(cat.entries().len(), 49);
    }

    #[test]
    fn paper_split_26_builtin_20_custom() {
        let cat = PolicyCatalog::global();
        let builtin = cat.observed().filter(|e| e.builtin).count();
        let custom = cat.observed().filter(|e| !e.builtin).count();
        assert_eq!(builtin, 26, "§4.1: 26 in-built policies");
        assert_eq!(custom, 20, "§4.1: 20 admin-created policies");
    }

    #[test]
    fn observed_constant_matches_catalog() {
        let cat = PolicyCatalog::global();
        for kind in PolicyKind::OBSERVED {
            assert!(!cat.entry(kind).strawman);
        }
        assert_eq!(PolicyKind::OBSERVED.len(), 46);
    }

    #[test]
    fn default_enabled_policies() {
        // §4.1: "we find the ObjectAgePolicy and NoOpPolicy enabled by
        // default in the software package."
        let defaults: Vec<_> = PolicyKind::OBSERVED
            .into_iter()
            .filter(|k| k.default_enabled())
            .collect();
        assert_eq!(defaults, vec![PolicyKind::ObjectAge, PolicyKind::NoOp]);
    }

    #[test]
    fn every_kind_resolves_and_names_are_unique() {
        let cat = PolicyCatalog::global();
        let mut names = std::collections::HashSet::new();
        for e in cat.entries() {
            assert!(!e.name.is_empty(), "{:?} has a name", e.kind);
            assert!(names.insert(e.name), "duplicate name {}", e.name);
            assert_eq!(cat.by_name(e.name).unwrap().kind, e.kind);
        }
    }

    #[test]
    fn notify_local_users_placeholder_was_replaced() {
        let e = PolicyCatalog::global().entry(PolicyKind::NotifyLocalUsers);
        assert_eq!(e.name, "NotifyLocalUsersPolicy");
        assert!(!e.description.is_empty());
    }

    #[test]
    fn strawman_flagging() {
        assert!(PolicyKind::CuratedList.is_strawman());
        assert!(!PolicyKind::Simple.is_strawman());
        assert!(PolicyKind::Simple.is_builtin());
        assert!(!PolicyKind::RacismRemover.is_builtin());
    }

    #[test]
    fn display_uses_paper_names() {
        assert_eq!(PolicyKind::Simple.to_string(), "SimplePolicy");
        assert_eq!(PolicyKind::ObjectAge.to_string(), "ObjectAgePolicy");
        assert_eq!(
            PolicyKind::EnsureRePrepended.to_string(),
            "EnsureRePrepended"
        );
    }
}
