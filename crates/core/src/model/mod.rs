//! The fediverse data model: instances, users, posts and activities.

mod activity;
mod instance;
mod post;
mod user;

pub use activity::{Activity, ActivityKind, ActivityPayload};
pub use instance::{InstanceKind, InstanceProfile, SoftwareVersion};
pub use post::{CustomEmoji, MediaAttachment, MediaKind, Post, Visibility};
pub use user::{mrf_tags, User};
