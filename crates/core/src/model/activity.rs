//! ActivityPub-style activities — the unit the MRF pipeline filters.
//!
//! Pleroma's MRF hooks into the ActivityPub ingestion path: every inbound
//! (and outbound) activity is passed through the configured policy chain,
//! which can pass it, rewrite it, or reject it. We model the activity types
//! that matter for the paper's policies.

use crate::id::{ActivityId, Domain, PostId, UserRef};
use crate::model::post::Post;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// Coarse classification of an activity (its ActivityStreams `type`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ActivityKind {
    /// `Create` — publication of a new post.
    Create,
    /// `Delete` — retraction of a post.
    Delete,
    /// `Follow` — subscription request.
    Follow,
    /// `Accept` — acceptance of a follow.
    Accept,
    /// `Undo` — retraction of a follow/like/announce.
    Undo,
    /// `Announce` — a boost/repeat.
    Announce,
    /// `Like` — a favourite.
    Like,
    /// `EmojiReact` — a Pleroma emoji reaction.
    EmojiReact,
    /// `Flag` — a report filed against a user or post.
    Flag,
}

impl ActivityKind {
    /// Canonical ActivityStreams type string.
    pub fn as_str(self) -> &'static str {
        match self {
            ActivityKind::Create => "Create",
            ActivityKind::Delete => "Delete",
            ActivityKind::Follow => "Follow",
            ActivityKind::Accept => "Accept",
            ActivityKind::Undo => "Undo",
            ActivityKind::Announce => "Announce",
            ActivityKind::Like => "Like",
            ActivityKind::EmojiReact => "EmojiReact",
            ActivityKind::Flag => "Flag",
        }
    }
}

/// The object an activity carries.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ActivityPayload {
    /// A new post (for `Create`).
    Note(Post),
    /// A follow request targeting a user (for `Follow`).
    FollowRequest {
        /// The account being followed.
        target: UserRef,
    },
    /// A post retraction (for `Delete`).
    Deletion {
        /// The post being deleted.
        post: PostId,
    },
    /// A boost (for `Announce`).
    Boost {
        /// The boosted post.
        post: PostId,
        /// The boosted post's author.
        original_author: UserRef,
    },
    /// A favourite or emoji reaction (for `Like` / `EmojiReact`).
    Reaction {
        /// The reacted-to post.
        post: PostId,
        /// Emoji shortcode for `EmojiReact`, `None` for a plain `Like`.
        emoji: Option<String>,
    },
    /// A report (for `Flag`).
    Report {
        /// The reported account.
        target: UserRef,
        /// Free-text reason.
        reason: String,
    },
    /// Retraction of an earlier activity (for `Undo` / `Accept`).
    Meta {
        /// The activity being referenced.
        activity: ActivityId,
    },
}

/// An activity flowing between instances.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Activity {
    /// Globally-unique id.
    pub id: ActivityId,
    /// The acting user.
    pub actor: UserRef,
    /// Activity type.
    pub kind: ActivityKind,
    /// Carried object.
    pub payload: ActivityPayload,
    /// When the activity was published on the origin instance.
    pub published: SimTime,
}

impl Activity {
    /// Domain the activity originates from (the actor's instance).
    pub fn origin(&self) -> &Domain {
        &self.actor.domain
    }

    /// Borrow the carried post, if this is a `Create`.
    pub fn note(&self) -> Option<&Post> {
        match &self.payload {
            ActivityPayload::Note(p) => Some(p),
            _ => None,
        }
    }

    /// Mutably borrow the carried post, if this is a `Create`.
    pub fn note_mut(&mut self) -> Option<&mut Post> {
        match &mut self.payload {
            ActivityPayload::Note(p) => Some(p),
            _ => None,
        }
    }

    /// Convenience constructor for a `Create` wrapping `post`.
    pub fn create(id: ActivityId, post: Post) -> Self {
        Activity {
            id,
            actor: post.author.clone(),
            kind: ActivityKind::Create,
            published: post.created,
            payload: ActivityPayload::Note(post),
        }
    }

    /// Convenience constructor for a `Follow`.
    pub fn follow(id: ActivityId, actor: UserRef, target: UserRef, at: SimTime) -> Self {
        Activity {
            id,
            actor,
            kind: ActivityKind::Follow,
            payload: ActivityPayload::FollowRequest { target },
            published: at,
        }
    }

    /// Convenience constructor for a `Delete`.
    pub fn delete(id: ActivityId, actor: UserRef, post: PostId, at: SimTime) -> Self {
        Activity {
            id,
            actor,
            kind: ActivityKind::Delete,
            payload: ActivityPayload::Deletion { post },
            published: at,
        }
    }

    /// Convenience constructor for a `Flag` (report).
    pub fn report(
        id: ActivityId,
        actor: UserRef,
        target: UserRef,
        reason: impl Into<String>,
        at: SimTime,
    ) -> Self {
        Activity {
            id,
            actor,
            kind: ActivityKind::Flag,
            payload: ActivityPayload::Report {
                target,
                reason: reason.into(),
            },
            published: at,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::UserId;

    fn author() -> UserRef {
        UserRef::new(UserId(9), Domain::new("gab.com"))
    }

    #[test]
    fn create_wraps_post() {
        let post = Post::stub(PostId(1), author(), SimTime(77), "hi");
        let act = Activity::create(ActivityId(100), post);
        assert_eq!(act.kind, ActivityKind::Create);
        assert_eq!(act.published, SimTime(77));
        assert_eq!(&*act.note().unwrap().content, "hi");
        assert_eq!(act.origin().as_str(), "gab.com");
    }

    #[test]
    fn note_accessor_is_none_for_follow() {
        let act = Activity::follow(
            ActivityId(1),
            author(),
            UserRef::new(UserId(2), Domain::new("poa.st")),
            SimTime(0),
        );
        assert!(act.note().is_none());
        assert_eq!(act.kind.as_str(), "Follow");
    }

    #[test]
    fn note_mut_allows_rewrites() {
        let post = Post::stub(PostId(1), author(), SimTime(0), "original");
        let mut act = Activity::create(ActivityId(1), post);
        act.note_mut().unwrap().content = "rewritten".into();
        assert_eq!(&*act.note().unwrap().content, "rewritten");
    }

    #[test]
    fn kind_strings_are_activitystreams_types() {
        for (k, s) in [
            (ActivityKind::Create, "Create"),
            (ActivityKind::Delete, "Delete"),
            (ActivityKind::Flag, "Flag"),
            (ActivityKind::Announce, "Announce"),
            (ActivityKind::EmojiReact, "EmojiReact"),
        ] {
            assert_eq!(k.as_str(), s);
        }
    }
}
