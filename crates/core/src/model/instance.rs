//! Instance-level metadata.

use crate::id::{Domain, InstanceId};
use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which fediverse software an instance runs.
///
/// The paper distinguishes Pleroma instances (whose policies are public via
/// the metadata API) from non-Pleroma instances (e.g. Mastodon, which
/// federates over the same ActivityPub protocol but does not expose
/// moderation configuration).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InstanceKind {
    /// A Pleroma instance at the given software version.
    Pleroma(SoftwareVersion),
    /// A Mastodon instance (the dominant non-Pleroma platform).
    Mastodon,
    /// Any other fediverse software (PeerTube, Hubzilla, Misskey, ...).
    Other(String),
}

impl InstanceKind {
    /// True for Pleroma instances.
    pub fn is_pleroma(&self) -> bool {
        matches!(self, InstanceKind::Pleroma(_))
    }

    /// The software name as reported by nodeinfo.
    pub fn software_name(&self) -> &str {
        match self {
            InstanceKind::Pleroma(_) => "pleroma",
            InstanceKind::Mastodon => "mastodon",
            InstanceKind::Other(name) => name,
        }
    }
}

/// A Pleroma-style semantic version (`major.minor.patch`).
///
/// Version matters for moderation semantics: `ObjectAgePolicy` ships
/// enabled by default starting with 2.1.0 (§4.1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SoftwareVersion {
    /// Major version.
    pub major: u8,
    /// Minor version.
    pub minor: u8,
    /// Patch version.
    pub patch: u8,
}

impl SoftwareVersion {
    /// Builds a version triple.
    pub const fn new(major: u8, minor: u8, patch: u8) -> Self {
        SoftwareVersion {
            major,
            minor,
            patch,
        }
    }

    /// The first version that enables `ObjectAgePolicy` by default.
    pub const OBJECT_AGE_DEFAULT_SINCE: SoftwareVersion = SoftwareVersion::new(2, 1, 0);

    /// Whether a fresh install of this version has `ObjectAgePolicy` on.
    pub fn object_age_default(self) -> bool {
        self >= Self::OBJECT_AGE_DEFAULT_SINCE
    }
}

impl fmt::Display for SoftwareVersion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}.{}", self.major, self.minor, self.patch)
    }
}

/// Static profile of an instance, as the world builder created it.
///
/// This is ground truth; what the *crawler* sees is the subset exposed
/// through the instance's public APIs (and nothing at all for unreachable
/// instances).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InstanceProfile {
    /// Dense numeric id.
    pub id: InstanceId,
    /// The instance's domain name.
    pub domain: Domain,
    /// Software and version.
    pub kind: InstanceKind,
    /// Human-readable title.
    pub title: String,
    /// Whether the instance accepts new registrations.
    pub registrations_open: bool,
    /// When the instance first came online.
    pub founded: SimTime,
    /// Whether the instance exposes its moderation configuration through
    /// the metadata API. The paper found 8.1% of Pleroma instances hide it.
    pub exposes_policies: bool,
    /// Whether the instance's public timeline is readable without
    /// authentication. §3: the public timeline of 38.7% of instances was
    /// not reachable.
    pub public_timeline_open: bool,
}

impl InstanceProfile {
    /// Convenience: true if this instance runs Pleroma.
    pub fn is_pleroma(&self) -> bool {
        self.kind.is_pleroma()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn version_ordering() {
        assert!(SoftwareVersion::new(2, 1, 0) > SoftwareVersion::new(2, 0, 7));
        assert!(SoftwareVersion::new(2, 2, 2) > SoftwareVersion::new(2, 1, 0));
        assert!(SoftwareVersion::new(1, 9, 9) < SoftwareVersion::new(2, 0, 0));
    }

    #[test]
    fn object_age_default_threshold() {
        assert!(!SoftwareVersion::new(2, 0, 7).object_age_default());
        assert!(SoftwareVersion::new(2, 1, 0).object_age_default());
        assert!(SoftwareVersion::new(2, 3, 0).object_age_default());
    }

    #[test]
    fn software_names() {
        assert_eq!(
            InstanceKind::Pleroma(SoftwareVersion::new(2, 2, 0)).software_name(),
            "pleroma"
        );
        assert_eq!(InstanceKind::Mastodon.software_name(), "mastodon");
        assert!(!InstanceKind::Mastodon.is_pleroma());
        assert_eq!(
            InstanceKind::Other("peertube".into()).software_name(),
            "peertube"
        );
    }

    #[test]
    fn version_display() {
        assert_eq!(SoftwareVersion::new(2, 3, 1).to_string(), "2.3.1");
    }
}
