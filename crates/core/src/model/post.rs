//! Posts ("Notes" in ActivityPub terms) and their attachments.

use crate::id::{Domain, PostId, UserRef};
use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// Visibility scope of a post, mirroring Pleroma/Mastodon semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Visibility {
    /// Addressed to the public collection; appears on public timelines.
    Public,
    /// Public but de-listed: reachable by URL / followers, hidden from the
    /// public and federated timelines. MRF "delist" actions produce this.
    Unlisted,
    /// Only the author's followers receive it.
    FollowersOnly,
    /// A direct message to the mentioned users.
    Direct,
}

impl Visibility {
    /// Whether the post shows up on a public (local or federated) timeline.
    pub fn on_public_timelines(self) -> bool {
        matches!(self, Visibility::Public)
    }

    /// Whether the post is public or unlisted (i.e. not private).
    pub fn is_public_ish(self) -> bool {
        matches!(self, Visibility::Public | Visibility::Unlisted)
    }
}

/// What kind of media an attachment is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MediaKind {
    /// A still image.
    Image,
    /// A video clip.
    Video,
    /// An audio file.
    Audio,
}

/// A media attachment on a post.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MediaAttachment {
    /// Domain the media is served from (usually the origin instance; the
    /// `MediaProxyWarmingPolicy` pre-fetches through the local proxy).
    pub host: Domain,
    /// Media type.
    pub kind: MediaKind,
    /// Whether the *author* marked the attachment sensitive.
    pub sensitive: bool,
}

/// A custom emoji used in a post (`StealEmojiPolicy` copies these).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CustomEmoji {
    /// Shortcode, e.g. `blobcat`.
    pub shortcode: String,
    /// Host serving the emoji image.
    pub host: Domain,
}

/// A post: the unit of content the paper collected 24.5 M of.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Post {
    /// Globally-unique id, monotone in creation order per instance.
    pub id: PostId,
    /// Author reference.
    pub author: UserRef,
    /// When the post was created on its origin instance.
    pub created: SimTime,
    /// Body text (plain text after markup normalisation), behind a shared
    /// allocation: the same body is carried by the generated world, the
    /// scenario seed templates, and every experiment arm's pre-built
    /// activities, so cloning a post must never copy the text. MRF
    /// rewrites (`content_replace`, tag stripping) copy-on-write by
    /// assigning a fresh value.
    pub content: std::sync::Arc<str>,
    /// Optional subject / content-warning line ("summary" in AP terms).
    pub subject: Option<String>,
    /// Visibility scope.
    pub visibility: Visibility,
    /// Users mentioned in the post.
    pub mentions: Vec<UserRef>,
    /// Hashtags (lowercase, without `#`).
    pub hashtags: Vec<String>,
    /// Media attachments.
    pub media: Vec<MediaAttachment>,
    /// Custom emoji used.
    pub emojis: Vec<CustomEmoji>,
    /// Whether the body contains hyperlinks (input to `AntiLinkSpamPolicy`).
    pub has_links: bool,
    /// Whether this is a reply, and to which post.
    pub in_reply_to: Option<PostId>,
    /// Whether the post as a whole is marked sensitive (NSFW).
    pub sensitive: bool,
    /// Expiry time, if an `ActivityExpirationPolicy` stamped one.
    pub expires_at: Option<SimTime>,
    /// Whether the author's followers collection was stripped from the
    /// recipient list (the `ObjectAgePolicy` *strip followers* action);
    /// the delivery layer then skips follower fan-out.
    pub followers_stripped: bool,
}

impl Post {
    /// Age of the post at `now` (zero if `now` predates creation).
    pub fn age_at(&self, now: SimTime) -> crate::time::SimDuration {
        now.since(self.created)
    }

    /// Domain the post originates from.
    pub fn origin(&self) -> &Domain {
        &self.author.domain
    }

    /// True if the post carries any media.
    pub fn has_media(&self) -> bool {
        !self.media.is_empty()
    }

    /// Strips all media attachments (the `media_removal` action), leaving
    /// text intact — the paper's §7 notes this preserves the innocent
    /// textual content while dropping the harmful payload.
    pub fn strip_media(&mut self) {
        self.media.clear();
    }

    /// Marks the post (and all attachments) sensitive (the `media_nsfw`
    /// action / `HashtagPolicy` outcome).
    pub fn force_sensitive(&mut self) {
        self.sensitive = true;
        for m in &mut self.media {
            m.sensitive = true;
        }
    }

    /// A minimal valid post for tests and examples.
    pub fn stub(
        id: PostId,
        author: UserRef,
        created: SimTime,
        content: impl Into<std::sync::Arc<str>>,
    ) -> Self {
        Post {
            id,
            author,
            created,
            content: content.into(),
            subject: None,
            visibility: Visibility::Public,
            mentions: Vec::new(),
            hashtags: Vec::new(),
            media: Vec::new(),
            emojis: Vec::new(),
            has_links: false,
            in_reply_to: None,
            sensitive: false,
            expires_at: None,
            followers_stripped: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::UserId;

    fn post() -> Post {
        let author = UserRef::new(UserId(1), Domain::new("example.social"));
        let mut p = Post::stub(PostId(10), author, SimTime(500), "hello fedi");
        p.media.push(MediaAttachment {
            host: Domain::new("example.social"),
            kind: MediaKind::Image,
            sensitive: false,
        });
        p
    }

    #[test]
    fn visibility_semantics() {
        assert!(Visibility::Public.on_public_timelines());
        assert!(!Visibility::Unlisted.on_public_timelines());
        assert!(Visibility::Unlisted.is_public_ish());
        assert!(!Visibility::FollowersOnly.is_public_ish());
        assert!(!Visibility::Direct.is_public_ish());
    }

    #[test]
    fn strip_media_clears_attachments() {
        let mut p = post();
        assert!(p.has_media());
        p.strip_media();
        assert!(!p.has_media());
        assert_eq!(&*p.content, "hello fedi", "text must survive media removal");
    }

    #[test]
    fn force_sensitive_cascades_to_media() {
        let mut p = post();
        p.force_sensitive();
        assert!(p.sensitive);
        assert!(p.media.iter().all(|m| m.sensitive));
    }

    #[test]
    fn origin_is_author_domain() {
        let p = post();
        assert_eq!(p.origin().as_str(), "example.social");
    }

    #[test]
    fn age_saturates() {
        let p = post();
        assert_eq!(p.age_at(SimTime(100)).as_secs(), 0);
        assert_eq!(p.age_at(SimTime(86_900)).as_secs(), 86_400);
    }
}
