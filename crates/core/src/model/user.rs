//! User accounts.

use crate::id::{Domain, InstanceId, UserId, UserRef};
use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// A registered account on some instance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct User {
    /// Globally-unique id.
    pub id: UserId,
    /// The instance the account is registered on.
    pub instance: InstanceId,
    /// Domain of that instance (denormalised for cheap `UserRef` building).
    pub domain: Domain,
    /// Account handle (local part of `handle@domain`).
    pub handle: String,
    /// When the account was created.
    pub created: SimTime,
    /// Whether the account is flagged as a bot (`actor_type: Service`).
    /// `AntiFollowbotPolicy` and `ForceBotUnlistedPolicy` key off this.
    pub bot: bool,
    /// Number of followers (across the whole fediverse).
    pub followers: u32,
    /// Number of accounts this user follows.
    pub following: u32,
    /// MRF tags applied by the local administrator (`TagPolicy`), e.g.
    /// `"mrf_tag:media-force-nsfw"`.
    pub mrf_tags: Vec<String>,
    /// How many times this account has been reported (`Flag` activities
    /// received). Input for the §7 `RepeatOffenderPolicy` strawman.
    pub report_count: u32,
}

impl User {
    /// A fully-qualified reference to this user.
    pub fn user_ref(&self) -> UserRef {
        UserRef::new(self.id, self.domain.clone())
    }

    /// Whether the local admin applied a given MRF tag to this account.
    pub fn has_mrf_tag(&self, tag: &str) -> bool {
        self.mrf_tags.iter().any(|t| t == tag)
    }

    /// Account age at time `now`.
    pub fn age_at(&self, now: SimTime) -> crate::time::SimDuration {
        now.since(self.created)
    }
}

/// Well-known MRF tags understood by Pleroma's `TagPolicy`.
pub mod mrf_tags {
    /// Force all media by the user to be marked sensitive.
    pub const MEDIA_FORCE_NSFW: &str = "mrf_tag:media-force-nsfw";
    /// Strip all media from the user's posts.
    pub const MEDIA_STRIP: &str = "mrf_tag:media-strip";
    /// Force the user's posts to unlisted visibility.
    pub const FORCE_UNLISTED: &str = "mrf_tag:force-unlisted";
    /// Force the user's posts to followers-only visibility.
    pub const SANDBOX: &str = "mrf_tag:sandbox";
    /// Reject follows of this user coming from remote instances.
    pub const DISABLE_REMOTE_SUBSCRIPTION: &str = "mrf_tag:disable-remote-subscription";
    /// Reject all follows of this user.
    pub const DISABLE_ANY_SUBSCRIPTION: &str = "mrf_tag:disable-any-subscription";
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn sample_user() -> User {
        User {
            id: UserId(42),
            instance: InstanceId(3),
            domain: Domain::new("poa.st"),
            handle: "alice".into(),
            created: SimTime(1000),
            bot: false,
            followers: 10,
            following: 4,
            mrf_tags: vec![mrf_tags::FORCE_UNLISTED.to_string()],
            report_count: 0,
        }
    }

    #[test]
    fn user_ref_carries_domain() {
        let u = sample_user();
        assert_eq!(u.user_ref().to_string(), "u42@poa.st");
    }

    #[test]
    fn mrf_tag_lookup() {
        let u = sample_user();
        assert!(u.has_mrf_tag(mrf_tags::FORCE_UNLISTED));
        assert!(!u.has_mrf_tag(mrf_tags::MEDIA_STRIP));
    }

    #[test]
    fn age_is_relative_to_creation() {
        let u = sample_user();
        assert_eq!(u.age_at(SimTime(1000 + 86_400)), SimDuration::days(1));
    }
}
