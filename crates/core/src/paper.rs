//! The paper's reported numbers, as constants.
//!
//! These serve two roles:
//!
//! 1. **Calibration targets** for `fediscope-synthgen` — the synthetic
//!    fediverse is generated so that *measuring it* reproduces these
//!    statistics;
//! 2. **Reference columns** for the experiment harness — every repro bench
//!    prints the paper's value next to ours.
//!
//! Each constant cites the section/table/figure it comes from. Where the
//! paper is internally inconsistent (§3 post-collection accounting), the
//! discrepancy is noted and a consistent choice documented.

#![allow(clippy::excessive_precision)]

/// §3: total Pleroma instances identified via directories + Peers API.
pub const PLEROMA_INSTANCES: u32 = 1534;

/// §3: non-Pleroma instances discovered through federation (e.g. Mastodon).
pub const NON_PLEROMA_INSTANCES: u32 = 8435;

/// §3: Pleroma instances successfully crawled (84.6%).
pub const CRAWLED_INSTANCES: u32 = 1298;

/// §3: failure taxonomy for the 236 unreachable Pleroma instances.
pub mod crawl_failures {
    /// 404 Not Found.
    pub const NOT_FOUND: u32 = 110;
    /// 403 authorisation required for timeline viewing.
    pub const FORBIDDEN: u32 = 84;
    /// 502 Bad Gateway.
    pub const BAD_GATEWAY: u32 = 24;
    /// 503 Service Unavailable.
    pub const UNAVAILABLE: u32 = 11;
    /// 410 Gone.
    pub const GONE: u32 = 7;
    /// All failures.
    pub const TOTAL: u32 = NOT_FOUND + FORBIDDEN + BAD_GATEWAY + UNAVAILABLE + GONE;
}

/// §3: unique users discovered across crawled Pleroma instances.
pub const TOTAL_USERS: u32 = 111_000;

/// §3: users covered by collected public posts.
pub const USERS_WITH_COLLECTED_POSTS: u32 = 91_700;

/// §3: fraction of users who published at least one post.
pub const USERS_WITH_POSTS_FRACTION: f64 = 0.487;

/// §3: total posts reported on crawled instances.
pub const TOTAL_POSTS: u64 = 24_500_000;

/// §3: public posts actually collected via the Timeline API.
pub const COLLECTED_POSTS: u64 = 14_500_000;

/// §3: instances from which all posts were gathered.
pub const INSTANCES_WITH_POSTS: u32 = 796;

/// §3: instances with zero posts.
pub const INSTANCES_NO_POSTS: u32 = 119;

/// §3 (reconciled): instances whose public timeline was unreachable.
///
/// The paper says "the public timeline of the remaining 38.7% instances was
/// not reachable", but 796 + 119 + 0.387·1298 ≠ 1298. We adopt
/// `1298 − 796 − 119 = 383` unreachable timelines and note the discrepancy
/// in EXPERIMENTS.md.
pub const INSTANCES_TIMELINE_UNREACHABLE: u32 =
    CRAWLED_INSTANCES - INSTANCES_WITH_POSTS - INSTANCES_NO_POSTS;

/// §4.1: fraction of Pleroma instances exposing policy information.
pub const POLICY_EXPOSURE_FRACTION: f64 = 0.919;

/// §4.1: unique policy types observed.
pub const UNIQUE_POLICY_TYPES: u32 = 46;

/// §4.1: policies included in the Pleroma package.
pub const BUILTIN_POLICY_TYPES: u32 = 26;

/// §4.1: fraction of all users on instances with ≥ 1 retrieved policy.
pub const USERS_AFFECTED_BY_POLICIES: f64 = 0.977;

/// §4.1: fraction of all posts on instances with ≥ 1 retrieved policy.
pub const POSTS_AFFECTED_BY_POLICIES: f64 = 0.978;

/// §4.1/§4.2: fraction of users on instances rejected by ≥ 1 instance.
pub const USERS_ON_REJECTED_INSTANCES: f64 = 0.862;

/// §4.2: fraction of posts on rejected instances (§4.1 says 88.5%, §4.2
/// says 88.7%; we adopt 88.7%).
pub const POSTS_ON_REJECTED_INSTANCES: f64 = 0.887;

/// §4.1: share of all moderation events that are `reject` actions.
pub const REJECT_SHARE_OF_EVENTS: f64 = 0.628;

/// §4.1: rejected instances as a share of all moderated instances.
pub const REJECTED_SHARE_OF_MODERATED: f64 = 0.80;

/// §4.1: fraction of instances applying `media_removal`.
pub const MEDIA_REMOVAL_INSTANCE_FRACTION: f64 = 0.054;

/// §4.1: fraction of users impacted by `media_removal`.
pub const MEDIA_REMOVAL_USER_FRACTION: f64 = 0.233;

/// §4.1: share of SimplePolicy-enabled instances that use `reject`.
pub const SIMPLEPOLICY_REJECT_SHARE: f64 = 0.73;

/// §4.2: unique instances rejected at least once.
pub const REJECTED_INSTANCES_TOTAL: u32 = 1200;

/// §4.2: rejected Pleroma instances.
pub const REJECTED_PLEROMA_INSTANCES: u32 = 202;

/// §4.2: rejected non-Pleroma instances.
pub const REJECTED_NON_PLEROMA_INSTANCES: u32 = 998;

/// §4.2: rejected Pleroma instances as a share of all Pleroma instances.
pub const REJECTED_PLEROMA_SHARE: f64 = 0.155;

/// §4.2: share of rejected instances rejected by fewer than 10 instances.
pub const REJECTED_BY_FEWER_THAN_10: f64 = 0.868;

/// §4.2: "elite" share of rejected instances with > 20 rejects.
pub const ELITE_REJECTED_SHARE: f64 = 0.054;

/// §4.2: users share held by the elite rejected set.
pub const ELITE_USER_SHARE: f64 = 0.336;

/// §4.2: posts share held by the elite rejected set.
pub const ELITE_POST_SHARE: f64 = 0.234;

/// §4.2: Spearman correlation between an instance's posts and its rejects.
pub const SPEARMAN_POSTS_VS_REJECTS: f64 = 0.38;

/// §4.2: Spearman correlation between rejects applied and received
/// (retaliation; essentially zero / slightly negative).
pub const SPEARMAN_RETALIATION: f64 = -0.033;

/// Table 1: the five most-rejected Pleroma instances.
pub struct TopRejectedInstance {
    /// Domain name.
    pub domain: &'static str,
    /// Number of reject actions targeting it.
    pub rejects: u32,
    /// Users on the instance.
    pub users: u32,
    /// Posts by those users.
    pub posts: u64,
    /// Average toxicity score (None = not retrievable, `NA` in Table 1).
    pub toxicity: Option<f64>,
    /// Average profanity score.
    pub profanity: Option<f64>,
    /// Average sexually-explicit score.
    pub sexually_explicit: Option<f64>,
}

/// Table 1 rows. (The most rejected instance overall is `gab.com`, a
/// Mastodon instance; these are the top *Pleroma* instances.)
pub const TABLE1_TOP_REJECTED: [TopRejectedInstance; 5] = [
    TopRejectedInstance {
        domain: "freespeechextremist.com",
        rejects: 97,
        users: 1_800,
        posts: 1_130_000,
        toxicity: Some(0.26),
        profanity: Some(0.22),
        sexually_explicit: Some(0.16),
    },
    TopRejectedInstance {
        domain: "kiwifarms.cc",
        rejects: 86,
        users: 6_800,
        posts: 391_000,
        toxicity: Some(0.24),
        profanity: Some(0.19),
        sexually_explicit: Some(0.16),
    },
    TopRejectedInstance {
        domain: "spinster.xyz",
        rejects: 65,
        users: 17_900,
        posts: 1_340_000,
        toxicity: None,
        profanity: None,
        sexually_explicit: None,
    },
    TopRejectedInstance {
        domain: "neckbeard.xyz",
        rejects: 61,
        users: 15_100,
        posts: 816_000,
        toxicity: Some(0.13),
        profanity: Some(0.11),
        sexually_explicit: Some(0.11),
    },
    TopRejectedInstance {
        domain: "poa.st",
        rejects: 51,
        users: 5_100,
        posts: 344_000,
        toxicity: Some(0.27),
        profanity: Some(0.25),
        sexually_explicit: Some(0.18),
    },
];

/// §4.2: spinster.xyz's own outgoing rejects (the only top-10 instance
/// rejecting more than 2 others).
pub const SPINSTER_OUTGOING_REJECTS: u32 = 45;

/// §4.2: share of rejected Pleroma instances the authors could annotate.
pub const ANNOTATABLE_SHARE: f64 = 0.884;

/// §4.2: of annotatable rejected instances, share labelled toxic /
/// sexually-explicit / profane (vs 9.4% "general").
pub const HARMFUL_CATEGORY_SHARE: f64 = 0.906;

/// §4.2: rejected Pleroma instances that were manually annotated.
pub const ANNOTATED_REJECTED_PLEROMA: u32 = 92;

/// §5: share of rejected Pleroma instances with post data.
pub const REJECTED_WITH_POSTS_SHARE: f64 = 0.619;

/// §5: share of those that are single-user instances (filtered out).
pub const SINGLE_USER_SHARE: f64 = 0.264;

/// §5: users with publicly accessible content on multi-user rejected
/// Pleroma instances.
pub const REJECTED_USERS_WITH_CONTENT: u32 = 1_620;

/// §5: their posts.
pub const REJECTED_USERS_POSTS: u32 = 59_300;

/// §5: share of users on rejected instances with an average score ≥ 0.8 in
/// at least one attribute (the harmful minority).
pub const HARMFUL_USER_SHARE: f64 = 0.042;

/// §5: the headline collateral-damage figure — share of users on rejected
/// instances with *no* harmful posts.
pub const NON_HARMFUL_USER_SHARE: f64 = 0.958;

/// §5: harmful-to-non-harmful post ratio at threshold 0.8 (1:11).
pub const HARMFUL_POST_RATIO: f64 = 1.0 / 12.0;

/// §5: of harmful users, attribute breakdown (overlapping).
pub mod harmful_user_attributes {
    /// Share classified toxic.
    pub const TOXIC: f64 = 0.697;
    /// Share classified profane.
    pub const PROFANE: f64 = 0.576;
    /// Share classified sexually explicit.
    pub const SEXUALLY_EXPLICIT: f64 = 0.439;
}

/// Table 2: share of *non-harmful* users at each Perspective threshold.
pub const TABLE2_THRESHOLDS: [f64; 5] = [0.5, 0.6, 0.7, 0.8, 0.9];

/// Table 2: non-harmful percentages corresponding to
/// [`TABLE2_THRESHOLDS`].
pub const TABLE2_NON_HARMFUL: [f64; 5] = [0.864, 0.918, 0.941, 0.958, 0.973];

/// §3/§5: Perspective score threshold for labelling a post harmful.
pub const HARMFUL_THRESHOLD: f64 = 0.8;

/// Table 3: per-policy instance and user counts (the built-in policies the
/// appendix tabulates). Used to calibrate policy assignment and to print
/// the Table 3 reference column.
pub struct PolicyPrevalence {
    /// Display name of the policy.
    pub name: &'static str,
    /// Instances enabling it.
    pub instances: u32,
    /// Users on those instances.
    pub users: u32,
}

/// Table 3 rows, in the paper's order.
pub const TABLE3_PREVALENCE: [PolicyPrevalence; 21] = [
    PolicyPrevalence {
        name: "ObjectAgePolicy",
        instances: 869,
        users: 57_854,
    },
    PolicyPrevalence {
        name: "TagPolicy",
        instances: 429,
        users: 38_067,
    },
    PolicyPrevalence {
        name: "SimplePolicy",
        instances: 330,
        users: 46_691,
    },
    PolicyPrevalence {
        name: "NoOpPolicy",
        instances: 176,
        users: 6_443,
    },
    PolicyPrevalence {
        name: "HellthreadPolicy",
        instances: 87,
        users: 14_401,
    },
    PolicyPrevalence {
        name: "StealEmojiPolicy",
        instances: 81,
        users: 7_003,
    },
    PolicyPrevalence {
        name: "HashtagPolicy",
        instances: 62,
        users: 10_933,
    },
    PolicyPrevalence {
        name: "AntiFollowbotPolicy",
        instances: 51,
        users: 6_918,
    },
    PolicyPrevalence {
        name: "MediaProxyWarmingPolicy",
        instances: 46,
        users: 9_851,
    },
    PolicyPrevalence {
        name: "KeywordPolicy",
        instances: 42,
        users: 22_428,
    },
    PolicyPrevalence {
        name: "AntiLinkSpamPolicy",
        instances: 32,
        users: 7_347,
    },
    PolicyPrevalence {
        name: "ForceBotUnlistedPolicy",
        instances: 23,
        users: 6_746,
    },
    PolicyPrevalence {
        name: "EnsureRePrepended",
        instances: 18,
        users: 247,
    },
    PolicyPrevalence {
        name: "ActivityExpirationPolicy",
        instances: 11,
        users: 1_420,
    },
    PolicyPrevalence {
        name: "SubchainPolicy",
        instances: 8,
        users: 81,
    },
    PolicyPrevalence {
        name: "MentionPolicy",
        instances: 6,
        users: 1_149,
    },
    PolicyPrevalence {
        name: "VocabularyPolicy",
        instances: 5,
        users: 121,
    },
    PolicyPrevalence {
        name: "AntiHellthreadPolicy",
        instances: 4,
        users: 2_106,
    },
    PolicyPrevalence {
        name: "RejectNonPublic",
        instances: 3,
        users: 1_101,
    },
    PolicyPrevalence {
        name: "FollowBotPolicy",
        instances: 2,
        users: 281,
    },
    PolicyPrevalence {
        name: "DropPolicy",
        instances: 1,
        users: 1_098,
    },
];

/// Figure 2 (read from the plot): number of instances *targeted by* each
/// SimplePolicy action, split Pleroma/non-Pleroma, plus users on the
/// targeted Pleroma instances.
pub struct ActionTargeting {
    /// Figure label of the action.
    pub action: &'static str,
    /// Targeted Pleroma instances.
    pub targeted_pleroma: u32,
    /// Targeted non-Pleroma instances.
    pub targeted_non_pleroma: u32,
    /// Instances applying the action (Figure 3).
    pub targeting_instances: u32,
}

/// Figures 2/3 calibration rows (figure-read approximations; the exact
/// values are not tabulated in the paper).
pub const FIG23_ACTIONS: [ActionTargeting; 10] = [
    ActionTargeting {
        action: "reject",
        targeted_pleroma: 202,
        targeted_non_pleroma: 998,
        targeting_instances: 241,
    },
    ActionTargeting {
        action: "fed_timeline_rem",
        targeted_pleroma: 145,
        targeted_non_pleroma: 755,
        targeting_instances: 160,
    },
    ActionTargeting {
        action: "accept",
        targeted_pleroma: 110,
        targeted_non_pleroma: 590,
        targeting_instances: 90,
    },
    ActionTargeting {
        action: "media_removal",
        targeted_pleroma: 80,
        targeted_non_pleroma: 370,
        targeting_instances: 70,
    },
    ActionTargeting {
        action: "banner_removal",
        targeted_pleroma: 60,
        targeted_non_pleroma: 290,
        targeting_instances: 35,
    },
    ActionTargeting {
        action: "avatar_removal",
        targeted_pleroma: 50,
        targeted_non_pleroma: 250,
        targeting_instances: 55,
    },
    ActionTargeting {
        action: "nsfw",
        targeted_pleroma: 45,
        targeted_non_pleroma: 205,
        targeting_instances: 40,
    },
    ActionTargeting {
        action: "reject_deletes",
        targeted_pleroma: 30,
        targeted_non_pleroma: 120,
        targeting_instances: 50,
    },
    ActionTargeting {
        action: "report_removal",
        targeted_pleroma: 20,
        targeted_non_pleroma: 80,
        targeting_instances: 25,
    },
    ActionTargeting {
        action: "followers_only",
        targeted_pleroma: 10,
        targeted_non_pleroma: 40,
        targeting_instances: 60,
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crawl_failures_sum_to_236() {
        assert_eq!(crawl_failures::TOTAL, 236);
        assert_eq!(CRAWLED_INSTANCES + crawl_failures::TOTAL, PLEROMA_INSTANCES);
    }

    #[test]
    fn reconciled_timeline_accounting() {
        assert_eq!(
            INSTANCES_WITH_POSTS + INSTANCES_NO_POSTS + INSTANCES_TIMELINE_UNREACHABLE,
            CRAWLED_INSTANCES
        );
    }

    #[test]
    fn rejected_instances_split() {
        assert_eq!(
            REJECTED_PLEROMA_INSTANCES + REJECTED_NON_PLEROMA_INSTANCES,
            REJECTED_INSTANCES_TOTAL
        );
        // 202 / 1298 ≈ 15.5%
        let share = REJECTED_PLEROMA_INSTANCES as f64 / CRAWLED_INSTANCES as f64;
        assert!((share - REJECTED_PLEROMA_SHARE).abs() < 0.002);
    }

    #[test]
    fn table2_is_monotone() {
        for w in TABLE2_NON_HARMFUL.windows(2) {
            assert!(w[0] < w[1], "higher threshold ⇒ more users non-harmful");
        }
        assert!((TABLE2_NON_HARMFUL[3] - NON_HARMFUL_USER_SHARE).abs() < 1e-9);
    }

    #[test]
    fn harmful_shares_complementary() {
        assert!((HARMFUL_USER_SHARE + NON_HARMFUL_USER_SHARE - 1.0).abs() < 1e-9);
    }

    #[test]
    fn table3_ordering_is_descending_by_instances() {
        for w in TABLE3_PREVALENCE.windows(2) {
            assert!(w[0].instances >= w[1].instances);
        }
    }

    #[test]
    fn table3_top_policy_is_object_age_at_67_percent() {
        let top = &TABLE3_PREVALENCE[0];
        assert_eq!(top.name, "ObjectAgePolicy");
        let frac = top.instances as f64 / CRAWLED_INSTANCES as f64;
        assert!((frac - 0.669).abs() < 0.001, "§4.1: 66.9% of instances");
    }

    #[test]
    fn fig23_reject_row_matches_section_4_2() {
        let reject = &FIG23_ACTIONS[0];
        assert_eq!(reject.action, "reject");
        assert_eq!(
            reject.targeted_pleroma + reject.targeted_non_pleroma,
            REJECTED_INSTANCES_TOTAL
        );
        // 73% of the 330 SimplePolicy instances apply reject → ~241.
        assert_eq!(
            reject.targeting_instances,
            (330.0_f64 * SIMPLEPOLICY_REJECT_SHARE).round() as u32
        );
    }

    #[test]
    fn table1_is_sorted_by_rejects() {
        for w in TABLE1_TOP_REJECTED.windows(2) {
            assert!(w[0].rejects >= w[1].rejects);
        }
        assert_eq!(TABLE1_TOP_REJECTED[0].domain, "freespeechextremist.com");
    }
}
