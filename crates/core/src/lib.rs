//! # fediscope-core
//!
//! Domain model and MRF (Message Rewrite Facility) policy engine for the
//! fediscope reproduction of *"Exploring Content Moderation in the
//! Decentralised Web: The Pleroma Case"* (ACM CoNEXT 2021).
//!
//! This crate contains everything the rest of the workspace agrees on:
//!
//! * identifiers and the simulated clock ([`id`], [`time`]),
//! * the data model of the fediverse — instances, users, posts and
//!   ActivityPub-style activities ([`model`]),
//! * the **MRF policy engine**: the [`mrf::MrfPolicy`] trait, the
//!   [`mrf::MrfPipeline`] that composes policies exactly like Pleroma's
//!   `:mrf, policies: [...]` configuration, and implementations of every
//!   in-built Pleroma policy named in the paper (plus the admin-created
//!   custom policies of Figure 7 and the "strawman" policies of §7),
//! * the [`catalog`] of all 46 policy types observed in the wild, with the
//!   descriptions of the paper's Table 3,
//! * per-instance moderation configuration ([`config`]) in the shape the
//!   paper's crawler retrieved from the instance metadata API,
//! * the paper's reported numbers as constants ([`paper`]), shared by the
//!   calibration machinery and the experiment harness.
//!
//! The crate is deliberately free of networking and randomness: it is the
//! deterministic heart that `fediscope-server` runs online and
//! `fediscope-analysis` reasons about offline.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod catalog;
pub mod config;
pub mod id;
pub mod model;
pub mod mrf;
pub mod paper;
pub mod rollout;
pub mod time;

pub use catalog::{PolicyCatalog, PolicyEntry, PolicyKind};
pub use config::{InstanceModerationConfig, PolicyConfig};
pub use id::{ActivityId, Domain, InstanceId, PostId, UserId, UserRef};
pub use model::{
    Activity, ActivityKind, ActivityPayload, InstanceKind, InstanceProfile, MediaAttachment, Post,
    SoftwareVersion, User, Visibility,
};
pub use mrf::{
    EffectSink, FilterOutcome, MrfPipeline, MrfPolicy, PolicyContext, PolicyVerdict, RejectReason,
    SideEffect,
};
pub use rollout::{PolicyRollout, RolloutWave};
pub use time::{SimDuration, SimTime};
