//! Ordered policy composition with short-circuit semantics.
//!
//! # Incremental recompilation (the delta API)
//!
//! A pipeline is normally compiled from an
//! [`InstanceModerationConfig`](crate::config::InstanceModerationConfig)
//! by `build_pipeline()` — the *reference path*, O(policies + targets).
//! Dynamic workloads (rollout waves, cascade blocks, blocklist imports)
//! mutate one instance's configuration thousands of times per run, so the
//! pipeline also supports O(delta) in-place updates:
//!
//! * [`MrfPipeline::push`] appends a newly-enabled policy (matching how
//!   `enable` appends to `InstanceModerationConfig::enabled`, so append
//!   order stays equal to build order);
//! * [`MrfPipeline::apply_simple_delta`] /
//!   [`MrfPipeline::add_simple_target`] merge targets into the compiled
//!   `SimplePolicy` stage in place;
//! * [`MrfPipeline::replace_stage`] swaps one stage wholesale (the
//!   knob-reconfiguration escape hatch).
//!
//! Invariants the delta API maintains — and that the differential
//! proptests in [`super::proptests`] pin against the reference path:
//!
//! 1. **Verdict equivalence.** After any sequence of deltas, `filter`
//!    and `filter_fast` return the same verdicts (surviving activity
//!    included) as a pipeline freshly compiled from the equivalently
//!    mutated configuration.
//! 2. **Skip-mask consistency.** The precomputed anti-hellthread skip
//!    set is recomputed on every chain-shape change (`push`,
//!    `replace_stage`) and left untouched by target merges, which cannot
//!    change any stage's [`PolicyKind`].
//! 3. **Additive only.** Deltas merge; they never remove targets or
//!    stages. Removal (e.g. a reset to the fresh-install default) goes
//!    through the reference path.
//! 4. **Copy-on-write under sharing.** Target merges mutate through
//!    `Arc::get_mut` when the stage is uniquely owned — the O(delta) hot
//!    path — and fall back to cloning the one `SimplePolicy` stage when
//!    the `Arc` is shared, never touching the other stages.

use super::context::PolicyContext;
use super::policies::{SimpleAction, SimplePolicy};
use super::verdict::{PolicyVerdict, RejectReason};
use super::{MrfPolicy, RefVerdict};
use crate::catalog::PolicyKind;
use crate::id::Domain;
use crate::model::Activity;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// What one policy in the chain decided.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PolicyDecision {
    /// The activity flowed through.
    Passed,
    /// The chain stopped here.
    Rejected(RejectReason),
}

/// Trace entry: one policy's decision for one activity.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PolicyTrace {
    /// The policy that ran.
    pub policy: PolicyKind,
    /// Its decision.
    pub decision: PolicyDecision,
}

/// Result of running an activity through a whole pipeline.
#[derive(Debug)]
pub struct FilterOutcome {
    /// The surviving (possibly rewritten) activity, or the rejection.
    pub verdict: PolicyVerdict,
    /// Per-policy decisions, in execution order. Policies after a rejection
    /// do not appear (they never ran — Pleroma short-circuits identically).
    pub trace: Vec<PolicyTrace>,
}

impl FilterOutcome {
    /// True if the activity survived every policy.
    pub fn accepted(&self) -> bool {
        self.verdict.is_pass()
    }

    /// The rejection reason, if any.
    pub fn rejection(&self) -> Option<&RejectReason> {
        match &self.verdict {
            PolicyVerdict::Reject(r) => Some(r),
            PolicyVerdict::Pass(_) => None,
        }
    }
}

/// An ordered chain of MRF policies, mirroring Pleroma's
/// `config :pleroma, :mrf, policies: [...]`.
///
/// The anti-hellthread interaction (an `AntiHellthreadPolicy` anywhere in
/// the chain disables every `HellthreadPolicy`) is precomputed into a
/// per-policy skip mask at construction, so the per-activity filter loop
/// never re-scans the chain.
#[derive(Clone, Default)]
pub struct MrfPipeline {
    policies: Vec<Arc<dyn MrfPolicy>>,
    /// `skip[i]` ⇒ `policies[i]` never runs (disabled by another policy).
    skip: Vec<bool>,
}

impl MrfPipeline {
    /// An empty pipeline (passes everything).
    pub fn new() -> Self {
        MrfPipeline::default()
    }

    /// Appends a policy to the end of the chain.
    pub fn push(&mut self, policy: Arc<dyn MrfPolicy>) {
        self.policies.push(policy);
        self.skip.push(false);
        self.recompute_skips();
    }

    /// Rebuilds the skip mask. O(n) in chain length, run only on
    /// construction/mutation — never per activity.
    fn recompute_skips(&mut self) {
        let hellthread_disabled = self
            .policies
            .iter()
            .any(|p| p.kind() == PolicyKind::AntiHellthread);
        for (i, policy) in self.policies.iter().enumerate() {
            self.skip[i] = hellthread_disabled && policy.kind() == PolicyKind::Hellthread;
        }
    }

    /// Builder-style [`push`](Self::push).
    pub fn with(mut self, policy: Arc<dyn MrfPolicy>) -> Self {
        self.push(policy);
        self
    }

    /// The policies in the chain, in order.
    pub fn policies(&self) -> &[Arc<dyn MrfPolicy>] {
        &self.policies
    }

    /// The catalog kinds enabled in this pipeline, in order.
    pub fn kinds(&self) -> Vec<PolicyKind> {
        self.policies.iter().map(|p| p.kind()).collect()
    }

    /// Whether a policy of the given kind is in the chain.
    pub fn has(&self, kind: PolicyKind) -> bool {
        self.policies.iter().any(|p| p.kind() == kind)
    }

    /// Index of the first policy of the given kind.
    pub fn position(&self, kind: PolicyKind) -> Option<usize> {
        self.policies.iter().position(|p| p.kind() == kind)
    }

    /// Replaces the stage at `index` wholesale, recomputing the skip
    /// mask (the new stage may change the chain's kind set). Panics if
    /// `index` is out of bounds, like slice indexing.
    pub fn replace_stage(&mut self, index: usize, policy: Arc<dyn MrfPolicy>) {
        self.policies[index] = policy;
        self.recompute_skips();
    }

    /// Merges `delta`'s `(action, domain)` targets into the compiled
    /// `SimplePolicy` stage in place — O(delta), no recompilation.
    ///
    /// Returns `false` (leaving the pipeline untouched) when there is no
    /// `SimplePolicy` stage to absorb the delta; the caller then falls
    /// back to the reference path. The skip mask is untouched: a target
    /// merge cannot change any stage's kind.
    pub fn apply_simple_delta(&mut self, delta: &SimplePolicy) -> bool {
        self.with_simple_stage(|simple| simple.merge(delta))
    }

    /// Adds a single `(action, domain)` target to the compiled
    /// `SimplePolicy` stage in place — the one-block delta a
    /// defederation event applies. Same contract as
    /// [`apply_simple_delta`](Self::apply_simple_delta).
    pub fn add_simple_target(&mut self, action: SimpleAction, domain: Domain) -> bool {
        self.with_simple_stage(|simple| simple.add_target(action, domain))
    }

    /// Runs `mutate` on the `SimplePolicy` stage: through `Arc::get_mut`
    /// when uniquely owned, else copy-on-write of that one stage.
    fn with_simple_stage(&mut self, mutate: impl FnOnce(&mut SimplePolicy)) -> bool {
        let Some(idx) = self.position(PolicyKind::Simple) else {
            return false;
        };
        let slot = &mut self.policies[idx];
        if let Some(stage) = Arc::get_mut(slot) {
            let Some(simple) = stage.as_simple_mut() else {
                return false;
            };
            mutate(simple);
            return true;
        }
        // The Arc is shared (the pipeline was cloned): copy-on-write.
        let Some(current) = slot.as_simple() else {
            return false;
        };
        let mut copy = current.clone();
        mutate(&mut copy);
        *slot = Arc::new(copy);
        true
    }

    /// Number of policies in the chain.
    pub fn len(&self) -> usize {
        self.policies.len()
    }

    /// True if the chain is empty.
    pub fn is_empty(&self) -> bool {
        self.policies.is_empty()
    }

    /// Runs `activity` through the chain.
    ///
    /// Each policy sees the output of the previous one; the first rejection
    /// stops the chain (`AntiHellthreadPolicy` is the one exception — its
    /// presence disables any `HellthreadPolicy` later in the chain, which
    /// the pipeline implements by skipping those policies).
    pub fn filter(&self, ctx: &PolicyContext<'_>, activity: Activity) -> FilterOutcome {
        let mut current = activity;
        let mut trace = Vec::with_capacity(self.policies.len());
        for (policy, &skip) in self.policies.iter().zip(&self.skip) {
            if skip {
                continue;
            }
            match policy.filter(ctx, current) {
                PolicyVerdict::Pass(a) => {
                    trace.push(PolicyTrace {
                        policy: policy.kind(),
                        decision: PolicyDecision::Passed,
                    });
                    current = a;
                }
                PolicyVerdict::Reject(reason) => {
                    trace.push(PolicyTrace {
                        policy: policy.kind(),
                        decision: PolicyDecision::Rejected(reason.clone()),
                    });
                    return FilterOutcome {
                        verdict: PolicyVerdict::Reject(reason),
                        trace,
                    };
                }
            }
        }
        FilterOutcome {
            verdict: PolicyVerdict::Pass(current),
            trace,
        }
    }

    /// Runs `activity` through the chain without recording a trace.
    ///
    /// Identical decision semantics to [`filter`](Self::filter) — same
    /// skip mask, same short-circuit on first rejection — but allocation
    /// free, for bulk simulation where only the verdict matters (e.g.
    /// materialising millions of posts). The traced path stays available
    /// for explainability. The `filter_fast_agrees_with_filter` proptest
    /// in [`super::proptests`] pins the equivalence across the catalog.
    pub fn filter_fast(&self, ctx: &PolicyContext<'_>, activity: Activity) -> PolicyVerdict {
        let mut current = activity;
        for (policy, &skip) in self.policies.iter().zip(&self.skip) {
            if skip {
                continue;
            }
            match policy.filter(ctx, current) {
                PolicyVerdict::Pass(a) => current = a,
                reject @ PolicyVerdict::Reject(_) => return reject,
            }
        }
        PolicyVerdict::Pass(current)
    }

    /// Judges a *borrowed* activity through the chain, clone free.
    ///
    /// Decision semantics are identical to [`filter_fast`](Self::filter_fast)
    /// run on a clone stamped with `published` (activity `published` and
    /// post `created` overridden) — same skip mask, same short-circuit on
    /// first rejection — as long as every stage judges by borrow. The
    /// first stage that would rewrite this particular activity returns
    /// [`RefVerdict::NeedsClone`], which aborts the walk: the caller must
    /// re-run the owning path so downstream stages see the rewrite. The
    /// `filter_fast_ref_agrees_with_filter_fast` proptest in
    /// [`super::proptests`] pins the equivalence across the catalog.
    pub fn filter_fast_ref(
        &self,
        ctx: &PolicyContext<'_>,
        activity: &Activity,
        published: SimTime,
    ) -> RefVerdict {
        for (policy, &skip) in self.policies.iter().zip(&self.skip) {
            if skip {
                continue;
            }
            match policy.judge_ref(ctx, activity, published) {
                RefVerdict::Pass => {}
                decided => return decided,
            }
        }
        RefVerdict::Pass
    }
}

impl std::fmt::Debug for MrfPipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.kinds()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::{ActivityId, Domain, PostId, UserId, UserRef};
    use crate::model::Post;
    use crate::mrf::context::NullActorDirectory;
    use crate::time::SimTime;

    /// A policy that always passes, optionally tagging the content.
    struct Tagger(&'static str);
    impl MrfPolicy for Tagger {
        fn kind(&self) -> PolicyKind {
            PolicyKind::NoOp
        }
        fn filter(&self, _ctx: &PolicyContext<'_>, mut a: Activity) -> PolicyVerdict {
            if let Some(p) = a.note_mut() {
                p.content = format!("{}{}", p.content, self.0).into();
            }
            PolicyVerdict::Pass(a)
        }
    }

    /// A policy that always rejects.
    struct Rejector;
    impl MrfPolicy for Rejector {
        fn kind(&self) -> PolicyKind {
            PolicyKind::Drop
        }
        fn filter(&self, _ctx: &PolicyContext<'_>, _a: Activity) -> PolicyVerdict {
            PolicyVerdict::Reject(RejectReason::new(PolicyKind::Drop, "drop", "everything"))
        }
    }

    fn act() -> Activity {
        Activity::create(
            ActivityId(1),
            Post::stub(
                PostId(1),
                UserRef::new(UserId(1), Domain::new("origin.example")),
                SimTime(0),
                "",
            ),
        )
    }

    fn ctx_parts() -> (Domain, NullActorDirectory) {
        (Domain::new("local.example"), NullActorDirectory)
    }

    #[test]
    fn empty_pipeline_passes() {
        let (d, dir) = ctx_parts();
        let ctx = PolicyContext::new(&d, SimTime(0), &dir);
        let out = MrfPipeline::new().filter(&ctx, act());
        assert!(out.accepted());
        assert!(out.trace.is_empty());
    }

    #[test]
    fn policies_run_in_order_and_compose_rewrites() {
        let (d, dir) = ctx_parts();
        let ctx = PolicyContext::new(&d, SimTime(0), &dir);
        let pipe = MrfPipeline::new()
            .with(Arc::new(Tagger("a")))
            .with(Arc::new(Tagger("b")));
        let out = pipe.filter(&ctx, act());
        let post = out.verdict.expect_pass();
        assert_eq!(&*post.note().unwrap().content, "ab");
    }

    #[test]
    fn rejection_short_circuits() {
        let (d, dir) = ctx_parts();
        let ctx = PolicyContext::new(&d, SimTime(0), &dir);
        let pipe = MrfPipeline::new()
            .with(Arc::new(Tagger("a")))
            .with(Arc::new(Rejector))
            .with(Arc::new(Tagger("never")));
        let out = pipe.filter(&ctx, act());
        assert!(!out.accepted());
        // trace: Tagger passed, Rejector rejected, third never ran.
        assert_eq!(out.trace.len(), 2);
        assert_eq!(out.rejection().unwrap().policy, PolicyKind::Drop);
    }

    #[test]
    fn filter_fast_matches_filter() {
        let (d, dir) = ctx_parts();
        let pipe = MrfPipeline::new()
            .with(Arc::new(Tagger("a")))
            .with(Arc::new(Tagger("b")));
        let ctx = PolicyContext::new(&d, SimTime(0), &dir);
        let slow = pipe.filter(&ctx, act());
        let ctx = PolicyContext::new(&d, SimTime(0), &dir);
        let fast = pipe.filter_fast(&ctx, act());
        assert_eq!(
            slow.verdict.expect_pass().note().unwrap().content,
            fast.expect_pass().note().unwrap().content
        );

        let rejecting = MrfPipeline::new().with(Arc::new(Rejector));
        let ctx = PolicyContext::new(&d, SimTime(0), &dir);
        assert!(!rejecting.filter_fast(&ctx, act()).is_pass());
    }

    #[test]
    fn anti_hellthread_skip_is_precomputed() {
        use crate::mrf::policies::{AntiHellthreadPolicy, HellthreadPolicy};
        // Hellthread first, AntiHellthread later: the mask must still
        // disable the earlier policy (any position disables, as before).
        let pipe = MrfPipeline::new()
            .with(Arc::new(HellthreadPolicy::default()))
            .with(Arc::new(AntiHellthreadPolicy));
        assert_eq!(pipe.skip, vec![true, false]);
        let (d, dir) = ctx_parts();
        // A hellthread-sized mention list passes because Hellthread is
        // disabled.
        let mut hell = act();
        if let Some(p) = hell.note_mut() {
            for i in 0..50 {
                p.mentions
                    .push(UserRef::new(UserId(i), Domain::new("m.example")));
            }
        }
        let ctx = PolicyContext::new(&d, SimTime(0), &dir);
        let out = pipe.filter(&ctx, hell.clone());
        assert!(out.accepted());
        // Without AntiHellthread the same activity is rejected.
        let alone = MrfPipeline::new().with(Arc::new(HellthreadPolicy::default()));
        assert_eq!(alone.skip, vec![false]);
        let ctx = PolicyContext::new(&d, SimTime(0), &dir);
        assert!(!alone.filter(&ctx, hell).accepted());
    }

    #[test]
    fn kinds_and_has() {
        let pipe = MrfPipeline::new().with(Arc::new(Rejector));
        assert!(pipe.has(PolicyKind::Drop));
        assert!(!pipe.has(PolicyKind::Simple));
        assert_eq!(pipe.kinds(), vec![PolicyKind::Drop]);
        assert_eq!(pipe.len(), 1);
        assert!(!pipe.is_empty());
        assert_eq!(pipe.position(PolicyKind::Drop), Some(0));
        assert_eq!(pipe.position(PolicyKind::Simple), None);
    }

    fn blocked(pipe: &MrfPipeline, origin: &str) -> bool {
        let (d, dir) = ctx_parts();
        let ctx = PolicyContext::new(&d, SimTime(0), &dir);
        let act = Activity::create(
            ActivityId(9),
            Post::stub(
                PostId(9),
                UserRef::new(UserId(9), Domain::new(origin)),
                SimTime(0),
                "x",
            ),
        );
        !pipe.filter_fast(&ctx, act).is_pass()
    }

    #[test]
    fn simple_delta_mutates_the_stage_in_place() {
        let mut pipe = MrfPipeline::new().with(Arc::new(SimplePolicy::new()));
        assert!(!blocked(&pipe, "bad.example"));
        assert!(pipe.add_simple_target(SimpleAction::Reject, Domain::new("bad.example")));
        assert!(blocked(&pipe, "bad.example"));
        let delta = SimplePolicy::new()
            .with_target(SimpleAction::Reject, Domain::new("worse.example"))
            .with_target(SimpleAction::Reject, Domain::new("bad.example"));
        assert!(pipe.apply_simple_delta(&delta));
        assert!(blocked(&pipe, "worse.example"));
        // Dedup: merging an existing target again keeps the list stable.
        let simple = pipe.policies()[0].as_simple().unwrap();
        assert_eq!(simple.targets(SimpleAction::Reject).len(), 2);
    }

    #[test]
    fn simple_delta_without_a_simple_stage_is_refused() {
        let mut pipe = MrfPipeline::new().with(Arc::new(Rejector));
        assert!(!pipe.add_simple_target(SimpleAction::Reject, Domain::new("bad.example")));
        assert!(!pipe.apply_simple_delta(&SimplePolicy::new()));
        assert_eq!(pipe.len(), 1, "a refused delta must not grow the chain");
    }

    #[test]
    fn simple_delta_copy_on_write_when_shared() {
        let mut pipe = MrfPipeline::new().with(Arc::new(SimplePolicy::new()));
        // Clone shares the stage Arc: the delta must not leak into the
        // clone (copy-on-write of the one stage).
        let frozen = pipe.clone();
        assert!(pipe.add_simple_target(SimpleAction::Reject, Domain::new("bad.example")));
        assert!(blocked(&pipe, "bad.example"));
        assert!(!blocked(&frozen, "bad.example"));
    }

    #[test]
    fn replace_stage_recomputes_the_skip_mask() {
        use crate::mrf::policies::{AntiHellthreadPolicy, HellthreadPolicy};
        let mut pipe = MrfPipeline::new()
            .with(Arc::new(HellthreadPolicy::default()))
            .with(Arc::new(AntiHellthreadPolicy));
        assert_eq!(pipe.skip, vec![true, false]);
        // Swapping the AntiHellthread stage for a NoOp re-arms Hellthread.
        pipe.replace_stage(1, Arc::new(Tagger("n")));
        assert_eq!(pipe.skip, vec![false, false]);
    }
}
