//! Ordered policy composition with short-circuit semantics.

use super::context::PolicyContext;
use super::verdict::{PolicyVerdict, RejectReason};
use super::MrfPolicy;
use crate::catalog::PolicyKind;
use crate::model::Activity;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// What one policy in the chain decided.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PolicyDecision {
    /// The activity flowed through.
    Passed,
    /// The chain stopped here.
    Rejected(RejectReason),
}

/// Trace entry: one policy's decision for one activity.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PolicyTrace {
    /// The policy that ran.
    pub policy: PolicyKind,
    /// Its decision.
    pub decision: PolicyDecision,
}

/// Result of running an activity through a whole pipeline.
#[derive(Debug)]
pub struct FilterOutcome {
    /// The surviving (possibly rewritten) activity, or the rejection.
    pub verdict: PolicyVerdict,
    /// Per-policy decisions, in execution order. Policies after a rejection
    /// do not appear (they never ran — Pleroma short-circuits identically).
    pub trace: Vec<PolicyTrace>,
}

impl FilterOutcome {
    /// True if the activity survived every policy.
    pub fn accepted(&self) -> bool {
        self.verdict.is_pass()
    }

    /// The rejection reason, if any.
    pub fn rejection(&self) -> Option<&RejectReason> {
        match &self.verdict {
            PolicyVerdict::Reject(r) => Some(r),
            PolicyVerdict::Pass(_) => None,
        }
    }
}

/// An ordered chain of MRF policies, mirroring Pleroma's
/// `config :pleroma, :mrf, policies: [...]`.
///
/// The anti-hellthread interaction (an `AntiHellthreadPolicy` anywhere in
/// the chain disables every `HellthreadPolicy`) is precomputed into a
/// per-policy skip mask at construction, so the per-activity filter loop
/// never re-scans the chain.
#[derive(Clone, Default)]
pub struct MrfPipeline {
    policies: Vec<Arc<dyn MrfPolicy>>,
    /// `skip[i]` ⇒ `policies[i]` never runs (disabled by another policy).
    skip: Vec<bool>,
}

impl MrfPipeline {
    /// An empty pipeline (passes everything).
    pub fn new() -> Self {
        MrfPipeline::default()
    }

    /// Appends a policy to the end of the chain.
    pub fn push(&mut self, policy: Arc<dyn MrfPolicy>) {
        self.policies.push(policy);
        self.skip.push(false);
        self.recompute_skips();
    }

    /// Rebuilds the skip mask. O(n) in chain length, run only on
    /// construction/mutation — never per activity.
    fn recompute_skips(&mut self) {
        let hellthread_disabled = self
            .policies
            .iter()
            .any(|p| p.kind() == PolicyKind::AntiHellthread);
        for (i, policy) in self.policies.iter().enumerate() {
            self.skip[i] = hellthread_disabled && policy.kind() == PolicyKind::Hellthread;
        }
    }

    /// Builder-style [`push`](Self::push).
    pub fn with(mut self, policy: Arc<dyn MrfPolicy>) -> Self {
        self.push(policy);
        self
    }

    /// The policies in the chain, in order.
    pub fn policies(&self) -> &[Arc<dyn MrfPolicy>] {
        &self.policies
    }

    /// The catalog kinds enabled in this pipeline, in order.
    pub fn kinds(&self) -> Vec<PolicyKind> {
        self.policies.iter().map(|p| p.kind()).collect()
    }

    /// Whether a policy of the given kind is in the chain.
    pub fn has(&self, kind: PolicyKind) -> bool {
        self.policies.iter().any(|p| p.kind() == kind)
    }

    /// Number of policies in the chain.
    pub fn len(&self) -> usize {
        self.policies.len()
    }

    /// True if the chain is empty.
    pub fn is_empty(&self) -> bool {
        self.policies.is_empty()
    }

    /// Runs `activity` through the chain.
    ///
    /// Each policy sees the output of the previous one; the first rejection
    /// stops the chain (`AntiHellthreadPolicy` is the one exception — its
    /// presence disables any `HellthreadPolicy` later in the chain, which
    /// the pipeline implements by skipping those policies).
    pub fn filter(&self, ctx: &PolicyContext<'_>, activity: Activity) -> FilterOutcome {
        let mut current = activity;
        let mut trace = Vec::with_capacity(self.policies.len());
        for (policy, &skip) in self.policies.iter().zip(&self.skip) {
            if skip {
                continue;
            }
            match policy.filter(ctx, current) {
                PolicyVerdict::Pass(a) => {
                    trace.push(PolicyTrace {
                        policy: policy.kind(),
                        decision: PolicyDecision::Passed,
                    });
                    current = a;
                }
                PolicyVerdict::Reject(reason) => {
                    trace.push(PolicyTrace {
                        policy: policy.kind(),
                        decision: PolicyDecision::Rejected(reason.clone()),
                    });
                    return FilterOutcome {
                        verdict: PolicyVerdict::Reject(reason),
                        trace,
                    };
                }
            }
        }
        FilterOutcome {
            verdict: PolicyVerdict::Pass(current),
            trace,
        }
    }

    /// Runs `activity` through the chain without recording a trace.
    ///
    /// Identical decision semantics to [`filter`](Self::filter) — same
    /// skip mask, same short-circuit on first rejection — but allocation
    /// free, for bulk simulation where only the verdict matters (e.g.
    /// materialising millions of posts). The traced path stays available
    /// for explainability. The `filter_fast_agrees_with_filter` proptest
    /// in [`super::proptests`] pins the equivalence across the catalog.
    pub fn filter_fast(&self, ctx: &PolicyContext<'_>, activity: Activity) -> PolicyVerdict {
        let mut current = activity;
        for (policy, &skip) in self.policies.iter().zip(&self.skip) {
            if skip {
                continue;
            }
            match policy.filter(ctx, current) {
                PolicyVerdict::Pass(a) => current = a,
                reject @ PolicyVerdict::Reject(_) => return reject,
            }
        }
        PolicyVerdict::Pass(current)
    }
}

impl std::fmt::Debug for MrfPipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.kinds()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::{ActivityId, Domain, PostId, UserId, UserRef};
    use crate::model::Post;
    use crate::mrf::context::NullActorDirectory;
    use crate::time::SimTime;

    /// A policy that always passes, optionally tagging the content.
    struct Tagger(&'static str);
    impl MrfPolicy for Tagger {
        fn kind(&self) -> PolicyKind {
            PolicyKind::NoOp
        }
        fn filter(&self, _ctx: &PolicyContext<'_>, mut a: Activity) -> PolicyVerdict {
            if let Some(p) = a.note_mut() {
                p.content.push_str(self.0);
            }
            PolicyVerdict::Pass(a)
        }
    }

    /// A policy that always rejects.
    struct Rejector;
    impl MrfPolicy for Rejector {
        fn kind(&self) -> PolicyKind {
            PolicyKind::Drop
        }
        fn filter(&self, _ctx: &PolicyContext<'_>, _a: Activity) -> PolicyVerdict {
            PolicyVerdict::Reject(RejectReason::new(PolicyKind::Drop, "drop", "everything"))
        }
    }

    fn act() -> Activity {
        Activity::create(
            ActivityId(1),
            Post::stub(
                PostId(1),
                UserRef::new(UserId(1), Domain::new("origin.example")),
                SimTime(0),
                "",
            ),
        )
    }

    fn ctx_parts() -> (Domain, NullActorDirectory) {
        (Domain::new("local.example"), NullActorDirectory)
    }

    #[test]
    fn empty_pipeline_passes() {
        let (d, dir) = ctx_parts();
        let ctx = PolicyContext::new(&d, SimTime(0), &dir);
        let out = MrfPipeline::new().filter(&ctx, act());
        assert!(out.accepted());
        assert!(out.trace.is_empty());
    }

    #[test]
    fn policies_run_in_order_and_compose_rewrites() {
        let (d, dir) = ctx_parts();
        let ctx = PolicyContext::new(&d, SimTime(0), &dir);
        let pipe = MrfPipeline::new()
            .with(Arc::new(Tagger("a")))
            .with(Arc::new(Tagger("b")));
        let out = pipe.filter(&ctx, act());
        let post = out.verdict.expect_pass();
        assert_eq!(post.note().unwrap().content, "ab");
    }

    #[test]
    fn rejection_short_circuits() {
        let (d, dir) = ctx_parts();
        let ctx = PolicyContext::new(&d, SimTime(0), &dir);
        let pipe = MrfPipeline::new()
            .with(Arc::new(Tagger("a")))
            .with(Arc::new(Rejector))
            .with(Arc::new(Tagger("never")));
        let out = pipe.filter(&ctx, act());
        assert!(!out.accepted());
        // trace: Tagger passed, Rejector rejected, third never ran.
        assert_eq!(out.trace.len(), 2);
        assert_eq!(out.rejection().unwrap().policy, PolicyKind::Drop);
    }

    #[test]
    fn filter_fast_matches_filter() {
        let (d, dir) = ctx_parts();
        let pipe = MrfPipeline::new()
            .with(Arc::new(Tagger("a")))
            .with(Arc::new(Tagger("b")));
        let ctx = PolicyContext::new(&d, SimTime(0), &dir);
        let slow = pipe.filter(&ctx, act());
        let ctx = PolicyContext::new(&d, SimTime(0), &dir);
        let fast = pipe.filter_fast(&ctx, act());
        assert_eq!(
            slow.verdict.expect_pass().note().unwrap().content,
            fast.expect_pass().note().unwrap().content
        );

        let rejecting = MrfPipeline::new().with(Arc::new(Rejector));
        let ctx = PolicyContext::new(&d, SimTime(0), &dir);
        assert!(!rejecting.filter_fast(&ctx, act()).is_pass());
    }

    #[test]
    fn anti_hellthread_skip_is_precomputed() {
        use crate::mrf::policies::{AntiHellthreadPolicy, HellthreadPolicy};
        // Hellthread first, AntiHellthread later: the mask must still
        // disable the earlier policy (any position disables, as before).
        let pipe = MrfPipeline::new()
            .with(Arc::new(HellthreadPolicy::default()))
            .with(Arc::new(AntiHellthreadPolicy));
        assert_eq!(pipe.skip, vec![true, false]);
        let (d, dir) = ctx_parts();
        // A hellthread-sized mention list passes because Hellthread is
        // disabled.
        let mut hell = act();
        if let Some(p) = hell.note_mut() {
            for i in 0..50 {
                p.mentions
                    .push(UserRef::new(UserId(i), Domain::new("m.example")));
            }
        }
        let ctx = PolicyContext::new(&d, SimTime(0), &dir);
        let out = pipe.filter(&ctx, hell.clone());
        assert!(out.accepted());
        // Without AntiHellthread the same activity is rejected.
        let alone = MrfPipeline::new().with(Arc::new(HellthreadPolicy::default()));
        assert_eq!(alone.skip, vec![false]);
        let ctx = PolicyContext::new(&d, SimTime(0), &dir);
        assert!(!alone.filter(&ctx, hell).accepted());
    }

    #[test]
    fn kinds_and_has() {
        let pipe = MrfPipeline::new().with(Arc::new(Rejector));
        assert!(pipe.has(PolicyKind::Drop));
        assert!(!pipe.has(PolicyKind::Simple));
        assert_eq!(pipe.kinds(), vec![PolicyKind::Drop]);
        assert_eq!(pipe.len(), 1);
        assert!(!pipe.is_empty());
    }
}
