//! `TagPolicy` — per-user moderation via admin-applied MRF tags.
//!
//! §4.1: *"The TagPolicy applies policies to individual users based on tags
//! but does not entirely stop the flow of any material between instances.
//! For example, it allows marking posts from individual users as Not Safe
//! For Work (NSFW)."* Enabled on 33% of instances; the paper's §7 singles
//! it out as the building block for less destructive moderation.

use crate::catalog::PolicyKind;
use crate::model::{mrf_tags, Activity, ActivityKind, ActivityPayload, Visibility};
use crate::mrf::context::PolicyContext;
use crate::mrf::verdict::{PolicyVerdict, RejectReason};
use crate::mrf::MrfPolicy;
use serde::{Deserialize, Serialize};

/// Implementation of Pleroma's `TagPolicy`. Stateless: the tags live on the
/// accounts (applied by the local admin) and are read through the
/// [`ActorDirectory`](crate::mrf::ActorDirectory).
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct TagPolicy;

impl TagPolicy {
    fn reject(code: &'static str, detail: String) -> PolicyVerdict {
        PolicyVerdict::Reject(RejectReason::new(PolicyKind::Tag, code, detail))
    }
}

impl MrfPolicy for TagPolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::Tag
    }

    fn filter(&self, ctx: &PolicyContext<'_>, mut activity: Activity) -> PolicyVerdict {
        match activity.kind {
            ActivityKind::Create => {
                let tags = ctx.actors.mrf_tags(&activity.actor);
                if tags.is_empty() {
                    return PolicyVerdict::Pass(activity);
                }
                let Some(post) = activity.note_mut() else {
                    return PolicyVerdict::Pass(activity);
                };
                for tag in &tags {
                    match tag.as_str() {
                        mrf_tags::MEDIA_FORCE_NSFW => post.force_sensitive(),
                        mrf_tags::MEDIA_STRIP => post.strip_media(),
                        mrf_tags::FORCE_UNLISTED if post.visibility == Visibility::Public => {
                            post.visibility = Visibility::Unlisted;
                        }
                        mrf_tags::SANDBOX if post.visibility.is_public_ish() => {
                            post.visibility = Visibility::FollowersOnly;
                        }
                        _ => {}
                    }
                }
                PolicyVerdict::Pass(activity)
            }
            ActivityKind::Follow => {
                // Subscription tags are applied to the *target* account.
                let ActivityPayload::FollowRequest { target } = &activity.payload else {
                    return PolicyVerdict::Pass(activity);
                };
                let tags = ctx.actors.mrf_tags(target);
                if tags.iter().any(|t| t == mrf_tags::DISABLE_ANY_SUBSCRIPTION) {
                    return Self::reject(
                        "subscription_disabled",
                        format!("{target} does not accept follows"),
                    );
                }
                if tags
                    .iter()
                    .any(|t| t == mrf_tags::DISABLE_REMOTE_SUBSCRIPTION)
                    && !ctx.is_local(&activity.actor.domain)
                {
                    return Self::reject(
                        "remote_subscription_disabled",
                        format!("{target} does not accept remote follows"),
                    );
                }
                PolicyVerdict::Pass(activity)
            }
            _ => PolicyVerdict::Pass(activity),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::{ActivityId, Domain, PostId, UserId, UserRef};
    use crate::model::{MediaAttachment, MediaKind, Post};
    use crate::mrf::context::ActorDirectory;
    use crate::time::SimTime;
    use std::collections::HashMap;

    /// Directory with per-user tags for tests.
    #[derive(Default)]
    struct TagDir {
        tags: HashMap<UserId, Vec<String>>,
    }

    impl ActorDirectory for TagDir {
        fn is_bot(&self, _: &UserRef) -> bool {
            false
        }
        fn followers(&self, _: &UserRef) -> Option<u32> {
            None
        }
        fn created(&self, _: &UserRef) -> Option<SimTime> {
            None
        }
        fn mrf_tags(&self, actor: &UserRef) -> Vec<String> {
            self.tags.get(&actor.user).cloned().unwrap_or_default()
        }
        fn report_count(&self, _: &UserRef) -> u32 {
            0
        }
    }

    fn tagged_dir(user: UserId, tag: &str) -> TagDir {
        let mut d = TagDir::default();
        d.tags.insert(user, vec![tag.to_string()]);
        d
    }

    fn post_with_media(user: UserId) -> Activity {
        let author = UserRef::new(user, Domain::new("remote.example"));
        let mut post = Post::stub(PostId(1), author, SimTime(0), "text");
        post.media.push(MediaAttachment {
            host: Domain::new("remote.example"),
            kind: MediaKind::Image,
            sensitive: false,
        });
        Activity::create(ActivityId(1), post)
    }

    fn run(dir: &TagDir, act: Activity) -> PolicyVerdict {
        let local = Domain::new("home.example");
        let ctx = PolicyContext::new(&local, SimTime(100), dir);
        TagPolicy.filter(&ctx, act)
    }

    #[test]
    fn untagged_users_pass_untouched() {
        let dir = TagDir::default();
        let v = run(&dir, post_with_media(UserId(1)));
        let a = v.expect_pass();
        assert!(!a.note().unwrap().sensitive);
        assert!(a.note().unwrap().has_media());
    }

    #[test]
    fn force_nsfw_tag() {
        let dir = tagged_dir(UserId(1), mrf_tags::MEDIA_FORCE_NSFW);
        let v = run(&dir, post_with_media(UserId(1)));
        assert!(v.expect_pass().note().unwrap().sensitive);
    }

    #[test]
    fn media_strip_tag() {
        let dir = tagged_dir(UserId(1), mrf_tags::MEDIA_STRIP);
        let v = run(&dir, post_with_media(UserId(1)));
        assert!(!v.expect_pass().note().unwrap().has_media());
    }

    #[test]
    fn force_unlisted_tag() {
        let dir = tagged_dir(UserId(1), mrf_tags::FORCE_UNLISTED);
        let v = run(&dir, post_with_media(UserId(1)));
        assert_eq!(
            v.expect_pass().note().unwrap().visibility,
            Visibility::Unlisted
        );
    }

    #[test]
    fn sandbox_tag_forces_followers_only() {
        let dir = tagged_dir(UserId(1), mrf_tags::SANDBOX);
        let v = run(&dir, post_with_media(UserId(1)));
        assert_eq!(
            v.expect_pass().note().unwrap().visibility,
            Visibility::FollowersOnly
        );
    }

    #[test]
    fn disable_any_subscription_rejects_follows() {
        let target = UserRef::new(UserId(7), Domain::new("home.example"));
        let dir = tagged_dir(UserId(7), mrf_tags::DISABLE_ANY_SUBSCRIPTION);
        let follow = Activity::follow(
            ActivityId(9),
            UserRef::new(UserId(1), Domain::new("remote.example")),
            target,
            SimTime(0),
        );
        assert_eq!(
            run(&dir, follow).expect_reject().code,
            "subscription_disabled"
        );
    }

    #[test]
    fn disable_remote_subscription_allows_local_follows() {
        let target = UserRef::new(UserId(7), Domain::new("home.example"));
        let dir = tagged_dir(UserId(7), mrf_tags::DISABLE_REMOTE_SUBSCRIPTION);
        // Remote follower: rejected.
        let remote_follow = Activity::follow(
            ActivityId(9),
            UserRef::new(UserId(1), Domain::new("remote.example")),
            target.clone(),
            SimTime(0),
        );
        assert!(!run(&dir, remote_follow).is_pass());
        // Local follower: fine.
        let local_follow = Activity::follow(
            ActivityId(10),
            UserRef::new(UserId(2), Domain::new("home.example")),
            target,
            SimTime(0),
        );
        assert!(run(&dir, local_follow).is_pass());
    }
}
