//! The structurally simple policies: `NoOpPolicy`, `DropPolicy`,
//! `BlockPolicy` and `UserAllowListPolicy`.

use crate::catalog::PolicyKind;
use crate::id::{Domain, UserId};
use crate::model::Activity;
use crate::mrf::context::PolicyContext;
use crate::mrf::verdict::{PolicyVerdict, RejectReason};
use crate::mrf::{MrfPolicy, RefVerdict};
use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// `NoOpPolicy` — "Doesn't modify activities (default)". Enabled on 13.6%
/// of instances per Table 3; ships enabled on fresh installs.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct NoOpPolicy;

impl MrfPolicy for NoOpPolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::NoOp
    }

    fn filter(&self, _ctx: &PolicyContext<'_>, activity: Activity) -> PolicyVerdict {
        PolicyVerdict::Pass(activity)
    }

    fn rewrites_content(&self) -> bool {
        false
    }

    fn judge_ref(&self, _: &PolicyContext<'_>, _: &Activity, _: SimTime) -> RefVerdict {
        RefVerdict::Pass
    }
}

/// `DropPolicy` — "Drops all activities". Table 3 records exactly one
/// instance (with 1,098 users) running it.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct DropPolicy;

impl MrfPolicy for DropPolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::Drop
    }

    fn filter(&self, _ctx: &PolicyContext<'_>, _activity: Activity) -> PolicyVerdict {
        PolicyVerdict::Reject(RejectReason::new(
            PolicyKind::Drop,
            "drop_all",
            "DropPolicy drops every activity",
        ))
    }

    fn rewrites_content(&self) -> bool {
        false
    }

    fn judge_ref(&self, _: &PolicyContext<'_>, _: &Activity, _: SimTime) -> RefVerdict {
        RefVerdict::Reject(PolicyKind::Drop)
    }
}

/// `BlockPolicy` — instance-wide blocks maintained outside `SimplePolicy`.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct BlockPolicy {
    /// Domains to block entirely.
    pub blocked: Vec<Domain>,
}

impl BlockPolicy {
    /// Builds a block policy over the given domains.
    pub fn new(blocked: Vec<Domain>) -> Self {
        BlockPolicy { blocked }
    }
}

impl MrfPolicy for BlockPolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::Block
    }

    fn filter(&self, _ctx: &PolicyContext<'_>, activity: Activity) -> PolicyVerdict {
        let origin = activity.origin();
        if self.blocked.iter().any(|b| origin.matches(b)) {
            return PolicyVerdict::Reject(RejectReason::new(
                PolicyKind::Block,
                "blocked",
                format!("{origin} is blocked"),
            ));
        }
        PolicyVerdict::Pass(activity)
    }

    fn rewrites_content(&self) -> bool {
        false
    }

    fn judge_ref(&self, _: &PolicyContext<'_>, activity: &Activity, _: SimTime) -> RefVerdict {
        let origin = activity.origin();
        if self.blocked.iter().any(|b| origin.matches(b)) {
            RefVerdict::Reject(PolicyKind::Block)
        } else {
            RefVerdict::Pass
        }
    }
}

/// `UserAllowListPolicy` — for domains with an entry, only the listed users
/// may federate in; everyone else from that domain is rejected.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct UserAllowListPolicy {
    allowed: BTreeMap<Domain, Vec<UserId>>,
}

impl UserAllowListPolicy {
    /// Empty policy (no restrictions).
    pub fn new() -> Self {
        Self::default()
    }

    /// Restricts `domain` to the given users.
    pub fn allow(&mut self, domain: Domain, users: Vec<UserId>) {
        self.allowed.insert(domain, users);
    }

    /// Builder-style [`allow`](Self::allow).
    pub fn with(mut self, domain: Domain, users: Vec<UserId>) -> Self {
        self.allow(domain, users);
        self
    }
}

impl MrfPolicy for UserAllowListPolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::UserAllowList
    }

    fn filter(&self, _ctx: &PolicyContext<'_>, activity: Activity) -> PolicyVerdict {
        if let Some(users) = self.allowed.get(activity.origin()) {
            if !users.contains(&activity.actor.user) {
                return PolicyVerdict::Reject(RejectReason::new(
                    PolicyKind::UserAllowList,
                    "user_not_allowed",
                    format!("{} not on the allow list", activity.actor),
                ));
            }
        }
        PolicyVerdict::Pass(activity)
    }

    fn rewrites_content(&self) -> bool {
        false
    }

    fn judge_ref(&self, _: &PolicyContext<'_>, activity: &Activity, _: SimTime) -> RefVerdict {
        match self.allowed.get(activity.origin()) {
            Some(users) if !users.contains(&activity.actor.user) => {
                RefVerdict::Reject(PolicyKind::UserAllowList)
            }
            _ => RefVerdict::Pass,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::{ActivityId, PostId, UserRef};
    use crate::model::Post;
    use crate::mrf::context::NullActorDirectory;
    use crate::time::SimTime;

    fn act_from(domain: &str, user: u64) -> Activity {
        let author = UserRef::new(UserId(user), Domain::new(domain));
        Activity::create(
            ActivityId(1),
            Post::stub(PostId(1), author, SimTime(0), "x"),
        )
    }

    fn run(p: &dyn MrfPolicy, act: Activity) -> PolicyVerdict {
        let local = Domain::new("home.example");
        let dir = NullActorDirectory;
        let ctx = PolicyContext::new(&local, SimTime(0), &dir);
        p.filter(&ctx, act)
    }

    #[test]
    fn noop_passes_everything() {
        assert!(run(&NoOpPolicy, act_from("anywhere.example", 1)).is_pass());
    }

    #[test]
    fn drop_rejects_everything() {
        let v = run(&DropPolicy, act_from("anywhere.example", 1));
        assert_eq!(v.expect_reject().code, "drop_all");
    }

    #[test]
    fn block_policy_blocks_listed_domains_only() {
        let p = BlockPolicy::new(vec![Domain::new("bad.example")]);
        assert!(!run(&p, act_from("bad.example", 1)).is_pass());
        assert!(!run(&p, act_from("sub.bad.example", 1)).is_pass());
        assert!(run(&p, act_from("good.example", 1)).is_pass());
    }

    #[test]
    fn user_allow_list_restricts_listed_domains() {
        let p = UserAllowListPolicy::new().with(Domain::new("partial.example"), vec![UserId(7)]);
        assert!(run(&p, act_from("partial.example", 7)).is_pass());
        assert_eq!(
            run(&p, act_from("partial.example", 8)).expect_reject().code,
            "user_not_allowed"
        );
        // Domains without an entry are unrestricted.
        assert!(run(&p, act_from("other.example", 123)).is_pass());
    }
}
