//! Bot-related policies: `AntiFollowbotPolicy`, `ForceBotUnlistedPolicy`,
//! `AntiLinkSpamPolicy` and `FollowBotPolicy`.

use crate::catalog::PolicyKind;
use crate::id::UserRef;
use crate::model::{Activity, ActivityKind, Visibility};
use crate::mrf::context::{PolicyContext, SideEffect};
use crate::mrf::verdict::{PolicyVerdict, RejectReason};
use crate::mrf::{MrfPolicy, RefVerdict};
use crate::time::SimTime;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// `AntiFollowbotPolicy` — "Stop the automatic following of newly
/// discovered users" (Table 3; 51 instances). Rejects `Follow` requests
/// from actors flagged as bots (or with followbot-style handles).
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct AntiFollowbotPolicy;

impl MrfPolicy for AntiFollowbotPolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::AntiFollowbot
    }

    fn filter(&self, ctx: &PolicyContext<'_>, activity: Activity) -> PolicyVerdict {
        if activity.kind == ActivityKind::Follow && ctx.actors.is_bot(&activity.actor) {
            return PolicyVerdict::Reject(RejectReason::new(
                PolicyKind::AntiFollowbot,
                "followbot",
                format!("{} is a follow bot", activity.actor),
            ));
        }
        PolicyVerdict::Pass(activity)
    }

    fn rewrites_content(&self) -> bool {
        false
    }

    fn judge_ref(&self, ctx: &PolicyContext<'_>, activity: &Activity, _: SimTime) -> RefVerdict {
        if activity.kind == ActivityKind::Follow && ctx.actors.is_bot(&activity.actor) {
            RefVerdict::Reject(PolicyKind::AntiFollowbot)
        } else {
            RefVerdict::Pass
        }
    }
}

/// `ForceBotUnlistedPolicy` — "Makes all bot posts disappear from public
/// timelines" (Table 3; 23 instances).
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct ForceBotUnlistedPolicy;

impl MrfPolicy for ForceBotUnlistedPolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::ForceBotUnlisted
    }

    fn filter(&self, ctx: &PolicyContext<'_>, mut activity: Activity) -> PolicyVerdict {
        if ctx.actors.is_bot(&activity.actor) {
            if let Some(post) = activity.note_mut() {
                if post.visibility == Visibility::Public {
                    post.visibility = Visibility::Unlisted;
                }
            }
        }
        PolicyVerdict::Pass(activity)
    }

    fn judge_ref(&self, ctx: &PolicyContext<'_>, activity: &Activity, _: SimTime) -> RefVerdict {
        if ctx.actors.is_bot(&activity.actor)
            && activity
                .note()
                .is_some_and(|post| post.visibility == Visibility::Public)
        {
            RefVerdict::NeedsClone
        } else {
            RefVerdict::Pass
        }
    }
}

/// `AntiLinkSpamPolicy` — "Rejects posts from likely spambots by rejecting
/// posts from new users that contain links" (Table 3; 32 instances).
///
/// "New" follows Pleroma's heuristic: an account with zero followers is
/// treated as new; accounts whose follower count is unknown get the benefit
/// of the doubt.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct AntiLinkSpamPolicy;

impl MrfPolicy for AntiLinkSpamPolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::AntiLinkSpam
    }

    fn filter(&self, ctx: &PolicyContext<'_>, activity: Activity) -> PolicyVerdict {
        if let Some(post) = activity.note() {
            if post.has_links && ctx.actors.followers(&activity.actor) == Some(0) {
                return PolicyVerdict::Reject(RejectReason::new(
                    PolicyKind::AntiLinkSpam,
                    "link_spam",
                    format!("new user {} posted links", activity.actor),
                ));
            }
        }
        PolicyVerdict::Pass(activity)
    }

    fn rewrites_content(&self) -> bool {
        false
    }

    fn judge_ref(&self, ctx: &PolicyContext<'_>, activity: &Activity, _: SimTime) -> RefVerdict {
        if let Some(post) = activity.note() {
            if post.has_links && ctx.actors.followers(&activity.actor) == Some(0) {
                return RefVerdict::Reject(PolicyKind::AntiLinkSpam);
            }
        }
        RefVerdict::Pass
    }
}

/// `FollowBotPolicy` — "Automatically follows newly discovered users from
/// the specified bot account" (Table 3; 2 instances).
///
/// Stateful: remembers which actors it has already seen so each discovered
/// account is followed exactly once.
#[derive(Debug)]
pub struct FollowBotPolicy {
    /// The local bot account that performs the follows.
    pub bot: UserRef,
    seen: Mutex<HashSet<UserRef>>,
}

impl FollowBotPolicy {
    /// Builds the policy around the given local bot account.
    pub fn new(bot: UserRef) -> Self {
        FollowBotPolicy {
            bot,
            seen: Mutex::new(HashSet::new()),
        }
    }

    /// Number of distinct actors discovered so far.
    pub fn discovered(&self) -> usize {
        self.seen.lock().len()
    }
}

impl MrfPolicy for FollowBotPolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::FollowBot
    }

    fn filter(&self, ctx: &PolicyContext<'_>, activity: Activity) -> PolicyVerdict {
        if activity.kind == ActivityKind::Create && !ctx.is_local(&activity.actor.domain) {
            let mut seen = self.seen.lock();
            if seen.insert(activity.actor.clone()) {
                ctx.emit(SideEffect::AutoFollowed {
                    target: activity.actor.clone(),
                });
            }
        }
        PolicyVerdict::Pass(activity)
    }

    fn rewrites_content(&self) -> bool {
        false
    }

    fn judge_ref(&self, ctx: &PolicyContext<'_>, activity: &Activity, _: SimTime) -> RefVerdict {
        if activity.kind == ActivityKind::Create && !ctx.is_local(&activity.actor.domain) {
            let mut seen = self.seen.lock();
            if seen.insert(activity.actor.clone()) {
                ctx.emit(SideEffect::AutoFollowed {
                    target: activity.actor.clone(),
                });
            }
        }
        RefVerdict::Pass
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::{ActivityId, Domain, PostId, UserId};
    use crate::model::Post;
    use crate::mrf::context::ActorDirectory;
    use crate::time::SimTime;

    /// Directory where user 1 is a bot and user 2 has zero followers.
    struct BotDir;
    impl ActorDirectory for BotDir {
        fn is_bot(&self, actor: &UserRef) -> bool {
            actor.user == UserId(1)
        }
        fn followers(&self, actor: &UserRef) -> Option<u32> {
            match actor.user {
                UserId(2) => Some(0),
                UserId(3) => Some(25),
                _ => None,
            }
        }
        fn created(&self, _: &UserRef) -> Option<SimTime> {
            None
        }
        fn mrf_tags(&self, _: &UserRef) -> Vec<String> {
            Vec::new()
        }
        fn report_count(&self, _: &UserRef) -> u32 {
            0
        }
    }

    fn run_with_effects(p: &dyn MrfPolicy, act: Activity) -> (PolicyVerdict, Vec<SideEffect>) {
        let local = Domain::new("home.example");
        let dir = BotDir;
        let ctx = PolicyContext::new(&local, SimTime(0), &dir);
        let v = p.filter(&ctx, act);
        (v, ctx.take_effects())
    }

    fn follow_from(user: u64) -> Activity {
        Activity::follow(
            ActivityId(1),
            UserRef::new(UserId(user), Domain::new("remote.example")),
            UserRef::new(UserId(50), Domain::new("home.example")),
            SimTime(0),
        )
    }

    fn create_from(user: u64, links: bool) -> Activity {
        let author = UserRef::new(UserId(user), Domain::new("remote.example"));
        let mut post = Post::stub(PostId(1), author, SimTime(0), "check this out");
        post.has_links = links;
        Activity::create(ActivityId(1), post)
    }

    #[test]
    fn anti_followbot_rejects_bot_follows() {
        let (v, _) = run_with_effects(&AntiFollowbotPolicy, follow_from(1));
        assert_eq!(v.expect_reject().code, "followbot");
        let (v, _) = run_with_effects(&AntiFollowbotPolicy, follow_from(3));
        assert!(v.is_pass(), "human follows pass");
    }

    #[test]
    fn anti_followbot_ignores_bot_posts() {
        let (v, _) = run_with_effects(&AntiFollowbotPolicy, create_from(1, false));
        assert!(v.is_pass(), "only Follow activities are screened");
    }

    #[test]
    fn force_bot_unlisted_delists_bot_posts() {
        let (v, _) = run_with_effects(&ForceBotUnlistedPolicy, create_from(1, false));
        assert_eq!(
            v.expect_pass().note().unwrap().visibility,
            Visibility::Unlisted
        );
        let (v, _) = run_with_effects(&ForceBotUnlistedPolicy, create_from(3, false));
        assert_eq!(
            v.expect_pass().note().unwrap().visibility,
            Visibility::Public
        );
    }

    #[test]
    fn anti_link_spam_rejects_new_users_with_links() {
        // User 2: zero followers + links → reject.
        let (v, _) = run_with_effects(&AntiLinkSpamPolicy, create_from(2, true));
        assert_eq!(v.expect_reject().code, "link_spam");
        // Same user, no links → pass.
        let (v, _) = run_with_effects(&AntiLinkSpamPolicy, create_from(2, false));
        assert!(v.is_pass());
        // Established user with links → pass.
        let (v, _) = run_with_effects(&AntiLinkSpamPolicy, create_from(3, true));
        assert!(v.is_pass());
        // Unknown follower count → benefit of the doubt.
        let (v, _) = run_with_effects(&AntiLinkSpamPolicy, create_from(99, true));
        assert!(v.is_pass());
    }

    #[test]
    fn follow_bot_follows_each_new_actor_once() {
        let bot = UserRef::new(UserId(1000), Domain::new("home.example"));
        let p = FollowBotPolicy::new(bot);
        let (_, effects) = run_with_effects(&p, create_from(5, false));
        assert_eq!(effects.len(), 1);
        assert!(
            matches!(&effects[0], SideEffect::AutoFollowed { target } if target.user == UserId(5))
        );
        // Second post from the same actor: no new follow.
        let (_, effects) = run_with_effects(&p, create_from(5, false));
        assert!(effects.is_empty());
        assert_eq!(p.discovered(), 1);
    }

    #[test]
    fn follow_bot_ignores_local_actors() {
        let bot = UserRef::new(UserId(1000), Domain::new("home.example"));
        let p = FollowBotPolicy::new(bot);
        let author = UserRef::new(UserId(6), Domain::new("home.example"));
        let act = Activity::create(
            ActivityId(1),
            Post::stub(PostId(1), author, SimTime(0), "local"),
        );
        let (_, effects) = run_with_effects(&p, act);
        assert!(effects.is_empty());
    }
}
