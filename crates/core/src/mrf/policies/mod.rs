//! Implementations of every MRF policy in the catalog.
//!
//! One module per policy family. Every in-built Pleroma policy named in the
//! paper's Table 3 is implemented with its real configuration knobs; the
//! admin-created custom policies of Figure 7 get faithful lightweight
//! implementations; the §7 strawman proposals are implemented in
//! [`strawman`] as fediscope extensions.

mod basic;
mod bots;
mod content;
mod custom;
mod media;
mod object_age;
mod simple;
pub mod strawman;
mod subchain;
mod tag;
mod threads;

pub use basic::{BlockPolicy, DropPolicy, NoOpPolicy, UserAllowListPolicy};
pub use bots::{AntiFollowbotPolicy, AntiLinkSpamPolicy, FollowBotPolicy, ForceBotUnlistedPolicy};
pub use content::{
    KeywordAction, KeywordPolicy, KeywordRule, NoEmptyPolicy, NoPlaceholderTextPolicy,
    NormalizeMarkupPolicy, RejectNonPublicPolicy, VocabularyPolicy,
};
pub use custom::{
    AmqpPolicy, AntispamSandboxPolicy, AutoRejectPolicy, BlockNotificationPolicy,
    BoardFilterPolicy, BonziEmojiReactionsPolicy, CdnWarmingPolicy, KanayaBlogProcessPolicy,
    LocalOnlyPolicy, NoIncomingDeletesPolicy, NotifyLocalUsersPolicy, RacismRemoverPolicy,
    RejectCloudflarePolicy, RewritePolicy, SandboxPolicy, SogigiMindWarmingPolicy,
};
pub use media::{
    ActivityExpirationPolicy, HashtagPolicy, MediaProxyWarmingPolicy, StealEmojiPolicy,
};
pub use object_age::{ObjectAgeAction, ObjectAgePolicy};
pub use simple::{SimpleAction, SimplePolicy};
pub use strawman::{
    CuratedBlocklist, CuratedListPolicy, EscalationAction, HarmClassifier, RepeatOffenderPolicy,
    UserTagModerationPolicy,
};
pub use subchain::{SubchainMatch, SubchainPolicy};
pub use tag::TagPolicy;
pub use threads::{AntiHellthreadPolicy, EnsureRePrependedPolicy, HellthreadPolicy, MentionPolicy};
