//! Content-shape policies: `KeywordPolicy`, `VocabularyPolicy`,
//! `NormalizeMarkup`, `NoEmptyPolicy`, `NoPlaceholderTextPolicy`,
//! `RejectNonPublic`.

use crate::catalog::PolicyKind;
use crate::model::{Activity, ActivityKind, Visibility};
use crate::mrf::context::PolicyContext;
use crate::mrf::verdict::{PolicyVerdict, RejectReason};
use crate::mrf::{MrfPolicy, RefVerdict};
use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// What a [`KeywordRule`] does when it matches.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum KeywordAction {
    /// Reject the post.
    Reject,
    /// De-list it from the federated timeline (public → unlisted).
    FederatedTimelineRemoval,
    /// Replace every occurrence of the pattern with the given string.
    Replace(String),
}

/// A single pattern → action rule for [`KeywordPolicy`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KeywordRule {
    /// Case-insensitive substring to match in content or subject.
    pub pattern: String,
    /// What to do on a match.
    pub action: KeywordAction,
}

impl KeywordRule {
    /// Builds a rule.
    pub fn new(pattern: impl Into<String>, action: KeywordAction) -> Self {
        KeywordRule {
            pattern: pattern.into(),
            action,
        }
    }

    fn matches(&self, text: &str) -> bool {
        text.to_ascii_lowercase()
            .contains(&self.pattern.to_ascii_lowercase())
    }
}

/// `KeywordPolicy` — "A list of patterns which result in message being
/// reject/unlisted/replaced" (Table 3; 42 instances, 22,428 users).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct KeywordPolicy {
    /// Rules applied in order; the first `Reject` match stops processing.
    pub rules: Vec<KeywordRule>,
}

impl KeywordPolicy {
    /// Builds a policy from rules.
    pub fn new(rules: Vec<KeywordRule>) -> Self {
        KeywordPolicy { rules }
    }
}

impl MrfPolicy for KeywordPolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::Keyword
    }

    fn filter(&self, _ctx: &PolicyContext<'_>, mut activity: Activity) -> PolicyVerdict {
        let Some(post) = activity.note_mut() else {
            return PolicyVerdict::Pass(activity);
        };
        for rule in &self.rules {
            let subject_hit = post
                .subject
                .as_deref()
                .map(|s| rule.matches(s))
                .unwrap_or(false);
            if !rule.matches(&post.content) && !subject_hit {
                continue;
            }
            match &rule.action {
                KeywordAction::Reject => {
                    return PolicyVerdict::Reject(RejectReason::new(
                        PolicyKind::Keyword,
                        "keyword",
                        format!("matched pattern {:?}", rule.pattern),
                    ));
                }
                KeywordAction::FederatedTimelineRemoval => {
                    if post.visibility == Visibility::Public {
                        post.visibility = Visibility::Unlisted;
                    }
                }
                KeywordAction::Replace(with) => {
                    post.content = replace_ci(&post.content, &rule.pattern, with).into();
                    if let Some(s) = &post.subject {
                        post.subject = Some(replace_ci(s, &rule.pattern, with));
                    }
                }
            }
        }
        PolicyVerdict::Pass(activity)
    }

    fn judge_ref(&self, _: &PolicyContext<'_>, activity: &Activity, _: SimTime) -> RefVerdict {
        let Some(post) = activity.note() else {
            return RefVerdict::Pass;
        };
        for rule in &self.rules {
            let subject_hit = post
                .subject
                .as_deref()
                .map(|s| rule.matches(s))
                .unwrap_or(false);
            if !rule.matches(&post.content) && !subject_hit {
                continue;
            }
            match &rule.action {
                KeywordAction::Reject => return RefVerdict::Reject(PolicyKind::Keyword),
                KeywordAction::FederatedTimelineRemoval => {
                    if post.visibility == Visibility::Public {
                        return RefVerdict::NeedsClone;
                    }
                }
                KeywordAction::Replace(_) => return RefVerdict::NeedsClone,
            }
        }
        RefVerdict::Pass
    }
}

/// Case-insensitive substring replacement.
fn replace_ci(haystack: &str, pattern: &str, with: &str) -> String {
    if pattern.is_empty() {
        return haystack.to_string();
    }
    let lower_h = haystack.to_ascii_lowercase();
    let lower_p = pattern.to_ascii_lowercase();
    let mut out = String::with_capacity(haystack.len());
    let mut i = 0;
    while let Some(pos) = lower_h[i..].find(&lower_p) {
        let at = i + pos;
        out.push_str(&haystack[i..at]);
        out.push_str(with);
        i = at + pattern.len();
    }
    out.push_str(&haystack[i..]);
    out
}

/// `VocabularyPolicy` — "Restricts activities to a configured set of
/// vocabulary" (Table 3; 5 instances). `accept` non-empty means only those
/// activity types pass; `reject` always drops its types.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct VocabularyPolicy {
    /// If non-empty, only these activity kinds are accepted.
    pub accept: Vec<ActivityKind>,
    /// These activity kinds are always rejected.
    pub reject: Vec<ActivityKind>,
}

impl MrfPolicy for VocabularyPolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::Vocabulary
    }

    fn filter(&self, _ctx: &PolicyContext<'_>, activity: Activity) -> PolicyVerdict {
        if self.reject.contains(&activity.kind) {
            return PolicyVerdict::Reject(RejectReason::new(
                PolicyKind::Vocabulary,
                "vocabulary_rejected",
                format!("{} is on the reject vocabulary", activity.kind.as_str()),
            ));
        }
        if !self.accept.is_empty() && !self.accept.contains(&activity.kind) {
            return PolicyVerdict::Reject(RejectReason::new(
                PolicyKind::Vocabulary,
                "vocabulary_not_accepted",
                format!("{} is not on the accept vocabulary", activity.kind.as_str()),
            ));
        }
        PolicyVerdict::Pass(activity)
    }

    fn rewrites_content(&self) -> bool {
        false
    }

    fn judge_ref(&self, _: &PolicyContext<'_>, activity: &Activity, _: SimTime) -> RefVerdict {
        if self.reject.contains(&activity.kind)
            || (!self.accept.is_empty() && !self.accept.contains(&activity.kind))
        {
            RefVerdict::Reject(PolicyKind::Vocabulary)
        } else {
            RefVerdict::Pass
        }
    }
}

/// `NormalizeMarkup` — scrubs HTML markup down to plain text (Figure 1).
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct NormalizeMarkupPolicy;

/// Removes `<...>` tag runs from `s`. Unterminated tags are dropped to the
/// end of the string, matching lenient HTML scrubbers.
fn strip_tags(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut in_tag = false;
    for c in s.chars() {
        match (in_tag, c) {
            (false, '<') => in_tag = true,
            (false, ch) => out.push(ch),
            (true, '>') => in_tag = false,
            (true, _) => {}
        }
    }
    out
}

impl MrfPolicy for NormalizeMarkupPolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::NormalizeMarkup
    }

    fn filter(&self, _ctx: &PolicyContext<'_>, mut activity: Activity) -> PolicyVerdict {
        if let Some(post) = activity.note_mut() {
            if post.content.contains('<') {
                post.content = strip_tags(&post.content).into();
            }
        }
        PolicyVerdict::Pass(activity)
    }

    fn judge_ref(&self, _: &PolicyContext<'_>, activity: &Activity, _: SimTime) -> RefVerdict {
        match activity.note() {
            Some(post) if post.content.contains('<') => RefVerdict::NeedsClone,
            _ => RefVerdict::Pass,
        }
    }
}

/// `NoEmptyPolicy` — denies *local* users posting empty notes (no text, no
/// media).
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct NoEmptyPolicy;

impl MrfPolicy for NoEmptyPolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::NoEmpty
    }

    fn filter(&self, ctx: &PolicyContext<'_>, activity: Activity) -> PolicyVerdict {
        if ctx.is_local(activity.origin()) {
            if let Some(post) = activity.note() {
                if post.content.trim().is_empty() && !post.has_media() {
                    return PolicyVerdict::Reject(RejectReason::new(
                        PolicyKind::NoEmpty,
                        "empty_post",
                        "local post with no text and no attachments",
                    ));
                }
            }
        }
        PolicyVerdict::Pass(activity)
    }

    fn rewrites_content(&self) -> bool {
        false
    }

    fn judge_ref(&self, ctx: &PolicyContext<'_>, activity: &Activity, _: SimTime) -> RefVerdict {
        if ctx.is_local(activity.origin()) {
            if let Some(post) = activity.note() {
                if post.content.trim().is_empty() && !post.has_media() {
                    return RefVerdict::Reject(PolicyKind::NoEmpty);
                }
            }
        }
        RefVerdict::Pass
    }
}

/// `NoPlaceholderTextPolicy` — strips placeholder bodies (`"."`) from posts
/// that carry media.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct NoPlaceholderTextPolicy;

impl MrfPolicy for NoPlaceholderTextPolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::NoPlaceholderText
    }

    fn filter(&self, _ctx: &PolicyContext<'_>, mut activity: Activity) -> PolicyVerdict {
        if let Some(post) = activity.note_mut() {
            let trimmed = post.content.trim();
            if post.has_media() && (trimmed == "." || trimmed == "..") {
                post.content = "".into();
            }
        }
        PolicyVerdict::Pass(activity)
    }

    fn judge_ref(&self, _: &PolicyContext<'_>, activity: &Activity, _: SimTime) -> RefVerdict {
        if let Some(post) = activity.note() {
            let trimmed = post.content.trim();
            if post.has_media() && (trimmed == "." || trimmed == "..") {
                return RefVerdict::NeedsClone;
            }
        }
        RefVerdict::Pass
    }
}

/// `RejectNonPublic` — "Whether to allow followers-only/direct posts"
/// (Table 3; 3 instances).
#[derive(Debug, Clone, Serialize, Deserialize, Default)]
pub struct RejectNonPublicPolicy {
    /// Allow followers-only posts through?
    pub allow_followers_only: bool,
    /// Allow direct messages through?
    pub allow_direct: bool,
}

impl MrfPolicy for RejectNonPublicPolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::RejectNonPublic
    }

    fn filter(&self, _ctx: &PolicyContext<'_>, activity: Activity) -> PolicyVerdict {
        if let Some(post) = activity.note() {
            let verboten = match post.visibility {
                Visibility::FollowersOnly => !self.allow_followers_only,
                Visibility::Direct => !self.allow_direct,
                Visibility::Public | Visibility::Unlisted => false,
            };
            if verboten {
                return PolicyVerdict::Reject(RejectReason::new(
                    PolicyKind::RejectNonPublic,
                    "non_public",
                    format!("{:?} posts are not allowed", post.visibility),
                ));
            }
        }
        PolicyVerdict::Pass(activity)
    }

    fn rewrites_content(&self) -> bool {
        false
    }

    fn judge_ref(&self, _: &PolicyContext<'_>, activity: &Activity, _: SimTime) -> RefVerdict {
        if let Some(post) = activity.note() {
            let verboten = match post.visibility {
                Visibility::FollowersOnly => !self.allow_followers_only,
                Visibility::Direct => !self.allow_direct,
                Visibility::Public | Visibility::Unlisted => false,
            };
            if verboten {
                return RefVerdict::Reject(PolicyKind::RejectNonPublic);
            }
        }
        RefVerdict::Pass
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::{ActivityId, Domain, PostId, UserId, UserRef};
    use crate::model::{MediaAttachment, MediaKind, Post};
    use crate::mrf::context::NullActorDirectory;
    use crate::time::SimTime;

    fn note(content: &str, domain: &str) -> Activity {
        let author = UserRef::new(UserId(1), Domain::new(domain));
        Activity::create(
            ActivityId(1),
            Post::stub(PostId(1), author, SimTime(0), content),
        )
    }

    fn run(p: &dyn MrfPolicy, act: Activity) -> PolicyVerdict {
        let local = Domain::new("home.example");
        let dir = NullActorDirectory;
        let ctx = PolicyContext::new(&local, SimTime(0), &dir);
        p.filter(&ctx, act)
    }

    #[test]
    fn keyword_reject() {
        let p = KeywordPolicy::new(vec![KeywordRule::new("forbidden", KeywordAction::Reject)]);
        assert!(!run(&p, note("this is FORBIDDEN text", "a.example")).is_pass());
        assert!(run(&p, note("this is fine", "a.example")).is_pass());
    }

    #[test]
    fn keyword_matches_subject_too() {
        let p = KeywordPolicy::new(vec![KeywordRule::new("spoiler", KeywordAction::Reject)]);
        let author = UserRef::new(UserId(1), Domain::new("a.example"));
        let mut post = Post::stub(PostId(1), author, SimTime(0), "clean body");
        post.subject = Some("SPOILER alert".into());
        assert!(!run(&p, Activity::create(ActivityId(1), post)).is_pass());
    }

    #[test]
    fn keyword_delist() {
        let p = KeywordPolicy::new(vec![KeywordRule::new(
            "drama",
            KeywordAction::FederatedTimelineRemoval,
        )]);
        let v = run(&p, note("fediverse drama again", "a.example"));
        assert_eq!(
            v.expect_pass().note().unwrap().visibility,
            Visibility::Unlisted
        );
    }

    #[test]
    fn keyword_replace_case_insensitive() {
        let p = KeywordPolicy::new(vec![KeywordRule::new(
            "Elixir",
            KeywordAction::Replace("Rust".into()),
        )]);
        let v = run(&p, note("elixir is great, ELIXIR forever", "a.example"));
        assert_eq!(
            &*v.expect_pass().note().unwrap().content,
            "Rust is great, Rust forever"
        );
    }

    #[test]
    fn replace_ci_edge_cases() {
        assert_eq!(
            replace_ci("abc", "", "x"),
            "abc",
            "empty pattern is a no-op"
        );
        assert_eq!(replace_ci("aaa", "a", "b"), "bbb");
        assert_eq!(replace_ci("xyz", "q", "r"), "xyz");
    }

    #[test]
    fn vocabulary_accept_list() {
        let p = VocabularyPolicy {
            accept: vec![ActivityKind::Create],
            reject: vec![],
        };
        assert!(run(&p, note("x", "a.example")).is_pass());
        let follow = Activity::follow(
            ActivityId(2),
            UserRef::new(UserId(1), Domain::new("a.example")),
            UserRef::new(UserId(2), Domain::new("home.example")),
            SimTime(0),
        );
        assert_eq!(
            run(&p, follow).expect_reject().code,
            "vocabulary_not_accepted"
        );
    }

    #[test]
    fn vocabulary_reject_list_wins() {
        let p = VocabularyPolicy {
            accept: vec![ActivityKind::Create],
            reject: vec![ActivityKind::Create],
        };
        assert_eq!(
            run(&p, note("x", "a.example")).expect_reject().code,
            "vocabulary_rejected"
        );
    }

    #[test]
    fn normalize_markup_strips_tags() {
        let v = run(
            &NormalizeMarkupPolicy,
            note("<p>hello <b>world</b></p>", "a.example"),
        );
        assert_eq!(&*v.expect_pass().note().unwrap().content, "hello world");
    }

    #[test]
    fn normalize_markup_is_idempotent() {
        let once = strip_tags("<p>hi</p>");
        assert_eq!(strip_tags(&once), once);
    }

    #[test]
    fn no_empty_rejects_local_empty_posts_only() {
        // Local empty: rejected.
        assert!(!run(&NoEmptyPolicy, note("   ", "home.example")).is_pass());
        // Remote empty: passes (policy governs local users).
        assert!(run(&NoEmptyPolicy, note("", "remote.example")).is_pass());
        // Local with media: passes.
        let author = UserRef::new(UserId(1), Domain::new("home.example"));
        let mut post = Post::stub(PostId(1), author, SimTime(0), "");
        post.media.push(MediaAttachment {
            host: Domain::new("home.example"),
            kind: MediaKind::Image,
            sensitive: false,
        });
        assert!(run(&NoEmptyPolicy, Activity::create(ActivityId(1), post)).is_pass());
    }

    #[test]
    fn placeholder_text_stripped_when_media_present() {
        let author = UserRef::new(UserId(1), Domain::new("a.example"));
        let mut post = Post::stub(PostId(1), author, SimTime(0), " . ");
        post.media.push(MediaAttachment {
            host: Domain::new("a.example"),
            kind: MediaKind::Image,
            sensitive: false,
        });
        let v = run(
            &NoPlaceholderTextPolicy,
            Activity::create(ActivityId(1), post),
        );
        assert_eq!(&*v.expect_pass().note().unwrap().content, "");
        // Without media the dot is kept.
        let v = run(&NoPlaceholderTextPolicy, note(".", "a.example"));
        assert_eq!(&*v.expect_pass().note().unwrap().content, ".");
    }

    #[test]
    fn reject_non_public_blocks_private_scopes() {
        let p = RejectNonPublicPolicy::default();
        let author = UserRef::new(UserId(1), Domain::new("a.example"));
        for (vis, expect_pass) in [
            (Visibility::Public, true),
            (Visibility::Unlisted, true),
            (Visibility::FollowersOnly, false),
            (Visibility::Direct, false),
        ] {
            let mut post = Post::stub(PostId(1), author.clone(), SimTime(0), "x");
            post.visibility = vis;
            let v = run(&p, Activity::create(ActivityId(1), post));
            assert_eq!(v.is_pass(), expect_pass, "visibility {vis:?}");
        }
    }

    #[test]
    fn reject_non_public_configurable() {
        let p = RejectNonPublicPolicy {
            allow_followers_only: true,
            allow_direct: false,
        };
        let author = UserRef::new(UserId(1), Domain::new("a.example"));
        let mut post = Post::stub(PostId(1), author, SimTime(0), "x");
        post.visibility = Visibility::FollowersOnly;
        assert!(run(&p, Activity::create(ActivityId(1), post)).is_pass());
    }
}
