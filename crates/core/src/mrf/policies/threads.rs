//! Thread- and mention-shape policies: `HellthreadPolicy`,
//! `EnsureRePrepended` and `MentionPolicy`.
//!
//! (`AntiHellthreadPolicy` has no filter body of its own: its presence in a
//! pipeline disables any `HellthreadPolicy`, which [`crate::mrf::MrfPipeline`]
//! implements; the marker type lives here.)

use crate::catalog::PolicyKind;
use crate::id::UserRef;
use crate::model::{Activity, Visibility};
use crate::mrf::context::PolicyContext;
use crate::mrf::verdict::{PolicyVerdict, RejectReason};
use crate::mrf::{MrfPolicy, RefVerdict};
use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// `HellthreadPolicy` — de-list or reject posts whose mention count exceeds
/// configured thresholds (Table 3; enabled on 6.7% of instances).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HellthreadPolicy {
    /// Mentions above this de-list the post (None = disabled).
    pub delist_threshold: Option<usize>,
    /// Mentions above this reject the post (None = disabled).
    pub reject_threshold: Option<usize>,
}

impl Default for HellthreadPolicy {
    fn default() -> Self {
        // Pleroma defaults: delist over 10 mentions, reject over 20.
        HellthreadPolicy {
            delist_threshold: Some(10),
            reject_threshold: Some(20),
        }
    }
}

impl MrfPolicy for HellthreadPolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::Hellthread
    }

    fn filter(&self, _ctx: &PolicyContext<'_>, mut activity: Activity) -> PolicyVerdict {
        let Some(post) = activity.note_mut() else {
            return PolicyVerdict::Pass(activity);
        };
        let mentions = post.mentions.len();
        if let Some(reject_at) = self.reject_threshold {
            if mentions > reject_at {
                return PolicyVerdict::Reject(RejectReason::new(
                    PolicyKind::Hellthread,
                    "hellthread",
                    format!("{mentions} mentions exceed reject threshold {reject_at}"),
                ));
            }
        }
        if let Some(delist_at) = self.delist_threshold {
            if mentions > delist_at && post.visibility == Visibility::Public {
                post.visibility = Visibility::Unlisted;
            }
        }
        PolicyVerdict::Pass(activity)
    }

    fn judge_ref(&self, _: &PolicyContext<'_>, activity: &Activity, _: SimTime) -> RefVerdict {
        let Some(post) = activity.note() else {
            return RefVerdict::Pass;
        };
        let mentions = post.mentions.len();
        if let Some(reject_at) = self.reject_threshold {
            if mentions > reject_at {
                return RefVerdict::Reject(PolicyKind::Hellthread);
            }
        }
        if let Some(delist_at) = self.delist_threshold {
            if mentions > delist_at && post.visibility == Visibility::Public {
                return RefVerdict::NeedsClone;
            }
        }
        RefVerdict::Pass
    }
}

/// `AntiHellthreadPolicy` — "Stops the use of the HellthreadPolicy". A
/// marker: the pipeline skips every `HellthreadPolicy` when one of these is
/// present. Its own filter is the identity.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct AntiHellthreadPolicy;

impl MrfPolicy for AntiHellthreadPolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::AntiHellthread
    }

    fn filter(&self, _ctx: &PolicyContext<'_>, activity: Activity) -> PolicyVerdict {
        PolicyVerdict::Pass(activity)
    }

    fn rewrites_content(&self) -> bool {
        false
    }

    fn judge_ref(&self, _: &PolicyContext<'_>, _: &Activity, _: SimTime) -> RefVerdict {
        RefVerdict::Pass
    }
}

/// `EnsureRePrepended` — rewrites reply subjects so they start with `re:`
/// instead of duplicating the parent subject verbatim (Table 3).
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct EnsureRePrependedPolicy;

impl MrfPolicy for EnsureRePrependedPolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::EnsureRePrepended
    }

    fn filter(&self, _ctx: &PolicyContext<'_>, mut activity: Activity) -> PolicyVerdict {
        if let Some(post) = activity.note_mut() {
            if post.in_reply_to.is_some() {
                if let Some(subject) = &post.subject {
                    if !subject.to_ascii_lowercase().starts_with("re:") {
                        post.subject = Some(format!("re: {subject}"));
                    }
                }
            }
        }
        PolicyVerdict::Pass(activity)
    }

    fn judge_ref(&self, _: &PolicyContext<'_>, activity: &Activity, _: SimTime) -> RefVerdict {
        if let Some(post) = activity.note() {
            if post.in_reply_to.is_some() {
                if let Some(subject) = &post.subject {
                    if !subject.to_ascii_lowercase().starts_with("re:") {
                        return RefVerdict::NeedsClone;
                    }
                }
            }
        }
        RefVerdict::Pass
    }
}

/// `MentionPolicy` — drops posts mentioning configured users (Table 3).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MentionPolicy {
    /// Users whose mention causes a drop.
    pub blocked_mentions: Vec<UserRef>,
}

impl MentionPolicy {
    /// Builds a policy dropping posts that mention any of `blocked`.
    pub fn new(blocked: Vec<UserRef>) -> Self {
        MentionPolicy {
            blocked_mentions: blocked,
        }
    }
}

impl MrfPolicy for MentionPolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::Mention
    }

    fn filter(&self, _ctx: &PolicyContext<'_>, activity: Activity) -> PolicyVerdict {
        if let Some(post) = activity.note() {
            if let Some(hit) = post
                .mentions
                .iter()
                .find(|m| self.blocked_mentions.contains(m))
            {
                return PolicyVerdict::Reject(RejectReason::new(
                    PolicyKind::Mention,
                    "blocked_mention",
                    format!("post mentions {hit}"),
                ));
            }
        }
        PolicyVerdict::Pass(activity)
    }

    fn rewrites_content(&self) -> bool {
        false
    }

    fn judge_ref(&self, _: &PolicyContext<'_>, activity: &Activity, _: SimTime) -> RefVerdict {
        if let Some(post) = activity.note() {
            if post
                .mentions
                .iter()
                .any(|m| self.blocked_mentions.contains(m))
            {
                return RefVerdict::Reject(PolicyKind::Mention);
            }
        }
        RefVerdict::Pass
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::{ActivityId, Domain, PostId, UserId};
    use crate::model::Post;
    use crate::mrf::context::NullActorDirectory;
    use crate::mrf::MrfPipeline;
    use crate::time::SimTime;
    use std::sync::Arc;

    fn post_with_mentions(n: usize) -> Activity {
        let author = UserRef::new(UserId(1), Domain::new("thread.example"));
        let mut post = Post::stub(PostId(1), author, SimTime(0), "oi");
        for i in 0..n {
            post.mentions.push(UserRef::new(
                UserId(100 + i as u64),
                Domain::new("x.example"),
            ));
        }
        Activity::create(ActivityId(1), post)
    }

    fn run(p: &dyn MrfPolicy, act: Activity) -> PolicyVerdict {
        let local = Domain::new("home.example");
        let dir = NullActorDirectory;
        let ctx = PolicyContext::new(&local, SimTime(0), &dir);
        p.filter(&ctx, act)
    }

    #[test]
    fn few_mentions_pass() {
        let p = HellthreadPolicy::default();
        let v = run(&p, post_with_mentions(3));
        assert_eq!(
            v.expect_pass().note().unwrap().visibility,
            Visibility::Public
        );
    }

    #[test]
    fn moderate_mentions_delist() {
        let p = HellthreadPolicy::default();
        let v = run(&p, post_with_mentions(15));
        assert_eq!(
            v.expect_pass().note().unwrap().visibility,
            Visibility::Unlisted
        );
    }

    #[test]
    fn hellthread_rejects_over_threshold() {
        let p = HellthreadPolicy::default();
        let v = run(&p, post_with_mentions(25));
        assert_eq!(v.expect_reject().code, "hellthread");
    }

    #[test]
    fn disabled_thresholds_do_nothing() {
        let p = HellthreadPolicy {
            delist_threshold: None,
            reject_threshold: None,
        };
        let v = run(&p, post_with_mentions(500));
        assert_eq!(
            v.expect_pass().note().unwrap().visibility,
            Visibility::Public
        );
    }

    #[test]
    fn anti_hellthread_disables_hellthread_in_pipeline() {
        let pipe = MrfPipeline::new()
            .with(Arc::new(AntiHellthreadPolicy))
            .with(Arc::new(HellthreadPolicy::default()));
        let local = Domain::new("home.example");
        let dir = NullActorDirectory;
        let ctx = PolicyContext::new(&local, SimTime(0), &dir);
        let out = pipe.filter(&ctx, post_with_mentions(100));
        assert!(out.accepted(), "hellthread must be skipped");
        // Trace contains only the AntiHellthread pass.
        assert_eq!(out.trace.len(), 1);
    }

    #[test]
    fn re_prepended_for_replies_with_subject() {
        let author = UserRef::new(UserId(1), Domain::new("a.example"));
        let mut post = Post::stub(PostId(2), author, SimTime(0), "body");
        post.in_reply_to = Some(PostId(1));
        post.subject = Some("topic".into());
        let v = run(
            &EnsureRePrependedPolicy,
            Activity::create(ActivityId(1), post),
        );
        assert_eq!(
            v.expect_pass().note().unwrap().subject.as_deref(),
            Some("re: topic")
        );
    }

    #[test]
    fn re_prepended_is_idempotent() {
        let author = UserRef::new(UserId(1), Domain::new("a.example"));
        let mut post = Post::stub(PostId(2), author, SimTime(0), "body");
        post.in_reply_to = Some(PostId(1));
        post.subject = Some("re: topic".into());
        let v = run(
            &EnsureRePrependedPolicy,
            Activity::create(ActivityId(1), post),
        );
        assert_eq!(
            v.expect_pass().note().unwrap().subject.as_deref(),
            Some("re: topic"),
            "already-prefixed subjects must not be double-prefixed"
        );
    }

    #[test]
    fn re_prepended_ignores_non_replies() {
        let author = UserRef::new(UserId(1), Domain::new("a.example"));
        let mut post = Post::stub(PostId(2), author, SimTime(0), "body");
        post.subject = Some("topic".into());
        let v = run(
            &EnsureRePrependedPolicy,
            Activity::create(ActivityId(1), post),
        );
        assert_eq!(
            v.expect_pass().note().unwrap().subject.as_deref(),
            Some("topic")
        );
    }

    #[test]
    fn mention_policy_drops_blocked_mentions() {
        let vip = UserRef::new(UserId(999), Domain::new("vip.example"));
        let p = MentionPolicy::new(vec![vip.clone()]);
        let author = UserRef::new(UserId(1), Domain::new("a.example"));
        let mut post = Post::stub(PostId(1), author, SimTime(0), "ping");
        post.mentions.push(vip);
        let v = run(&p, Activity::create(ActivityId(1), post));
        assert_eq!(v.expect_reject().code, "blocked_mention");
        // Unrelated mentions pass.
        assert!(run(&p, post_with_mentions(2)).is_pass());
    }
}
