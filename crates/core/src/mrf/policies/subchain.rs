//! `SubchainPolicy` — "Selectively runs other MRF policies when messages
//! match" (Table 3; 8 instances).

use crate::catalog::PolicyKind;
use crate::id::Domain;
use crate::model::Activity;
use crate::mrf::context::PolicyContext;
use crate::mrf::pipeline::MrfPipeline;
use crate::mrf::verdict::PolicyVerdict;
use crate::mrf::{MrfPolicy, RefVerdict};
use crate::time::SimTime;

/// What a subchain matches on.
#[derive(Debug, Clone)]
pub enum SubchainMatch {
    /// Activities originating from one of these domains.
    OriginIn(Vec<Domain>),
    /// Activities whose post content contains this substring
    /// (case-insensitive).
    ContentContains(String),
}

impl SubchainMatch {
    fn matches(&self, activity: &Activity) -> bool {
        match self {
            SubchainMatch::OriginIn(domains) => {
                domains.iter().any(|d| activity.origin().matches(d))
            }
            SubchainMatch::ContentContains(needle) => activity
                .note()
                .map(|p| {
                    p.content
                        .to_ascii_lowercase()
                        .contains(&needle.to_ascii_lowercase())
                })
                .unwrap_or(false),
        }
    }
}

/// Runs an inner pipeline only for matching activities.
pub struct SubchainPolicy {
    /// The match criterion.
    pub matcher: SubchainMatch,
    /// The inner chain executed on matches.
    pub chain: MrfPipeline,
}

impl SubchainPolicy {
    /// Builds a subchain.
    pub fn new(matcher: SubchainMatch, chain: MrfPipeline) -> Self {
        SubchainPolicy { matcher, chain }
    }
}

impl MrfPolicy for SubchainPolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::Subchain
    }

    fn filter(&self, ctx: &PolicyContext<'_>, activity: Activity) -> PolicyVerdict {
        if self.matcher.matches(&activity) {
            // The inner chain's trace is never surfaced (only the verdict
            // propagates), so take the untraced path — this keeps the
            // outer pipeline's `filter_fast` allocation-free even with a
            // subchain configured.
            self.chain.filter_fast(ctx, activity)
        } else {
            PolicyVerdict::Pass(activity)
        }
    }

    fn judge_ref(
        &self,
        ctx: &PolicyContext<'_>,
        activity: &Activity,
        published: SimTime,
    ) -> RefVerdict {
        if self.matcher.matches(activity) {
            self.chain.filter_fast_ref(ctx, activity, published)
        } else {
            RefVerdict::Pass
        }
    }

    fn describe(&self) -> String {
        format!("SubchainPolicy(chain_len={})", self.chain.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::{ActivityId, PostId, UserId, UserRef};
    use crate::model::Post;
    use crate::mrf::context::NullActorDirectory;
    use crate::mrf::policies::DropPolicy;
    use crate::time::SimTime;
    use std::sync::Arc;

    fn note(domain: &str, content: &str) -> Activity {
        let author = UserRef::new(UserId(1), Domain::new(domain));
        Activity::create(
            ActivityId(1),
            Post::stub(PostId(1), author, SimTime(0), content),
        )
    }

    fn run(p: &dyn MrfPolicy, act: Activity) -> PolicyVerdict {
        let local = Domain::new("home.example");
        let dir = NullActorDirectory;
        let ctx = PolicyContext::new(&local, SimTime(0), &dir);
        p.filter(&ctx, act)
    }

    #[test]
    fn subchain_runs_only_on_matching_origin() {
        let chain = MrfPipeline::new().with(Arc::new(DropPolicy));
        let p = SubchainPolicy::new(
            SubchainMatch::OriginIn(vec![Domain::new("sus.example")]),
            chain,
        );
        assert!(!run(&p, note("sus.example", "hello")).is_pass());
        assert!(run(&p, note("fine.example", "hello")).is_pass());
    }

    #[test]
    fn subchain_matches_content() {
        let chain = MrfPipeline::new().with(Arc::new(DropPolicy));
        let p = SubchainPolicy::new(SubchainMatch::ContentContains("CRYPTO".into()), chain);
        assert!(!run(&p, note("a.example", "buy crypto now")).is_pass());
        assert!(run(&p, note("a.example", "buy bread now")).is_pass());
    }

    #[test]
    fn empty_subchain_passes_matches() {
        let p = SubchainPolicy::new(
            SubchainMatch::ContentContains("x".into()),
            MrfPipeline::new(),
        );
        assert!(run(&p, note("a.example", "x")).is_pass());
        assert_eq!(p.describe(), "SubchainPolicy(chain_len=0)");
    }
}
