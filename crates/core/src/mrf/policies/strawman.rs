//! The paper's §7 "strawman" proposals, implemented as fediscope
//! extensions.
//!
//! §7 proposes three concrete steps to reduce collateral damage:
//!
//! 1. **Curated blocklists** ("NoHate", "NoPorn") maintained as a community
//!    effort → [`CuratedListPolicy`];
//! 2. **Per-user moderation** with streamlined tagging, "potentially
//!    assisted by automated classifiers" → [`UserTagModerationPolicy`];
//! 3. **Automatic escalation for repeat offenders** — apply NSFW or media
//!    removal "when they have been reported n times, or when the user post
//!    goes above a certain threshold (e.g. in Google Perspective API)" →
//!    [`RepeatOffenderPolicy`].
//!
//! The ablation harness (`fediscope-analysis::ablation`) compares each of
//! these against the brute-force `reject` on the collateral-damage metric
//! of §5.

use crate::catalog::PolicyKind;
use crate::id::{Domain, UserRef};
use crate::model::{Activity, Visibility};
use crate::mrf::context::PolicyContext;
use crate::mrf::verdict::{PolicyVerdict, RejectReason};
use crate::mrf::MrfPolicy;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

use super::simple::SimpleAction;

/// A named, community-curated blocklist (§7 proposal 1).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CuratedBlocklist {
    /// List name, e.g. `NoHate` or `NoPorn`.
    pub name: String,
    /// Instances on the list.
    pub entries: Vec<Domain>,
    /// The action subscribing instances apply to listed domains. The paper
    /// suggests curators pick actions with "limited collateral damage", so
    /// the default in examples is `MediaRemoval` or `MediaNsfw` rather than
    /// `Reject`.
    pub action: SimpleAction,
}

impl CuratedBlocklist {
    /// Builds a list.
    pub fn new(name: impl Into<String>, entries: Vec<Domain>, action: SimpleAction) -> Self {
        CuratedBlocklist {
            name: name.into(),
            entries,
            action,
        }
    }

    /// Whether `domain` is on the list.
    pub fn contains(&self, domain: &Domain) -> bool {
        self.entries.iter().any(|e| domain.matches(e))
    }
}

/// `CuratedListPolicy` — subscribes an instance to curated blocklists; the
/// admin "simply selects the relevant lists" instead of hand-maintaining
/// `SimplePolicy` targets.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CuratedListPolicy {
    /// The lists this instance subscribes to.
    pub lists: Vec<CuratedBlocklist>,
}

impl CuratedListPolicy {
    /// Subscribes to the given lists.
    pub fn new(lists: Vec<CuratedBlocklist>) -> Self {
        CuratedListPolicy { lists }
    }

    /// Expands the subscription into the equivalent `SimplePolicy`
    /// configuration (useful for comparing reach with hand-made configs).
    pub fn as_simple_policy(&self) -> super::simple::SimplePolicy {
        let mut simple = super::simple::SimplePolicy::new();
        for list in &self.lists {
            for domain in &list.entries {
                simple.add_target(list.action, domain.clone());
            }
        }
        simple
    }
}

impl MrfPolicy for CuratedListPolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::CuratedList
    }

    fn filter(&self, ctx: &PolicyContext<'_>, mut activity: Activity) -> PolicyVerdict {
        let origin = activity.origin().clone();
        if ctx.is_local(&origin) {
            return PolicyVerdict::Pass(activity);
        }
        for list in &self.lists {
            if !list.contains(&origin) {
                continue;
            }
            match list.action {
                SimpleAction::Reject => {
                    return PolicyVerdict::Reject(RejectReason::new(
                        PolicyKind::CuratedList,
                        "curated_reject",
                        format!("{origin} is on the {} list", list.name),
                    ));
                }
                SimpleAction::MediaRemoval => {
                    if let Some(post) = activity.note_mut() {
                        post.strip_media();
                    }
                }
                SimpleAction::MediaNsfw => {
                    if let Some(post) = activity.note_mut() {
                        post.force_sensitive();
                    }
                }
                SimpleAction::FederatedTimelineRemoval => {
                    if let Some(post) = activity.note_mut() {
                        if post.visibility == Visibility::Public {
                            post.visibility = Visibility::Unlisted;
                        }
                    }
                }
                SimpleAction::FollowersOnly => {
                    if let Some(post) = activity.note_mut() {
                        if post.visibility.is_public_ish() {
                            post.visibility = Visibility::FollowersOnly;
                        }
                    }
                }
                // The remaining SimplePolicy actions make no sense on a
                // curated list; treat them as pass-through.
                _ => {}
            }
        }
        PolicyVerdict::Pass(activity)
    }

    fn describe(&self) -> String {
        let names: Vec<&str> = self.lists.iter().map(|l| l.name.as_str()).collect();
        format!("CuratedListPolicy({})", names.join(","))
    }
}

/// A classifier that scores an account's harmfulness in `[0, 1]` — the §7
/// "automated classifier" assisting per-user moderation. The workspace's
/// Perspective substrate implements this for synthetic users; tests inject
/// table-driven fakes.
pub trait HarmClassifier: Send + Sync {
    /// Average harm score for the account, if the classifier knows it.
    fn harm_score(&self, actor: &UserRef) -> Option<f64>;
}

/// A [`HarmClassifier`] backed by a fixed map. Primarily for tests and
/// examples.
#[derive(Debug, Default)]
pub struct StaticHarmClassifier {
    scores: std::collections::HashMap<UserRef, f64>,
}

impl StaticHarmClassifier {
    /// Empty classifier (knows nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets an account's score.
    pub fn set(&mut self, actor: UserRef, score: f64) {
        self.scores.insert(actor, score);
    }
}

impl HarmClassifier for StaticHarmClassifier {
    fn harm_score(&self, actor: &UserRef) -> Option<f64> {
        self.scores.get(actor).copied()
    }
}

/// The action an escalating per-user policy applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EscalationAction {
    /// Force-mark the user's posts sensitive.
    ForceNsfw,
    /// Strip the user's media.
    MediaRemoval,
    /// De-list the user's posts.
    Unlisted,
    /// Reject the user's posts (per-user, not per-instance).
    RejectUser,
}

fn apply_escalation(action: EscalationAction, activity: &mut Activity) -> Option<RejectReason> {
    match action {
        EscalationAction::ForceNsfw => {
            if let Some(post) = activity.note_mut() {
                post.force_sensitive();
            }
            None
        }
        EscalationAction::MediaRemoval => {
            if let Some(post) = activity.note_mut() {
                post.strip_media();
            }
            None
        }
        EscalationAction::Unlisted => {
            if let Some(post) = activity.note_mut() {
                if post.visibility == Visibility::Public {
                    post.visibility = Visibility::Unlisted;
                }
            }
            None
        }
        EscalationAction::RejectUser => None, // handled by callers (needs PolicyKind)
    }
}

/// `UserTagModerationPolicy` (§7 proposal 2) — applies a per-user action to
/// accounts whose classifier score crosses a threshold, instead of blocking
/// the whole instance.
pub struct UserTagModerationPolicy {
    /// The classifier assisting moderation.
    pub classifier: Arc<dyn HarmClassifier>,
    /// Score at which the action kicks in (the paper's threshold of 0.8 is
    /// the natural default).
    pub threshold: f64,
    /// What to do to flagged users' posts.
    pub action: EscalationAction,
}

impl UserTagModerationPolicy {
    /// Builds the policy.
    pub fn new(
        classifier: Arc<dyn HarmClassifier>,
        threshold: f64,
        action: EscalationAction,
    ) -> Self {
        UserTagModerationPolicy {
            classifier,
            threshold,
            action,
        }
    }

    fn flagged(&self, actor: &UserRef) -> bool {
        self.classifier
            .harm_score(actor)
            .map(|s| s >= self.threshold)
            .unwrap_or(false)
    }
}

impl MrfPolicy for UserTagModerationPolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::UserTagModeration
    }

    fn filter(&self, _ctx: &PolicyContext<'_>, mut activity: Activity) -> PolicyVerdict {
        if self.flagged(&activity.actor) {
            if self.action == EscalationAction::RejectUser {
                return PolicyVerdict::Reject(RejectReason::new(
                    PolicyKind::UserTagModeration,
                    "user_rejected",
                    format!("{} classified harmful", activity.actor),
                ));
            }
            apply_escalation(self.action, &mut activity);
        }
        PolicyVerdict::Pass(activity)
    }
}

/// `RepeatOffenderPolicy` (§7 proposal 3) — escalates automatically when an
/// account has been reported `n` times *or* its classifier score crosses a
/// threshold.
pub struct RepeatOffenderPolicy {
    /// Reports needed to trigger escalation.
    pub report_threshold: u32,
    /// Optional classifier assist.
    pub classifier: Option<Arc<dyn HarmClassifier>>,
    /// Classifier score that triggers escalation (used when `classifier`
    /// is present).
    pub score_threshold: f64,
    /// What to do to offenders' posts.
    pub action: EscalationAction,
}

impl RepeatOffenderPolicy {
    /// Report-count–only variant.
    pub fn by_reports(report_threshold: u32, action: EscalationAction) -> Self {
        RepeatOffenderPolicy {
            report_threshold,
            classifier: None,
            score_threshold: 0.8,
            action,
        }
    }

    /// Classifier-assisted variant.
    pub fn with_classifier(
        report_threshold: u32,
        classifier: Arc<dyn HarmClassifier>,
        score_threshold: f64,
        action: EscalationAction,
    ) -> Self {
        RepeatOffenderPolicy {
            report_threshold,
            classifier: Some(classifier),
            score_threshold,
            action,
        }
    }

    fn is_offender(&self, ctx: &PolicyContext<'_>, actor: &UserRef) -> bool {
        if ctx.actors.report_count(actor) >= self.report_threshold {
            return true;
        }
        if let Some(classifier) = &self.classifier {
            if let Some(score) = classifier.harm_score(actor) {
                return score >= self.score_threshold;
            }
        }
        false
    }
}

impl MrfPolicy for RepeatOffenderPolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::RepeatOffender
    }

    fn filter(&self, ctx: &PolicyContext<'_>, mut activity: Activity) -> PolicyVerdict {
        if self.is_offender(ctx, &activity.actor) {
            if self.action == EscalationAction::RejectUser {
                return PolicyVerdict::Reject(RejectReason::new(
                    PolicyKind::RepeatOffender,
                    "repeat_offender",
                    format!("{} exceeded the offence thresholds", activity.actor),
                ));
            }
            apply_escalation(self.action, &mut activity);
        }
        PolicyVerdict::Pass(activity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::{ActivityId, PostId, UserId};
    use crate::model::{MediaAttachment, MediaKind, Post};
    use crate::mrf::context::{ActorDirectory, NullActorDirectory};
    use crate::time::SimTime;

    fn media_note(domain: &str, user: u64) -> Activity {
        let author = UserRef::new(UserId(user), Domain::new(domain));
        let mut post = Post::stub(PostId(1), author, SimTime(0), "text");
        post.media.push(MediaAttachment {
            host: Domain::new(domain),
            kind: MediaKind::Image,
            sensitive: false,
        });
        Activity::create(ActivityId(1), post)
    }

    fn run(p: &dyn MrfPolicy, act: Activity) -> PolicyVerdict {
        let local = Domain::new("home.example");
        let dir = NullActorDirectory;
        let ctx = PolicyContext::new(&local, SimTime(0), &dir);
        p.filter(&ctx, act)
    }

    #[test]
    fn curated_list_media_removal_preserves_text() {
        let list = CuratedBlocklist::new(
            "NoPorn",
            vec![Domain::new("lewd.example")],
            SimpleAction::MediaRemoval,
        );
        let p = CuratedListPolicy::new(vec![list]);
        let v = run(&p, media_note("lewd.example", 1));
        let a = v.expect_pass();
        assert!(!a.note().unwrap().has_media());
        assert_eq!(&*a.note().unwrap().content, "text");
    }

    #[test]
    fn curated_list_reject_action_blocks() {
        let list = CuratedBlocklist::new(
            "NoHate",
            vec![Domain::new("hate.example")],
            SimpleAction::Reject,
        );
        let p = CuratedListPolicy::new(vec![list]);
        assert_eq!(
            run(&p, media_note("hate.example", 1)).expect_reject().code,
            "curated_reject"
        );
        assert!(run(&p, media_note("fine.example", 1)).is_pass());
    }

    #[test]
    fn curated_list_expands_to_simple_policy() {
        let list = CuratedBlocklist::new(
            "NoHate",
            vec![Domain::new("a.example"), Domain::new("b.example")],
            SimpleAction::Reject,
        );
        let p = CuratedListPolicy::new(vec![list]);
        let simple = p.as_simple_policy();
        assert_eq!(simple.targets(SimpleAction::Reject).len(), 2);
    }

    #[test]
    fn user_tag_moderation_flags_only_harmful_users() {
        let mut classifier = StaticHarmClassifier::new();
        let harmful = UserRef::new(UserId(1), Domain::new("mixed.example"));
        let innocent = UserRef::new(UserId(2), Domain::new("mixed.example"));
        classifier.set(harmful, 0.93);
        classifier.set(innocent, 0.05);
        let p =
            UserTagModerationPolicy::new(Arc::new(classifier), 0.8, EscalationAction::ForceNsfw);
        // Harmful user: NSFW forced.
        let v = run(&p, media_note("mixed.example", 1));
        assert!(v.expect_pass().note().unwrap().sensitive);
        // Innocent user on the SAME instance: untouched. This is the whole
        // point of §7 — no collateral damage.
        let v = run(&p, media_note("mixed.example", 2));
        assert!(!v.expect_pass().note().unwrap().sensitive);
    }

    #[test]
    fn user_tag_moderation_reject_user_variant() {
        let mut classifier = StaticHarmClassifier::new();
        classifier.set(UserRef::new(UserId(1), Domain::new("m.example")), 0.99);
        let p =
            UserTagModerationPolicy::new(Arc::new(classifier), 0.8, EscalationAction::RejectUser);
        assert_eq!(
            run(&p, media_note("m.example", 1)).expect_reject().code,
            "user_rejected"
        );
    }

    struct ReportDir(u32);
    impl ActorDirectory for ReportDir {
        fn is_bot(&self, _: &UserRef) -> bool {
            false
        }
        fn followers(&self, _: &UserRef) -> Option<u32> {
            None
        }
        fn created(&self, _: &UserRef) -> Option<SimTime> {
            None
        }
        fn mrf_tags(&self, _: &UserRef) -> Vec<String> {
            Vec::new()
        }
        fn report_count(&self, _: &UserRef) -> u32 {
            self.0
        }
    }

    #[test]
    fn repeat_offender_triggers_on_report_count() {
        let p = RepeatOffenderPolicy::by_reports(3, EscalationAction::MediaRemoval);
        let local = Domain::new("home.example");
        // Below threshold: untouched.
        let dir = ReportDir(2);
        let ctx = PolicyContext::new(&local, SimTime(0), &dir);
        let v = p.filter(&ctx, media_note("r.example", 1));
        assert!(v.expect_pass().note().unwrap().has_media());
        // At threshold: media stripped.
        let dir = ReportDir(3);
        let ctx = PolicyContext::new(&local, SimTime(0), &dir);
        let v = p.filter(&ctx, media_note("r.example", 1));
        assert!(!v.expect_pass().note().unwrap().has_media());
    }

    #[test]
    fn repeat_offender_classifier_assist() {
        let mut classifier = StaticHarmClassifier::new();
        classifier.set(UserRef::new(UserId(1), Domain::new("r.example")), 0.9);
        let p = RepeatOffenderPolicy::with_classifier(
            100, // report threshold unreachable
            Arc::new(classifier),
            0.8,
            EscalationAction::Unlisted,
        );
        let v = run(&p, media_note("r.example", 1));
        assert_eq!(
            v.expect_pass().note().unwrap().visibility,
            Visibility::Unlisted
        );
        // Unknown users are untouched.
        let v = run(&p, media_note("r.example", 2));
        assert_eq!(
            v.expect_pass().note().unwrap().visibility,
            Visibility::Public
        );
    }
}
