//! Media- and metadata-oriented policies: `StealEmojiPolicy`,
//! `HashtagPolicy`, `MediaProxyWarmingPolicy`, `ActivityExpirationPolicy`.

use crate::catalog::PolicyKind;
use crate::id::Domain;
use crate::model::Activity;
use crate::mrf::context::{PolicyContext, SideEffect};
use crate::mrf::verdict::PolicyVerdict;
use crate::mrf::{MrfPolicy, RefVerdict};
use crate::time::{SimDuration, SimTime};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// `StealEmojiPolicy` — "List of hosts to steal emojis from" (Table 3; 81
/// instances, 7,003 users). When a post from a whitelisted host uses a
/// custom emoji the local instance does not have, it is downloaded
/// ("stolen") and registered locally.
#[derive(Debug, Default)]
pub struct StealEmojiPolicy {
    /// Hosts to steal from.
    pub hosts: Vec<Domain>,
    /// Shortcodes never to steal (Pleroma's `rejected_shortcodes`).
    pub rejected_shortcodes: Vec<String>,
    stolen: Mutex<HashSet<String>>,
}

impl StealEmojiPolicy {
    /// Builds the policy with a host whitelist.
    pub fn new(hosts: Vec<Domain>) -> Self {
        StealEmojiPolicy {
            hosts,
            rejected_shortcodes: Vec::new(),
            stolen: Mutex::new(HashSet::new()),
        }
    }

    /// Number of distinct emojis stolen so far.
    pub fn stolen_count(&self) -> usize {
        self.stolen.lock().len()
    }
}

impl MrfPolicy for StealEmojiPolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::StealEmoji
    }

    fn filter(&self, ctx: &PolicyContext<'_>, activity: Activity) -> PolicyVerdict {
        if let Some(post) = activity.note() {
            let origin = activity.origin();
            if self.hosts.iter().any(|h| origin.matches(h)) {
                for emoji in &post.emojis {
                    if self.rejected_shortcodes.contains(&emoji.shortcode) {
                        continue;
                    }
                    let mut stolen = self.stolen.lock();
                    if stolen.insert(emoji.shortcode.clone()) {
                        ctx.emit(SideEffect::EmojiStolen {
                            shortcode: emoji.shortcode.clone(),
                            host: emoji.host.clone(),
                        });
                    }
                }
            }
        }
        PolicyVerdict::Pass(activity)
    }

    fn rewrites_content(&self) -> bool {
        false
    }
}

/// `HashtagPolicy` — "List of hashtags to mark activities as sensitive
/// (default: nsfw)" (Table 3; 62 instances, 10,933 users).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HashtagPolicy {
    /// Hashtags (lowercase, no `#`) that force the sensitive flag.
    pub sensitive_tags: Vec<String>,
}

impl Default for HashtagPolicy {
    fn default() -> Self {
        HashtagPolicy {
            sensitive_tags: vec!["nsfw".to_string()],
        }
    }
}

impl MrfPolicy for HashtagPolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::Hashtag
    }

    fn filter(&self, _ctx: &PolicyContext<'_>, mut activity: Activity) -> PolicyVerdict {
        if let Some(post) = activity.note_mut() {
            if post
                .hashtags
                .iter()
                .any(|h| self.sensitive_tags.iter().any(|s| s == h))
            {
                post.force_sensitive();
            }
        }
        PolicyVerdict::Pass(activity)
    }

    fn judge_ref(&self, _: &PolicyContext<'_>, activity: &Activity, _: SimTime) -> RefVerdict {
        if let Some(post) = activity.note() {
            let tagged = post
                .hashtags
                .iter()
                .any(|h| self.sensitive_tags.iter().any(|s| s == h));
            let already = post.sensitive && post.media.iter().all(|m| m.sensitive);
            if tagged && !already {
                return RefVerdict::NeedsClone;
            }
        }
        RefVerdict::Pass
    }
}

/// `MediaProxyWarmingPolicy` — "Crawls attachments using their MediaProxy
/// URLs so that the MediaProxy cache is primed" (Table 3; 46 instances).
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct MediaProxyWarmingPolicy;

impl MrfPolicy for MediaProxyWarmingPolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::MediaProxyWarming
    }

    fn filter(&self, ctx: &PolicyContext<'_>, activity: Activity) -> PolicyVerdict {
        if let Some(post) = activity.note() {
            for attachment in &post.media {
                ctx.emit(SideEffect::MediaPrefetched {
                    host: attachment.host.clone(),
                });
            }
        }
        PolicyVerdict::Pass(activity)
    }

    fn rewrites_content(&self) -> bool {
        false
    }
}

/// `ActivityExpirationPolicy` — "Sets a default expiration on all posts
/// made by users of the local instance" (Table 3; 11 instances).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ActivityExpirationPolicy {
    /// Lifetime stamped on local posts (Pleroma default: 365 days).
    pub lifetime: SimDuration,
}

impl Default for ActivityExpirationPolicy {
    fn default() -> Self {
        ActivityExpirationPolicy {
            lifetime: SimDuration::days(365),
        }
    }
}

impl MrfPolicy for ActivityExpirationPolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::ActivityExpiration
    }

    fn filter(&self, ctx: &PolicyContext<'_>, mut activity: Activity) -> PolicyVerdict {
        let local = ctx.is_local(&activity.actor.domain.clone());
        if local {
            let lifetime = self.lifetime;
            if let Some(post) = activity.note_mut() {
                if post.expires_at.is_none() {
                    post.expires_at = Some(post.created + lifetime);
                }
            }
        }
        PolicyVerdict::Pass(activity)
    }

    fn judge_ref(&self, ctx: &PolicyContext<'_>, activity: &Activity, _: SimTime) -> RefVerdict {
        if ctx.is_local(&activity.actor.domain)
            && activity
                .note()
                .is_some_and(|post| post.expires_at.is_none())
        {
            RefVerdict::NeedsClone
        } else {
            RefVerdict::Pass
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::{ActivityId, PostId, UserId, UserRef};
    use crate::model::{CustomEmoji, MediaAttachment, MediaKind, Post};
    use crate::mrf::context::NullActorDirectory;
    use crate::time::SimTime;

    fn run_with_effects(p: &dyn MrfPolicy, act: Activity) -> (PolicyVerdict, Vec<SideEffect>) {
        let local = Domain::new("home.example");
        let dir = NullActorDirectory;
        let ctx = PolicyContext::new(&local, SimTime(0), &dir);
        let v = p.filter(&ctx, act);
        (v, ctx.take_effects())
    }

    fn emoji_post(domain: &str, shortcodes: &[&str]) -> Activity {
        let author = UserRef::new(UserId(1), Domain::new(domain));
        let mut post = Post::stub(PostId(1), author, SimTime(0), ":blob:");
        for s in shortcodes {
            post.emojis.push(CustomEmoji {
                shortcode: s.to_string(),
                host: Domain::new(domain),
            });
        }
        Activity::create(ActivityId(1), post)
    }

    #[test]
    fn steal_emoji_from_whitelisted_hosts_once() {
        let p = StealEmojiPolicy::new(vec![Domain::new("emoji.example")]);
        let (_, effects) =
            run_with_effects(&p, emoji_post("emoji.example", &["blobcat", "ablobcat"]));
        assert_eq!(effects.len(), 2);
        assert_eq!(p.stolen_count(), 2);
        // Same emojis again: already stolen, no effects.
        let (_, effects) = run_with_effects(&p, emoji_post("emoji.example", &["blobcat"]));
        assert!(effects.is_empty());
    }

    #[test]
    fn steal_emoji_ignores_unlisted_hosts() {
        let p = StealEmojiPolicy::new(vec![Domain::new("emoji.example")]);
        let (_, effects) = run_with_effects(&p, emoji_post("other.example", &["blobcat"]));
        assert!(effects.is_empty());
    }

    #[test]
    fn steal_emoji_respects_rejected_shortcodes() {
        let mut p = StealEmojiPolicy::new(vec![Domain::new("emoji.example")]);
        p.rejected_shortcodes.push("verified".into());
        let (_, effects) =
            run_with_effects(&p, emoji_post("emoji.example", &["verified", "blobcat"]));
        assert_eq!(effects.len(), 1);
    }

    #[test]
    fn hashtag_policy_marks_nsfw_tagged_posts() {
        let p = HashtagPolicy::default();
        let author = UserRef::new(UserId(1), Domain::new("a.example"));
        let mut post = Post::stub(PostId(1), author, SimTime(0), "look");
        post.hashtags.push("nsfw".into());
        let (v, _) = run_with_effects(&p, Activity::create(ActivityId(1), post));
        assert!(v.expect_pass().note().unwrap().sensitive);
    }

    #[test]
    fn hashtag_policy_ignores_other_tags() {
        let p = HashtagPolicy::default();
        let author = UserRef::new(UserId(1), Domain::new("a.example"));
        let mut post = Post::stub(PostId(1), author, SimTime(0), "look");
        post.hashtags.push("caturday".into());
        let (v, _) = run_with_effects(&p, Activity::create(ActivityId(1), post));
        assert!(!v.expect_pass().note().unwrap().sensitive);
    }

    #[test]
    fn media_proxy_warming_prefetches_every_attachment() {
        let author = UserRef::new(UserId(1), Domain::new("a.example"));
        let mut post = Post::stub(PostId(1), author, SimTime(0), "pics");
        for host in ["cdn1.example", "cdn2.example"] {
            post.media.push(MediaAttachment {
                host: Domain::new(host),
                kind: MediaKind::Image,
                sensitive: false,
            });
        }
        let (v, effects) = run_with_effects(
            &MediaProxyWarmingPolicy,
            Activity::create(ActivityId(1), post),
        );
        assert!(v.is_pass());
        assert_eq!(effects.len(), 2);
    }

    #[test]
    fn expiration_stamps_local_posts_only() {
        let p = ActivityExpirationPolicy::default();
        // Local post gets an expiry.
        let author = UserRef::new(UserId(1), Domain::new("home.example"));
        let post = Post::stub(PostId(1), author, SimTime(1000), "ephemeral");
        let (v, _) = run_with_effects(&p, Activity::create(ActivityId(1), post));
        let expires = v.expect_pass().note().unwrap().expires_at;
        assert_eq!(expires, Some(SimTime(1000) + SimDuration::days(365)));
        // Remote post untouched.
        let author = UserRef::new(UserId(2), Domain::new("remote.example"));
        let post = Post::stub(PostId(2), author, SimTime(1000), "remote");
        let (v, _) = run_with_effects(&p, Activity::create(ActivityId(2), post));
        assert_eq!(v.expect_pass().note().unwrap().expires_at, None);
    }

    #[test]
    fn expiration_does_not_override_existing() {
        let p = ActivityExpirationPolicy::default();
        let author = UserRef::new(UserId(1), Domain::new("home.example"));
        let mut post = Post::stub(PostId(1), author, SimTime(0), "x");
        post.expires_at = Some(SimTime(42));
        let (v, _) = run_with_effects(&p, Activity::create(ActivityId(1), post));
        assert_eq!(
            v.expect_pass().note().unwrap().expires_at,
            Some(SimTime(42))
        );
    }
}
