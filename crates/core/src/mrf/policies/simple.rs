//! `SimplePolicy` — the paper's centrepiece.
//!
//! §4.1: *"The SimplePolicy is the most flexible policy, allowing admins to
//! configure a range of actions on posts or instances that match certain
//! criteria, e.g. the reject action blocks all connections from a given
//! instance."* Figures 2 and 3 of the paper break down the ten actions;
//! `reject` alone accounts for 62.8% of all moderation events and hits
//! 86.2% of users.

use crate::catalog::PolicyKind;
use crate::id::Domain;
use crate::model::{Activity, ActivityKind, Visibility};
use crate::mrf::context::{PolicyContext, ProfileImage, SideEffect};
use crate::mrf::verdict::{PolicyVerdict, RejectReason};
use crate::mrf::{MrfPolicy, RefVerdict};
use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::Arc;

/// FNV-1a — a tiny allocation-free hasher for the membership index.
/// Domain names are short and not attacker-controlled in this system;
/// std's SipHash would cost more than the rest of a one-target delta on
/// the control path.
pub(crate) struct FnvHasher(u64);

impl Default for FnvHasher {
    fn default() -> Self {
        FnvHasher(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }
}

type FnvBuild = BuildHasherDefault<FnvHasher>;

/// The ten `SimplePolicy` actions, named exactly as the paper's Figures 2/3
/// label them (Pleroma's `mrf_simple` keys).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SimpleAction {
    /// Block all activities from the target instance.
    Reject,
    /// Remove the target's posts from the federated (whole-known-network)
    /// timeline (`fed_timeline_rem` in the figures).
    FederatedTimelineRemoval,
    /// Whitelist mode: if non-empty, only the listed instances federate.
    Accept,
    /// Strip media attachments from the target's posts.
    MediaRemoval,
    /// Strip profile banners of the target's users.
    BannerRemoval,
    /// Strip avatars of the target's users.
    AvatarRemoval,
    /// Force-mark the target's media as sensitive (`nsfw`).
    MediaNsfw,
    /// Ignore `Delete` activities from the target.
    RejectDeletes,
    /// Ignore `Flag` (report) activities from the target.
    ReportRemoval,
    /// Force the target's posts to followers-only visibility.
    FollowersOnly,
}

impl SimpleAction {
    /// All ten actions, in the order the paper's Figure 2 lists them.
    pub const ALL: [SimpleAction; 10] = [
        SimpleAction::Reject,
        SimpleAction::FederatedTimelineRemoval,
        SimpleAction::Accept,
        SimpleAction::MediaRemoval,
        SimpleAction::BannerRemoval,
        SimpleAction::AvatarRemoval,
        SimpleAction::MediaNsfw,
        SimpleAction::RejectDeletes,
        SimpleAction::ReportRemoval,
        SimpleAction::FollowersOnly,
    ];

    /// The label used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            SimpleAction::Reject => "reject",
            SimpleAction::FederatedTimelineRemoval => "fed_timeline_rem",
            SimpleAction::Accept => "accept",
            SimpleAction::MediaRemoval => "media_removal",
            SimpleAction::BannerRemoval => "banner_removal",
            SimpleAction::AvatarRemoval => "avatar_removal",
            SimpleAction::MediaNsfw => "nsfw",
            SimpleAction::RejectDeletes => "reject_deletes",
            SimpleAction::ReportRemoval => "report_removal",
            SimpleAction::FollowersOnly => "followers_only",
        }
    }

    /// The Pleroma `mrf_simple` configuration key.
    pub fn config_key(self) -> &'static str {
        match self {
            SimpleAction::Reject => "reject",
            SimpleAction::FederatedTimelineRemoval => "federated_timeline_removal",
            SimpleAction::Accept => "accept",
            SimpleAction::MediaRemoval => "media_removal",
            SimpleAction::BannerRemoval => "banner_removal",
            SimpleAction::AvatarRemoval => "avatar_removal",
            SimpleAction::MediaNsfw => "media_nsfw",
            SimpleAction::RejectDeletes => "reject_deletes",
            SimpleAction::ReportRemoval => "report_removal",
            SimpleAction::FollowersOnly => "followers_only",
        }
    }

    /// Parse a figure label or config key back into an action.
    pub fn parse(s: &str) -> Option<SimpleAction> {
        Self::ALL
            .into_iter()
            .find(|a| a.label() == s || a.config_key() == s)
    }
}

/// One action's target list: the ordered (insertion-order, serialized)
/// domain list, plus a hash index over the names — the per-stage cache
/// that makes membership, dedup on [`SimplePolicy::add_target`], and the
/// subdomain-matching hot path O(1)-ish instead of O(list). Heavy-tailed
/// blocklist imports (thousands of targets) stay cheap both to *apply*
/// (the pipeline delta API merges one target at a time) and to *enforce*
/// (each inbound activity walks its domain's parent labels instead of
/// scanning the list).
///
/// Serialization delegates to the ordered `Vec<Domain>`, so the wire
/// shape is exactly what it was before the index existed; the index is
/// rebuilt on deserialize.
#[derive(Debug, Clone, Default)]
struct TargetList {
    ordered: Vec<Domain>,
    index: HashSet<Arc<str>, FnvBuild>,
}

impl TargetList {
    /// Builds a list from a plain vector, deduplicating while keeping
    /// first-occurrence order — `add_target` semantics for hand-built or
    /// deserialized inputs.
    fn from_vec(ordered: Vec<Domain>) -> Self {
        let mut list = TargetList::default();
        for domain in ordered {
            list.add(domain);
        }
        list
    }

    /// Adds `domain` if absent; returns whether it was added.
    fn add(&mut self, domain: Domain) -> bool {
        if self.index.insert(domain.shared_str()) {
            self.ordered.push(domain);
            true
        } else {
            false
        }
    }

    /// Removes `domain`; returns whether it was present.
    fn remove(&mut self, domain: &Domain) -> bool {
        if self.index.remove(domain.as_str()) {
            self.ordered.retain(|d| d != domain);
            true
        } else {
            false
        }
    }

    /// Whether `domain` (or any of its parent domains) is targeted —
    /// Pleroma's subdomain matching rule, answered by walking the
    /// candidate's `.`-separated suffixes through the index.
    fn matches(&self, domain: &Domain) -> bool {
        let name = domain.as_str();
        if self.index.contains(name) {
            return true;
        }
        let mut rest = name;
        while let Some(dot) = rest.find('.') {
            rest = &rest[dot + 1..];
            if self.index.contains(rest) {
                return true;
            }
        }
        false
    }
}

impl Serialize for TargetList {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.ordered.serialize(serializer)
    }
}

impl<'de> Deserialize<'de> for TargetList {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        Ok(TargetList::from_vec(Vec::<Domain>::deserialize(
            deserializer,
        )?))
    }
}

/// Per-instance `SimplePolicy` configuration: which domains each action
/// targets. This is both an executable MRF filter and the *data* the
/// instance publishes through its metadata API — which is precisely what
/// the paper's crawler collected.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SimplePolicy {
    targets: BTreeMap<SimpleAction, TargetList>,
}

impl SimplePolicy {
    /// An empty configuration (no targets).
    pub fn new() -> Self {
        SimplePolicy::default()
    }

    /// Adds `domain` to `action`'s target list (deduplicated through the
    /// membership index — O(1) amortized, which is what keeps heavy
    /// blocklist imports O(delta) end to end).
    pub fn add_target(&mut self, action: SimpleAction, domain: Domain) {
        self.targets.entry(action).or_default().add(domain);
    }

    /// Builder-style [`add_target`](Self::add_target).
    pub fn with_target(mut self, action: SimpleAction, domain: Domain) -> Self {
        self.add_target(action, domain);
        self
    }

    /// Removes `domain` from `action`'s target list; returns whether it
    /// was present.
    pub fn remove_target(&mut self, action: SimpleAction, domain: &Domain) -> bool {
        self.targets
            .get_mut(&action)
            .map(|list| list.remove(domain))
            .unwrap_or(false)
    }

    /// Target list for one action, in insertion order.
    pub fn targets(&self, action: SimpleAction) -> &[Domain] {
        self.targets
            .get(&action)
            .map(|l| l.ordered.as_slice())
            .unwrap_or(&[])
    }

    /// Merges every `(action, domain)` pair of `other` into this config
    /// (deduplicated, existing order preserved). This is how a staged
    /// rollout grows an instance's configuration wave by wave until it
    /// reaches the full target list.
    pub fn merge(&mut self, other: &SimplePolicy) {
        for (action, domain) in other.events() {
            self.add_target(action, domain.clone());
        }
    }

    /// Every `(action, domain)` pair — one *moderation event* in the
    /// paper's accounting.
    pub fn events(&self) -> impl Iterator<Item = (SimpleAction, &Domain)> {
        self.targets
            .iter()
            .flat_map(|(a, list)| list.ordered.iter().map(move |d| (*a, d)))
    }

    /// Actions with at least one target.
    pub fn active_actions(&self) -> Vec<SimpleAction> {
        self.targets
            .iter()
            .filter(|(_, list)| !list.ordered.is_empty())
            .map(|(a, _)| *a)
            .collect()
    }

    /// Whether `domain` is targeted by `action` (subdomains match):
    /// answered through the membership index by walking the candidate's
    /// parent labels — O(labels), never O(targets).
    pub fn matches(&self, action: SimpleAction, domain: &Domain) -> bool {
        self.targets
            .get(&action)
            .map(|list| list.matches(domain))
            .unwrap_or(false)
    }

    fn reject(&self, code: &'static str, detail: String) -> PolicyVerdict {
        PolicyVerdict::Reject(RejectReason::new(PolicyKind::Simple, code, detail))
    }
}

impl MrfPolicy for SimplePolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::Simple
    }

    fn as_simple(&self) -> Option<&SimplePolicy> {
        Some(self)
    }

    fn as_simple_mut(&mut self) -> Option<&mut SimplePolicy> {
        Some(self)
    }

    fn filter(&self, ctx: &PolicyContext<'_>, mut activity: Activity) -> PolicyVerdict {
        let origin = activity.origin().clone();
        // Local activities are never subject to SimplePolicy.
        if ctx.is_local(&origin) {
            return PolicyVerdict::Pass(activity);
        }
        // reject: the brute-force block the paper centres on.
        if self.matches(SimpleAction::Reject, &origin) {
            return self.reject("instance_blocked", format!("{origin} is rejected"));
        }
        // accept: whitelist federation if configured.
        let whitelist = self.targets(SimpleAction::Accept);
        if !whitelist.is_empty() && !whitelist.iter().any(|t| origin.matches(t)) {
            return self.reject("not_whitelisted", format!("{origin} not in accept list"));
        }
        // reject_deletes / report_removal: kind-specific drops.
        if activity.kind == ActivityKind::Delete
            && self.matches(SimpleAction::RejectDeletes, &origin)
        {
            return self.reject("delete_rejected", format!("deletes from {origin} ignored"));
        }
        if activity.kind == ActivityKind::Flag && self.matches(SimpleAction::ReportRemoval, &origin)
        {
            return self.reject("report_removed", format!("reports from {origin} ignored"));
        }
        // Profile image stripping is an effect on actor rendering.
        if self.matches(SimpleAction::BannerRemoval, &origin) {
            ctx.emit(SideEffect::ProfileMediaStripped {
                host: origin.clone(),
                image: ProfileImage::Banner,
            });
        }
        if self.matches(SimpleAction::AvatarRemoval, &origin) {
            ctx.emit(SideEffect::ProfileMediaStripped {
                host: origin.clone(),
                image: ProfileImage::Avatar,
            });
        }
        // Post rewrites.
        if let Some(post) = activity.note_mut() {
            if self.matches(SimpleAction::MediaRemoval, &origin) {
                post.strip_media();
            }
            if self.matches(SimpleAction::MediaNsfw, &origin) {
                post.force_sensitive();
            }
            if self.matches(SimpleAction::FederatedTimelineRemoval, &origin)
                && post.visibility == Visibility::Public
            {
                post.visibility = Visibility::Unlisted;
            }
            if self.matches(SimpleAction::FollowersOnly, &origin) && post.visibility.is_public_ish()
            {
                post.visibility = Visibility::FollowersOnly;
            }
        }
        PolicyVerdict::Pass(activity)
    }

    fn judge_ref(
        &self,
        ctx: &PolicyContext<'_>,
        activity: &Activity,
        _published: SimTime,
    ) -> RefVerdict {
        let origin = activity.origin();
        if ctx.is_local(origin) {
            return RefVerdict::Pass;
        }
        if self.matches(SimpleAction::Reject, origin) {
            return RefVerdict::Reject(PolicyKind::Simple);
        }
        let whitelist = self.targets(SimpleAction::Accept);
        if !whitelist.is_empty() && !whitelist.iter().any(|t| origin.matches(t)) {
            return RefVerdict::Reject(PolicyKind::Simple);
        }
        if activity.kind == ActivityKind::Delete
            && self.matches(SimpleAction::RejectDeletes, origin)
        {
            return RefVerdict::Reject(PolicyKind::Simple);
        }
        if activity.kind == ActivityKind::Flag && self.matches(SimpleAction::ReportRemoval, origin)
        {
            return RefVerdict::Reject(PolicyKind::Simple);
        }
        // Post rewrites: only bail to the cloning path when the matched
        // action would observably change *this* post (clearing an empty
        // media list or re-marking an already-sensitive post leaves the
        // activity value-identical, so those stay on the borrow path).
        if let Some(post) = activity.note() {
            let would_mutate = (self.matches(SimpleAction::MediaRemoval, origin)
                && !post.media.is_empty())
                || (self.matches(SimpleAction::MediaNsfw, origin)
                    && (!post.sensitive || post.media.iter().any(|m| !m.sensitive)))
                || (self.matches(SimpleAction::FederatedTimelineRemoval, origin)
                    && post.visibility == Visibility::Public)
                || (self.matches(SimpleAction::FollowersOnly, origin)
                    && post.visibility.is_public_ish());
            if would_mutate {
                // Checked before emitting so the cloning re-run emits the
                // profile-image effects exactly once.
                return RefVerdict::NeedsClone;
            }
        }
        if self.matches(SimpleAction::BannerRemoval, origin) {
            ctx.emit(SideEffect::ProfileMediaStripped {
                host: origin.clone(),
                image: ProfileImage::Banner,
            });
        }
        if self.matches(SimpleAction::AvatarRemoval, origin) {
            ctx.emit(SideEffect::ProfileMediaStripped {
                host: origin.clone(),
                image: ProfileImage::Avatar,
            });
        }
        RefVerdict::Pass
    }

    fn describe(&self) -> String {
        let parts: Vec<String> = self
            .targets
            .iter()
            .filter(|(_, l)| !l.ordered.is_empty())
            .map(|(a, l)| format!("{}:{}", a.label(), l.ordered.len()))
            .collect();
        format!("SimplePolicy({})", parts.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::{ActivityId, PostId, UserId, UserRef};
    use crate::model::{MediaAttachment, MediaKind, Post};
    use crate::mrf::context::NullActorDirectory;
    use crate::time::SimTime;

    fn remote_post(domain: &str) -> Activity {
        let author = UserRef::new(UserId(5), Domain::new(domain));
        let mut post = Post::stub(PostId(1), author, SimTime(0), "content");
        post.media.push(MediaAttachment {
            host: Domain::new(domain),
            kind: MediaKind::Image,
            sensitive: false,
        });
        Activity::create(ActivityId(1), post)
    }

    fn run(policy: &SimplePolicy, act: Activity) -> (PolicyVerdict, Vec<SideEffect>) {
        let local = Domain::new("home.example");
        let dir = NullActorDirectory;
        let ctx = PolicyContext::new(&local, SimTime(1000), &dir);
        let v = policy.filter(&ctx, act);
        let effects = ctx.take_effects();
        (v, effects)
    }

    #[test]
    fn reject_blocks_everything_from_target() {
        let p = SimplePolicy::new().with_target(SimpleAction::Reject, Domain::new("bad.example"));
        let (v, _) = run(&p, remote_post("bad.example"));
        let r = v.expect_reject();
        assert_eq!(r.code, "instance_blocked");
        assert_eq!(r.policy, PolicyKind::Simple);
    }

    #[test]
    fn reject_matches_subdomains() {
        let p = SimplePolicy::new().with_target(SimpleAction::Reject, Domain::new("bad.example"));
        let (v, _) = run(&p, remote_post("media.bad.example"));
        assert!(!v.is_pass());
    }

    #[test]
    fn unrelated_instances_pass() {
        let p = SimplePolicy::new().with_target(SimpleAction::Reject, Domain::new("bad.example"));
        let (v, _) = run(&p, remote_post("good.example"));
        assert!(v.is_pass());
    }

    #[test]
    fn local_activities_are_exempt() {
        let p = SimplePolicy::new().with_target(SimpleAction::Reject, Domain::new("home.example"));
        let (v, _) = run(&p, remote_post("home.example"));
        assert!(v.is_pass(), "SimplePolicy never applies to local traffic");
    }

    #[test]
    fn accept_whitelist_blocks_unlisted_instances() {
        let p =
            SimplePolicy::new().with_target(SimpleAction::Accept, Domain::new("friend.example"));
        let (v, _) = run(&p, remote_post("friend.example"));
        assert!(v.is_pass());
        let (v, _) = run(&p, remote_post("stranger.example"));
        assert_eq!(v.expect_reject().code, "not_whitelisted");
    }

    #[test]
    fn media_removal_strips_attachments_keeps_text() {
        let p = SimplePolicy::new()
            .with_target(SimpleAction::MediaRemoval, Domain::new("porn.example"));
        let (v, _) = run(&p, remote_post("porn.example"));
        let a = v.expect_pass();
        let post = a.note().unwrap();
        assert!(!post.has_media());
        assert_eq!(&*post.content, "content");
    }

    #[test]
    fn nsfw_forces_sensitive() {
        let p =
            SimplePolicy::new().with_target(SimpleAction::MediaNsfw, Domain::new("lewd.example"));
        let (v, _) = run(&p, remote_post("lewd.example"));
        let a = v.expect_pass();
        assert!(a.note().unwrap().sensitive);
    }

    #[test]
    fn fed_timeline_removal_delists() {
        let p = SimplePolicy::new().with_target(
            SimpleAction::FederatedTimelineRemoval,
            Domain::new("loud.example"),
        );
        let (v, _) = run(&p, remote_post("loud.example"));
        assert_eq!(
            v.expect_pass().note().unwrap().visibility,
            Visibility::Unlisted
        );
    }

    #[test]
    fn followers_only_downgrades_visibility() {
        let p = SimplePolicy::new()
            .with_target(SimpleAction::FollowersOnly, Domain::new("spam.example"));
        let (v, _) = run(&p, remote_post("spam.example"));
        assert_eq!(
            v.expect_pass().note().unwrap().visibility,
            Visibility::FollowersOnly
        );
    }

    #[test]
    fn reject_deletes_drops_only_deletes() {
        let p = SimplePolicy::new()
            .with_target(SimpleAction::RejectDeletes, Domain::new("flaky.example"));
        let author = UserRef::new(UserId(5), Domain::new("flaky.example"));
        let del = Activity::delete(ActivityId(2), author, PostId(1), SimTime(10));
        let (v, _) = run(&p, del);
        assert_eq!(v.expect_reject().code, "delete_rejected");
        // Creates still pass.
        let (v, _) = run(&p, remote_post("flaky.example"));
        assert!(v.is_pass());
    }

    #[test]
    fn report_removal_drops_flags() {
        let p = SimplePolicy::new()
            .with_target(SimpleAction::ReportRemoval, Domain::new("noisy.example"));
        let actor = UserRef::new(UserId(5), Domain::new("noisy.example"));
        let target = UserRef::new(UserId(9), Domain::new("home.example"));
        let flag = Activity::report(ActivityId(3), actor, target, "spam", SimTime(5));
        let (v, _) = run(&p, flag);
        assert_eq!(v.expect_reject().code, "report_removed");
    }

    #[test]
    fn banner_and_avatar_removal_emit_effects() {
        let p = SimplePolicy::new()
            .with_target(SimpleAction::BannerRemoval, Domain::new("ugly.example"))
            .with_target(SimpleAction::AvatarRemoval, Domain::new("ugly.example"));
        let (v, effects) = run(&p, remote_post("ugly.example"));
        assert!(v.is_pass());
        assert_eq!(effects.len(), 2);
        assert!(effects.iter().any(|e| matches!(
            e,
            SideEffect::ProfileMediaStripped {
                image: ProfileImage::Banner,
                ..
            }
        )));
        assert!(effects.iter().any(|e| matches!(
            e,
            SideEffect::ProfileMediaStripped {
                image: ProfileImage::Avatar,
                ..
            }
        )));
    }

    #[test]
    fn events_enumerates_action_target_pairs() {
        let p = SimplePolicy::new()
            .with_target(SimpleAction::Reject, Domain::new("a.example"))
            .with_target(SimpleAction::Reject, Domain::new("b.example"))
            .with_target(SimpleAction::MediaNsfw, Domain::new("c.example"));
        assert_eq!(p.events().count(), 3);
        assert_eq!(p.targets(SimpleAction::Reject).len(), 2);
        assert_eq!(p.active_actions().len(), 2);
    }

    #[test]
    fn add_target_deduplicates() {
        let mut p = SimplePolicy::new();
        p.add_target(SimpleAction::Reject, Domain::new("a.example"));
        p.add_target(SimpleAction::Reject, Domain::new("a.example"));
        assert_eq!(p.targets(SimpleAction::Reject).len(), 1);
    }

    #[test]
    fn labels_round_trip() {
        for a in SimpleAction::ALL {
            assert_eq!(SimpleAction::parse(a.label()), Some(a));
            assert_eq!(SimpleAction::parse(a.config_key()), Some(a));
        }
        assert_eq!(SimpleAction::parse("bogus"), None);
    }

    #[test]
    fn serde_round_trip_rebuilds_the_membership_index() {
        let p = SimplePolicy::new()
            .with_target(SimpleAction::Reject, Domain::new("bad.example"))
            .with_target(SimpleAction::Reject, Domain::new("worse.example"))
            .with_target(SimpleAction::MediaNsfw, Domain::new("lewd.example"));
        let json = serde_json::to_string(&p).unwrap();
        let back: SimplePolicy = serde_json::from_str(&json).unwrap();
        // Ordered lists survive byte for byte (the wire shape is the
        // plain vector; the index never serializes)...
        assert_eq!(
            back.targets(SimpleAction::Reject),
            p.targets(SimpleAction::Reject)
        );
        assert_eq!(
            back.targets(SimpleAction::MediaNsfw),
            p.targets(SimpleAction::MediaNsfw)
        );
        // ...and the rebuilt index answers subdomain matching.
        assert!(back.matches(SimpleAction::Reject, &Domain::new("media.bad.example")));
        assert!(!back.matches(SimpleAction::Reject, &Domain::new("good.example")));
    }

    #[test]
    fn index_matching_respects_label_boundaries() {
        // "notbad.example" must not match the "bad.example" target even
        // though it is a string suffix — the index walks `.` boundaries.
        let p = SimplePolicy::new().with_target(SimpleAction::Reject, Domain::new("bad.example"));
        assert!(!p.matches(SimpleAction::Reject, &Domain::new("notbad.example")));
        assert!(p.matches(SimpleAction::Reject, &Domain::new("a.b.bad.example")));
        // A target that is itself a subdomain never matches its parent.
        assert!(!p.matches(SimpleAction::Reject, &Domain::new("example")));
    }

    #[test]
    fn describe_summarises_config() {
        let p = SimplePolicy::new().with_target(SimpleAction::Reject, Domain::new("a.example"));
        assert_eq!(p.describe(), "SimplePolicy(reject:1)");
    }
}
