//! `SimplePolicy` — the paper's centrepiece.
//!
//! §4.1: *"The SimplePolicy is the most flexible policy, allowing admins to
//! configure a range of actions on posts or instances that match certain
//! criteria, e.g. the reject action blocks all connections from a given
//! instance."* Figures 2 and 3 of the paper break down the ten actions;
//! `reject` alone accounts for 62.8% of all moderation events and hits
//! 86.2% of users.

use crate::catalog::PolicyKind;
use crate::id::Domain;
use crate::model::{Activity, ActivityKind, Visibility};
use crate::mrf::context::{PolicyContext, ProfileImage, SideEffect};
use crate::mrf::verdict::{PolicyVerdict, RejectReason};
use crate::mrf::MrfPolicy;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The ten `SimplePolicy` actions, named exactly as the paper's Figures 2/3
/// label them (Pleroma's `mrf_simple` keys).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SimpleAction {
    /// Block all activities from the target instance.
    Reject,
    /// Remove the target's posts from the federated (whole-known-network)
    /// timeline (`fed_timeline_rem` in the figures).
    FederatedTimelineRemoval,
    /// Whitelist mode: if non-empty, only the listed instances federate.
    Accept,
    /// Strip media attachments from the target's posts.
    MediaRemoval,
    /// Strip profile banners of the target's users.
    BannerRemoval,
    /// Strip avatars of the target's users.
    AvatarRemoval,
    /// Force-mark the target's media as sensitive (`nsfw`).
    MediaNsfw,
    /// Ignore `Delete` activities from the target.
    RejectDeletes,
    /// Ignore `Flag` (report) activities from the target.
    ReportRemoval,
    /// Force the target's posts to followers-only visibility.
    FollowersOnly,
}

impl SimpleAction {
    /// All ten actions, in the order the paper's Figure 2 lists them.
    pub const ALL: [SimpleAction; 10] = [
        SimpleAction::Reject,
        SimpleAction::FederatedTimelineRemoval,
        SimpleAction::Accept,
        SimpleAction::MediaRemoval,
        SimpleAction::BannerRemoval,
        SimpleAction::AvatarRemoval,
        SimpleAction::MediaNsfw,
        SimpleAction::RejectDeletes,
        SimpleAction::ReportRemoval,
        SimpleAction::FollowersOnly,
    ];

    /// The label used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            SimpleAction::Reject => "reject",
            SimpleAction::FederatedTimelineRemoval => "fed_timeline_rem",
            SimpleAction::Accept => "accept",
            SimpleAction::MediaRemoval => "media_removal",
            SimpleAction::BannerRemoval => "banner_removal",
            SimpleAction::AvatarRemoval => "avatar_removal",
            SimpleAction::MediaNsfw => "nsfw",
            SimpleAction::RejectDeletes => "reject_deletes",
            SimpleAction::ReportRemoval => "report_removal",
            SimpleAction::FollowersOnly => "followers_only",
        }
    }

    /// The Pleroma `mrf_simple` configuration key.
    pub fn config_key(self) -> &'static str {
        match self {
            SimpleAction::Reject => "reject",
            SimpleAction::FederatedTimelineRemoval => "federated_timeline_removal",
            SimpleAction::Accept => "accept",
            SimpleAction::MediaRemoval => "media_removal",
            SimpleAction::BannerRemoval => "banner_removal",
            SimpleAction::AvatarRemoval => "avatar_removal",
            SimpleAction::MediaNsfw => "media_nsfw",
            SimpleAction::RejectDeletes => "reject_deletes",
            SimpleAction::ReportRemoval => "report_removal",
            SimpleAction::FollowersOnly => "followers_only",
        }
    }

    /// Parse a figure label or config key back into an action.
    pub fn parse(s: &str) -> Option<SimpleAction> {
        Self::ALL
            .into_iter()
            .find(|a| a.label() == s || a.config_key() == s)
    }
}

/// Per-instance `SimplePolicy` configuration: which domains each action
/// targets. This is both an executable MRF filter and the *data* the
/// instance publishes through its metadata API — which is precisely what
/// the paper's crawler collected.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SimplePolicy {
    targets: BTreeMap<SimpleAction, Vec<Domain>>,
}

impl SimplePolicy {
    /// An empty configuration (no targets).
    pub fn new() -> Self {
        SimplePolicy::default()
    }

    /// Adds `domain` to `action`'s target list (deduplicated).
    pub fn add_target(&mut self, action: SimpleAction, domain: Domain) {
        let list = self.targets.entry(action).or_default();
        if !list.contains(&domain) {
            list.push(domain);
        }
    }

    /// Builder-style [`add_target`](Self::add_target).
    pub fn with_target(mut self, action: SimpleAction, domain: Domain) -> Self {
        self.add_target(action, domain);
        self
    }

    /// Removes `domain` from `action`'s target list; returns whether it
    /// was present.
    pub fn remove_target(&mut self, action: SimpleAction, domain: &Domain) -> bool {
        if let Some(list) = self.targets.get_mut(&action) {
            let before = list.len();
            list.retain(|d| d != domain);
            return list.len() < before;
        }
        false
    }

    /// Target list for one action.
    pub fn targets(&self, action: SimpleAction) -> &[Domain] {
        self.targets.get(&action).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Merges every `(action, domain)` pair of `other` into this config
    /// (deduplicated, existing order preserved). This is how a staged
    /// rollout grows an instance's configuration wave by wave until it
    /// reaches the full target list.
    pub fn merge(&mut self, other: &SimplePolicy) {
        for (action, domain) in other.events() {
            self.add_target(action, domain.clone());
        }
    }

    /// Every `(action, domain)` pair — one *moderation event* in the
    /// paper's accounting.
    pub fn events(&self) -> impl Iterator<Item = (SimpleAction, &Domain)> {
        self.targets
            .iter()
            .flat_map(|(a, list)| list.iter().map(move |d| (*a, d)))
    }

    /// Actions with at least one target.
    pub fn active_actions(&self) -> Vec<SimpleAction> {
        self.targets
            .iter()
            .filter(|(_, list)| !list.is_empty())
            .map(|(a, _)| *a)
            .collect()
    }

    /// Whether `domain` is targeted by `action` (subdomains match).
    pub fn matches(&self, action: SimpleAction, domain: &Domain) -> bool {
        self.targets(action).iter().any(|t| domain.matches(t))
    }

    fn reject(&self, code: &'static str, detail: String) -> PolicyVerdict {
        PolicyVerdict::Reject(RejectReason::new(PolicyKind::Simple, code, detail))
    }
}

impl MrfPolicy for SimplePolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::Simple
    }

    fn filter(&self, ctx: &PolicyContext<'_>, mut activity: Activity) -> PolicyVerdict {
        let origin = activity.origin().clone();
        // Local activities are never subject to SimplePolicy.
        if ctx.is_local(&origin) {
            return PolicyVerdict::Pass(activity);
        }
        // reject: the brute-force block the paper centres on.
        if self.matches(SimpleAction::Reject, &origin) {
            return self.reject("instance_blocked", format!("{origin} is rejected"));
        }
        // accept: whitelist federation if configured.
        let whitelist = self.targets(SimpleAction::Accept);
        if !whitelist.is_empty() && !whitelist.iter().any(|t| origin.matches(t)) {
            return self.reject("not_whitelisted", format!("{origin} not in accept list"));
        }
        // reject_deletes / report_removal: kind-specific drops.
        if activity.kind == ActivityKind::Delete
            && self.matches(SimpleAction::RejectDeletes, &origin)
        {
            return self.reject("delete_rejected", format!("deletes from {origin} ignored"));
        }
        if activity.kind == ActivityKind::Flag && self.matches(SimpleAction::ReportRemoval, &origin)
        {
            return self.reject("report_removed", format!("reports from {origin} ignored"));
        }
        // Profile image stripping is an effect on actor rendering.
        if self.matches(SimpleAction::BannerRemoval, &origin) {
            ctx.emit(SideEffect::ProfileMediaStripped {
                host: origin.clone(),
                image: ProfileImage::Banner,
            });
        }
        if self.matches(SimpleAction::AvatarRemoval, &origin) {
            ctx.emit(SideEffect::ProfileMediaStripped {
                host: origin.clone(),
                image: ProfileImage::Avatar,
            });
        }
        // Post rewrites.
        if let Some(post) = activity.note_mut() {
            if self.matches(SimpleAction::MediaRemoval, &origin) {
                post.strip_media();
            }
            if self.matches(SimpleAction::MediaNsfw, &origin) {
                post.force_sensitive();
            }
            if self.matches(SimpleAction::FederatedTimelineRemoval, &origin)
                && post.visibility == Visibility::Public
            {
                post.visibility = Visibility::Unlisted;
            }
            if self.matches(SimpleAction::FollowersOnly, &origin) && post.visibility.is_public_ish()
            {
                post.visibility = Visibility::FollowersOnly;
            }
        }
        PolicyVerdict::Pass(activity)
    }

    fn describe(&self) -> String {
        let parts: Vec<String> = self
            .targets
            .iter()
            .filter(|(_, l)| !l.is_empty())
            .map(|(a, l)| format!("{}:{}", a.label(), l.len()))
            .collect();
        format!("SimplePolicy({})", parts.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::{ActivityId, PostId, UserId, UserRef};
    use crate::model::{MediaAttachment, MediaKind, Post};
    use crate::mrf::context::NullActorDirectory;
    use crate::time::SimTime;

    fn remote_post(domain: &str) -> Activity {
        let author = UserRef::new(UserId(5), Domain::new(domain));
        let mut post = Post::stub(PostId(1), author, SimTime(0), "content");
        post.media.push(MediaAttachment {
            host: Domain::new(domain),
            kind: MediaKind::Image,
            sensitive: false,
        });
        Activity::create(ActivityId(1), post)
    }

    fn run(policy: &SimplePolicy, act: Activity) -> (PolicyVerdict, Vec<SideEffect>) {
        let local = Domain::new("home.example");
        let dir = NullActorDirectory;
        let ctx = PolicyContext::new(&local, SimTime(1000), &dir);
        let v = policy.filter(&ctx, act);
        let effects = ctx.take_effects();
        (v, effects)
    }

    #[test]
    fn reject_blocks_everything_from_target() {
        let p = SimplePolicy::new().with_target(SimpleAction::Reject, Domain::new("bad.example"));
        let (v, _) = run(&p, remote_post("bad.example"));
        let r = v.expect_reject();
        assert_eq!(r.code, "instance_blocked");
        assert_eq!(r.policy, PolicyKind::Simple);
    }

    #[test]
    fn reject_matches_subdomains() {
        let p = SimplePolicy::new().with_target(SimpleAction::Reject, Domain::new("bad.example"));
        let (v, _) = run(&p, remote_post("media.bad.example"));
        assert!(!v.is_pass());
    }

    #[test]
    fn unrelated_instances_pass() {
        let p = SimplePolicy::new().with_target(SimpleAction::Reject, Domain::new("bad.example"));
        let (v, _) = run(&p, remote_post("good.example"));
        assert!(v.is_pass());
    }

    #[test]
    fn local_activities_are_exempt() {
        let p = SimplePolicy::new().with_target(SimpleAction::Reject, Domain::new("home.example"));
        let (v, _) = run(&p, remote_post("home.example"));
        assert!(v.is_pass(), "SimplePolicy never applies to local traffic");
    }

    #[test]
    fn accept_whitelist_blocks_unlisted_instances() {
        let p =
            SimplePolicy::new().with_target(SimpleAction::Accept, Domain::new("friend.example"));
        let (v, _) = run(&p, remote_post("friend.example"));
        assert!(v.is_pass());
        let (v, _) = run(&p, remote_post("stranger.example"));
        assert_eq!(v.expect_reject().code, "not_whitelisted");
    }

    #[test]
    fn media_removal_strips_attachments_keeps_text() {
        let p = SimplePolicy::new()
            .with_target(SimpleAction::MediaRemoval, Domain::new("porn.example"));
        let (v, _) = run(&p, remote_post("porn.example"));
        let a = v.expect_pass();
        let post = a.note().unwrap();
        assert!(!post.has_media());
        assert_eq!(post.content, "content");
    }

    #[test]
    fn nsfw_forces_sensitive() {
        let p =
            SimplePolicy::new().with_target(SimpleAction::MediaNsfw, Domain::new("lewd.example"));
        let (v, _) = run(&p, remote_post("lewd.example"));
        let a = v.expect_pass();
        assert!(a.note().unwrap().sensitive);
    }

    #[test]
    fn fed_timeline_removal_delists() {
        let p = SimplePolicy::new().with_target(
            SimpleAction::FederatedTimelineRemoval,
            Domain::new("loud.example"),
        );
        let (v, _) = run(&p, remote_post("loud.example"));
        assert_eq!(
            v.expect_pass().note().unwrap().visibility,
            Visibility::Unlisted
        );
    }

    #[test]
    fn followers_only_downgrades_visibility() {
        let p = SimplePolicy::new()
            .with_target(SimpleAction::FollowersOnly, Domain::new("spam.example"));
        let (v, _) = run(&p, remote_post("spam.example"));
        assert_eq!(
            v.expect_pass().note().unwrap().visibility,
            Visibility::FollowersOnly
        );
    }

    #[test]
    fn reject_deletes_drops_only_deletes() {
        let p = SimplePolicy::new()
            .with_target(SimpleAction::RejectDeletes, Domain::new("flaky.example"));
        let author = UserRef::new(UserId(5), Domain::new("flaky.example"));
        let del = Activity::delete(ActivityId(2), author, PostId(1), SimTime(10));
        let (v, _) = run(&p, del);
        assert_eq!(v.expect_reject().code, "delete_rejected");
        // Creates still pass.
        let (v, _) = run(&p, remote_post("flaky.example"));
        assert!(v.is_pass());
    }

    #[test]
    fn report_removal_drops_flags() {
        let p = SimplePolicy::new()
            .with_target(SimpleAction::ReportRemoval, Domain::new("noisy.example"));
        let actor = UserRef::new(UserId(5), Domain::new("noisy.example"));
        let target = UserRef::new(UserId(9), Domain::new("home.example"));
        let flag = Activity::report(ActivityId(3), actor, target, "spam", SimTime(5));
        let (v, _) = run(&p, flag);
        assert_eq!(v.expect_reject().code, "report_removed");
    }

    #[test]
    fn banner_and_avatar_removal_emit_effects() {
        let p = SimplePolicy::new()
            .with_target(SimpleAction::BannerRemoval, Domain::new("ugly.example"))
            .with_target(SimpleAction::AvatarRemoval, Domain::new("ugly.example"));
        let (v, effects) = run(&p, remote_post("ugly.example"));
        assert!(v.is_pass());
        assert_eq!(effects.len(), 2);
        assert!(effects.iter().any(|e| matches!(
            e,
            SideEffect::ProfileMediaStripped {
                image: ProfileImage::Banner,
                ..
            }
        )));
        assert!(effects.iter().any(|e| matches!(
            e,
            SideEffect::ProfileMediaStripped {
                image: ProfileImage::Avatar,
                ..
            }
        )));
    }

    #[test]
    fn events_enumerates_action_target_pairs() {
        let p = SimplePolicy::new()
            .with_target(SimpleAction::Reject, Domain::new("a.example"))
            .with_target(SimpleAction::Reject, Domain::new("b.example"))
            .with_target(SimpleAction::MediaNsfw, Domain::new("c.example"));
        assert_eq!(p.events().count(), 3);
        assert_eq!(p.targets(SimpleAction::Reject).len(), 2);
        assert_eq!(p.active_actions().len(), 2);
    }

    #[test]
    fn add_target_deduplicates() {
        let mut p = SimplePolicy::new();
        p.add_target(SimpleAction::Reject, Domain::new("a.example"));
        p.add_target(SimpleAction::Reject, Domain::new("a.example"));
        assert_eq!(p.targets(SimpleAction::Reject).len(), 1);
    }

    #[test]
    fn labels_round_trip() {
        for a in SimpleAction::ALL {
            assert_eq!(SimpleAction::parse(a.label()), Some(a));
            assert_eq!(SimpleAction::parse(a.config_key()), Some(a));
        }
        assert_eq!(SimpleAction::parse("bogus"), None);
    }

    #[test]
    fn describe_summarises_config() {
        let p = SimplePolicy::new().with_target(SimpleAction::Reject, Domain::new("a.example"));
        assert_eq!(p.describe(), "SimplePolicy(reject:1)");
    }
}
