//! `ObjectAgePolicy` — the most widely enabled policy (66.9% of instances).
//!
//! §4.1: *"This policy allows admins to apply an action based on the age of
//! a post regardless of the post's harmful/non-harmful nature. The default
//! age threshold is 7 days [...] Possible actions: (i) delist, (ii) strip
//! followers, (iii) reject."* Enabled by default since Pleroma 2.1.0.

use crate::catalog::PolicyKind;
use crate::model::{Activity, Visibility};
use crate::mrf::context::PolicyContext;
use crate::mrf::verdict::{PolicyVerdict, RejectReason};
use crate::mrf::{MrfPolicy, RefVerdict};
use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Actions `ObjectAgePolicy` can take on over-age posts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ObjectAgeAction {
    /// Remove the post from public timelines.
    Delist,
    /// Remove the author's followers from the recipient list.
    StripFollowers,
    /// Reject the message entirely.
    Reject,
}

/// Configuration and implementation of `ObjectAgePolicy`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ObjectAgePolicy {
    /// Posts older than this when received are acted on (default 7 days).
    pub threshold: SimDuration,
    /// Actions to apply (default: delist + strip-followers, matching
    /// Pleroma's `mrf_object_age` defaults).
    pub actions: Vec<ObjectAgeAction>,
}

impl Default for ObjectAgePolicy {
    fn default() -> Self {
        ObjectAgePolicy {
            threshold: SimDuration::days(7),
            actions: vec![ObjectAgeAction::Delist, ObjectAgeAction::StripFollowers],
        }
    }
}

impl ObjectAgePolicy {
    /// A policy with the given threshold and actions.
    pub fn new(threshold: SimDuration, actions: Vec<ObjectAgeAction>) -> Self {
        ObjectAgePolicy { threshold, actions }
    }

    /// A rejecting variant (threshold default).
    pub fn rejecting() -> Self {
        ObjectAgePolicy {
            threshold: SimDuration::days(7),
            actions: vec![ObjectAgeAction::Reject],
        }
    }
}

impl MrfPolicy for ObjectAgePolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::ObjectAge
    }

    fn filter(&self, ctx: &PolicyContext<'_>, mut activity: Activity) -> PolicyVerdict {
        let Some(post) = activity.note_mut() else {
            return PolicyVerdict::Pass(activity); // only Creates carry an age
        };
        let age = post.age_at(ctx.now);
        if age <= self.threshold {
            return PolicyVerdict::Pass(activity);
        }
        if self.actions.contains(&ObjectAgeAction::Reject) {
            return PolicyVerdict::Reject(RejectReason::new(
                PolicyKind::ObjectAge,
                "too_old",
                format!("post age {age} exceeds {}", self.threshold),
            ));
        }
        if self.actions.contains(&ObjectAgeAction::Delist) && post.visibility == Visibility::Public
        {
            post.visibility = Visibility::Unlisted;
        }
        if self.actions.contains(&ObjectAgeAction::StripFollowers) {
            post.followers_stripped = true;
        }
        PolicyVerdict::Pass(activity)
    }

    fn judge_ref(
        &self,
        ctx: &PolicyContext<'_>,
        activity: &Activity,
        published: SimTime,
    ) -> RefVerdict {
        let Some(post) = activity.note() else {
            return RefVerdict::Pass; // only Creates carry an age
        };
        // The borrowed post's `created` is overridden by `published`, so
        // age is judged against the override, exactly as `filter` would
        // see it on a stamped clone.
        let age = ctx.now.since(published);
        if age <= self.threshold {
            return RefVerdict::Pass;
        }
        if self.actions.contains(&ObjectAgeAction::Reject) {
            return RefVerdict::Reject(PolicyKind::ObjectAge);
        }
        let would_delist = self.actions.contains(&ObjectAgeAction::Delist)
            && post.visibility == Visibility::Public;
        let would_strip = self.actions.contains(&ObjectAgeAction::StripFollowers);
        if would_delist || would_strip {
            RefVerdict::NeedsClone
        } else {
            RefVerdict::Pass
        }
    }

    fn describe(&self) -> String {
        format!(
            "ObjectAgePolicy(threshold={},actions={})",
            self.threshold,
            self.actions.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::{ActivityId, Domain, PostId, UserId, UserRef};
    use crate::model::Post;
    use crate::mrf::context::NullActorDirectory;
    use crate::time::SimTime;

    fn aged_create(created: SimTime) -> Activity {
        let author = UserRef::new(UserId(1), Domain::new("old.example"));
        Activity::create(ActivityId(1), Post::stub(PostId(1), author, created, "x"))
    }

    fn filter_at(policy: &ObjectAgePolicy, act: Activity, now: SimTime) -> PolicyVerdict {
        let local = Domain::new("home.example");
        let dir = NullActorDirectory;
        let ctx = PolicyContext::new(&local, now, &dir);
        policy.filter(&ctx, act)
    }

    #[test]
    fn fresh_posts_pass_untouched() {
        let p = ObjectAgePolicy::default();
        let now = SimTime(SimDuration::days(3).as_secs());
        let v = filter_at(&p, aged_create(SimTime(0)), now);
        let a = v.expect_pass();
        assert_eq!(a.note().unwrap().visibility, Visibility::Public);
        assert!(!a.note().unwrap().followers_stripped);
    }

    #[test]
    fn exactly_at_threshold_passes() {
        let p = ObjectAgePolicy::default();
        let now = SimTime(SimDuration::days(7).as_secs());
        let v = filter_at(&p, aged_create(SimTime(0)), now);
        assert_eq!(
            v.expect_pass().note().unwrap().visibility,
            Visibility::Public
        );
    }

    #[test]
    fn default_actions_delist_and_strip() {
        let p = ObjectAgePolicy::default();
        let now = SimTime(SimDuration::days(8).as_secs());
        let v = filter_at(&p, aged_create(SimTime(0)), now);
        let a = v.expect_pass();
        let post = a.note().unwrap();
        assert_eq!(post.visibility, Visibility::Unlisted, "delisted");
        assert!(post.followers_stripped, "followers stripped");
    }

    #[test]
    fn reject_variant_rejects_old_posts() {
        let p = ObjectAgePolicy::rejecting();
        let now = SimTime(SimDuration::days(30).as_secs());
        let v = filter_at(&p, aged_create(SimTime(0)), now);
        assert_eq!(v.expect_reject().code, "too_old");
    }

    #[test]
    fn custom_threshold_respected() {
        let p = ObjectAgePolicy::new(SimDuration::days(1), vec![ObjectAgeAction::Reject]);
        let now = SimTime(SimDuration::hours(30).as_secs());
        assert!(!filter_at(&p, aged_create(SimTime(0)), now).is_pass());
        let now = SimTime(SimDuration::hours(20).as_secs());
        assert!(filter_at(&p, aged_create(SimTime(0)), now).is_pass());
    }

    #[test]
    fn non_create_activities_pass() {
        let p = ObjectAgePolicy::rejecting();
        let actor = UserRef::new(UserId(1), Domain::new("old.example"));
        let follow = Activity::follow(
            ActivityId(2),
            actor,
            UserRef::new(UserId(2), Domain::new("home.example")),
            SimTime(0),
        );
        let v = filter_at(&p, follow, SimTime(SimDuration::days(365).as_secs()));
        assert!(v.is_pass());
    }
}
