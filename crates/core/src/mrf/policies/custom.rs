//! The 20 admin-created custom policies of Figure 7.
//!
//! §4.1: *"instance administrators have created the other 20"* policies.
//! The paper observes their names through the metadata API but (unlike the
//! in-built set) does not document their behaviour; we implement each with
//! the semantics its name and the surrounding Pleroma ecosystem imply, so
//! that a synthetic instance enabling one behaves plausibly.

use crate::catalog::PolicyKind;
use crate::id::{Domain, UserId};
use crate::model::{Activity, ActivityKind, Visibility};
use crate::mrf::context::{PolicyContext, SideEffect};
use crate::mrf::verdict::{PolicyVerdict, RejectReason};
use crate::mrf::MrfPolicy;
use crate::time::{SimDuration, SimTime};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// `AMQPPolicy` — mirrors every accepted activity onto a message bus.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AmqpPolicy {
    /// Routing key for the mirrored messages.
    pub routing_key: String,
}

impl Default for AmqpPolicy {
    fn default() -> Self {
        AmqpPolicy {
            routing_key: "fediverse.inbound".to_string(),
        }
    }
}

impl MrfPolicy for AmqpPolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::Amqp
    }

    fn filter(&self, ctx: &PolicyContext<'_>, activity: Activity) -> PolicyVerdict {
        ctx.emit(SideEffect::MirroredToBus {
            routing_key: self.routing_key.clone(),
        });
        PolicyVerdict::Pass(activity)
    }

    fn rewrites_content(&self) -> bool {
        false
    }
}

/// `KanayaBlogProcessPolicy` — site-specific rewrite for a blog-bridging
/// instance: posts from the configured blog domain get a header line.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KanayaBlogProcessPolicy {
    /// The bridged blog's domain.
    pub blog_domain: Domain,
}

impl MrfPolicy for KanayaBlogProcessPolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::KanayaBlogProcess
    }

    fn filter(&self, _ctx: &PolicyContext<'_>, mut activity: Activity) -> PolicyVerdict {
        if activity.origin().matches(&self.blog_domain) {
            if let Some(post) = activity.note_mut() {
                if !post.content.starts_with("[blog] ") {
                    post.content = format!("[blog] {}", post.content).into();
                }
            }
        }
        PolicyVerdict::Pass(activity)
    }
}

/// `AntispamSandbox` — forces posts from suspected spam accounts
/// (zero followers + links) to followers-only, instead of rejecting like
/// `AntiLinkSpamPolicy` would.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct AntispamSandboxPolicy;

impl MrfPolicy for AntispamSandboxPolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::AntispamSandbox
    }

    fn filter(&self, ctx: &PolicyContext<'_>, mut activity: Activity) -> PolicyVerdict {
        let suspect = ctx.actors.followers(&activity.actor) == Some(0);
        if suspect {
            if let Some(post) = activity.note_mut() {
                if post.has_links && post.visibility.is_public_ish() {
                    post.visibility = Visibility::FollowersOnly;
                }
            }
        }
        PolicyVerdict::Pass(activity)
    }
}

/// The `SupSlash*` family — board-specific filters (`/x/`, `/pol/`,
/// `/mlp/`, `/g/`, `/b/`) that drop posts carrying the board's hashtags.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BoardFilterPolicy {
    kind: PolicyKind,
    /// Hashtags that identify the board's content.
    pub board_tags: Vec<String>,
}

impl BoardFilterPolicy {
    /// Builds a filter for one of the SupSlash policies. Panics if `kind`
    /// is not one of the five board variants.
    pub fn new(kind: PolicyKind, board_tags: Vec<String>) -> Self {
        assert!(
            matches!(
                kind,
                PolicyKind::SupSlashX
                    | PolicyKind::SupSlashPol
                    | PolicyKind::SupSlashMlp
                    | PolicyKind::SupSlashG
                    | PolicyKind::SupSlashB
            ),
            "BoardFilterPolicy only implements the SupSlash* policies"
        );
        BoardFilterPolicy { kind, board_tags }
    }
}

impl MrfPolicy for BoardFilterPolicy {
    fn kind(&self) -> PolicyKind {
        self.kind
    }

    fn filter(&self, _ctx: &PolicyContext<'_>, activity: Activity) -> PolicyVerdict {
        if let Some(post) = activity.note() {
            if post
                .hashtags
                .iter()
                .any(|h| self.board_tags.iter().any(|t| t == h))
            {
                return PolicyVerdict::Reject(RejectReason::new(
                    self.kind,
                    "board_filtered",
                    format!("post tagged for filtered board: {:?}", post.hashtags),
                ));
            }
        }
        PolicyVerdict::Pass(activity)
    }

    fn rewrites_content(&self) -> bool {
        false
    }
}

/// `BlockNotification` — tells the local admin when report (`Flag`)
/// traffic arrives, signalling incoming moderation pressure.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct BlockNotificationPolicy;

impl MrfPolicy for BlockNotificationPolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::BlockNotification
    }

    fn filter(&self, ctx: &PolicyContext<'_>, activity: Activity) -> PolicyVerdict {
        if activity.kind == ActivityKind::Flag {
            ctx.emit(SideEffect::AdminNotified {
                message: format!("incoming report from {}", activity.origin()),
            });
        }
        PolicyVerdict::Pass(activity)
    }

    fn rewrites_content(&self) -> bool {
        false
    }
}

/// `NoIncomingDeletes` — ignores `Delete` activities from remote instances.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct NoIncomingDeletesPolicy;

impl MrfPolicy for NoIncomingDeletesPolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::NoIncomingDeletes
    }

    fn filter(&self, ctx: &PolicyContext<'_>, activity: Activity) -> PolicyVerdict {
        if activity.kind == ActivityKind::Delete && !ctx.is_local(activity.origin()) {
            return PolicyVerdict::Reject(RejectReason::new(
                PolicyKind::NoIncomingDeletes,
                "delete_ignored",
                format!("remote delete from {} ignored", activity.origin()),
            ));
        }
        PolicyVerdict::Pass(activity)
    }

    fn rewrites_content(&self) -> bool {
        false
    }
}

/// `RewritePolicy` — rewrites configured substrings in incoming posts.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RewritePolicy {
    /// `(from, to)` replacement pairs, applied in order.
    pub rules: Vec<(String, String)>,
}

impl MrfPolicy for RewritePolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::Rewrite
    }

    fn filter(&self, _ctx: &PolicyContext<'_>, mut activity: Activity) -> PolicyVerdict {
        if let Some(post) = activity.note_mut() {
            for (from, to) in &self.rules {
                if !from.is_empty() {
                    post.content = post.content.replace(from, to).into();
                }
            }
        }
        PolicyVerdict::Pass(activity)
    }
}

/// `RejectCloudflarePolicy` — rejects activities from instances fronted by
/// a disliked CDN (modelled as a domain list).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RejectCloudflarePolicy {
    /// Domains known to be CDN-fronted.
    pub fronted_domains: Vec<Domain>,
}

impl MrfPolicy for RejectCloudflarePolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::RejectCloudflare
    }

    fn filter(&self, _ctx: &PolicyContext<'_>, activity: Activity) -> PolicyVerdict {
        if self
            .fronted_domains
            .iter()
            .any(|d| activity.origin().matches(d))
        {
            return PolicyVerdict::Reject(RejectReason::new(
                PolicyKind::RejectCloudflare,
                "cdn_fronted",
                format!("{} is CDN-fronted", activity.origin()),
            ));
        }
        PolicyVerdict::Pass(activity)
    }

    fn rewrites_content(&self) -> bool {
        false
    }
}

/// `RacismRemover` — drops posts matching a racism keyword list.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RacismRemoverPolicy {
    /// Lexicon of slurs/terms to drop on (lowercase).
    pub lexicon: Vec<String>,
}

impl MrfPolicy for RacismRemoverPolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::RacismRemover
    }

    fn filter(&self, _ctx: &PolicyContext<'_>, activity: Activity) -> PolicyVerdict {
        if let Some(post) = activity.note() {
            let lower = post.content.to_ascii_lowercase();
            if let Some(term) = self.lexicon.iter().find(|t| lower.contains(t.as_str())) {
                return PolicyVerdict::Reject(RejectReason::new(
                    PolicyKind::RacismRemover,
                    "racist_content",
                    format!("matched lexicon term {term:?}"),
                ));
            }
        }
        PolicyVerdict::Pass(activity)
    }

    fn rewrites_content(&self) -> bool {
        false
    }
}

/// `CdnWarmingPolicy` — primes a CDN cache with incoming attachments
/// (behaviourally a sibling of `MediaProxyWarmingPolicy`).
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct CdnWarmingPolicy;

impl MrfPolicy for CdnWarmingPolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::CdnWarming
    }

    fn filter(&self, ctx: &PolicyContext<'_>, activity: Activity) -> PolicyVerdict {
        if let Some(post) = activity.note() {
            for m in &post.media {
                ctx.emit(SideEffect::MediaPrefetched {
                    host: m.host.clone(),
                });
            }
        }
        PolicyVerdict::Pass(activity)
    }

    fn rewrites_content(&self) -> bool {
        false
    }
}

/// `SogigiMindWarmingPolicy` — instance-specific media cache warmer.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct SogigiMindWarmingPolicy;

impl MrfPolicy for SogigiMindWarmingPolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::SogigiMindWarming
    }

    fn filter(&self, ctx: &PolicyContext<'_>, activity: Activity) -> PolicyVerdict {
        if let Some(post) = activity.note() {
            if !post.media.is_empty() {
                ctx.emit(SideEffect::MediaPrefetched {
                    host: activity.origin().clone(),
                });
            }
        }
        PolicyVerdict::Pass(activity)
    }

    fn rewrites_content(&self) -> bool {
        false
    }
}

/// `NotifyLocalUsersPolicy` — pings local users about activity from watched
/// domains.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct NotifyLocalUsersPolicy {
    /// Domains whose activity triggers a notification.
    pub watched: Vec<Domain>,
}

impl MrfPolicy for NotifyLocalUsersPolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::NotifyLocalUsers
    }

    fn filter(&self, ctx: &PolicyContext<'_>, activity: Activity) -> PolicyVerdict {
        if self.watched.iter().any(|d| activity.origin().matches(d)) {
            ctx.emit(SideEffect::LocalUsersNotified {
                about: activity.origin().clone(),
            });
        }
        PolicyVerdict::Pass(activity)
    }

    fn rewrites_content(&self) -> bool {
        false
    }
}

/// `BonziEmojiReactions` — drops `EmojiReact` activities. (The paper's
/// Figure 7 lists this policy under a longer instance-specific name.)
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct BonziEmojiReactionsPolicy;

impl MrfPolicy for BonziEmojiReactionsPolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::BonziEmojiReactions
    }

    fn filter(&self, _ctx: &PolicyContext<'_>, activity: Activity) -> PolicyVerdict {
        if activity.kind == ActivityKind::EmojiReact {
            return PolicyVerdict::Reject(RejectReason::new(
                PolicyKind::BonziEmojiReactions,
                "emoji_react_dropped",
                "EmojiReact activities are dropped",
            ));
        }
        PolicyVerdict::Pass(activity)
    }

    fn rewrites_content(&self) -> bool {
        false
    }
}

/// `AutoRejectPolicy` — rejects activities from instances whose domain
/// matches a heuristic pattern list.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AutoRejectPolicy {
    /// Substring patterns applied to the origin domain.
    pub patterns: Vec<String>,
}

impl MrfPolicy for AutoRejectPolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::AutoReject
    }

    fn filter(&self, _ctx: &PolicyContext<'_>, activity: Activity) -> PolicyVerdict {
        let origin = activity.origin().as_str();
        if let Some(p) = self.patterns.iter().find(|p| origin.contains(p.as_str())) {
            return PolicyVerdict::Reject(RejectReason::new(
                PolicyKind::AutoReject,
                "pattern_matched",
                format!("origin matches pattern {p:?}"),
            ));
        }
        PolicyVerdict::Pass(activity)
    }

    fn rewrites_content(&self) -> bool {
        false
    }
}

/// `LocalOnlyPolicy` — keeps selected local users' posts off the
/// federation: on the outbound path their Creates are rejected (dropped
/// before delivery), keeping the content local-only.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LocalOnlyPolicy {
    /// Local users whose posts must not federate.
    pub users: Vec<UserId>,
}

impl MrfPolicy for LocalOnlyPolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::LocalOnly
    }

    fn filter(&self, ctx: &PolicyContext<'_>, activity: Activity) -> PolicyVerdict {
        if ctx.is_local(activity.origin())
            && activity.kind == ActivityKind::Create
            && self.users.contains(&activity.actor.user)
        {
            return PolicyVerdict::Reject(RejectReason::new(
                PolicyKind::LocalOnly,
                "local_only",
                format!("{} posts stay local", activity.actor),
            ));
        }
        PolicyVerdict::Pass(activity)
    }

    fn rewrites_content(&self) -> bool {
        false
    }
}

/// `SandboxPolicy` — quarantines newly seen remote instances: until a
/// domain has been known for the quarantine period, its posts are forced
/// to followers-only visibility.
#[derive(Debug)]
pub struct SandboxPolicy {
    /// How long a new domain stays quarantined.
    pub quarantine: SimDuration,
    first_seen: Mutex<HashMap<Domain, SimTime>>,
}

impl SandboxPolicy {
    /// Builds the policy with the given quarantine period.
    pub fn new(quarantine: SimDuration) -> Self {
        SandboxPolicy {
            quarantine,
            first_seen: Mutex::new(HashMap::new()),
        }
    }
}

impl Default for SandboxPolicy {
    fn default() -> Self {
        SandboxPolicy::new(SimDuration::days(7))
    }
}

impl MrfPolicy for SandboxPolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::SandboxCustom
    }

    fn filter(&self, ctx: &PolicyContext<'_>, mut activity: Activity) -> PolicyVerdict {
        let origin = activity.origin().clone();
        if ctx.is_local(&origin) {
            return PolicyVerdict::Pass(activity);
        }
        let first = *self.first_seen.lock().entry(origin).or_insert(ctx.now);
        if ctx.now.since(first) < self.quarantine {
            if let Some(post) = activity.note_mut() {
                if post.visibility.is_public_ish() {
                    post.visibility = Visibility::FollowersOnly;
                }
            }
        }
        PolicyVerdict::Pass(activity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::{ActivityId, PostId, UserRef};
    use crate::model::Post;
    use crate::mrf::context::{ActorDirectory, NullActorDirectory};

    fn note(domain: &str, content: &str) -> Activity {
        let author = UserRef::new(UserId(1), Domain::new(domain));
        Activity::create(
            ActivityId(1),
            Post::stub(PostId(1), author, SimTime(0), content),
        )
    }

    fn run_at(p: &dyn MrfPolicy, act: Activity, now: SimTime) -> (PolicyVerdict, Vec<SideEffect>) {
        let local = Domain::new("home.example");
        let dir = NullActorDirectory;
        let ctx = PolicyContext::new(&local, now, &dir);
        let v = p.filter(&ctx, act);
        (v, ctx.take_effects())
    }

    fn run(p: &dyn MrfPolicy, act: Activity) -> (PolicyVerdict, Vec<SideEffect>) {
        run_at(p, act, SimTime(0))
    }

    #[test]
    fn amqp_mirrors_everything() {
        let (v, effects) = run(&AmqpPolicy::default(), note("a.example", "x"));
        assert!(v.is_pass());
        assert!(
            matches!(&effects[0], SideEffect::MirroredToBus { routing_key } if routing_key == "fediverse.inbound")
        );
    }

    #[test]
    fn kanaya_prefixes_blog_posts_idempotently() {
        let p = KanayaBlogProcessPolicy {
            blog_domain: Domain::new("blog.example"),
        };
        let (v, _) = run(&p, note("blog.example", "post body"));
        let a = v.expect_pass();
        assert_eq!(&*a.note().unwrap().content, "[blog] post body");
        // Re-filtering must not double the prefix.
        let (v, _) = run(&p, a);
        assert_eq!(
            &*v.expect_pass().note().unwrap().content,
            "[blog] post body"
        );
    }

    #[test]
    fn antispam_sandbox_downgrades_spam_visibility() {
        struct ZeroFollowers;
        impl ActorDirectory for ZeroFollowers {
            fn is_bot(&self, _: &UserRef) -> bool {
                false
            }
            fn followers(&self, _: &UserRef) -> Option<u32> {
                Some(0)
            }
            fn created(&self, _: &UserRef) -> Option<SimTime> {
                None
            }
            fn mrf_tags(&self, _: &UserRef) -> Vec<String> {
                Vec::new()
            }
            fn report_count(&self, _: &UserRef) -> u32 {
                0
            }
        }
        let local = Domain::new("home.example");
        let dir = ZeroFollowers;
        let ctx = PolicyContext::new(&local, SimTime(0), &dir);
        let mut act = note("spam.example", "buy stuff");
        act.note_mut().unwrap().has_links = true;
        let v = AntispamSandboxPolicy.filter(&ctx, act);
        assert_eq!(
            v.expect_pass().note().unwrap().visibility,
            Visibility::FollowersOnly
        );
    }

    #[test]
    fn board_filters_reject_tagged_posts() {
        let p = BoardFilterPolicy::new(PolicyKind::SupSlashPol, vec!["politics".into()]);
        let mut act = note("board.example", "rant");
        act.note_mut().unwrap().hashtags.push("politics".into());
        let (v, _) = run(&p, act);
        assert_eq!(v.expect_reject().code, "board_filtered");
        assert_eq!(p.kind(), PolicyKind::SupSlashPol);
        let (v, _) = run(&p, note("board.example", "rant"));
        assert!(v.is_pass());
    }

    #[test]
    #[should_panic(expected = "only implements the SupSlash")]
    fn board_filter_rejects_wrong_kind() {
        let _ = BoardFilterPolicy::new(PolicyKind::NoOp, vec![]);
    }

    #[test]
    fn block_notification_pings_admin_on_flags() {
        let actor = UserRef::new(UserId(1), Domain::new("remote.example"));
        let target = UserRef::new(UserId(2), Domain::new("home.example"));
        let flag = Activity::report(ActivityId(1), actor, target, "bad", SimTime(0));
        let (v, effects) = run(&BlockNotificationPolicy, flag);
        assert!(v.is_pass());
        assert_eq!(effects.len(), 1);
        // Non-flag traffic is silent.
        let (_, effects) = run(&BlockNotificationPolicy, note("remote.example", "x"));
        assert!(effects.is_empty());
    }

    #[test]
    fn no_incoming_deletes_rejects_remote_deletes_only() {
        let remote = UserRef::new(UserId(1), Domain::new("remote.example"));
        let del = Activity::delete(ActivityId(1), remote, PostId(9), SimTime(0));
        let (v, _) = run(&NoIncomingDeletesPolicy, del);
        assert_eq!(v.expect_reject().code, "delete_ignored");
        let local = UserRef::new(UserId(1), Domain::new("home.example"));
        let del = Activity::delete(ActivityId(2), local, PostId(9), SimTime(0));
        let (v, _) = run(&NoIncomingDeletesPolicy, del);
        assert!(v.is_pass());
    }

    #[test]
    fn rewrite_applies_rules_in_order() {
        let p = RewritePolicy {
            rules: vec![
                ("cat".into(), "dog".into()),
                ("dog".into(), "ferret".into()),
            ],
        };
        let (v, _) = run(&p, note("a.example", "my cat"));
        assert_eq!(&*v.expect_pass().note().unwrap().content, "my ferret");
    }

    #[test]
    fn reject_cloudflare_blocks_fronted() {
        let p = RejectCloudflarePolicy {
            fronted_domains: vec![Domain::new("cf.example")],
        };
        assert!(!run(&p, note("cf.example", "x")).0.is_pass());
        assert!(run(&p, note("self.example", "x")).0.is_pass());
    }

    #[test]
    fn racism_remover_drops_lexicon_hits() {
        let p = RacismRemoverPolicy {
            lexicon: vec!["slur1".into()],
        };
        assert!(!run(&p, note("a.example", "text with SLUR1 inside"))
            .0
            .is_pass());
        assert!(run(&p, note("a.example", "clean text")).0.is_pass());
    }

    #[test]
    fn bonzi_drops_emoji_reacts() {
        use crate::model::ActivityPayload;
        let react = Activity {
            id: ActivityId(1),
            actor: UserRef::new(UserId(1), Domain::new("a.example")),
            kind: ActivityKind::EmojiReact,
            payload: ActivityPayload::Reaction {
                post: PostId(1),
                emoji: Some("bonzi".into()),
            },
            published: SimTime(0),
        };
        let (v, _) = run(&BonziEmojiReactionsPolicy, react);
        assert_eq!(v.expect_reject().code, "emoji_react_dropped");
        assert!(run(&BonziEmojiReactionsPolicy, note("a.example", "x"))
            .0
            .is_pass());
    }

    #[test]
    fn auto_reject_matches_domain_patterns() {
        let p = AutoRejectPolicy {
            patterns: vec!["freespeech".into()],
        };
        assert!(!run(&p, note("freespeechextremist.com", "x")).0.is_pass());
        assert!(run(&p, note("quiet.example", "x")).0.is_pass());
    }

    #[test]
    fn local_only_blocks_listed_local_users_outbound() {
        let p = LocalOnlyPolicy {
            users: vec![UserId(1)],
        };
        assert!(!run(&p, note("home.example", "stays here")).0.is_pass());
        // Other local users federate fine.
        let author = UserRef::new(UserId(2), Domain::new("home.example"));
        let act = Activity::create(
            ActivityId(1),
            Post::stub(PostId(1), author, SimTime(0), "x"),
        );
        assert!(run(&p, act).0.is_pass());
        // Remote users are unaffected.
        assert!(run(&p, note("remote.example", "x")).0.is_pass());
    }

    #[test]
    fn sandbox_quarantines_new_domains_then_releases() {
        let p = SandboxPolicy::new(SimDuration::days(7));
        // Day 0: first contact, quarantined.
        let (v, _) = run_at(&p, note("new.example", "x"), SimTime(0));
        assert_eq!(
            v.expect_pass().note().unwrap().visibility,
            Visibility::FollowersOnly
        );
        // Day 3: still quarantined.
        let t3 = SimTime(SimDuration::days(3).as_secs());
        let (v, _) = run_at(&p, note("new.example", "x"), t3);
        assert_eq!(
            v.expect_pass().note().unwrap().visibility,
            Visibility::FollowersOnly
        );
        // Day 8: released.
        let t8 = SimTime(SimDuration::days(8).as_secs());
        let (v, _) = run_at(&p, note("new.example", "x"), t8);
        assert_eq!(
            v.expect_pass().note().unwrap().visibility,
            Visibility::Public
        );
    }

    #[test]
    fn cdn_and_sogigi_warming_emit_prefetches() {
        use crate::model::{MediaAttachment, MediaKind};
        let author = UserRef::new(UserId(1), Domain::new("a.example"));
        let mut post = Post::stub(PostId(1), author, SimTime(0), "pic");
        post.media.push(MediaAttachment {
            host: Domain::new("a.example"),
            kind: MediaKind::Image,
            sensitive: false,
        });
        let act = Activity::create(ActivityId(1), post);
        let (_, effects) = run(&CdnWarmingPolicy, act.clone());
        assert_eq!(effects.len(), 1);
        let (_, effects) = run(&SogigiMindWarmingPolicy, act);
        assert_eq!(effects.len(), 1);
    }

    #[test]
    fn notify_local_users_on_watched_domains() {
        let p = NotifyLocalUsersPolicy {
            watched: vec![Domain::new("watched.example")],
        };
        let (_, effects) = run(&p, note("watched.example", "x"));
        assert_eq!(effects.len(), 1);
        let (_, effects) = run(&p, note("other.example", "x"));
        assert!(effects.is_empty());
    }
}
