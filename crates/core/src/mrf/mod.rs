//! The MRF (Message Rewrite Facility) policy engine.
//!
//! Pleroma moderates federation traffic by passing every activity through a
//! configurable chain of *policies*. Each policy may pass the activity
//! through unchanged, rewrite it (e.g. strip media, force NSFW, de-list),
//! or reject it outright — mirroring Pleroma's `MRF.filter/1` contract of
//! `{:ok, object} | {:reject, reason}`. Administrators enable policies and
//! point them at target instances; the paper measures exactly this
//! configuration surface.
//!
//! This module defines:
//!
//! * [`MrfPolicy`] — the policy trait;
//! * [`PolicyContext`] — read-only environment (local domain, simulated
//!   clock, actor directory) plus a side-effect sink;
//! * [`PolicyVerdict`] / [`RejectReason`] — the filter result;
//! * [`MrfPipeline`] — ordered composition with short-circuit on reject and
//!   a per-policy decision trace.
//!
//! Policy implementations live in the sibling modules, one file per policy
//! family, each carrying its configuration knobs and unit tests.

mod context;
mod pipeline;
#[cfg(test)]
mod proptests;
mod verdict;

pub mod policies;

pub use context::{
    ActorDirectory, EffectSink, NullActorDirectory, PolicyContext, ProfileImage, SideEffect,
};
pub use pipeline::{FilterOutcome, MrfPipeline, PolicyDecision, PolicyTrace};
pub use verdict::{PolicyVerdict, RejectReason};

use crate::catalog::PolicyKind;
use crate::model::Activity;
use crate::time::SimTime;

/// Verdict of the borrow-based fast path ([`MrfPolicy::judge_ref`]).
///
/// Unlike [`PolicyVerdict`], a rejection carries only the rejecting
/// policy's [`PolicyKind`] — no allocated reason string — so bulk
/// simulation can tally millions of verdicts without touching the heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefVerdict {
    /// The activity would flow through this policy unchanged.
    Pass,
    /// The activity would be rejected by the named policy.
    Reject(PolicyKind),
    /// This policy would (or might) rewrite the activity; the caller
    /// must fall back to the owning [`MrfPolicy::filter`] path.
    NeedsClone,
}

/// A single MRF policy.
///
/// Implementations must be cheap to call and free of interior mutability
/// except through the [`PolicyContext`]'s effect sink: the same policy
/// object is shared across every activity an instance ingests.
pub trait MrfPolicy: Send + Sync {
    /// Which catalog entry this policy implements.
    fn kind(&self) -> PolicyKind;

    /// Filter one activity: pass it through (possibly rewritten) or reject.
    fn filter(&self, ctx: &PolicyContext<'_>, activity: Activity) -> PolicyVerdict;

    /// Whether this policy may *rewrite* activities it passes through.
    ///
    /// `false` promises that every `Pass` verdict returns the activity
    /// byte-identical to its input (rejections and side effects are still
    /// allowed). The default is the conservative `true`; pure policies
    /// override it so [`MrfPipeline::filter_fast_ref`] can judge borrowed
    /// activities without cloning.
    fn rewrites_content(&self) -> bool {
        true
    }

    /// Judge a borrowed activity as if its `published` stamp (and the
    /// enclosed post's `created` stamp) were `published`, without taking
    /// ownership.
    ///
    /// Must decide exactly as [`filter`](Self::filter) would on a clone
    /// stamped with `published`: `Pass` iff the clone would pass
    /// *unmodified*, `Reject` iff it would be rejected, and `NeedsClone`
    /// whenever this policy would rewrite this particular activity. The
    /// default delegates to `filter` on a stamped clone when
    /// [`rewrites_content`](Self::rewrites_content) is `false` (sound:
    /// such a policy never rewrites), and returns `NeedsClone` otherwise.
    /// Hot policies override this with a true borrow-based judgement.
    fn judge_ref(
        &self,
        ctx: &PolicyContext<'_>,
        activity: &Activity,
        published: SimTime,
    ) -> RefVerdict {
        if self.rewrites_content() {
            return RefVerdict::NeedsClone;
        }
        let mut stamped = activity.clone();
        stamped.published = published;
        if let Some(post) = stamped.note_mut() {
            post.created = published;
        }
        match self.filter(ctx, stamped) {
            PolicyVerdict::Pass(_) => RefVerdict::Pass,
            PolicyVerdict::Reject(reason) => RefVerdict::Reject(reason.policy),
        }
    }

    /// Human-readable one-line summary of this policy's configuration,
    /// rendered into the instance metadata the crawler scrapes.
    fn describe(&self) -> String {
        self.kind().name().to_string()
    }

    /// Downcast to the concrete [`policies::SimplePolicy`], if this *is*
    /// one. The pipeline's delta API ([`MrfPipeline::apply_simple_delta`])
    /// uses this to mutate the compiled `SimplePolicy` stage in place
    /// instead of recompiling the whole chain; every other policy keeps
    /// the `None` default.
    fn as_simple(&self) -> Option<&policies::SimplePolicy> {
        None
    }

    /// Mutable variant of [`as_simple`](Self::as_simple), reachable only
    /// through a uniquely-owned stage (`Arc::get_mut`).
    fn as_simple_mut(&mut self) -> Option<&mut policies::SimplePolicy> {
        None
    }
}
