//! The environment a policy runs in.

use crate::id::{Domain, UserRef};
use crate::time::{SimDuration, SimTime};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// Read-only directory of actor (account) facts a policy may consult.
///
/// On a live instance this is backed by the user database; several policies
/// need it (`AntiFollowbotPolicy` checks the bot flag, `AntiLinkSpamPolicy`
/// checks account age/followers, `TagPolicy` reads admin-applied MRF tags,
/// `RepeatOffenderPolicy` reads the report counter).
pub trait ActorDirectory: Send + Sync {
    /// Whether the account is flagged as a bot / service actor.
    fn is_bot(&self, actor: &UserRef) -> bool;
    /// Follower count, if known.
    fn followers(&self, actor: &UserRef) -> Option<u32>;
    /// Account creation time, if known.
    fn created(&self, actor: &UserRef) -> Option<SimTime>;
    /// MRF tags the local admin applied to this account.
    fn mrf_tags(&self, actor: &UserRef) -> Vec<String>;
    /// Number of reports (`Flag` activities) filed against this account.
    fn report_count(&self, actor: &UserRef) -> u32;

    /// Account age at `now`, if creation time is known.
    fn account_age(&self, actor: &UserRef, now: SimTime) -> Option<SimDuration> {
        self.created(actor).map(|c| now.since(c))
    }
}

/// An [`ActorDirectory`] that knows nothing — useful in tests and for
/// policies evaluated outside a server context.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullActorDirectory;

impl ActorDirectory for NullActorDirectory {
    fn is_bot(&self, _: &UserRef) -> bool {
        false
    }
    fn followers(&self, _: &UserRef) -> Option<u32> {
        None
    }
    fn created(&self, _: &UserRef) -> Option<SimTime> {
        None
    }
    fn mrf_tags(&self, _: &UserRef) -> Vec<String> {
        Vec::new()
    }
    fn report_count(&self, _: &UserRef) -> u32 {
        0
    }
}

/// Side effects a policy may trigger beyond pass/rewrite/reject.
///
/// These model the "warming"/"stealing"/notification behaviours of several
/// in-built policies; servers drain the sink after each filter run and act
/// on the effects (e.g. record a stolen emoji).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SideEffect {
    /// `StealEmojiPolicy` copied an emoji locally.
    EmojiStolen {
        /// Emoji shortcode.
        shortcode: String,
        /// Host it was copied from.
        host: Domain,
    },
    /// `MediaProxyWarmingPolicy` / `CdnWarmingPolicy` prefetched media.
    MediaPrefetched {
        /// Host the media was fetched from.
        host: Domain,
    },
    /// `FollowBotPolicy` auto-followed a newly discovered user.
    AutoFollowed {
        /// The discovered account that was followed.
        target: UserRef,
    },
    /// `NotifyLocalUsersPolicy` pinged local users about a policy event.
    LocalUsersNotified {
        /// Which remote domain triggered the notification.
        about: Domain,
    },
    /// `AMQPPolicy` mirrored the activity onto a message bus.
    MirroredToBus {
        /// Routing key used.
        routing_key: String,
    },
    /// `BlockNotification` told the admin about an incoming block.
    AdminNotified {
        /// Human-readable message.
        message: String,
    },
    /// A policy requested a report be forwarded to moderators.
    ReportForwarded {
        /// The reported account.
        target: UserRef,
    },
    /// `SimplePolicy` banner/avatar removal stripped a profile image.
    ProfileMediaStripped {
        /// Origin instance whose actors get their profile media dropped.
        host: Domain,
        /// Which image was stripped.
        image: ProfileImage,
    },
}

/// Which profile image a `SimplePolicy` removal action stripped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProfileImage {
    /// The account avatar.
    Avatar,
    /// The profile banner.
    Banner,
}

/// Environment handed to every policy invocation.
pub struct PolicyContext<'a> {
    /// Domain of the instance running the pipeline.
    pub local_domain: &'a Domain,
    /// Current simulated time (the *receive* time; `ObjectAgePolicy`
    /// compares this against the post's creation time).
    pub now: SimTime,
    /// Actor facts.
    pub actors: &'a dyn ActorDirectory,
    effects: EffectSink,
}

impl<'a> PolicyContext<'a> {
    /// Creates a context.
    pub fn new(local_domain: &'a Domain, now: SimTime, actors: &'a dyn ActorDirectory) -> Self {
        PolicyContext {
            local_domain,
            now,
            actors,
            effects: EffectSink::default(),
        }
    }

    /// Whether `domain` is the local instance.
    pub fn is_local(&self, domain: &Domain) -> bool {
        domain == self.local_domain
    }

    /// Record a side effect.
    pub fn emit(&self, effect: SideEffect) {
        self.effects.push(effect);
    }

    /// Drain all recorded side effects.
    pub fn take_effects(&self) -> Vec<SideEffect> {
        self.effects.drain()
    }
}

/// Thread-safe accumulator of [`SideEffect`]s.
#[derive(Debug, Default)]
pub struct EffectSink {
    inner: Mutex<Vec<SideEffect>>,
}

impl EffectSink {
    /// Append an effect.
    pub fn push(&self, effect: SideEffect) {
        self.inner.lock().push(effect);
    }

    /// Take every accumulated effect, leaving the sink empty.
    pub fn drain(&self) -> Vec<SideEffect> {
        std::mem::take(&mut *self.inner.lock())
    }

    /// Number of effects currently queued.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// True if no effects are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::UserId;

    #[test]
    fn null_directory_defaults() {
        let d = NullActorDirectory;
        let u = UserRef::new(UserId(1), Domain::new("x.example"));
        assert!(!d.is_bot(&u));
        assert_eq!(d.followers(&u), None);
        assert_eq!(d.account_age(&u, SimTime(100)), None);
        assert!(d.mrf_tags(&u).is_empty());
        assert_eq!(d.report_count(&u), 0);
    }

    #[test]
    fn context_collects_effects() {
        let local = Domain::new("home.example");
        let dir = NullActorDirectory;
        let ctx = PolicyContext::new(&local, SimTime(0), &dir);
        assert!(ctx.is_local(&Domain::new("home.example")));
        assert!(!ctx.is_local(&Domain::new("away.example")));
        ctx.emit(SideEffect::MediaPrefetched {
            host: Domain::new("cdn.example"),
        });
        ctx.emit(SideEffect::EmojiStolen {
            shortcode: "blobcat".into(),
            host: Domain::new("emoji.example"),
        });
        let effects = ctx.take_effects();
        assert_eq!(effects.len(), 2);
        assert!(ctx.take_effects().is_empty(), "drain empties the sink");
    }

    #[test]
    fn sink_len_tracks() {
        let sink = EffectSink::default();
        assert!(sink.is_empty());
        sink.push(SideEffect::AdminNotified {
            message: "hi".into(),
        });
        assert_eq!(sink.len(), 1);
        sink.drain();
        assert!(sink.is_empty());
    }
}
