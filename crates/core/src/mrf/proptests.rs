//! Property-based tests for the MRF engine's laws.

#![cfg(test)]

use crate::catalog::PolicyKind;
use crate::id::{ActivityId, Domain, PostId, UserId, UserRef};
use crate::model::{Activity, Post, Visibility};
use crate::mrf::policies::{
    EnsureRePrependedPolicy, HellthreadPolicy, KeywordAction, KeywordPolicy, KeywordRule,
    NoOpPolicy, NormalizeMarkupPolicy, SimpleAction, SimplePolicy,
};
use crate::mrf::{MrfPipeline, MrfPolicy, NullActorDirectory, PolicyContext, PolicyVerdict};
use crate::time::SimTime;
use proptest::prelude::*;
use std::sync::Arc;

fn ctx_bits() -> (Domain, NullActorDirectory) {
    (Domain::new("home.example"), NullActorDirectory)
}

fn arb_post() -> impl Strategy<Value = Post> {
    (
        1u64..1_000_000,
        "[a-z]{2,8}\\.[a-z]{2,4}",
        proptest::collection::vec("[a-z]{1,10}", 0..12),
        0usize..30,
        prop_oneof![
            Just(Visibility::Public),
            Just(Visibility::Unlisted),
            Just(Visibility::FollowersOnly),
            Just(Visibility::Direct),
        ],
        proptest::option::of("[a-z ]{1,20}"),
        any::<bool>(),
    )
        .prop_map(
            |(id, domain, words, mentions, visibility, subject, reply)| {
                let author = UserRef::new(UserId(id % 977), Domain::new(domain));
                let mut post =
                    Post::stub(PostId(id), author, SimTime(id % 10_000), words.join(" "));
                post.visibility = visibility;
                post.subject = subject;
                post.in_reply_to = reply.then_some(PostId(1));
                for m in 0..mentions {
                    post.mentions
                        .push(UserRef::new(UserId(m as u64), Domain::new("m.example")));
                }
                post
            },
        )
}

/// One control-phase event of the delta-API differential test: a
/// rollout-wave merge, a single cascade block, or a policy enable —
/// exactly the event mix the dynamics engine routes through the
/// incremental compilation path.
#[derive(Debug, Clone)]
enum DeltaOp {
    Merge(Vec<(usize, String)>),
    Block(String),
    Enable(usize),
}

proptest! {
    /// NoOp is the identity: the activity comes out exactly as it went in.
    #[test]
    fn noop_is_identity(post in arb_post()) {
        let (local, dir) = ctx_bits();
        let ctx = PolicyContext::new(&local, SimTime(0), &dir);
        let act = Activity::create(ActivityId(1), post);
        let before = format!("{act:?}");
        match NoOpPolicy.filter(&ctx, act) {
            PolicyVerdict::Pass(after) => prop_assert_eq!(before, format!("{after:?}")),
            PolicyVerdict::Reject(_) => prop_assert!(false, "NoOp must never reject"),
        }
        prop_assert!(ctx.take_effects().is_empty());
    }

    /// An empty pipeline passes everything unchanged; appending NoOp never
    /// changes a pipeline's verdict.
    #[test]
    fn noop_append_preserves_verdict(post in arb_post(), reject_origin in any::<bool>()) {
        let (local, dir) = ctx_bits();
        let origin = post.author.domain.clone();
        let mut simple = SimplePolicy::new();
        if reject_origin {
            simple.add_target(SimpleAction::Reject, origin);
        }
        let base = MrfPipeline::new().with(Arc::new(simple.clone()));
        let extended = MrfPipeline::new()
            .with(Arc::new(simple))
            .with(Arc::new(NoOpPolicy));
        let act = Activity::create(ActivityId(1), post);
        let ctx1 = PolicyContext::new(&local, SimTime(0), &dir);
        let ctx2 = PolicyContext::new(&local, SimTime(0), &dir);
        let a = base.filter(&ctx1, act.clone()).accepted();
        let b = extended.filter(&ctx2, act).accepted();
        prop_assert_eq!(a, b);
    }

    /// EnsureRePrepended is idempotent: filtering twice equals filtering
    /// once.
    #[test]
    fn ensure_re_prepended_idempotent(post in arb_post()) {
        let (local, dir) = ctx_bits();
        let p = EnsureRePrependedPolicy;
        let ctx = PolicyContext::new(&local, SimTime(0), &dir);
        let once = p
            .filter(&ctx, Activity::create(ActivityId(1), post))
            .expect_pass();
        let subject_once = once.note().unwrap().subject.clone();
        let ctx = PolicyContext::new(&local, SimTime(0), &dir);
        let twice = p.filter(&ctx, once).expect_pass();
        prop_assert_eq!(subject_once, twice.note().unwrap().subject.clone());
    }

    /// NormalizeMarkup is idempotent and never grows the content.
    #[test]
    fn normalize_markup_idempotent(raw in "[a-z<>/ ]{0,60}") {
        let (local, dir) = ctx_bits();
        let author = UserRef::new(UserId(1), Domain::new("a.example"));
        let post = Post::stub(PostId(1), author, SimTime(0), raw.clone());
        let ctx = PolicyContext::new(&local, SimTime(0), &dir);
        let once = NormalizeMarkupPolicy
            .filter(&ctx, Activity::create(ActivityId(1), post))
            .expect_pass();
        let c1 = once.note().unwrap().content.clone();
        prop_assert!(c1.len() <= raw.len());
        let ctx = PolicyContext::new(&local, SimTime(0), &dir);
        let twice = NormalizeMarkupPolicy.filter(&ctx, once).expect_pass();
        prop_assert_eq!(&c1, &twice.note().unwrap().content);
        prop_assert!(!c1.contains('<') || !c1.contains('>') || raw.find('<') > raw.find('>'));
    }

    /// Hellthread verdicts are monotone in the mention count: if a post
    /// with n mentions is rejected, any post with more mentions is too.
    #[test]
    fn hellthread_monotone(n in 0usize..40) {
        let (local, dir) = ctx_bits();
        let p = HellthreadPolicy::default();
        let author = UserRef::new(UserId(1), Domain::new("a.example"));
        let verdict_at = |k: usize| {
            let mut post = Post::stub(PostId(1), author.clone(), SimTime(0), "x");
            for i in 0..k {
                post.mentions.push(UserRef::new(UserId(i as u64), Domain::new("m.example")));
            }
            let ctx = PolicyContext::new(&local, SimTime(0), &dir);
            p.filter(&ctx, Activity::create(ActivityId(1), post)).is_pass()
        };
        if !verdict_at(n) {
            prop_assert!(!verdict_at(n + 1), "rejection must be monotone");
        }
    }

    /// Keyword Replace eliminates the pattern: after filtering, a
    /// case-insensitive search no longer finds it (when the replacement
    /// doesn't reintroduce it).
    #[test]
    fn keyword_replace_eliminates_pattern(
        body in "[a-f ]{0,40}",
        pattern in "[a-f]{2,6}",
    ) {
        let (local, dir) = ctx_bits();
        let p = KeywordPolicy::new(vec![KeywordRule::new(
            pattern.clone(),
            KeywordAction::Replace("XX".into()),
        )]);
        let author = UserRef::new(UserId(1), Domain::new("a.example"));
        let post = Post::stub(PostId(1), author, SimTime(0), body);
        let ctx = PolicyContext::new(&local, SimTime(0), &dir);
        let out = p
            .filter(&ctx, Activity::create(ActivityId(1), post))
            .expect_pass();
        let content = out.note().unwrap().content.to_ascii_lowercase();
        prop_assert!(!content.contains(&pattern.to_ascii_lowercase()));
    }

    /// Pipeline trace length never exceeds the number of policies, and
    /// ends with the rejecting policy on rejection.
    #[test]
    fn trace_is_well_formed(post in arb_post(), drop_everything in any::<bool>()) {
        let (local, dir) = ctx_bits();
        let mut pipeline = MrfPipeline::new().with(Arc::new(NoOpPolicy));
        if drop_everything {
            pipeline.push(Arc::new(crate::mrf::policies::DropPolicy));
        }
        pipeline.push(Arc::new(NoOpPolicy));
        let ctx = PolicyContext::new(&local, SimTime(0), &dir);
        let out = pipeline.filter(&ctx, Activity::create(ActivityId(1), post));
        prop_assert!(out.trace.len() <= pipeline.len());
        if let Some(reason) = out.rejection() {
            prop_assert_eq!(reason.policy, PolicyKind::Drop);
            let last = out.trace.last().unwrap();
            prop_assert!(matches!(
                last.decision,
                crate::mrf::PolicyDecision::Rejected(_)
            ));
        } else {
            prop_assert_eq!(out.trace.len(), pipeline.len());
        }
    }

    /// `filter_fast` agrees with `filter` on every catalog policy:
    /// identical accept/reject decision and identical surviving activity
    /// (rewrites included), for arbitrary posts through a pipeline built
    /// from every instantiable policy in the catalog.
    #[test]
    fn filter_fast_agrees_with_filter(
        post in arb_post(),
        subset_mask in any::<u64>(),
        reject_origin in any::<bool>(),
    ) {
        let (local, dir) = ctx_bits();
        let catalog = crate::catalog::PolicyCatalog::global();
        let mut config = crate::config::InstanceModerationConfig::default();
        for (i, entry) in catalog.entries().iter().enumerate() {
            if subset_mask & (1 << (i % 64)) != 0 {
                config.enable(entry.kind);
            }
        }
        if reject_origin {
            let mut simple = SimplePolicy::new();
            simple.add_target(SimpleAction::Reject, post.author.domain.clone());
            config.set_simple(simple);
        }
        let pipeline = config.build_pipeline();
        let act = Activity::create(ActivityId(1), post);
        let ctx1 = PolicyContext::new(&local, SimTime(0), &dir);
        let traced = pipeline.filter(&ctx1, act.clone());
        let ctx2 = PolicyContext::new(&local, SimTime(0), &dir);
        let fast = pipeline.filter_fast(&ctx2, act);
        match (&traced.verdict, &fast) {
            (PolicyVerdict::Pass(a), PolicyVerdict::Pass(b)) => {
                prop_assert_eq!(format!("{a:?}"), format!("{b:?}"));
            }
            (PolicyVerdict::Reject(a), PolicyVerdict::Reject(b)) => {
                prop_assert_eq!(a, b);
            }
            _ => prop_assert!(
                false,
                "filter/filter_fast verdicts diverge: {:?} vs {:?}",
                traced.verdict,
                fast
            ),
        }
    }

    /// `filter_fast_ref` agrees with `filter_fast` on every catalog
    /// policy: a `Pass` from the zero-clone path implies the cloning
    /// path passes *and* leaves the stamped activity byte-identical (no
    /// rewrite was needed after all); a `Reject` implies the cloning
    /// path rejects via the same policy; `NeedsClone` defers to the
    /// cloning path by construction, so there is nothing to cross-check.
    #[test]
    fn filter_fast_ref_agrees_with_filter_fast(
        post in arb_post(),
        subset_mask in any::<u64>(),
        reject_origin in any::<bool>(),
        published in 0u64..10_000,
    ) {
        use crate::mrf::RefVerdict;
        let (local, dir) = ctx_bits();
        let catalog = crate::catalog::PolicyCatalog::global();
        let mut config = crate::config::InstanceModerationConfig::default();
        for (i, entry) in catalog.entries().iter().enumerate() {
            if subset_mask & (1 << (i % 64)) != 0 {
                config.enable(entry.kind);
            }
        }
        if reject_origin {
            let mut simple = SimplePolicy::new();
            simple.add_target(SimpleAction::Reject, post.author.domain.clone());
            config.set_simple(simple);
        }
        let pipeline = config.build_pipeline();
        let act = Activity::create(ActivityId(1), post);
        let published = SimTime(published);
        let ctx1 = PolicyContext::new(&local, published, &dir);
        let by_ref = pipeline.filter_fast_ref(&ctx1, &act, published);
        // The cloning side sees exactly what the engine's fallback
        // builds: the template clone stamped with `published`.
        let mut stamped = act.clone();
        stamped.published = published;
        if let Some(p) = stamped.note_mut() {
            p.created = published;
        }
        let ctx2 = PolicyContext::new(&local, published, &dir);
        let cloned = pipeline.filter_fast(&ctx2, stamped.clone());
        match by_ref {
            RefVerdict::Pass => match cloned {
                PolicyVerdict::Pass(out) => prop_assert_eq!(
                    format!("{stamped:?}"),
                    format!("{out:?}"),
                    "zero-clone Pass must mean no rewrite was needed"
                ),
                PolicyVerdict::Reject(r) => prop_assert!(
                    false,
                    "ref path passed but cloning path rejected: {:?}",
                    r
                ),
            },
            RefVerdict::Reject(kind) => match cloned {
                PolicyVerdict::Reject(reason) => prop_assert_eq!(kind, reason.policy),
                PolicyVerdict::Pass(_) => prop_assert!(
                    false,
                    "ref path rejected via {:?} but cloning path passed",
                    kind
                ),
            },
            RefVerdict::NeedsClone => {}
        }
    }

    /// `filter_fast` agrees with `filter` on every *partially rolled
    /// out* pipeline: a staged rollout grows an instance's config by
    /// repeated `SimplePolicy::merge` (one wave at a time, exactly what
    /// the dynamics engine's `AdoptWave` replays), and the compiled
    /// pipeline after every wave must keep the two filter paths in
    /// lockstep — identical verdict and identical surviving activity.
    #[test]
    fn filter_fast_agrees_with_filter_across_rollout_waves(
        post in arb_post(),
        reject_domains in proptest::collection::vec("[a-z]{2,6}\\.[a-z]{2,3}", 0..9),
        nsfw_domains in proptest::collection::vec("[a-z]{2,6}\\.[a-z]{2,3}", 0..5),
        target_origin in any::<bool>(),
        extra_kinds_mask in any::<u64>(),
        waves in 1_usize..6,
    ) {
        use crate::rollout::PolicyRollout;
        use crate::time::SimDuration;

        let (local, dir) = ctx_bits();
        // The final config a rollout converges to: a SimplePolicy with
        // arbitrary reject / media-NSFW lists (optionally including the
        // post's own origin, so both verdicts get exercised) plus a
        // random slice of the catalog.
        let mut simple = SimplePolicy::new();
        for d in &reject_domains {
            simple.add_target(SimpleAction::Reject, Domain::new(d.clone()));
        }
        if target_origin {
            simple.add_target(SimpleAction::Reject, post.author.domain.clone());
        }
        for d in &nsfw_domains {
            simple.add_target(SimpleAction::MediaNsfw, Domain::new(d.clone()));
        }
        let mut target = crate::config::InstanceModerationConfig::pleroma_default();
        for (i, entry) in crate::catalog::PolicyCatalog::global().entries().iter().enumerate() {
            if extra_kinds_mask & (1 << (i % 64)) != 0 {
                target.enable(entry.kind);
            }
        }
        target.set_simple(simple);

        // Replay the staged adoption: merge wave after wave, checking
        // the two filter paths against each other at every stage.
        let rollout = PolicyRollout::staged(&target, waves, SimDuration::hours(8));
        prop_assert_eq!(rollout.waves.len(), waves);
        let mut config = crate::config::InstanceModerationConfig::default();
        for (w, wave) in rollout.waves.iter().enumerate() {
            config.apply_wave(wave);
            let pipeline = config.build_pipeline();
            let act = Activity::create(ActivityId(1), post.clone());
            let ctx1 = PolicyContext::new(&local, SimTime(0), &dir);
            let traced = pipeline.filter(&ctx1, act.clone());
            let ctx2 = PolicyContext::new(&local, SimTime(0), &dir);
            let fast = pipeline.filter_fast(&ctx2, act);
            match (&traced.verdict, &fast) {
                (PolicyVerdict::Pass(a), PolicyVerdict::Pass(b)) => {
                    prop_assert_eq!(format!("{a:?}"), format!("{b:?}"), "wave {}", w);
                }
                (PolicyVerdict::Reject(a), PolicyVerdict::Reject(b)) => {
                    prop_assert_eq!(a, b, "wave {}", w);
                }
                _ => prop_assert!(
                    false,
                    "filter/filter_fast diverged after wave {}: {:?} vs {:?}",
                    w,
                    traced.verdict,
                    fast
                ),
            }
        }
        // The fully merged config rejects the origin iff the target does
        // (local activities are exempt from SimplePolicy, so skip the
        // astronomically unlikely local-origin draw).
        if target_origin && post.author.domain.as_str() != "home.example" {
            let ctx = PolicyContext::new(&local, SimTime(0), &dir);
            let act = Activity::create(ActivityId(1), post.clone());
            prop_assert!(!config.build_pipeline().filter_fast(&ctx, act).is_pass());
        }
    }

    /// Differential check of the incremental (delta) compilation path:
    /// a random sequence of control-phase events — rollout-wave merges,
    /// single cascade blocks, policy enables — applied to a *live*
    /// pipeline via `apply_wave_compiled` / `enable_compiled` /
    /// `add_simple_target` must yield a pipeline whose `filter` *and*
    /// `filter_fast` verdicts on arbitrary posts are identical to a
    /// pipeline freshly `build_pipeline()`d from the equivalently
    /// mutated config — at every step, including after the pipeline has
    /// been cloned (the copy-on-write branch of the delta API).
    #[test]
    fn delta_api_matches_reference_compilation(
        post in arb_post(),
        ops in proptest::collection::vec(
            prop_oneof![
                // A rollout-wave merge: up to 4 (action, domain) targets.
                proptest::collection::vec(
                    (0usize..SimpleAction::ALL.len(), "[a-e]{2,4}\\.[a-z]{2,3}"),
                    1..5
                ).prop_map(DeltaOp::Merge),
                // A cascade imitation block: one reject edge.
                "[a-e]{2,4}\\.[a-z]{2,3}".prop_map(DeltaOp::Block),
                // An admin enabling one more catalog policy.
                (0usize..64).prop_map(DeltaOp::Enable),
            ],
            1..16,
        ),
        target_origin_at in proptest::option::of(0usize..16),
        clone_at in proptest::option::of(0usize..16),
    ) {
        use crate::rollout::RolloutWave;

        let (local, dir) = ctx_bits();
        let catalog = crate::catalog::PolicyCatalog::global();
        let mut live = crate::config::InstanceModerationConfig::pleroma_default();
        let mut pipeline = live.build_pipeline();
        let mut reference = live.clone();
        // Clones held across deltas force the copy-on-write branch.
        let mut held_clone = None;

        for (step, op) in ops.into_iter().enumerate() {
            match op {
                DeltaOp::Merge(targets) => {
                    let mut addition = SimplePolicy::new();
                    for (a, d) in &targets {
                        addition.add_target(SimpleAction::ALL[*a], Domain::new(d.clone()));
                    }
                    if target_origin_at == Some(step) {
                        addition.add_target(
                            SimpleAction::Reject,
                            post.author.domain.clone(),
                        );
                    }
                    let wave = RolloutWave {
                        offset: crate::time::SimDuration(0),
                        enable: Vec::new(),
                        simple: Some(addition),
                    };
                    live.apply_wave_compiled(&wave, &mut pipeline);
                    reference.apply_wave(&wave);
                }
                DeltaOp::Block(domain) => {
                    // Mirrors the dynamics defederate site: enable the
                    // Simple stage if needed, then one-target delta.
                    live.enable_compiled(PolicyKind::Simple, &mut pipeline);
                    live.simple
                        .get_or_insert_with(SimplePolicy::new)
                        .add_target(SimpleAction::Reject, Domain::new(domain.clone()));
                    prop_assert!(pipeline.add_simple_target(
                        SimpleAction::Reject,
                        Domain::new(domain.clone()),
                    ));
                    reference.enable(PolicyKind::Simple);
                    reference
                        .simple
                        .get_or_insert_with(SimplePolicy::new)
                        .add_target(SimpleAction::Reject, Domain::new(domain));
                }
                DeltaOp::Enable(i) => {
                    let kind = catalog.entries()[i % catalog.entries().len()].kind;
                    live.enable_compiled(kind, &mut pipeline);
                    reference.enable(kind);
                }
            }
            if clone_at == Some(step) {
                held_clone = Some(pipeline.clone());
            }
            // The delta-maintained pipeline must match a fresh reference
            // compile on both filter paths, every step of the way.
            let fresh = reference.build_pipeline();
            prop_assert_eq!(pipeline.kinds(), fresh.kinds(), "step {}", step);
            let act = Activity::create(ActivityId(1), post.clone());
            let ctx1 = PolicyContext::new(&local, SimTime(0), &dir);
            let ctx2 = PolicyContext::new(&local, SimTime(0), &dir);
            let slow = pipeline.filter(&ctx1, act.clone());
            let fresh_slow = fresh.filter(&ctx2, act.clone());
            prop_assert_eq!(
                format!("{:?}", slow.verdict),
                format!("{:?}", fresh_slow.verdict),
                "filter diverged at step {}",
                step
            );
            let ctx3 = PolicyContext::new(&local, SimTime(0), &dir);
            let ctx4 = PolicyContext::new(&local, SimTime(0), &dir);
            let fast = pipeline.filter_fast(&ctx3, act.clone());
            let fresh_fast = fresh.filter_fast(&ctx4, act);
            prop_assert_eq!(
                format!("{fast:?}"),
                format!("{fresh_fast:?}"),
                "filter_fast diverged at step {}",
                step
            );
        }
        drop(held_clone);
    }

    /// SimplePolicy events() always agrees with targets(): the number of
    /// events equals the sum of per-action list lengths, and removal
    /// shrinks it by exactly one.
    #[test]
    fn simple_policy_event_accounting(
        domains in proptest::collection::vec("[a-z]{2,6}\\.[a-z]{2,3}", 1..12),
    ) {
        let mut simple = SimplePolicy::new();
        for (i, d) in domains.iter().enumerate() {
            let action = SimpleAction::ALL[i % SimpleAction::ALL.len()];
            simple.add_target(action, Domain::new(d.clone()));
        }
        let total: usize = SimpleAction::ALL
            .iter()
            .map(|&a| simple.targets(a).len())
            .sum();
        prop_assert_eq!(simple.events().count(), total);
        // Remove the first event and re-check.
        let (action, domain) = {
            let (a, d) = simple.events().next().unwrap();
            (a, d.clone())
        };
        prop_assert!(simple.remove_target(action, &domain));
        prop_assert_eq!(simple.events().count(), total - 1);
    }
}
