//! Filter results.

use crate::catalog::PolicyKind;
use crate::model::Activity;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Why a policy rejected an activity.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RejectReason {
    /// The policy that rejected.
    pub policy: PolicyKind,
    /// Short machine-readable code (e.g. `instance_blocked`, `too_old`).
    pub code: String,
    /// Free-text detail for logs.
    pub detail: String,
}

impl RejectReason {
    /// Builds a reason.
    pub fn new(policy: PolicyKind, code: impl Into<String>, detail: impl Into<String>) -> Self {
        RejectReason {
            policy,
            code: code.into(),
            detail: detail.into(),
        }
    }
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.policy, self.code, self.detail)
    }
}

/// Result of one policy's `filter` call.
// `Pass` carries the full `Activity` by value on purpose: boxing it to
// shrink the enum would put an allocation on the bulk filtering hot path.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum PolicyVerdict {
    /// Let the (possibly rewritten) activity continue down the chain.
    Pass(Activity),
    /// Stop: the activity is rejected and will not be ingested.
    Reject(RejectReason),
}

impl PolicyVerdict {
    /// True if the verdict passes the activity on.
    pub fn is_pass(&self) -> bool {
        matches!(self, PolicyVerdict::Pass(_))
    }

    /// Unwraps the passed activity; panics on a rejection. Test helper.
    pub fn expect_pass(self) -> Activity {
        match self {
            PolicyVerdict::Pass(a) => a,
            PolicyVerdict::Reject(r) => panic!("expected pass, got rejection: {r}"),
        }
    }

    /// Unwraps the rejection; panics on a pass. Test helper.
    pub fn expect_reject(self) -> RejectReason {
        match self {
            PolicyVerdict::Reject(r) => r,
            PolicyVerdict::Pass(a) => panic!("expected rejection, got pass of {:?}", a.id),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::{ActivityId, Domain, PostId, UserId, UserRef};
    use crate::model::Post;
    use crate::time::SimTime;

    fn act() -> Activity {
        Activity::create(
            ActivityId(1),
            Post::stub(
                PostId(1),
                UserRef::new(UserId(1), Domain::new("a.example")),
                SimTime(0),
                "x",
            ),
        )
    }

    #[test]
    fn verdict_predicates() {
        assert!(PolicyVerdict::Pass(act()).is_pass());
        let r = RejectReason::new(PolicyKind::Simple, "instance_blocked", "a.example");
        assert!(!PolicyVerdict::Reject(r).is_pass());
    }

    #[test]
    fn reason_display() {
        let r = RejectReason::new(PolicyKind::ObjectAge, "too_old", "age 8d > 7d");
        assert_eq!(r.to_string(), "ObjectAgePolicy[too_old]: age 8d > 7d");
    }

    #[test]
    #[should_panic(expected = "expected pass")]
    fn expect_pass_panics_on_reject() {
        PolicyVerdict::Reject(RejectReason::new(PolicyKind::Drop, "drop", "all")).expect_pass();
    }
}
