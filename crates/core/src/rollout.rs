//! Staged policy rollouts: an instance's moderation configuration as a
//! sequence of adoption waves.
//!
//! The paper measures moderation as a *snapshot*; real configurations are
//! reached over time — an admin enables `SimplePolicy`, adds a handful of
//! reject targets after an incident, extends the list as blocklists
//! circulate. [`PolicyRollout`] decomposes a final
//! [`InstanceModerationConfig`] into [`RolloutWave`]s that a
//! discrete-event scenario replays at logical offsets, so the dynamics
//! engine can ask "how much toxic exposure did each wave actually
//! prevent?" instead of treating the config as always-on.
//!
//! Decomposition is deterministic and free of randomness (the core crate
//! stays the deterministic heart): waves split each action's target list
//! into contiguous chunks and distribute enabled policy kinds
//! round-robin, with the Pleroma defaults always present from wave zero.

use crate::catalog::PolicyKind;
use crate::config::InstanceModerationConfig;
use crate::mrf::policies::SimplePolicy;
use crate::time::SimDuration;
use serde::{Deserialize, Serialize};

/// One adoption step of a staged rollout.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RolloutWave {
    /// Logical offset from the rollout's start.
    pub offset: SimDuration,
    /// Policy kinds switched on in this wave.
    pub enable: Vec<PolicyKind>,
    /// `SimplePolicy` targets added in this wave (merged into whatever
    /// the instance already runs).
    pub simple: Option<SimplePolicy>,
}

impl RolloutWave {
    /// Whether the wave changes anything.
    pub fn is_empty(&self) -> bool {
        self.enable.is_empty()
            && self
                .simple
                .as_ref()
                .map(|s| s.events().count() == 0)
                .unwrap_or(true)
    }

    /// Clones the wave keeping only the `SimplePolicy` events `keep`
    /// accepts — the per-adopter subsampling primitive behind partial
    /// blocklist imports (§4.2: most admins adopt a *subset* of a
    /// circulating list, not its union). The predicate sees each
    /// `(action, domain)` pair in the wave's deterministic event order;
    /// `offset` and `enable` carry over verbatim, and a wave with no
    /// simple targets clones unchanged. When every event is dropped the
    /// clone's `simple` is `None`, so [`Self::is_empty`] answers
    /// correctly for enable-free waves and schedulers can skip them.
    pub fn subset_simple(
        &self,
        mut keep: impl FnMut(crate::mrf::policies::SimpleAction, &crate::id::Domain) -> bool,
    ) -> RolloutWave {
        let simple = self.simple.as_ref().and_then(|policy| {
            let mut sub: Option<SimplePolicy> = None;
            for (action, domain) in policy.events() {
                if keep(action, domain) {
                    sub.get_or_insert_with(SimplePolicy::new)
                        .add_target(action, domain.clone());
                }
            }
            sub
        });
        RolloutWave {
            offset: self.offset,
            enable: self.enable.clone(),
            simple,
        }
    }
}

/// A full staged rollout: waves in chronological order.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PolicyRollout {
    /// The waves, ordered by [`RolloutWave::offset`].
    pub waves: Vec<RolloutWave>,
}

impl PolicyRollout {
    /// Decomposes `target` into `waves` adoption steps spaced `interval`
    /// apart. Wave 0 (offset zero) carries the fresh-install defaults
    /// plus the first slice; applying every wave in order reproduces
    /// `target` exactly (verified by [`Self::replay`]).
    pub fn staged(
        target: &InstanceModerationConfig,
        waves: usize,
        interval: SimDuration,
    ) -> PolicyRollout {
        let waves = waves.max(1);
        let mut out: Vec<RolloutWave> = (0..waves)
            .map(|w| RolloutWave {
                offset: SimDuration(interval.0 * w as u64),
                enable: Vec::new(),
                simple: None,
            })
            .collect();
        // Defaults land in wave 0; the remaining kinds round-robin.
        let mut slot = 0;
        for &kind in &target.enabled {
            if kind.default_enabled() {
                out[0].enable.push(kind);
            } else {
                out[slot % waves].enable.push(kind);
                slot += 1;
            }
        }
        // Each action's target list splits into `waves` contiguous chunks.
        if let Some(simple) = &target.simple {
            for action in crate::mrf::policies::SimpleAction::ALL {
                let targets = simple.targets(action);
                if targets.is_empty() {
                    continue;
                }
                let chunk = targets.len().div_ceil(waves);
                for (w, slice) in targets.chunks(chunk).enumerate() {
                    let wave = &mut out[w.min(waves - 1)];
                    let cfg = wave.simple.get_or_insert_with(SimplePolicy::new);
                    for domain in slice {
                        cfg.add_target(action, domain.clone());
                    }
                }
            }
        }
        PolicyRollout { waves: out }
    }

    /// Applies every wave in order to a fresh config — the fixed point the
    /// staged decomposition converges to. Equals the original `target`
    /// up to policy order.
    pub fn replay(&self) -> InstanceModerationConfig {
        let mut config = InstanceModerationConfig::default();
        for wave in &self.waves {
            config.apply_wave(wave);
        }
        config
    }

    /// Total `(action, domain)` moderation events across all waves.
    pub fn total_events(&self) -> usize {
        self.waves
            .iter()
            .filter_map(|w| w.simple.as_ref())
            .map(|s| s.events().count())
            .sum()
    }
}

impl InstanceModerationConfig {
    /// Applies one rollout wave: enables the wave's policy kinds and
    /// merges its `SimplePolicy` targets into the current config.
    pub fn apply_wave(&mut self, wave: &RolloutWave) {
        for &kind in &wave.enable {
            self.enable(kind);
        }
        if let Some(addition) = &wave.simple {
            self.enable(PolicyKind::Simple);
            self.simple
                .get_or_insert_with(SimplePolicy::new)
                .merge(addition);
        }
    }

    /// Applies one rollout wave to the config *and* its compiled
    /// `pipeline` in place — O(delta) where
    /// [`apply_wave`](Self::apply_wave) + `build_pipeline` is
    /// O(policies + targets). `pipeline` must have been compiled from
    /// `self`; newly-enabled kinds append a stage (build order), and the
    /// wave's `SimplePolicy` addition merges into the compiled stage via
    /// [`crate::mrf::MrfPipeline::apply_simple_delta`]. Falls back to a
    /// full rebuild only if the pipeline has no `SimplePolicy` stage to
    /// absorb a simple delta (out-of-step pipelines), so the two paths
    /// can never diverge.
    pub fn apply_wave_compiled(
        &mut self,
        wave: &RolloutWave,
        pipeline: &mut crate::mrf::MrfPipeline,
    ) {
        for &kind in &wave.enable {
            self.enable_compiled(kind, pipeline);
        }
        if let Some(addition) = &wave.simple {
            self.enable_compiled(PolicyKind::Simple, pipeline);
            self.simple
                .get_or_insert_with(SimplePolicy::new)
                .merge(addition);
            if !pipeline.apply_simple_delta(addition) {
                *pipeline = self.build_pipeline();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::Domain;
    use crate::mrf::policies::SimpleAction;

    fn sample_config() -> InstanceModerationConfig {
        let mut simple = SimplePolicy::new();
        for i in 0..7 {
            simple.add_target(SimpleAction::Reject, Domain::new(format!("r{i}.example")));
        }
        simple.add_target(SimpleAction::MediaNsfw, Domain::new("lewd.example"));
        let mut config = InstanceModerationConfig::pleroma_default();
        config.enable(PolicyKind::Hellthread);
        config.enable(PolicyKind::StealEmoji);
        config.set_simple(simple);
        config
    }

    #[test]
    fn replay_reaches_the_target_config() {
        let target = sample_config();
        for waves in [1, 2, 3, 5, 9] {
            let rollout = PolicyRollout::staged(&target, waves, SimDuration::hours(4));
            let replayed = rollout.replay();
            let mut want = target.enabled.clone();
            let mut got = replayed.enabled.clone();
            want.sort();
            got.sort();
            assert_eq!(got, want, "{waves} waves");
            for action in SimpleAction::ALL {
                let mut w: Vec<_> = target.simple.as_ref().unwrap().targets(action).to_vec();
                let mut g: Vec<_> = replayed.simple.as_ref().unwrap().targets(action).to_vec();
                w.sort();
                g.sort();
                assert_eq!(g, w, "{waves} waves, {}", action.label());
            }
        }
    }

    #[test]
    fn waves_are_spaced_by_the_interval() {
        let rollout = PolicyRollout::staged(&sample_config(), 3, SimDuration::hours(4));
        assert_eq!(rollout.waves.len(), 3);
        assert_eq!(rollout.waves[0].offset, SimDuration(0));
        assert_eq!(rollout.waves[1].offset, SimDuration::hours(4));
        assert_eq!(rollout.waves[2].offset, SimDuration::hours(8));
    }

    #[test]
    fn defaults_land_in_wave_zero() {
        let rollout = PolicyRollout::staged(&sample_config(), 4, SimDuration::days(1));
        assert!(rollout.waves[0].enable.contains(&PolicyKind::ObjectAge));
        assert!(rollout.waves[0].enable.contains(&PolicyKind::NoOp));
    }

    #[test]
    fn event_mass_is_preserved() {
        let target = sample_config();
        let rollout = PolicyRollout::staged(&target, 3, SimDuration::hours(4));
        assert_eq!(
            rollout.total_events(),
            target.simple.as_ref().unwrap().events().count()
        );
    }

    #[test]
    fn merge_deduplicates() {
        let mut a = SimplePolicy::new().with_target(SimpleAction::Reject, Domain::new("x.example"));
        let b = SimplePolicy::new()
            .with_target(SimpleAction::Reject, Domain::new("x.example"))
            .with_target(SimpleAction::Reject, Domain::new("y.example"));
        a.merge(&b);
        assert_eq!(a.targets(SimpleAction::Reject).len(), 2);
    }

    #[test]
    fn subset_keeps_exactly_the_accepted_events() {
        let target = sample_config();
        let wave = PolicyRollout::staged(&target, 1, SimDuration::hours(4))
            .waves
            .remove(0);
        // Keep every other simple event; enables carry over verbatim.
        let mut flip = false;
        let sub = wave.subset_simple(|_, _| {
            flip = !flip;
            flip
        });
        assert_eq!(sub.enable, wave.enable);
        assert_eq!(sub.offset, wave.offset);
        let total = wave.simple.as_ref().unwrap().events().count();
        let kept = sub.simple.as_ref().unwrap().events().count();
        assert_eq!(kept, total.div_ceil(2));
        // Every kept event exists in the original.
        for (action, domain) in sub.simple.as_ref().unwrap().events() {
            assert!(wave.simple.as_ref().unwrap().matches(action, domain));
        }
        // Keep-all is a faithful clone; drop-all leaves no simple stage.
        let all = wave.subset_simple(|_, _| true);
        assert_eq!(all.simple.as_ref().unwrap().events().count(), total);
        let none = wave.subset_simple(|_, _| false);
        assert!(none.simple.is_none());
        // An enable-free wave whose events are all dropped is empty.
        let import_wave = RolloutWave {
            offset: SimDuration(0),
            enable: Vec::new(),
            simple: wave.simple.clone(),
        };
        assert!(import_wave.subset_simple(|_, _| false).is_empty());
    }

    #[test]
    fn severing_class_is_the_defederation_trio() {
        assert!(PolicyKind::Simple.severs_federation());
        assert!(PolicyKind::Block.severs_federation());
        assert!(PolicyKind::AutoReject.severs_federation());
        assert!(!PolicyKind::NoOp.severs_federation());
        assert!(!PolicyKind::Hellthread.severs_federation());
    }

    #[test]
    fn single_wave_is_the_whole_config() {
        let target = sample_config();
        let rollout = PolicyRollout::staged(&target, 1, SimDuration::hours(4));
        assert_eq!(rollout.waves.len(), 1);
        assert!(!rollout.waves[0].is_empty());
        assert_eq!(
            rollout.waves[0]
                .simple
                .as_ref()
                .unwrap()
                .targets(SimpleAction::Reject)
                .len(),
            7
        );
    }
}
