//! The simulated clock.
//!
//! The measurement campaign of the paper ran from 16 December 2020 to
//! 24 April 2021, polling instance metadata every four hours. fediscope
//! replays that campaign against a simulated fediverse, so time is *logical*:
//! a [`SimTime`] is a number of seconds since the Unix epoch, advanced by the
//! simulation driver rather than by the wall clock. This keeps every
//! experiment deterministic and lets tests compress five months into
//! microseconds.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time (seconds since the Unix epoch).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct SimTime(pub u64);

/// A span of simulated time (seconds).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct SimDuration(pub u64);

/// Start of the paper's measurement window: 16 December 2020, 00:00 UTC.
pub const CAMPAIGN_START: SimTime = SimTime(1_608_076_800);

/// End of the paper's measurement window: 24 April 2021, 00:00 UTC.
pub const CAMPAIGN_END: SimTime = SimTime(1_619_222_400);

/// The paper's metadata polling cadence: every 4 hours.
pub const SNAPSHOT_INTERVAL: SimDuration = SimDuration(4 * 3600);

impl SimTime {
    /// Seconds since the Unix epoch.
    pub fn as_secs(self) -> u64 {
        self.0
    }

    /// Time elapsed since `earlier`, saturating at zero (the simulated clock
    /// never runs backwards, but defensive call sites should not panic).
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The campaign day index (0-based) this time falls on, relative to
    /// [`CAMPAIGN_START`]. Times before the campaign map to day 0.
    pub fn campaign_day(self) -> u64 {
        self.0.saturating_sub(CAMPAIGN_START.0) / 86_400
    }
}

impl SimDuration {
    /// A duration of `n` seconds.
    pub const fn secs(n: u64) -> Self {
        SimDuration(n)
    }

    /// A duration of `n` minutes.
    pub const fn minutes(n: u64) -> Self {
        SimDuration(n * 60)
    }

    /// A duration of `n` hours.
    pub const fn hours(n: u64) -> Self {
        SimDuration(n * 3600)
    }

    /// A duration of `n` days.
    pub const fn days(n: u64) -> Self {
        SimDuration(n * 86_400)
    }

    /// The duration in whole seconds.
    pub fn as_secs(self) -> u64 {
        self.0
    }

    /// The duration in whole days (truncating).
    pub fn as_days(self) -> u64 {
        self.0 / 86_400
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}s", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_multiple_of(86_400) {
            write!(f, "{}d", self.0 / 86_400)
        } else if self.0.is_multiple_of(3600) {
            write!(f, "{}h", self.0 / 3600)
        } else {
            write!(f, "{}s", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_window_is_about_130_days() {
        let days = (CAMPAIGN_END - CAMPAIGN_START).as_days();
        assert_eq!(days, 129, "16 Dec 2020 .. 24 Apr 2021");
    }

    #[test]
    fn arithmetic() {
        let t = SimTime(100) + SimDuration::secs(50);
        assert_eq!(t, SimTime(150));
        assert_eq!(t - SimTime(100), SimDuration(50));
        // saturating
        assert_eq!(SimTime(10).since(SimTime(50)), SimDuration(0));
    }

    #[test]
    fn duration_constructors() {
        assert_eq!(SimDuration::days(7).as_secs(), 604_800);
        assert_eq!(SimDuration::hours(4), SNAPSHOT_INTERVAL);
        assert_eq!(SimDuration::minutes(2).as_secs(), 120);
    }

    #[test]
    fn campaign_day_indexing() {
        assert_eq!(CAMPAIGN_START.campaign_day(), 0);
        assert_eq!((CAMPAIGN_START + SimDuration::days(3)).campaign_day(), 3);
        assert_eq!(SimTime(0).campaign_day(), 0, "pre-campaign clamps to 0");
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimDuration::days(7).to_string(), "7d");
        assert_eq!(SimDuration::hours(4).to_string(), "4h");
        assert_eq!(SimDuration::secs(90).to_string(), "90s");
    }
}
