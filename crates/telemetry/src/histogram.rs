//! Fixed-bucket log2 histograms for wall-clock durations.
//!
//! Durations land in bucket `floor(log2(nanos))`, clamped to
//! [`HISTOGRAM_BUCKETS`] buckets — bucket 0 covers `[0, 2)` ns, bucket
//! `i` covers `[2^i, 2^(i+1))` ns, and the last bucket absorbs
//! everything from ~17.6 minutes up. Recording is three relaxed
//! `fetch_add`s (bucket, count, sum); there is no lock and no float
//! math, so a histogram is safe to touch from a phase-span drop on the
//! engine's hottest path.

use std::sync::atomic::{AtomicU64, Ordering};

/// Bucket count: `2^39` ns ≈ 9.2 minutes in the second-to-last bucket;
/// the final bucket is the overflow sink.
pub const HISTOGRAM_BUCKETS: usize = 40;

/// A lock-free log2 histogram over nanosecond durations with total
/// count and sum (for mean latency without bucket interpolation).
pub struct Log2Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Log2Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Log2Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Bucket index for a duration.
    #[inline]
    pub fn bucket_of(nanos: u64) -> usize {
        if nanos < 2 {
            0
        } else {
            ((63 - nanos.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
        }
    }

    /// Records one duration.
    #[inline]
    pub fn record(&self, nanos: u64) {
        self.buckets[Self::bucket_of(nanos)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Total recordings.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded durations, in nanoseconds.
    pub fn sum_nanos(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Mean duration in nanoseconds (0 when empty).
    pub fn mean_nanos(&self) -> u64 {
        self.sum_nanos().checked_div(self.count()).unwrap_or(0)
    }

    /// Bucket counts in bucket order.
    pub fn buckets(&self) -> [u64; HISTOGRAM_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// Upper bound (exclusive) of bucket `i` in nanoseconds; the last
    /// bucket reports `u64::MAX`.
    pub fn bucket_upper_bound(i: usize) -> u64 {
        if i + 1 >= HISTOGRAM_BUCKETS {
            u64::MAX
        } else {
            1u64 << (i + 1)
        }
    }

    /// Approximate quantile: the upper bound of the bucket holding the
    /// `q`-th recording (`q` in `[0, 1]`). Coarse by design — log2
    /// buckets trade precision for a lock-free hot path.
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return Self::bucket_upper_bound(i);
            }
        }
        u64::MAX
    }

    /// Zeroes the histogram.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucketing_is_log2() {
        assert_eq!(Log2Histogram::bucket_of(0), 0);
        assert_eq!(Log2Histogram::bucket_of(1), 0);
        assert_eq!(Log2Histogram::bucket_of(2), 1);
        assert_eq!(Log2Histogram::bucket_of(3), 1);
        assert_eq!(Log2Histogram::bucket_of(4), 2);
        assert_eq!(Log2Histogram::bucket_of(1023), 9);
        assert_eq!(Log2Histogram::bucket_of(1024), 10);
        assert_eq!(Log2Histogram::bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn record_tracks_count_sum_mean() {
        let h = Log2Histogram::new();
        h.record(100);
        h.record(300);
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum_nanos(), 400);
        assert_eq!(h.mean_nanos(), 200);
        let buckets = h.buckets();
        assert_eq!(buckets[6], 1, "100ns lands in [64,128)");
        assert_eq!(buckets[8], 1, "300ns lands in [256,512)");
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.buckets().iter().sum::<u64>(), 0);
    }

    #[test]
    fn quantiles_walk_buckets() {
        let h = Log2Histogram::new();
        for _ in 0..99 {
            h.record(100); // bucket 6, upper bound 128
        }
        h.record(1_000_000); // bucket 19, upper bound 2^20
        assert_eq!(h.quantile_upper_bound(0.5), 128);
        assert_eq!(h.quantile_upper_bound(1.0), 1 << 20);
        assert_eq!(Log2Histogram::new().quantile_upper_bound(0.99), 0);
    }
}
