//! # fediscope-telemetry
//!
//! A zero-drift observability layer for the whole stack: phase spans,
//! sharded hot-path counters, log2 latency histograms, gauges, and a
//! machine-readable [`RunReport`] snapshot — all hanging off one
//! [`Telemetry`] registry (usually the process-global
//! [`Telemetry::global`]).
//!
//! # The "observe, never perturb" contract
//!
//! Instrumentation must be *provably* incapable of changing what the
//! engine computes. The contract, proptested in
//! `crates/dynamics/tests/telemetry_drift.rs` and re-asserted inside
//! `perf_dynamics`:
//!
//! * **No feedback.** Nothing in this crate is ever *read* by simulation
//!   code. Counters, histograms and spans are write-only from the
//!   instrumented layers; only reporting code (CLI `--telemetry-out`,
//!   `analysis::render_telemetry`, the server's `/metrics` formatter)
//!   snapshots them. Telemetry armed vs disarmed therefore yields
//!   bit-identical [`DynamicsTrace`](../fediscope_dynamics) digests at
//!   any `FEDISCOPE_THREADS`.
//! * **No randomness.** The registry draws from no RNG and seeds
//!   nothing; wall-clock readings ([`PhaseTimer`]) live strictly outside
//!   trace digests and RNG streams. Logical [`SimTime`] never passes
//!   through this crate.
//! * **Hot-path cost is one relaxed atomic.** A counter increment is a
//!   single `fetch_add(Relaxed)` on a per-worker shard (no CAS loops, no
//!   locks, no false sharing — shards are cache-line padded). Disarmed,
//!   every instrumentation point degrades to one relaxed load and a
//!   predictable branch. The `perf_dynamics` bench gates the armed
//!   churn flood at ≤ 5 % overhead versus the disarmed baseline
//!   (`telemetry_acceptance_met` in `BENCH_dynamics.json`).
//! * **Deterministic reads.** [`ShardedCounter`] merges shards in fixed
//!   shard order on read; `u64` wrapping addition is associative and
//!   commutative, so a quiescent registry snapshots to the same value
//!   regardless of which worker incremented which shard (proptested as
//!   "counter merges are order-stable").
//!
//! # Layout
//!
//! * [`HotCounter`] — the fixed vocabulary of hot-path counters (scorer
//!   calls, `filter_fast` verdicts, delivery POSTs, retry events,
//!   crawler probes by §3 status class). Fixed at compile time so an
//!   increment is an array index, never a hash lookup.
//! * [`GaugeId`] — last-write-wins point-in-time values (live links,
//!   instances up, adoption count), set at tick close.
//! * [`Phase`] — the engine tick phases (`begin` / `control` /
//!   `retry-drain` / `measurement` / `tick-close`) plus the bridge
//!   census pass, each accumulating wall-clock into a fixed-bucket
//!   [`Log2Histogram`] via the RAII [`PhaseTimer`].
//! * [`ProbeClass`] — crawler probe outcomes by §3 status class
//!   (success / transient / permanent / net-error), each with a
//!   simulated-latency histogram.
//! * [`RunReport`] — the serde snapshot of all of the above plus the
//!   per-instance top-K volume table, written as JSON by
//!   `fediscope … --telemetry-out` and rendered by
//!   `analysis::render_telemetry` / the server's Prometheus-style text
//!   exposition.
//!
//! ```
//! use fediscope_telemetry::{HotCounter, Phase, PhaseTimer, Telemetry};
//!
//! let t = Telemetry::new();
//! t.arm();
//! {
//!     let _span = PhaseTimer::start_on(&t, Phase::Control);
//!     t.inc(HotCounter::EventsApplied);
//! }
//! let report = t.report("doctest");
//! assert_eq!(report.counter(HotCounter::EventsApplied), 1);
//! assert_eq!(report.phase(Phase::Control).unwrap().count, 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod counter;
mod histogram;
mod report;
mod span;

pub use counter::ShardedCounter;
pub use histogram::{Log2Histogram, HISTOGRAM_BUCKETS};
pub use report::{
    CounterSnapshot, GaugeSnapshot, HistogramSnapshot, InstanceVolume, PhaseSnapshot,
    ProbeLatencySnapshot, RunReport,
};
pub use span::{Phase, PhaseTimer};

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// The fixed vocabulary of hot-path counters. An increment indexes a
/// static array — no string hashing anywhere near a hot loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HotCounter {
    /// `Scorer::analyze` invocations (perspective crate).
    ScorerCalls,
    /// Emissions whose toxicity score was served from a `SenderBatch`
    /// memo instead of a fresh `Scorer::analyze` call (the engine's
    /// sender-majorized measurement phase).
    ScorerMemoHits,
    /// Deliveries that passed an MRF `filter_fast` pipeline.
    FilterFastHits,
    /// Deliveries an MRF `filter_fast` pipeline rejected.
    FilterFastRejects,
    /// Simulated post deliveries attempted by the engine's measurement
    /// phase (per-receiver batched).
    EngineDeliveries,
    /// Deliveries lost to down receivers.
    FailedDeliveries,
    /// Real `POST /inbox` requests issued by `Federator::deliver`.
    DeliveryPosts,
    /// Control-phase events applied by the engine.
    EventsApplied,
    /// Retry attempts that fired and rescheduled.
    RetryEvents,
    /// Delivery batches redelivered to a recovered receiver.
    RecoveredBatches,
    /// Delivery batches given up on (dead-lettered).
    DeadLetteredBatches,
    /// Crawler probes answered 2xx.
    ProbesSuccess,
    /// Crawler probes answered a transient §3 status (502/503) or a
    /// transient network error (connection refused).
    ProbesTransient,
    /// Crawler probes answered a permanent §3 status (404/403/410).
    ProbesPermanent,
    /// Crawler probes that failed without any HTTP status (unknown host).
    ProbesNetError,
    /// Census rounds completed by the round-trip driver.
    CensusRounds,
    /// Compiled `MrfPipeline`s served from the structural interning pool
    /// (instances sharing a seed-identical moderation config).
    PipelineInternHits,
    /// Compiled `MrfPipeline`s the interning pool had to build fresh
    /// (first instance of each distinct moderation config).
    PipelineInternMisses,
}

impl HotCounter {
    /// Every counter, in reporting order.
    pub const ALL: [HotCounter; 18] = [
        HotCounter::ScorerCalls,
        HotCounter::ScorerMemoHits,
        HotCounter::FilterFastHits,
        HotCounter::FilterFastRejects,
        HotCounter::EngineDeliveries,
        HotCounter::FailedDeliveries,
        HotCounter::DeliveryPosts,
        HotCounter::EventsApplied,
        HotCounter::RetryEvents,
        HotCounter::RecoveredBatches,
        HotCounter::DeadLetteredBatches,
        HotCounter::ProbesSuccess,
        HotCounter::ProbesTransient,
        HotCounter::ProbesPermanent,
        HotCounter::ProbesNetError,
        HotCounter::CensusRounds,
        HotCounter::PipelineInternHits,
        HotCounter::PipelineInternMisses,
    ];

    /// Stable snake_case name (the Prometheus metric stem).
    pub fn name(self) -> &'static str {
        match self {
            HotCounter::ScorerCalls => "scorer_calls",
            HotCounter::ScorerMemoHits => "scorer_memo_hits",
            HotCounter::FilterFastHits => "filter_fast_hits",
            HotCounter::FilterFastRejects => "filter_fast_rejects",
            HotCounter::EngineDeliveries => "engine_deliveries",
            HotCounter::FailedDeliveries => "failed_deliveries",
            HotCounter::DeliveryPosts => "delivery_posts",
            HotCounter::EventsApplied => "events_applied",
            HotCounter::RetryEvents => "retry_events",
            HotCounter::RecoveredBatches => "recovered_batches",
            HotCounter::DeadLetteredBatches => "dead_lettered_batches",
            HotCounter::ProbesSuccess => "probes_success",
            HotCounter::ProbesTransient => "probes_transient",
            HotCounter::ProbesPermanent => "probes_permanent",
            HotCounter::ProbesNetError => "probes_net_error",
            HotCounter::CensusRounds => "census_rounds",
            HotCounter::PipelineInternHits => "pipeline_intern_hits",
            HotCounter::PipelineInternMisses => "pipeline_intern_misses",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// Point-in-time gauges, set (last-write-wins) at tick close.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GaugeId {
    /// Live federation links (undirected).
    Links,
    /// Instances answering the network.
    InstancesUp,
    /// Instances that changed moderation since the run began.
    Adopted,
}

impl GaugeId {
    /// Every gauge, in reporting order.
    pub const ALL: [GaugeId; 3] = [GaugeId::Links, GaugeId::InstancesUp, GaugeId::Adopted];

    /// Stable snake_case name.
    pub fn name(self) -> &'static str {
        match self {
            GaugeId::Links => "links",
            GaugeId::InstancesUp => "instances_up",
            GaugeId::Adopted => "adopted",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// Crawler probe outcome classes, following the §3 retry taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeClass {
    /// 2xx answers.
    Success,
    /// Transient failures (502/503, refused connections).
    Transient,
    /// Permanent failures (404/403/410).
    Permanent,
    /// No HTTP status at all (unknown host).
    NetError,
}

impl ProbeClass {
    /// Every class, in reporting order.
    pub const ALL: [ProbeClass; 4] = [
        ProbeClass::Success,
        ProbeClass::Transient,
        ProbeClass::Permanent,
        ProbeClass::NetError,
    ];

    /// Stable snake_case name.
    pub fn name(self) -> &'static str {
        match self {
            ProbeClass::Success => "success",
            ProbeClass::Transient => "transient",
            ProbeClass::Permanent => "permanent",
            ProbeClass::NetError => "net_error",
        }
    }

    /// The matching [`HotCounter`] for probe counting.
    pub fn counter(self) -> HotCounter {
        match self {
            ProbeClass::Success => HotCounter::ProbesSuccess,
            ProbeClass::Transient => HotCounter::ProbesTransient,
            ProbeClass::Permanent => HotCounter::ProbesPermanent,
            ProbeClass::NetError => HotCounter::ProbesNetError,
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// Per-instance delivered/blocked volume, accumulated single-threaded at
/// tick close (the engine's `aggregate` already walks the per-instance
/// metrics there). Behind a mutex because it is cold: one lock per tick,
/// never touched by the measurement fan-out.
#[derive(Debug, Default)]
struct InstanceVolumes {
    labels: Vec<String>,
    delivered: Vec<u64>,
    blocked: Vec<u64>,
}

/// The telemetry registry: one [`Telemetry`] owns every counter, gauge,
/// histogram and span of a run. Most callers use the process-global
/// [`Telemetry::global`]; tests that need isolation construct their own.
pub struct Telemetry {
    armed: AtomicBool,
    counters: [ShardedCounter; HotCounter::ALL.len()],
    gauges: [AtomicU64; GaugeId::ALL.len()],
    phases: [Log2Histogram; Phase::ALL.len()],
    probe_latency: [Log2Histogram; ProbeClass::ALL.len()],
    instances: Mutex<InstanceVolumes>,
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::new()
    }
}

impl Telemetry {
    /// A fresh, disarmed registry.
    pub fn new() -> Self {
        Telemetry {
            armed: AtomicBool::new(false),
            counters: std::array::from_fn(|_| ShardedCounter::new()),
            gauges: std::array::from_fn(|_| AtomicU64::new(0)),
            phases: std::array::from_fn(|_| Log2Histogram::new()),
            probe_latency: std::array::from_fn(|_| Log2Histogram::new()),
            instances: Mutex::new(InstanceVolumes::default()),
        }
    }

    /// The process-global registry every instrumented layer writes to.
    pub fn global() -> &'static Telemetry {
        static GLOBAL: OnceLock<Telemetry> = OnceLock::new();
        GLOBAL.get_or_init(Telemetry::new)
    }

    /// Starts recording. Until armed, every instrumentation point is a
    /// relaxed load and a predictable branch.
    pub fn arm(&self) {
        self.armed.store(true, Ordering::Relaxed);
    }

    /// Stops recording (readings are kept until [`Self::reset`]).
    pub fn disarm(&self) {
        self.armed.store(false, Ordering::Relaxed);
    }

    /// Whether the registry is currently recording.
    #[inline]
    pub fn armed(&self) -> bool {
        self.armed.load(Ordering::Relaxed)
    }

    /// Clears every reading (armed state is unchanged). Call between
    /// runs that should not share a report.
    pub fn reset(&self) {
        for c in &self.counters {
            c.reset();
        }
        for g in &self.gauges {
            g.store(0, Ordering::Relaxed);
        }
        for h in &self.phases {
            h.reset();
        }
        for h in &self.probe_latency {
            h.reset();
        }
        let mut volumes = self.instances.lock().expect("telemetry mutex");
        volumes.labels.clear();
        volumes.delivered.clear();
        volumes.blocked.clear();
    }

    /// Increments a hot counter by 1 (no-op while disarmed).
    #[inline]
    pub fn inc(&self, counter: HotCounter) {
        self.add(counter, 1);
    }

    /// Adds `n` to a hot counter (no-op while disarmed). Batch adds are
    /// the preferred shape on per-item loops: count locally, add once.
    #[inline]
    pub fn add(&self, counter: HotCounter, n: u64) {
        if self.armed() {
            self.counters[counter.index()].add(n);
        }
    }

    /// Merged value of a hot counter (shards summed in shard order).
    pub fn counter(&self, counter: HotCounter) -> u64 {
        self.counters[counter.index()].get()
    }

    /// Sets a gauge (no-op while disarmed).
    #[inline]
    pub fn set_gauge(&self, gauge: GaugeId, value: u64) {
        if self.armed() {
            self.gauges[gauge.index()].store(value, Ordering::Relaxed);
        }
    }

    /// Current gauge value.
    pub fn gauge(&self, gauge: GaugeId) -> u64 {
        self.gauges[gauge.index()].load(Ordering::Relaxed)
    }

    /// Records an elapsed phase duration in nanoseconds. Usually called
    /// by [`PhaseTimer`]'s drop, not directly.
    #[inline]
    pub fn record_phase(&self, phase: Phase, nanos: u64) {
        self.phases[phase.index()].record(nanos);
    }

    /// The histogram behind a phase.
    pub fn phase_histogram(&self, phase: Phase) -> &Log2Histogram {
        &self.phases[phase.index()]
    }

    /// Records one crawler probe: the class counter plus its
    /// simulated-latency histogram (no-op while disarmed).
    #[inline]
    pub fn record_probe(&self, class: ProbeClass, latency_ns: u64) {
        if self.armed() {
            self.counters[class.counter().index()].add(1);
            self.probe_latency[class.index()].record(latency_ns);
        }
    }

    /// The simulated-latency histogram of a probe class.
    pub fn probe_histogram(&self, class: ProbeClass) -> &Log2Histogram {
        &self.probe_latency[class.index()]
    }

    /// Installs the per-instance label table (seed-index order). Called
    /// once per run by the engine when armed; reporting uses the labels
    /// for the top-K table.
    pub fn set_instance_labels<I, S>(&self, labels: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        if !self.armed() {
            return;
        }
        let mut volumes = self.instances.lock().expect("telemetry mutex");
        volumes.labels = labels.into_iter().map(Into::into).collect();
        let n = volumes.labels.len();
        if volumes.delivered.len() < n {
            volumes.delivered.resize(n, 0);
            volumes.blocked.resize(n, 0);
        }
    }

    /// Accumulates one instance's tick volumes (no-op while disarmed).
    /// Single-threaded callers only (the engine's tick close); the mutex
    /// is for exclusion against concurrent *reporting*, not for hot-path
    /// sharing.
    pub fn add_instance_volume(&self, index: usize, delivered: u64, blocked: u64) {
        if !self.armed() {
            return;
        }
        let mut volumes = self.instances.lock().expect("telemetry mutex");
        if volumes.delivered.len() <= index {
            volumes.delivered.resize(index + 1, 0);
            volumes.blocked.resize(index + 1, 0);
        }
        volumes.delivered[index] += delivered;
        volumes.blocked[index] += blocked;
    }

    /// Accumulates many instances' tick volumes under one lock — the
    /// tick-close shape ([`Self::add_instance_volume`] per row would pay
    /// a lock per instance per tick).
    pub fn add_instance_volumes<I>(&self, rows: I)
    where
        I: IntoIterator<Item = (usize, u64, u64)>,
    {
        if !self.armed() {
            return;
        }
        let mut volumes = self.instances.lock().expect("telemetry mutex");
        for (index, delivered, blocked) in rows {
            if volumes.delivered.len() <= index {
                volumes.delivered.resize(index + 1, 0);
                volumes.blocked.resize(index + 1, 0);
            }
            volumes.delivered[index] += delivered;
            volumes.blocked[index] += blocked;
        }
    }

    /// The top-`k` instances by delivered volume (ties broken by seed
    /// index, so the ordering is total and deterministic).
    pub fn top_instances(&self, k: usize) -> Vec<InstanceVolume> {
        let volumes = self.instances.lock().expect("telemetry mutex");
        let mut rows: Vec<InstanceVolume> = volumes
            .delivered
            .iter()
            .zip(volumes.blocked.iter())
            .enumerate()
            .filter(|(_, (&d, &b))| d > 0 || b > 0)
            .map(|(i, (&delivered, &blocked))| InstanceVolume {
                index: i,
                domain: volumes.labels.get(i).cloned().unwrap_or_default(),
                delivered,
                blocked,
            })
            .collect();
        rows.sort_by(|a, b| {
            b.delivered
                .cmp(&a.delivered)
                .then(b.blocked.cmp(&a.blocked))
                .then(a.index.cmp(&b.index))
        });
        rows.truncate(k);
        rows
    }

    /// Snapshots the whole registry into a [`RunReport`].
    pub fn report(&self, label: &str) -> RunReport {
        RunReport::capture(self, label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_registry_records_nothing() {
        let t = Telemetry::new();
        t.inc(HotCounter::ScorerCalls);
        t.set_gauge(GaugeId::Links, 7);
        t.record_probe(ProbeClass::Success, 1000);
        t.add_instance_volume(3, 10, 2);
        assert_eq!(t.counter(HotCounter::ScorerCalls), 0);
        assert_eq!(t.gauge(GaugeId::Links), 0);
        assert_eq!(t.probe_histogram(ProbeClass::Success).count(), 0);
        assert!(t.top_instances(5).is_empty());
    }

    #[test]
    fn armed_registry_accumulates_and_resets() {
        let t = Telemetry::new();
        t.arm();
        t.inc(HotCounter::EventsApplied);
        t.add(HotCounter::EventsApplied, 4);
        t.set_gauge(GaugeId::InstancesUp, 42);
        t.record_probe(ProbeClass::Transient, 1_500_000);
        t.add_instance_volume(1, 10, 3);
        assert_eq!(t.counter(HotCounter::EventsApplied), 5);
        assert_eq!(t.gauge(GaugeId::InstancesUp), 42);
        assert_eq!(t.probe_histogram(ProbeClass::Transient).count(), 1);
        assert_eq!(t.counter(HotCounter::ProbesTransient), 1);
        let top = t.top_instances(5);
        assert_eq!(top.len(), 1);
        assert_eq!((top[0].delivered, top[0].blocked), (10, 3));
        t.reset();
        assert_eq!(t.counter(HotCounter::EventsApplied), 0);
        assert_eq!(t.gauge(GaugeId::InstancesUp), 0);
        assert!(t.top_instances(5).is_empty());
        assert!(t.armed(), "reset must not disarm");
    }

    #[test]
    fn top_instances_orders_by_volume_with_total_tiebreak() {
        let t = Telemetry::new();
        t.arm();
        t.set_instance_labels(["a.example", "b.example", "c.example", "d.example"]);
        t.add_instance_volume(0, 5, 0);
        t.add_instance_volume(1, 20, 1);
        t.add_instance_volume(2, 5, 9);
        t.add_instance_volume(3, 20, 1);
        let top = t.top_instances(3);
        let order: Vec<usize> = top.iter().map(|r| r.index).collect();
        // 1 and 3 tie on both volumes — seed index breaks the tie; 2
        // beats 0 on blocked volume at equal delivered.
        assert_eq!(order, vec![1, 3, 2]);
        assert_eq!(top[0].domain, "b.example");
    }

    #[test]
    fn global_registry_is_a_singleton() {
        let a = Telemetry::global() as *const _;
        let b = Telemetry::global() as *const _;
        assert_eq!(a, b);
    }
}
