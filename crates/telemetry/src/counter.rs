//! Sharded hot-path counters.
//!
//! The engine's measurement fan-out runs on a scoped thread pool whose
//! workers have no stable index (the rayon shim spawns fresh scoped
//! threads per parallel call), so shard assignment is self-contained:
//! each OS thread picks a shard once, round-robin over a fixed shard
//! array, and keeps it for its lifetime via a thread-local. An increment
//! is then one relaxed `fetch_add` on that shard — no CAS loop, no lock,
//! and (thanks to cache-line padding) no false sharing between workers.
//!
//! Reads merge the shards **in fixed shard order**. `u64` wrapping
//! addition is associative and commutative, so a quiescent counter
//! snapshots to the same value no matter which worker landed on which
//! shard — the "counter merges are order-stable" half of the zero-drift
//! contract, proptested in `crates/dynamics/tests/telemetry_drift.rs`.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Number of shards per counter. Comfortably above any worker count the
/// engine runs with (`FEDISCOPE_THREADS` tops out at 8 in tests; the
/// round-robin cursor wraps for larger fleets, which only costs shard
/// sharing, never correctness).
pub(crate) const SHARDS: usize = 64;

/// One cache line per shard so two workers incrementing neighbouring
/// shards never bounce the same line.
#[repr(align(64))]
struct Shard(AtomicU64);

/// Round-robin cursor handing each new thread its home shard.
static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// This thread's home shard index, chosen once on first use.
    static HOME_SHARD: usize = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % SHARDS;
}

/// A lock-free counter sharded across [`SHARDS`] cache-line-padded
/// atomics. Writes are one relaxed `fetch_add` on the calling thread's
/// home shard; reads merge all shards in shard order.
pub struct ShardedCounter {
    shards: [Shard; SHARDS],
}

impl Default for ShardedCounter {
    fn default() -> Self {
        Self::new()
    }
}

impl ShardedCounter {
    /// A zeroed counter.
    pub fn new() -> Self {
        ShardedCounter {
            shards: std::array::from_fn(|_| Shard(AtomicU64::new(0))),
        }
    }

    /// Adds `n` on the calling thread's home shard.
    #[inline]
    pub fn add(&self, n: u64) {
        HOME_SHARD.with(|&s| {
            self.shards[s].0.fetch_add(n, Ordering::Relaxed);
        });
    }

    /// Increments by 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Merged value: shards summed in fixed shard order (wrapping, so a
    /// merge can never panic even under absurd totals).
    pub fn get(&self) -> u64 {
        self.shards
            .iter()
            .fold(0u64, |acc, s| acc.wrapping_add(s.0.load(Ordering::Relaxed)))
    }

    /// Zeroes every shard.
    pub fn reset(&self) {
        for s in &self.shards {
            s.0.store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn single_thread_accumulates() {
        let c = ShardedCounter::new();
        c.inc();
        c.add(9);
        assert_eq!(c.get(), 10);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn concurrent_increments_all_land() {
        let c = Arc::new(ShardedCounter::new());
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let c = Arc::clone(&c);
                scope.spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 80_000);
    }

    #[test]
    fn merge_is_order_stable_across_thread_placements() {
        // Two counters fed the same per-thread workloads but with the
        // threads started in opposite orders (so home shards differ)
        // must merge to the same total.
        let totals: Vec<u64> = [false, true]
            .iter()
            .map(|&reversed| {
                let c = Arc::new(ShardedCounter::new());
                let mut work: Vec<u64> = (1..=6).map(|k| k * 111).collect();
                if reversed {
                    work.reverse();
                }
                std::thread::scope(|scope| {
                    for n in work {
                        let c = Arc::clone(&c);
                        scope.spawn(move || c.add(n));
                    }
                });
                c.get()
            })
            .collect();
        assert_eq!(totals[0], totals[1]);
        assert_eq!(totals[0], (1..=6u64).map(|k| k * 111).sum::<u64>());
    }
}
