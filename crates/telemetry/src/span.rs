//! Phase spans: RAII wall-clock timers over the engine's tick phases
//! and the bridge's census pass.
//!
//! A [`PhaseTimer`] reads `Instant::now()` at construction and records
//! the elapsed nanoseconds into the phase's [`Log2Histogram`] on drop.
//! When the registry is disarmed, construction returns an inert timer
//! without touching the clock at all — the disarmed cost of a span is
//! one relaxed load and a branch, and (critically for the ≤ 5 %
//! overhead gate) zero syscalls.
//!
//! Wall-clock readings never feed back into simulation state, logical
//! [`SimTime`], RNG streams, or trace digests — they are observation
//! only, per the crate-level "observe, never perturb" contract.

use crate::Telemetry;
use std::time::Instant;

/// The instrumented phases of a run, in tick order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Engine construction + scenario init (`Engine::begin`).
    Begin,
    /// Single-threaded control phase: due events applied in
    /// `(time, seq)` order.
    Control,
    /// Retry-chain drain: RetryDelivery events fired this tick.
    RetryDrain,
    /// Parallel measurement fan-out across receivers.
    Measurement,
    /// Tick close: fixed-order reduction + trace row emission.
    TickClose,
    /// One bridge census pass (live-crawl round trip).
    Census,
}

impl Phase {
    /// Every phase, in reporting order.
    pub const ALL: [Phase; 6] = [
        Phase::Begin,
        Phase::Control,
        Phase::RetryDrain,
        Phase::Measurement,
        Phase::TickClose,
        Phase::Census,
    ];

    /// Stable snake_case name (the Prometheus label value).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Begin => "begin",
            Phase::Control => "control",
            Phase::RetryDrain => "retry_drain",
            Phase::Measurement => "measurement",
            Phase::TickClose => "tick_close",
            Phase::Census => "census",
        }
    }

    pub(crate) fn index(self) -> usize {
        self as usize
    }
}

/// RAII span: times from construction to drop and records into the
/// phase's histogram. Inert (no clock read, no record) when the
/// registry was disarmed at construction.
pub struct PhaseTimer<'t> {
    telemetry: &'t Telemetry,
    phase: Phase,
    started: Option<Instant>,
}

impl<'t> PhaseTimer<'t> {
    /// Starts a span on the global registry.
    #[inline]
    pub fn start(phase: Phase) -> PhaseTimer<'static> {
        PhaseTimer::start_on(Telemetry::global(), phase)
    }

    /// Starts a span on a specific registry.
    #[inline]
    pub fn start_on(telemetry: &'t Telemetry, phase: Phase) -> PhaseTimer<'t> {
        PhaseTimer {
            telemetry,
            phase,
            started: if telemetry.armed() {
                Some(Instant::now())
            } else {
                None
            },
        }
    }

    /// Whether this span is live (registry was armed at construction).
    pub fn is_live(&self) -> bool {
        self.started.is_some()
    }
}

impl Drop for PhaseTimer<'_> {
    fn drop(&mut self) {
        if let Some(started) = self.started {
            let nanos = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.telemetry.record_phase(self.phase, nanos);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_span_is_inert() {
        let t = Telemetry::new();
        {
            let span = PhaseTimer::start_on(&t, Phase::Control);
            assert!(!span.is_live());
        }
        assert_eq!(t.phase_histogram(Phase::Control).count(), 0);
    }

    #[test]
    fn armed_span_records_on_drop() {
        let t = Telemetry::new();
        t.arm();
        {
            let span = PhaseTimer::start_on(&t, Phase::Measurement);
            assert!(span.is_live());
            std::hint::black_box(());
        }
        let h = t.phase_histogram(Phase::Measurement);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn arming_mid_span_does_not_retroactively_record() {
        let t = Telemetry::new();
        {
            let _span = PhaseTimer::start_on(&t, Phase::TickClose);
            t.arm();
        }
        assert_eq!(t.phase_histogram(Phase::TickClose).count(), 0);
    }
}
