//! `RunReport`: the machine-readable snapshot of a whole registry.
//!
//! Captured once at the end of a run (never on the hot path) and
//! serialized as JSON by `fediscope … --telemetry-out`, rendered as
//! human tables by `analysis::render_telemetry`, and reformatted as
//! Prometheus text exposition by the server crate. Every list is in a
//! fixed, documented order (counter order, phase order, probe-class
//! order, volume-then-seed-index for instances) so two snapshots of
//! identical registries serialize to identical bytes.

use crate::span::Phase;
use crate::{GaugeId, HotCounter, Log2Histogram, ProbeClass, Telemetry};
use serde::Serialize;

/// How many instances the top-K volume table keeps.
pub const TOP_K: usize = 10;

/// One named counter reading.
#[derive(Debug, Clone, Serialize)]
pub struct CounterSnapshot {
    /// Stable snake_case counter name.
    pub name: String,
    /// Merged value across shards.
    pub value: u64,
}

/// One named gauge reading.
#[derive(Debug, Clone, Serialize)]
pub struct GaugeSnapshot {
    /// Stable snake_case gauge name.
    pub name: String,
    /// Last written value.
    pub value: u64,
}

/// A histogram reduced to its summary statistics plus the non-empty
/// buckets (as `[bucket_index, count]` pairs — the full 40-bucket array
/// is mostly zeros and would dominate the JSON).
#[derive(Debug, Clone, Serialize)]
pub struct HistogramSnapshot {
    /// Total recordings.
    pub count: u64,
    /// Sum of recorded durations, nanoseconds.
    pub sum_nanos: u64,
    /// Mean duration, nanoseconds (0 when empty).
    pub mean_nanos: u64,
    /// Upper bound of the bucket holding the median recording.
    pub p50_upper_nanos: u64,
    /// Upper bound of the bucket holding the 99th-percentile recording.
    pub p99_upper_nanos: u64,
    /// `[bucket_index, count]` for every non-empty log2 bucket, in
    /// bucket order.
    pub buckets: Vec<(usize, u64)>,
}

impl HistogramSnapshot {
    fn capture(h: &Log2Histogram) -> Self {
        HistogramSnapshot {
            count: h.count(),
            sum_nanos: h.sum_nanos(),
            mean_nanos: h.mean_nanos(),
            p50_upper_nanos: h.quantile_upper_bound(0.5),
            p99_upper_nanos: h.quantile_upper_bound(0.99),
            buckets: h
                .buckets()
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(i, &c)| (i, c))
                .collect(),
        }
    }
}

/// One phase's span histogram.
#[derive(Debug, Clone, Serialize)]
pub struct PhaseSnapshot {
    /// Stable snake_case phase name.
    pub phase: String,
    /// Span count.
    pub count: u64,
    /// Total wall-clock, nanoseconds.
    pub total_nanos: u64,
    /// Mean span, nanoseconds.
    pub mean_nanos: u64,
    /// The underlying histogram.
    pub histogram: HistogramSnapshot,
}

/// One probe class's simulated-latency histogram.
#[derive(Debug, Clone, Serialize)]
pub struct ProbeLatencySnapshot {
    /// Stable snake_case §3 status class.
    pub class: String,
    /// Probe count for the class.
    pub count: u64,
    /// Mean simulated latency, nanoseconds.
    pub mean_nanos: u64,
    /// The underlying histogram.
    pub histogram: HistogramSnapshot,
}

/// One row of the per-instance top-K volume table.
#[derive(Debug, Clone, Serialize)]
pub struct InstanceVolume {
    /// Seed index of the instance.
    pub index: usize,
    /// Domain label when known (empty if labels were never installed).
    pub domain: String,
    /// Posts delivered to this instance over the run.
    pub delivered: u64,
    /// Posts blocked (MRF-rejected) at this instance over the run.
    pub blocked: u64,
}

/// The machine-readable snapshot of a whole [`Telemetry`] registry.
#[derive(Debug, Clone, Serialize)]
pub struct RunReport {
    /// Report format version; bump on breaking layout changes.
    pub version: u32,
    /// Free-form label naming the run (subcommand + scenario).
    pub label: String,
    /// Whether the registry was armed when captured. A disarmed capture
    /// is all zeros — callers should treat it as "telemetry was off".
    pub armed: bool,
    /// Phase span histograms, in [`Phase::ALL`] order.
    pub phases: Vec<PhaseSnapshot>,
    /// Hot counters, in [`HotCounter::ALL`] order.
    pub counters: Vec<CounterSnapshot>,
    /// Gauges, in [`GaugeId::ALL`] order.
    pub gauges: Vec<GaugeSnapshot>,
    /// Crawler probe latency by §3 status class, in [`ProbeClass::ALL`]
    /// order.
    pub probe_latency: Vec<ProbeLatencySnapshot>,
    /// Top-[`TOP_K`] instances by delivered volume (blocked volume,
    /// then seed index, break ties).
    pub top_instances: Vec<InstanceVolume>,
}

impl RunReport {
    /// Snapshots a registry.
    pub fn capture(telemetry: &Telemetry, label: &str) -> Self {
        RunReport {
            version: 1,
            label: label.to_string(),
            armed: telemetry.armed(),
            phases: Phase::ALL
                .iter()
                .map(|&p| {
                    let h = telemetry.phase_histogram(p);
                    PhaseSnapshot {
                        phase: p.name().to_string(),
                        count: h.count(),
                        total_nanos: h.sum_nanos(),
                        mean_nanos: h.mean_nanos(),
                        histogram: HistogramSnapshot::capture(h),
                    }
                })
                .collect(),
            counters: HotCounter::ALL
                .iter()
                .map(|&c| CounterSnapshot {
                    name: c.name().to_string(),
                    value: telemetry.counter(c),
                })
                .collect(),
            gauges: GaugeId::ALL
                .iter()
                .map(|&g| GaugeSnapshot {
                    name: g.name().to_string(),
                    value: telemetry.gauge(g),
                })
                .collect(),
            probe_latency: ProbeClass::ALL
                .iter()
                .map(|&k| {
                    let h = telemetry.probe_histogram(k);
                    ProbeLatencySnapshot {
                        class: k.name().to_string(),
                        count: h.count(),
                        mean_nanos: h.mean_nanos(),
                        histogram: HistogramSnapshot::capture(h),
                    }
                })
                .collect(),
            top_instances: telemetry.top_instances(TOP_K),
        }
    }

    /// Value of a counter by id (0 when absent — cannot happen for
    /// captures of this crate's own registries).
    pub fn counter(&self, counter: HotCounter) -> u64 {
        self.counters
            .iter()
            .find(|c| c.name == counter.name())
            .map(|c| c.value)
            .unwrap_or(0)
    }

    /// Snapshot of a phase by id, if present.
    pub fn phase(&self, phase: Phase) -> Option<&PhaseSnapshot> {
        self.phases.iter().find(|p| p.phase == phase.name())
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("RunReport serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GaugeId, HotCounter, ProbeClass, Telemetry};

    fn armed_registry() -> Telemetry {
        let t = Telemetry::new();
        t.arm();
        t.add(HotCounter::ScorerCalls, 1234);
        t.set_gauge(GaugeId::Links, 77);
        t.record_phase(Phase::Control, 5_000);
        t.record_phase(Phase::Control, 7_000);
        t.record_probe(ProbeClass::Permanent, 250_000);
        t.set_instance_labels(["alpha.example", "beta.example"]);
        t.add_instance_volume(0, 40, 4);
        t.add_instance_volume(1, 90, 1);
        t
    }

    #[test]
    fn capture_reflects_registry() {
        let t = armed_registry();
        let report = t.report("unit");
        assert_eq!(report.version, 1);
        assert!(report.armed);
        assert_eq!(report.counter(HotCounter::ScorerCalls), 1234);
        assert_eq!(report.counter(HotCounter::ProbesPermanent), 1);
        let control = report.phase(Phase::Control).unwrap();
        assert_eq!(control.count, 2);
        assert_eq!(control.total_nanos, 12_000);
        assert_eq!(control.mean_nanos, 6_000);
        assert_eq!(report.gauges[0].value, 77);
        assert_eq!(report.top_instances.len(), 2);
        assert_eq!(report.top_instances[0].domain, "beta.example");
        assert_eq!(report.top_instances[0].delivered, 90);
    }

    #[test]
    fn identical_registries_serialize_identically() {
        let a = armed_registry().report("same");
        let b = armed_registry().report("same");
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn json_has_stable_top_level_shape() {
        let json = armed_registry().report("shape").to_json();
        for key in [
            "\"version\"",
            "\"label\"",
            "\"armed\"",
            "\"phases\"",
            "\"counters\"",
            "\"gauges\"",
            "\"probe_latency\"",
            "\"top_instances\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}
