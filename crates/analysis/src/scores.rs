//! Perspective scoring of the collected corpus (§3, *Harmful
//! Classifications*).
//!
//! The paper: "For any instance that has at least one reject action
//! targeted against it, we annotate all of its posts" — scoring the posts
//! with Google's Perspective API, then classifying posts (any attribute
//! ≥ 0.8) and users (average of their posts ≥ 0.8 on any attribute).

use fediscope_core::id::Domain;
use fediscope_crawler::{CrawledInstance, Dataset};
use fediscope_perspective::{Attribute, AttributeScores, Scorer};
use rayon::prelude::*;
use std::collections::{HashMap, HashSet};

/// A user's aggregated scores.
#[derive(Debug, Clone)]
pub struct UserScore {
    /// Posts observed.
    pub posts: usize,
    /// Posts classified harmful at the paper's 0.8 threshold.
    pub harmful_posts: usize,
    /// Mean per-attribute scores over the user's posts.
    pub mean: AttributeScores,
}

impl UserScore {
    /// Whether the user classifies harmful at `threshold` (§3 definition).
    pub fn harmful_at(&self, threshold: f64) -> bool {
        self.mean.max() >= threshold
    }

    /// Whether a specific attribute's mean crosses the threshold.
    pub fn harmful_on(&self, attribute: Attribute, threshold: f64) -> bool {
        self.mean.get(attribute) >= threshold
    }
}

/// An instance's aggregated scores.
#[derive(Debug, Clone)]
pub struct InstanceScore {
    /// Posts scored.
    pub posts: usize,
    /// Harmful posts at 0.8.
    pub harmful_posts: usize,
    /// Mean per-attribute scores over all the instance's posts.
    pub mean: AttributeScores,
}

/// The §4.2 annotation codebook categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AnnotationLabel {
    /// Hate speech.
    Toxic,
    /// Pornography.
    SexuallyExplicit,
    /// Swearing-heavy.
    Profane,
    /// Could not be categorised as harmful.
    General,
    /// Not enough material to annotate (the paper could not annotate
    /// 11.6% of rejected instances).
    Unannotatable,
}

/// Scored corpus over the reject-targeted instances.
#[derive(Debug, Default)]
pub struct HarmAnnotations {
    /// Per-user scores, keyed by `(home domain, author id)`.
    pub users: HashMap<(Domain, u64), UserScore>,
    /// Per-instance scores, keyed by domain.
    pub instances: HashMap<Domain, InstanceScore>,
    /// Total posts scored.
    pub posts_scored: usize,
}

/// Per-shard accumulator of the annotation campaign: `(posts, harmful,
/// score sum)` keyed per user and per instance, plus the shard's post
/// count. Shards merge by key-wise addition.
#[derive(Default)]
struct AnnotationShard {
    users: HashMap<(Domain, u64), (usize, usize, AttributeScores)>,
    instances: HashMap<Domain, (usize, usize, AttributeScores)>,
    posts_scored: usize,
}

impl AnnotationShard {
    /// Scores one instance's timeline into this shard.
    fn absorb(&mut self, scorer: &Scorer, inst: &CrawledInstance) {
        for post in inst.timeline.posts() {
            // The paper scores posts of the rejected instance's own
            // users (local timeline ⇒ local authors).
            let scores = scorer.analyze(&post.content);
            self.posts_scored += 1;
            let harmful = scores.harmful(fediscope_core::paper::HARMFUL_THRESHOLD);
            let u = self
                .users
                .entry((inst.domain.clone(), post.author_id))
                .or_insert((0, 0, AttributeScores::default()));
            u.0 += 1;
            u.1 += usize::from(harmful);
            u.2 = u.2.add(&scores);
            let i = self.instances.entry(inst.domain.clone()).or_insert((
                0,
                0,
                AttributeScores::default(),
            ));
            i.0 += 1;
            i.1 += usize::from(harmful);
            i.2 = i.2.add(&scores);
        }
    }

    /// Merges another shard into this one.
    fn merge(mut self, other: AnnotationShard) -> AnnotationShard {
        for (k, (posts, harmful, sum)) in other.users {
            let u = self
                .users
                .entry(k)
                .or_insert((0, 0, AttributeScores::default()));
            u.0 += posts;
            u.1 += harmful;
            u.2 = u.2.add(&sum);
        }
        for (k, (posts, harmful, sum)) in other.instances {
            let i = self
                .instances
                .entry(k)
                .or_insert((0, 0, AttributeScores::default()));
            i.0 += posts;
            i.1 += harmful;
            i.2 = i.2.add(&sum);
        }
        self.posts_scored += other.posts_scored;
        self
    }
}

impl HarmAnnotations {
    /// Scores every post of every instance with ≥ 1 reject against it.
    ///
    /// The scoring fans out across the global rayon pool (size it with
    /// `rayon::ThreadPoolBuilder` — the bench harness wires
    /// `FEDISCOPE_THREADS` / `WorldConfig::parallelism` into it): a
    /// par-iter fold builds per-shard partial maps, then a reduce merges
    /// them. Every instance — and therefore every user, since the paper
    /// scores local timelines — lands wholly inside one shard, so the
    /// merged per-key float sums accumulate in the same order as a
    /// sequential pass: results are bit-identical at any thread count.
    pub fn annotate(dataset: &Dataset) -> HarmAnnotations {
        let scorer = Scorer::new();
        let rejected: HashSet<Domain> = dataset
            .reject_counts()
            .keys()
            .map(|d| (*d).clone())
            .collect();
        let targets: Vec<&CrawledInstance> = dataset
            .pleroma_crawled()
            .filter(|inst| rejected.contains(&inst.domain))
            .collect();
        let merged = targets
            .par_iter()
            .fold(AnnotationShard::default, |mut shard, inst| {
                shard.absorb(&scorer, inst);
                shard
            })
            .reduce(AnnotationShard::default, AnnotationShard::merge);
        let AnnotationShard {
            users,
            instances,
            posts_scored,
        } = merged;
        HarmAnnotations {
            users: users
                .into_iter()
                .map(|(k, (posts, harmful, sum))| {
                    (
                        k,
                        UserScore {
                            posts,
                            harmful_posts: harmful,
                            mean: sum.div(posts as f64),
                        },
                    )
                })
                .collect(),
            instances: instances
                .into_iter()
                .map(|(k, (posts, harmful, sum))| {
                    (
                        k,
                        InstanceScore {
                            posts,
                            harmful_posts: harmful,
                            mean: sum.div(posts as f64),
                        },
                    )
                })
                .collect(),
            posts_scored,
        }
    }

    /// Users on one instance.
    pub fn users_of<'a>(
        &'a self,
        domain: &'a Domain,
    ) -> impl Iterator<Item = (&'a (Domain, u64), &'a UserScore)> {
        self.users.iter().filter(move |((d, _), _)| d == domain)
    }

    /// The §4.2 rubric: label an instance from its score profile. The
    /// paper's authors eyeballed content and sites; the rubric encodes the
    /// same decision procedure over the measured evidence.
    pub fn annotate_instance(&self, domain: &Domain) -> AnnotationLabel {
        let Some(score) = self.instances.get(domain) else {
            return AnnotationLabel::Unannotatable;
        };
        if score.posts < 5 {
            // Too little material — the paper likewise failed to annotate
            // 11.6% of rejected instances.
            return AnnotationLabel::Unannotatable;
        }
        let m = &score.mean;
        let top = m.max();
        if top < 0.10 {
            return AnnotationLabel::General;
        }
        if m.sexually_explicit >= m.toxicity && m.sexually_explicit >= m.profanity {
            AnnotationLabel::SexuallyExplicit
        } else if m.toxicity >= m.profanity {
            AnnotationLabel::Toxic
        } else {
            AnnotationLabel::Profane
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fediscope_core::config::InstanceModerationConfig;
    use fediscope_core::mrf::policies::{SimpleAction, SimplePolicy};
    use fediscope_core::time::SimTime;
    use fediscope_crawler::{CollectedPost, CrawlOutcome, CrawledInstance, TimelineCrawl};

    fn post(author: u64, domain: &str, content: &str) -> CollectedPost {
        CollectedPost {
            id: 1,
            author_id: author,
            author_domain: Domain::new(domain),
            created: SimTime(0),
            content: content.to_string(),
            sensitive: false,
            visibility: "public".into(),
            media_count: 0,
            hashtags: Vec::new(),
            mentions: 0,
        }
    }

    fn instance(
        domain: &str,
        posts: Vec<CollectedPost>,
        rejects: Option<SimplePolicy>,
    ) -> CrawledInstance {
        let metadata = fediscope_crawler::InstanceMetadata {
            user_count: 10,
            status_count: posts.len() as u64,
            domain_count: 0,
            version: "2.7.2 (compatible; Pleroma 2.2.0)".into(),
            registrations_open: true,
            policies: Some({
                let mut c = InstanceModerationConfig::pleroma_default();
                if let Some(s) = rejects {
                    c.set_simple(s);
                }
                c
            }),
        };
        CrawledInstance {
            domain: Domain::new(domain),
            outcome: CrawlOutcome::Crawled,
            software: Some("pleroma".into()),
            from_directory: true,
            metadata: Some(metadata),
            peers: Vec::new(),
            timeline: if posts.is_empty() {
                TimelineCrawl::Empty
            } else {
                TimelineCrawl::Posts(posts)
            },
            snapshots: Vec::new(),
        }
    }

    fn toy_dataset() -> Dataset {
        // "bad.example" is rejected by "mod.example"; its posts get scored.
        let bad = instance(
            "bad.example",
            vec![
                post(1, "bad.example", "grukk vrelk subhuman scum kys die"),
                post(1, "bad.example", "vermin filth eradicate grukk zhurr"),
                post(1, "bad.example", "worthless degenerate parasite kys"),
                post(2, "bad.example", "coffee garden morning walk"),
                post(2, "bad.example", "bread cat dog photo book"),
            ],
            None,
        );
        let moderator = instance(
            "mod.example",
            vec![post(9, "mod.example", "peaceful coffee")],
            Some(SimplePolicy::new().with_target(SimpleAction::Reject, Domain::new("bad.example"))),
        );
        Dataset {
            started: SimTime(0),
            finished: SimTime(100),
            instances: vec![bad, moderator],
        }
    }

    #[test]
    fn only_rejected_instances_are_scored() {
        let dataset = toy_dataset();
        let ann = HarmAnnotations::annotate(&dataset);
        assert_eq!(ann.posts_scored, 5, "only bad.example's posts");
        assert!(ann.instances.contains_key(&Domain::new("bad.example")));
        assert!(!ann.instances.contains_key(&Domain::new("mod.example")));
    }

    #[test]
    fn user_classification_follows_paper_definitions() {
        let dataset = toy_dataset();
        let ann = HarmAnnotations::annotate(&dataset);
        let troll = &ann.users[&(Domain::new("bad.example"), 1)];
        let citizen = &ann.users[&(Domain::new("bad.example"), 2)];
        assert!(troll.harmful_at(0.8), "troll mean {:?}", troll.mean);
        assert!(troll.harmful_on(Attribute::Toxicity, 0.8));
        assert!(!citizen.harmful_at(0.5), "citizen mean {:?}", citizen.mean);
        assert_eq!(troll.posts, 3);
        assert_eq!(troll.harmful_posts, 3);
        assert_eq!(citizen.harmful_posts, 0);
    }

    #[test]
    fn instance_rubric_labels_toxic_community() {
        let dataset = toy_dataset();
        let ann = HarmAnnotations::annotate(&dataset);
        assert_eq!(
            ann.annotate_instance(&Domain::new("bad.example")),
            AnnotationLabel::Toxic
        );
        // Unscored instance: unannotatable.
        assert_eq!(
            ann.annotate_instance(&Domain::new("mod.example")),
            AnnotationLabel::Unannotatable
        );
    }

    #[test]
    fn users_of_filters_by_domain() {
        let dataset = toy_dataset();
        let ann = HarmAnnotations::annotate(&dataset);
        let d = Domain::new("bad.example");
        assert_eq!(ann.users_of(&d).count(), 2);
    }
}
