//! §7 proposal 1, closed end to end: build curated blocklists from
//! *measured* data.
//!
//! > "New generic policies could be designed that rely on a trusted/curated
//! > list of well-known instances in the fediverse that may need to be
//! > blocked. For example, policies called 'NoHate' or 'NoPorn' [...]
//! > listed as part of a community effort. [...] these listings are
//! > periodically updated by professionals who ensure that the instances
//! > have limited collateral damage."
//!
//! [`curate`] plays the professional curator: it takes the crawled dataset
//! and its harm annotations, labels rejected instances with the §4.2
//! rubric, and emits [`CuratedBlocklist`]s that an admin can plug into
//! `fediscope-core`'s [`CuratedListPolicy`] — choosing, per list, an
//! action with limited collateral damage (media removal for porn, NSFW
//! tagging for profanity, reject only for hate-dominated instances whose
//! harmful-user share crosses a bar).

use crate::scores::{AnnotationLabel, HarmAnnotations};
use fediscope_core::id::Domain;
use fediscope_core::mrf::policies::{CuratedBlocklist, CuratedListPolicy, SimpleAction};
use fediscope_core::paper;
use fediscope_crawler::Dataset;

/// Thresholds steering the curator.
#[derive(Debug, Clone)]
pub struct CurationConfig {
    /// Minimum rejects before an instance is considered "well-known".
    pub min_rejects: u32,
    /// Share of harmful users above which even the curator recommends a
    /// full reject (community beyond salvage).
    pub reject_harmful_share: f64,
}

impl Default for CurationConfig {
    fn default() -> Self {
        CurationConfig {
            min_rejects: 5,
            reject_harmful_share: 0.25,
        }
    }
}

/// The curator's output.
#[derive(Debug)]
pub struct CuratedLists {
    /// Hate-speech instances (toxic label).
    pub no_hate: CuratedBlocklist,
    /// Pornography instances (sexually-explicit label).
    pub no_porn: CuratedBlocklist,
    /// Profanity-heavy instances.
    pub no_profanity: CuratedBlocklist,
}

impl CuratedLists {
    /// Bundles the lists into a ready-to-enable policy.
    pub fn into_policy(self) -> CuratedListPolicy {
        CuratedListPolicy::new(vec![self.no_hate, self.no_porn, self.no_profanity])
    }

    /// Total curated domains across lists.
    pub fn len(&self) -> usize {
        self.no_hate.entries.len() + self.no_porn.entries.len() + self.no_profanity.entries.len()
    }

    /// Whether no instance qualified.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Builds curated lists from measured data.
pub fn curate(
    dataset: &Dataset,
    annotations: &HarmAnnotations,
    config: &CurationConfig,
) -> CuratedLists {
    let reject_counts = dataset.reject_counts();
    let mut hate: Vec<Domain> = Vec::new();
    let mut porn: Vec<Domain> = Vec::new();
    let mut profanity: Vec<Domain> = Vec::new();

    for inst in dataset.pleroma_crawled() {
        let Some(&rejects) = reject_counts.get(&inst.domain) else {
            continue;
        };
        if rejects < config.min_rejects {
            continue; // not "well-known" enough for a community list
        }
        match annotations.annotate_instance(&inst.domain) {
            AnnotationLabel::Toxic => hate.push(inst.domain.clone()),
            AnnotationLabel::SexuallyExplicit => porn.push(inst.domain.clone()),
            AnnotationLabel::Profane => profanity.push(inst.domain.clone()),
            AnnotationLabel::General | AnnotationLabel::Unannotatable => {}
        }
    }
    hate.sort();
    porn.sort();
    profanity.sort();

    // The curator limits collateral damage: hate lists get reject only
    // when the measured harmful-user share is high; the paper's own
    // observation that porn "is mostly in media form" makes media removal
    // the porn action; profanity gets a warning tag.
    let hate_action = {
        let users = crate::tables::section5_users(dataset, annotations);
        let harmful_share = if users.is_empty() {
            0.0
        } else {
            users
                .iter()
                .filter(|u| u.mean.max() >= paper::HARMFUL_THRESHOLD)
                .count() as f64
                / users.len() as f64
        };
        if harmful_share >= config.reject_harmful_share {
            SimpleAction::Reject
        } else {
            SimpleAction::FederatedTimelineRemoval
        }
    };

    CuratedLists {
        no_hate: CuratedBlocklist::new("NoHate", hate, hate_action),
        no_porn: CuratedBlocklist::new("NoPorn", porn, SimpleAction::MediaRemoval),
        no_profanity: CuratedBlocklist::new("NoProfanity", profanity, SimpleAction::MediaNsfw),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fediscope_core::config::InstanceModerationConfig;
    use fediscope_core::mrf::policies::SimplePolicy;
    use fediscope_core::time::SimTime;
    use fediscope_crawler::{
        CollectedPost, CrawlOutcome, CrawledInstance, InstanceMetadata, TimelineCrawl,
    };

    fn post(author: u64, domain: &str, content: &str) -> CollectedPost {
        CollectedPost {
            id: 1,
            author_id: author,
            author_domain: Domain::new(domain),
            created: SimTime(0),
            content: content.to_string(),
            sensitive: false,
            visibility: "public".into(),
            media_count: 1,
            hashtags: Vec::new(),
            mentions: 0,
        }
    }

    fn pleroma(
        domain: &str,
        posts: Vec<CollectedPost>,
        cfg: Option<SimplePolicy>,
    ) -> CrawledInstance {
        CrawledInstance {
            domain: Domain::new(domain),
            outcome: CrawlOutcome::Crawled,
            software: Some("pleroma".into()),
            from_directory: true,
            metadata: Some(InstanceMetadata {
                user_count: 5,
                status_count: posts.len() as u64,
                domain_count: 0,
                version: "2.2.0".into(),
                registrations_open: true,
                policies: Some({
                    let mut c = InstanceModerationConfig::pleroma_default();
                    if let Some(s) = cfg {
                        c.set_simple(s);
                    }
                    c
                }),
            }),
            peers: Vec::new(),
            timeline: if posts.is_empty() {
                TimelineCrawl::Empty
            } else {
                TimelineCrawl::Posts(posts)
            },
            snapshots: Vec::new(),
        }
    }

    fn toy_dataset() -> Dataset {
        // Six blockers each reject both content instances (min_rejects=5).
        let mut blockers: Vec<CrawledInstance> = (0..6)
            .map(|i| {
                pleroma(
                    &format!("blocker{i}.example"),
                    vec![],
                    Some(
                        SimplePolicy::new()
                            .with_target(SimpleAction::Reject, Domain::new("hate.example"))
                            .with_target(SimpleAction::Reject, Domain::new("porn.example")),
                    ),
                )
            })
            .collect();
        let hate = pleroma(
            "hate.example",
            vec![
                post(1, "hate.example", "grukk vrelk subhuman kys scum die"),
                post(1, "hate.example", "vermin filth eradicate zhurr grukk"),
                post(2, "hate.example", "coffee morning"),
                post(2, "hate.example", "hate destroy worthless parasite"),
                post(3, "hate.example", "river walk"),
            ],
            None,
        );
        let porn = pleroma(
            "porn.example",
            vec![
                post(1, "porn.example", "zmut qorn porn hentai lewd nude"),
                post(2, "porn.example", "erotic fetish smut xrated zmut"),
                post(3, "porn.example", "garden tea"),
                post(3, "porn.example", "nude lewd qorn zmut explicit"),
                post(4, "porn.example", "book club"),
            ],
            None,
        );
        let mut instances = vec![hate, porn];
        instances.append(&mut blockers);
        Dataset {
            started: SimTime(0),
            finished: SimTime(1),
            instances,
        }
    }

    #[test]
    fn curator_sorts_instances_into_labelled_lists() {
        let ds = toy_dataset();
        let ann = HarmAnnotations::annotate(&ds);
        let lists = curate(&ds, &ann, &CurationConfig::default());
        assert_eq!(
            lists.no_hate.entries,
            vec![Domain::new("hate.example")],
            "toxic community lands on NoHate"
        );
        assert_eq!(lists.no_porn.entries, vec![Domain::new("porn.example")]);
        assert!(lists.no_profanity.entries.is_empty());
        assert!(!lists.is_empty());
        assert_eq!(lists.len(), 2);
    }

    #[test]
    fn porn_list_uses_media_removal_not_reject() {
        // §7: "With the media removal facility, the harmful material loses
        // its meaning while the non-harmful users are still able to have
        // their posts delivered."
        let ds = toy_dataset();
        let ann = HarmAnnotations::annotate(&ds);
        let lists = curate(&ds, &ann, &CurationConfig::default());
        assert_eq!(lists.no_porn.action, SimpleAction::MediaRemoval);
    }

    #[test]
    fn rarely_rejected_instances_stay_off_the_lists() {
        let ds = toy_dataset();
        let ann = HarmAnnotations::annotate(&ds);
        let strict = CurationConfig {
            min_rejects: 10,
            ..Default::default()
        };
        let lists = curate(&ds, &ann, &strict);
        assert!(lists.is_empty(), "6 rejects < 10 required");
    }

    #[test]
    fn lists_compile_into_a_policy() {
        let ds = toy_dataset();
        let ann = HarmAnnotations::annotate(&ds);
        let policy = curate(&ds, &ann, &CurationConfig::default()).into_policy();
        // The policy expands into SimplePolicy-equivalent configuration.
        let simple = policy.as_simple_policy();
        assert_eq!(simple.targets(SimpleAction::MediaRemoval).len(), 1);
    }
}
