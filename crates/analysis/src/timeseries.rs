//! Snapshot time series: what the 4-hourly metadata polling (§3) shows
//! over the campaign.
//!
//! The paper collected instance metadata every four hours for ~5 months;
//! this module aggregates those snapshots into growth trajectories —
//! useful both as a data-quality check (did the crawl keep up?) and for
//! the §6 discussion of user migration.

use fediscope_core::time::SimTime;
use fediscope_crawler::Dataset;

/// One aggregate snapshot across all crawled Pleroma instances.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregateSnapshot {
    /// Snapshot time.
    pub at: SimTime,
    /// Instances reporting at this round.
    pub instances: usize,
    /// Total users across them.
    pub users: u64,
    /// Total posts across them.
    pub posts: u64,
}

/// Aggregates per-instance snapshots into fleet-wide rounds.
pub fn aggregate_snapshots(dataset: &Dataset) -> Vec<AggregateSnapshot> {
    use std::collections::BTreeMap;
    let mut rounds: BTreeMap<SimTime, (usize, u64, u64)> = BTreeMap::new();
    for inst in dataset.pleroma_crawled() {
        for snap in &inst.snapshots {
            let e = rounds.entry(snap.at).or_insert((0, 0, 0));
            e.0 += 1;
            e.1 += snap.user_count;
            e.2 += snap.status_count;
        }
    }
    rounds
        .into_iter()
        .map(|(at, (instances, users, posts))| AggregateSnapshot {
            at,
            instances,
            users,
            posts,
        })
        .collect()
}

/// Growth of one instance across the campaign: `(first, last)` user and
/// post counts, or `None` without at least two snapshots.
pub fn instance_growth(dataset: &Dataset, domain: &str) -> Option<((u64, u64), (u64, u64))> {
    let inst = dataset.by_domain(domain)?;
    let first = inst.snapshots.first()?;
    let last = inst.snapshots.last()?;
    if inst.snapshots.len() < 2 {
        return None;
    }
    Some((
        (first.user_count, last.user_count),
        (first.status_count, last.status_count),
    ))
}

/// Instances whose reported user count changed between the first and last
/// snapshot (candidates for the §6 migration discussion).
pub fn churning_instances(dataset: &Dataset) -> Vec<(String, i64)> {
    let mut out: Vec<(String, i64)> = dataset
        .pleroma_crawled()
        .filter_map(|inst| {
            let first = inst.snapshots.first()?;
            let last = inst.snapshots.last()?;
            let delta = last.user_count as i64 - first.user_count as i64;
            (delta != 0).then(|| (inst.domain.to_string(), delta))
        })
        .collect();
    out.sort_by_key(|(_, d)| -d.abs());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fediscope_core::id::Domain;
    use fediscope_crawler::{
        CrawlOutcome, CrawledInstance, InstanceMetadata, MetadataSnapshot, TimelineCrawl,
    };

    fn instance_with_snapshots(domain: &str, series: &[(u64, u64, u64)]) -> CrawledInstance {
        CrawledInstance {
            domain: Domain::new(domain),
            outcome: CrawlOutcome::Crawled,
            software: Some("pleroma".into()),
            from_directory: true,
            metadata: Some(InstanceMetadata {
                user_count: series.last().map(|s| s.1).unwrap_or(0),
                status_count: series.last().map(|s| s.2).unwrap_or(0),
                domain_count: 0,
                version: "2.2.0".into(),
                registrations_open: true,
                policies: None,
            }),
            peers: Vec::new(),
            timeline: TimelineCrawl::Empty,
            snapshots: series
                .iter()
                .map(|&(at, users, posts)| MetadataSnapshot {
                    at: SimTime(at),
                    user_count: users,
                    status_count: posts,
                })
                .collect(),
        }
    }

    fn dataset() -> Dataset {
        Dataset {
            started: SimTime(0),
            finished: SimTime(100),
            instances: vec![
                instance_with_snapshots("grow.example", &[(10, 100, 1000), (20, 120, 1500)]),
                instance_with_snapshots("shrink.example", &[(10, 50, 300), (20, 40, 320)]),
                instance_with_snapshots("flat.example", &[(10, 7, 70), (20, 7, 75)]),
            ],
        }
    }

    #[test]
    fn aggregate_rounds_are_time_ordered() {
        let rounds = aggregate_snapshots(&dataset());
        assert_eq!(rounds.len(), 2);
        assert_eq!(rounds[0].at, SimTime(10));
        assert_eq!(rounds[0].instances, 3);
        assert_eq!(rounds[0].users, 157);
        assert_eq!(rounds[1].users, 167);
        assert!(rounds[1].posts > rounds[0].posts);
    }

    #[test]
    fn growth_reads_first_and_last() {
        let ((u0, u1), (p0, p1)) = instance_growth(&dataset(), "grow.example").unwrap();
        assert_eq!((u0, u1), (100, 120));
        assert_eq!((p0, p1), (1000, 1500));
        assert!(instance_growth(&dataset(), "missing.example").is_none());
    }

    #[test]
    fn churn_sorted_by_magnitude() {
        let churn = churning_instances(&dataset());
        assert_eq!(churn.len(), 2, "flat instance excluded");
        assert_eq!(churn[0].0, "grow.example");
        assert_eq!(churn[0].1, 20);
        assert_eq!(churn[1].1, -10);
    }
}
