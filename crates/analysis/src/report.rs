//! Report rendering: paper-vs-measured tables for the experiment harness.

use std::fmt::Write as _;

/// One comparison row: what the paper reports vs what we measured.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Metric name.
    pub label: String,
    /// The paper's value, if it reports one.
    pub paper: Option<f64>,
    /// Our measured value.
    pub measured: f64,
    /// Display format.
    pub format: NumberFormat,
}

/// How to format a metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NumberFormat {
    /// Plain count.
    Count,
    /// Percentage (value in [0, 1], shown ×100).
    Percent,
    /// Score / correlation with 3 decimals.
    Score,
}

impl Comparison {
    /// A count row.
    pub fn count(label: impl Into<String>, paper: impl Into<Option<f64>>, measured: f64) -> Self {
        Comparison {
            label: label.into(),
            paper: paper.into(),
            measured,
            format: NumberFormat::Count,
        }
    }

    /// A percentage row (fractions in, percent out).
    pub fn percent(label: impl Into<String>, paper: impl Into<Option<f64>>, measured: f64) -> Self {
        Comparison {
            label: label.into(),
            paper: paper.into(),
            measured,
            format: NumberFormat::Percent,
        }
    }

    /// A score/correlation row.
    pub fn score(label: impl Into<String>, paper: impl Into<Option<f64>>, measured: f64) -> Self {
        Comparison {
            label: label.into(),
            paper: paper.into(),
            measured,
            format: NumberFormat::Score,
        }
    }

    fn fmt_value(&self, v: f64) -> String {
        match self.format {
            NumberFormat::Count => {
                if v >= 1_000_000.0 {
                    format!("{:.2}M", v / 1_000_000.0)
                } else if v >= 10_000.0 {
                    format!("{:.1}k", v / 1_000.0)
                } else {
                    format!("{v:.0}")
                }
            }
            NumberFormat::Percent => format!("{:.1}%", v * 100.0),
            NumberFormat::Score => format!("{v:.3}"),
        }
    }
}

/// Renders a titled paper-vs-measured table.
pub fn render_comparisons(title: &str, rows: &[Comparison]) -> String {
    let mut out = String::new();
    let label_w = rows
        .iter()
        .map(|r| r.label.len())
        .max()
        .unwrap_or(10)
        .max("metric".len());
    let _ = writeln!(out, "== {title} ==");
    let _ = writeln!(
        out,
        "{:<label_w$}  {:>12}  {:>12}",
        "metric", "paper", "measured"
    );
    for row in rows {
        let paper = row
            .paper
            .map(|p| row.fmt_value(p))
            .unwrap_or_else(|| "—".to_string());
        let _ = writeln!(
            out,
            "{:<label_w$}  {:>12}  {:>12}",
            row.label,
            paper,
            row.fmt_value(row.measured)
        );
    }
    out
}

/// Renders a generic data table (for figure series).
pub fn render_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "== {title} ==");
    let header_line: Vec<String> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| format!("{:<w$}", h, w = widths[i]))
        .collect();
    let _ = writeln!(out, "{}", header_line.join("  "));
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect();
        let _ = writeln!(out, "{}", line.join("  "));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_formats() {
        let c = Comparison::count("instances", Some(1534.0), 1530.0);
        assert_eq!(c.fmt_value(1534.0), "1534");
        assert_eq!(c.fmt_value(24_500_000.0), "24.50M");
        assert_eq!(c.fmt_value(57_854.0), "57.9k");
        let p = Comparison::percent("users affected", Some(0.977), 0.97);
        assert_eq!(p.fmt_value(0.977), "97.7%");
        let s = Comparison::score("spearman", None, 0.381);
        assert_eq!(s.fmt_value(0.381), "0.381");
    }

    #[test]
    fn render_includes_all_rows_and_dash_for_missing_paper() {
        let rows = vec![
            Comparison::count("a", Some(1.0), 2.0),
            Comparison::score("bee", None, 0.5),
        ];
        let s = render_comparisons("Test", &rows);
        assert!(s.contains("== Test =="));
        assert!(s.contains("a"));
        assert!(s.contains("bee"));
        assert!(s.contains('—'));
    }

    #[test]
    fn render_table_aligns() {
        let s = render_table(
            "T",
            &["name", "n"],
            &[
                vec!["short".into(), "1".into()],
                vec!["a-much-longer-name".into(), "23".into()],
            ],
        );
        assert!(s.contains("a-much-longer-name"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
    }
}
