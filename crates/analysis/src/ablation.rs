//! Extension studies: the §7 strawman-solution ablation and the §6
//! federation-graph damage analysis.
//!
//! The paper sketches both as future work; fediscope implements them so
//! the design discussion can be quantified on the same dataset.

use crate::scores::HarmAnnotations;
use crate::tables::section5_users;
use fediscope_core::mrf::policies::SimpleAction;
use fediscope_core::paper;
use fediscope_crawler::Dataset;
use std::collections::{HashMap, HashSet};

/// A moderation strategy under ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Instance-wide `reject` — the paper's measured status quo.
    RejectInstance,
    /// Instance-wide media removal (§7: harmful material on sexually
    /// explicit instances "is mostly in media form").
    MediaRemoval,
    /// Instance-wide NSFW tagging: content is delivered behind a warning.
    NsfwTag,
    /// Per-user rejection driven by a classifier at the paper's 0.8
    /// threshold (§7 proposal 2/3).
    PerUserReject,
    /// Per-user NSFW tagging at the same threshold.
    PerUserNsfw,
}

impl Strategy {
    /// All strategies in presentation order.
    pub const ALL: [Strategy; 5] = [
        Strategy::RejectInstance,
        Strategy::MediaRemoval,
        Strategy::NsfwTag,
        Strategy::PerUserReject,
        Strategy::PerUserNsfw,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Strategy::RejectInstance => "reject (instance)",
            Strategy::MediaRemoval => "media_removal (instance)",
            Strategy::NsfwTag => "nsfw tag (instance)",
            Strategy::PerUserReject => "per-user reject (classifier)",
            Strategy::PerUserNsfw => "per-user nsfw (classifier)",
        }
    }
}

/// Outcome of one strategy on the §5 population.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// The strategy.
    pub strategy: Strategy,
    /// Share of *innocent* users whose posts are fully blocked.
    pub innocent_blocked: f64,
    /// Share of innocent users whose content is degraded (tagged /
    /// media-stripped) but still delivered.
    pub innocent_degraded: f64,
    /// Share of *harmful users* whose reach is fully blocked.
    pub harmful_blocked: f64,
    /// Share of harmful users degraded but not blocked.
    pub harmful_degraded: f64,
}

/// §7 ablation: applies each strategy to the §5 user population of
/// rejected instances and measures collateral damage vs harm mitigation.
///
/// Classification uses the measured per-user scores — i.e. the classifier
/// the paper proposes "(e.g. in Google Perspective API)".
pub fn solutions(dataset: &Dataset, annotations: &HarmAnnotations) -> Vec<AblationRow> {
    let users = section5_users(dataset, annotations);
    let threshold = paper::HARMFUL_THRESHOLD;
    let harmful: Vec<bool> = users.iter().map(|u| u.mean.max() >= threshold).collect();
    let n_harmful = harmful.iter().filter(|&&h| h).count().max(1) as f64;
    let n_innocent = (users.len() - harmful.iter().filter(|&&h| h).count()).max(1) as f64;

    Strategy::ALL
        .iter()
        .map(|&strategy| {
            let mut innocent_blocked = 0usize;
            let mut innocent_degraded = 0usize;
            let mut harmful_blocked = 0usize;
            let mut harmful_degraded = 0usize;
            for (idx, _user) in users.iter().enumerate() {
                let is_harmful = harmful[idx];
                let (blocked, degraded) = match strategy {
                    // Instance-wide actions hit every user of the rejected
                    // instance identically.
                    Strategy::RejectInstance => (true, false),
                    Strategy::MediaRemoval => (false, true),
                    Strategy::NsfwTag => (false, true),
                    // Per-user actions hit only classifier-flagged users.
                    Strategy::PerUserReject => (is_harmful, false),
                    Strategy::PerUserNsfw => (false, is_harmful),
                };
                match (is_harmful, blocked, degraded) {
                    (false, true, _) => innocent_blocked += 1,
                    (false, false, true) => innocent_degraded += 1,
                    (true, true, _) => harmful_blocked += 1,
                    (true, false, true) => harmful_degraded += 1,
                    _ => {}
                }
            }
            AblationRow {
                strategy,
                innocent_blocked: innocent_blocked as f64 / n_innocent,
                innocent_degraded: innocent_degraded as f64 / n_innocent,
                harmful_blocked: harmful_blocked as f64 / n_harmful,
                harmful_degraded: harmful_degraded as f64 / n_harmful,
            }
        })
        .collect()
}

/// One row of the federation-graph damage analysis (§6).
#[derive(Debug, Clone)]
pub struct GraphDamageRow {
    /// The rejected instance.
    pub domain: String,
    /// Rejects received.
    pub rejects: u32,
    /// Users on the instances rejecting it — the audience its users lost.
    pub audience_lost: u64,
    /// That audience as a share of all crawled users.
    pub audience_lost_share: f64,
    /// Share of the instance's peers that reject it (local connectivity
    /// damage).
    pub peer_loss_share: f64,
}

/// §6: quantifies the federation-graph effect of rejects. For each of the
/// top rejected instances: the user audience lost (users on rejecting
/// instances) and the share of its own peers now refusing it.
pub fn federation_graph(dataset: &Dataset, top: usize) -> Vec<GraphDamageRow> {
    let total_users: u64 = dataset.pleroma_crawled().map(|i| i.user_count()).sum();
    // Who rejects whom.
    let mut rejectors_of: HashMap<String, HashSet<&str>> = HashMap::new();
    for (inst, action, target) in dataset.moderation_events() {
        if action == SimpleAction::Reject {
            rejectors_of
                .entry(target.to_string())
                .or_default()
                .insert(inst.domain.as_str());
        }
    }
    let user_counts: HashMap<&str, u64> = dataset
        .pleroma_crawled()
        .map(|i| (i.domain.as_str(), i.user_count()))
        .collect();
    let peers: HashMap<&str, &Vec<fediscope_core::id::Domain>> = dataset
        .pleroma_crawled()
        .map(|i| (i.domain.as_str(), &i.peers))
        .collect();

    let mut rows: Vec<GraphDamageRow> = rejectors_of
        .iter()
        .map(|(target, rejectors)| {
            let audience: u64 = rejectors
                .iter()
                .filter_map(|r| user_counts.get(r))
                .copied()
                .sum();
            let peer_loss = peers
                .get(target.as_str())
                .map(|ps| {
                    if ps.is_empty() {
                        0.0
                    } else {
                        ps.iter().filter(|p| rejectors.contains(p.as_str())).count() as f64
                            / ps.len() as f64
                    }
                })
                .unwrap_or(0.0);
            GraphDamageRow {
                domain: target.clone(),
                rejects: rejectors.len() as u32,
                audience_lost: audience,
                audience_lost_share: audience as f64 / total_users.max(1) as f64,
                peer_loss_share: peer_loss,
            }
        })
        .collect();
    rows.sort_by(|a, b| b.rejects.cmp(&a.rejects).then(a.domain.cmp(&b.domain)));
    rows.truncate(top);
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use fediscope_core::config::InstanceModerationConfig;
    use fediscope_core::id::Domain;
    use fediscope_core::mrf::policies::SimplePolicy;
    use fediscope_core::time::SimTime;
    use fediscope_crawler::{
        CollectedPost, CrawlOutcome, CrawledInstance, InstanceMetadata, TimelineCrawl,
    };

    fn post(author: u64, domain: &str, content: &str) -> CollectedPost {
        CollectedPost {
            id: 1,
            author_id: author,
            author_domain: Domain::new(domain),
            created: SimTime(0),
            content: content.to_string(),
            sensitive: false,
            visibility: "public".into(),
            media_count: 1,
            hashtags: Vec::new(),
            mentions: 0,
        }
    }

    fn dataset() -> Dataset {
        let mut blocker_cfg = InstanceModerationConfig::pleroma_default();
        blocker_cfg.set_simple(
            SimplePolicy::new().with_target(SimpleAction::Reject, Domain::new("target.example")),
        );
        let blocker = CrawledInstance {
            domain: Domain::new("blocker.example"),
            outcome: CrawlOutcome::Crawled,
            software: Some("pleroma".into()),
            from_directory: true,
            metadata: Some(InstanceMetadata {
                user_count: 90,
                status_count: 10,
                domain_count: 1,
                version: "2.2.0".into(),
                registrations_open: true,
                policies: Some(blocker_cfg),
            }),
            peers: vec![Domain::new("target.example")],
            timeline: TimelineCrawl::Empty,
            snapshots: Vec::new(),
        };
        let target = CrawledInstance {
            domain: Domain::new("target.example"),
            outcome: CrawlOutcome::Crawled,
            software: Some("pleroma".into()),
            from_directory: true,
            metadata: Some(InstanceMetadata {
                user_count: 3,
                status_count: 3,
                domain_count: 1,
                version: "2.2.0".into(),
                registrations_open: true,
                policies: Some(InstanceModerationConfig::default()),
            }),
            peers: vec![Domain::new("blocker.example")],
            timeline: TimelineCrawl::Posts(vec![
                post(
                    1,
                    "target.example",
                    "grukk vrelk subhuman kys scum die vermin",
                ),
                post(2, "target.example", "coffee morning walk"),
                post(3, "target.example", "book garden tea"),
            ]),
            snapshots: Vec::new(),
        };
        Dataset {
            started: SimTime(0),
            finished: SimTime(1),
            instances: vec![blocker, target],
        }
    }

    #[test]
    fn per_user_strategies_spare_innocents() {
        let ds = dataset();
        let ann = HarmAnnotations::annotate(&ds);
        let rows = solutions(&ds, &ann);
        let reject = rows
            .iter()
            .find(|r| r.strategy == Strategy::RejectInstance)
            .unwrap();
        assert_eq!(reject.innocent_blocked, 1.0, "reject blocks everyone");
        assert_eq!(reject.harmful_blocked, 1.0);
        let per_user = rows
            .iter()
            .find(|r| r.strategy == Strategy::PerUserReject)
            .unwrap();
        assert_eq!(per_user.innocent_blocked, 0.0, "innocents spared");
        assert_eq!(per_user.harmful_blocked, 1.0, "harm still blocked");
        let nsfw = rows
            .iter()
            .find(|r| r.strategy == Strategy::NsfwTag)
            .unwrap();
        assert_eq!(nsfw.innocent_blocked, 0.0);
        assert_eq!(
            nsfw.innocent_degraded, 1.0,
            "tagging affects all, blocks none"
        );
    }

    #[test]
    fn federation_graph_quantifies_audience_loss() {
        let ds = dataset();
        let rows = federation_graph(&ds, 10);
        assert_eq!(rows.len(), 1);
        let row = &rows[0];
        assert_eq!(row.domain, "target.example");
        assert_eq!(row.rejects, 1);
        assert_eq!(row.audience_lost, 90);
        assert!((row.audience_lost_share - 90.0 / 93.0).abs() < 1e-9);
        assert_eq!(row.peer_loss_share, 1.0, "its only peer rejects it");
    }
}
