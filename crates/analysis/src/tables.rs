//! The paper's tables, recomputed from a crawled dataset.

use crate::figures::{rejected_instances, RejectedInstanceRow};
use crate::scores::HarmAnnotations;
use fediscope_core::paper;
use fediscope_crawler::Dataset;

/// Table 1: the five most rejected Pleroma instances.
pub fn table1_top_rejected(
    dataset: &Dataset,
    annotations: &HarmAnnotations,
) -> Vec<RejectedInstanceRow> {
    rejected_instances(dataset, annotations)
        .into_iter()
        .take(5)
        .collect()
}

/// One row of Table 2.
#[derive(Debug, Clone)]
pub struct ThresholdRow {
    /// Perspective threshold.
    pub threshold: f64,
    /// Share of users on rejected instances that classify *non-harmful*.
    pub non_harmful_share: f64,
    /// Users evaluated.
    pub users: usize,
}

/// Table 2: the share of non-harmful users on rejected Pleroma instances
/// under varying Perspective thresholds (0.5–0.9).
///
/// Follows §5's population: users with publicly accessible content on
/// rejected Pleroma instances, excluding single-user instances.
pub fn table2_threshold_sweep(
    dataset: &Dataset,
    annotations: &HarmAnnotations,
) -> Vec<ThresholdRow> {
    let users = section5_users(dataset, annotations);
    paper::TABLE2_THRESHOLDS
        .iter()
        .map(|&threshold| {
            let harmful = users.iter().filter(|u| u.mean.max() >= threshold).count();
            ThresholdRow {
                threshold,
                non_harmful_share: if users.is_empty() {
                    0.0
                } else {
                    1.0 - harmful as f64 / users.len() as f64
                },
                users: users.len(),
            }
        })
        .collect()
}

/// The §5 user population: users with content on multi-user rejected
/// Pleroma instances.
pub fn section5_users<'a>(
    dataset: &Dataset,
    annotations: &'a HarmAnnotations,
) -> Vec<&'a crate::scores::UserScore> {
    let reject_counts = dataset.reject_counts();
    let multi_user: std::collections::HashSet<_> = dataset
        .pleroma_crawled()
        .filter(|i| reject_counts.contains_key(&i.domain) && i.user_count() > 1)
        .map(|i| i.domain.clone())
        .collect();
    annotations
        .users
        .iter()
        .filter(|((domain, _), _)| multi_user.contains(domain))
        .map(|(_, score)| score)
        .collect()
}

/// One row of Table 3: the policy catalog with prevalence.
#[derive(Debug, Clone)]
pub struct PolicyCatalogRow {
    /// Policy name.
    pub name: String,
    /// Table 3 description.
    pub description: &'static str,
    /// Instances enabling it (measured).
    pub instances: usize,
    /// Users on those instances (measured).
    pub users: u64,
    /// The paper's instance count, if tabulated.
    pub paper_instances: Option<u32>,
    /// The paper's user count, if tabulated.
    pub paper_users: Option<u32>,
}

/// Table 3: every in-built policy with description and measured
/// prevalence, paper reference columns attached.
pub fn table3_policy_catalog(dataset: &Dataset) -> Vec<PolicyCatalogRow> {
    let spectrum = crate::figures::policy_spectrum(dataset);
    let catalog = fediscope_core::catalog::PolicyCatalog::global();
    paper::TABLE3_PREVALENCE
        .iter()
        .map(|row| {
            let measured = spectrum.iter().find(|r| r.name == row.name);
            let entry = catalog.by_name(row.name);
            PolicyCatalogRow {
                name: row.name.to_string(),
                description: entry.map(|e| e.description).unwrap_or(""),
                instances: measured.map(|m| m.instances).unwrap_or(0),
                users: measured.map(|m| m.users).unwrap_or(0),
                paper_instances: Some(row.instances),
                paper_users: Some(row.users),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fediscope_core::config::InstanceModerationConfig;
    use fediscope_core::id::Domain;
    use fediscope_core::mrf::policies::{SimpleAction, SimplePolicy};
    use fediscope_core::time::SimTime;
    use fediscope_crawler::{
        CollectedPost, CrawlOutcome, CrawledInstance, InstanceMetadata, TimelineCrawl,
    };

    fn post(author: u64, domain: &str, content: &str) -> CollectedPost {
        CollectedPost {
            id: 1,
            author_id: author,
            author_domain: Domain::new(domain),
            created: SimTime(0),
            content: content.to_string(),
            sensitive: false,
            visibility: "public".into(),
            media_count: 0,
            hashtags: Vec::new(),
            mentions: 0,
        }
    }

    fn dataset() -> Dataset {
        let mut blocker_cfg = InstanceModerationConfig::pleroma_default();
        blocker_cfg.set_simple(
            SimplePolicy::new()
                .with_target(SimpleAction::Reject, Domain::new("multi.example"))
                .with_target(SimpleAction::Reject, Domain::new("solo.example")),
        );
        let blocker = CrawledInstance {
            domain: Domain::new("blocker.example"),
            outcome: CrawlOutcome::Crawled,
            software: Some("pleroma".into()),
            from_directory: true,
            metadata: Some(InstanceMetadata {
                user_count: 10,
                status_count: 0,
                domain_count: 0,
                version: "2.2.0".into(),
                registrations_open: true,
                policies: Some(blocker_cfg),
            }),
            peers: Vec::new(),
            timeline: TimelineCrawl::Empty,
            snapshots: Vec::new(),
        };
        // multi.example: 3 users, one harmful.
        let multi = CrawledInstance {
            domain: Domain::new("multi.example"),
            outcome: CrawlOutcome::Crawled,
            software: Some("pleroma".into()),
            from_directory: true,
            metadata: Some(InstanceMetadata {
                user_count: 3,
                status_count: 4,
                domain_count: 0,
                version: "2.2.0".into(),
                registrations_open: true,
                policies: Some(InstanceModerationConfig::default()),
            }),
            peers: Vec::new(),
            timeline: TimelineCrawl::Posts(vec![
                post(1, "multi.example", "grukk vrelk subhuman kys scum"),
                post(2, "multi.example", "coffee garden morning"),
                post(3, "multi.example", "bread cat photo"),
                post(2, "multi.example", "river walk book"),
            ]),
            snapshots: Vec::new(),
        };
        // solo.example: single-user — §5 excludes it.
        let solo = CrawledInstance {
            domain: Domain::new("solo.example"),
            outcome: CrawlOutcome::Crawled,
            software: Some("pleroma".into()),
            from_directory: true,
            metadata: Some(InstanceMetadata {
                user_count: 1,
                status_count: 1,
                domain_count: 0,
                version: "2.2.0".into(),
                registrations_open: true,
                policies: None,
            }),
            peers: Vec::new(),
            timeline: TimelineCrawl::Posts(vec![post(9, "solo.example", "zmut qorn porn")]),
            snapshots: Vec::new(),
        };
        Dataset {
            started: SimTime(0),
            finished: SimTime(1),
            instances: vec![blocker, multi, solo],
        }
    }

    #[test]
    fn table2_excludes_single_user_instances() {
        let ds = dataset();
        let ann = HarmAnnotations::annotate(&ds);
        let users = section5_users(&ds, &ann);
        assert_eq!(users.len(), 3, "solo.example's author is excluded");
        let rows = table2_threshold_sweep(&ds, &ann);
        assert_eq!(rows.len(), 5);
        // 1 of 3 users is harmful at 0.8 → 66.7% non-harmful.
        let row08 = rows.iter().find(|r| r.threshold == 0.8).unwrap();
        assert!((row08.non_harmful_share - 2.0 / 3.0).abs() < 1e-9);
        // Monotone in threshold.
        for w in rows.windows(2) {
            assert!(w[0].non_harmful_share <= w[1].non_harmful_share);
        }
    }

    #[test]
    fn table1_takes_top_five() {
        let ds = dataset();
        let ann = HarmAnnotations::annotate(&ds);
        let rows = table1_top_rejected(&ds, &ann);
        assert_eq!(rows.len(), 2, "only two rejected Pleroma instances here");
        assert_eq!(rows[0].rejects, 1);
        assert!(rows[0].toxicity.is_some());
    }

    #[test]
    fn table3_includes_descriptions_and_paper_columns() {
        let ds = dataset();
        let rows = table3_policy_catalog(&ds);
        assert_eq!(rows.len(), paper::TABLE3_PREVALENCE.len());
        let oap = rows.iter().find(|r| r.name == "ObjectAgePolicy").unwrap();
        assert_eq!(oap.paper_instances, Some(869));
        assert!(oap.description.contains("age"));
        assert_eq!(oap.instances, 1, "only blocker enables defaults");
    }
}
