//! The paper's figures, recomputed from a crawled dataset.

use crate::scores::HarmAnnotations;
use fediscope_core::id::Domain;
use fediscope_core::mrf::policies::SimpleAction;
use fediscope_crawler::Dataset;
use std::collections::{BTreeMap, HashMap, HashSet};

/// One row of Figures 1/7: a policy's prevalence.
#[derive(Debug, Clone)]
pub struct PolicyPrevalenceRow {
    /// Policy display name.
    pub name: String,
    /// Instances with the policy enabled.
    pub instances: usize,
    /// Share of all crawled Pleroma instances.
    pub instance_share: f64,
    /// Users on those instances.
    pub users: u64,
    /// Share of the global (crawled Pleroma) user population.
    pub user_share: f64,
}

/// Figures 1 & 7: per-policy prevalence, sorted by instance count
/// descending. Figure 1 is the head of this list (top 15 + "Others");
/// Figure 7 is the whole spectrum.
pub fn policy_spectrum(dataset: &Dataset) -> Vec<PolicyPrevalenceRow> {
    let crawled: Vec<_> = dataset.pleroma_crawled().collect();
    let total_instances = crawled.len().max(1);
    let total_users: u64 = crawled.iter().map(|i| i.user_count()).sum();
    let mut per_policy: BTreeMap<&'static str, (usize, u64)> = BTreeMap::new();
    for inst in &crawled {
        if let Some(config) = inst.policies() {
            for kind in &config.enabled {
                let e = per_policy.entry(kind.name()).or_insert((0, 0));
                e.0 += 1;
                e.1 += inst.user_count();
            }
        }
    }
    let mut rows: Vec<PolicyPrevalenceRow> = per_policy
        .into_iter()
        .map(|(name, (instances, users))| PolicyPrevalenceRow {
            name: name.to_string(),
            instances,
            instance_share: instances as f64 / total_instances as f64,
            users,
            user_share: users as f64 / total_users.max(1) as f64,
        })
        .collect();
    rows.sort_by(|a, b| b.instances.cmp(&a.instances).then(a.name.cmp(&b.name)));
    rows
}

/// Figure 1: the top 15 policies plus an "Others" aggregate.
pub fn fig1_policy_prevalence(dataset: &Dataset) -> Vec<PolicyPrevalenceRow> {
    let spectrum = policy_spectrum(dataset);
    let mut rows: Vec<PolicyPrevalenceRow> = spectrum.iter().take(15).cloned().collect();
    if spectrum.len() > 15 {
        let crawled = dataset.pleroma_crawled().count().max(1);
        // "Others": instances running at least one tail policy.
        let tail_names: HashSet<&str> = spectrum[15..].iter().map(|r| r.name.as_str()).collect();
        let mut instances = 0usize;
        let mut users = 0u64;
        let mut total_users = 0u64;
        for inst in dataset.pleroma_crawled() {
            total_users += inst.user_count();
            if let Some(config) = inst.policies() {
                if config.enabled.iter().any(|k| tail_names.contains(k.name())) {
                    instances += 1;
                    users += inst.user_count();
                }
            }
        }
        rows.push(PolicyPrevalenceRow {
            name: "Others".to_string(),
            instances,
            instance_share: instances as f64 / crawled as f64,
            users,
            user_share: users as f64 / total_users.max(1) as f64,
        });
    }
    rows
}

/// One row of Figure 2: instances *targeted by* a SimplePolicy action.
#[derive(Debug, Clone)]
pub struct TargetedByActionRow {
    /// Action label as in the figure.
    pub action: &'static str,
    /// Targeted Pleroma instances.
    pub targeted_pleroma: usize,
    /// Targeted non-Pleroma instances (plus never-classified domains,
    /// which the paper likewise could not attribute to Pleroma).
    pub targeted_non_pleroma: usize,
    /// Users on the targeted Pleroma instances.
    pub users_on_targeted: u64,
}

/// Figure 2: for each SimplePolicy action, how many distinct instances are
/// targeted (split Pleroma / non-Pleroma) and how many users live on the
/// targeted Pleroma instances.
pub fn fig2_targeted_by_action(dataset: &Dataset) -> Vec<TargetedByActionRow> {
    let user_counts: HashMap<&Domain, u64> = dataset
        .pleroma_crawled()
        .map(|i| (&i.domain, i.user_count()))
        .collect();
    let pleroma_domains: HashSet<&Domain> = dataset.pleroma_all().map(|i| &i.domain).collect();
    let mut per_action: HashMap<SimpleAction, HashSet<&Domain>> = HashMap::new();
    for (_, action, target) in dataset.moderation_events() {
        per_action.entry(action).or_default().insert(target);
    }
    SimpleAction::ALL
        .iter()
        .map(|&action| {
            let targets = per_action.get(&action).cloned().unwrap_or_default();
            let mut pleroma = 0;
            let mut non_pleroma = 0;
            let mut users = 0;
            for t in targets {
                if pleroma_domains.contains(t) {
                    pleroma += 1;
                    users += user_counts.get(t).copied().unwrap_or(0);
                } else {
                    non_pleroma += 1;
                }
            }
            TargetedByActionRow {
                action: action.label(),
                targeted_pleroma: pleroma,
                targeted_non_pleroma: non_pleroma,
                users_on_targeted: users,
            }
        })
        .collect()
}

/// One row of Figure 3: instances *applying* a SimplePolicy action.
#[derive(Debug, Clone)]
pub struct TargetingByActionRow {
    /// Action label.
    pub action: &'static str,
    /// Number of instances applying the action to at least one target.
    pub targeting_instances: usize,
    /// Users on the instances *targeted* by the action (the figure's
    /// second axis).
    pub users_on_targeted: u64,
}

/// Figure 3: for each action, how many instances apply it.
pub fn fig3_targeting_by_action(dataset: &Dataset) -> Vec<TargetingByActionRow> {
    let user_counts: HashMap<&Domain, u64> = dataset
        .pleroma_crawled()
        .map(|i| (&i.domain, i.user_count()))
        .collect();
    let mut appliers: HashMap<SimpleAction, HashSet<&Domain>> = HashMap::new();
    let mut targets: HashMap<SimpleAction, HashSet<&Domain>> = HashMap::new();
    for (inst, action, target) in dataset.moderation_events() {
        appliers.entry(action).or_default().insert(&inst.domain);
        targets.entry(action).or_default().insert(target);
    }
    SimpleAction::ALL
        .iter()
        .map(|&action| TargetingByActionRow {
            action: action.label(),
            targeting_instances: appliers.get(&action).map(HashSet::len).unwrap_or(0),
            users_on_targeted: targets
                .get(&action)
                .map(|ts| ts.iter().filter_map(|t| user_counts.get(t)).copied().sum())
                .unwrap_or(0),
        })
        .collect()
}

/// One rejected Pleroma instance with its scores (Figure 4) and audience
/// (Figure 5).
#[derive(Debug, Clone)]
pub struct RejectedInstanceRow {
    /// Domain.
    pub domain: Domain,
    /// Rejects received.
    pub rejects: u32,
    /// Reported users.
    pub users: u64,
    /// Reported posts.
    pub posts: u64,
    /// Mean toxicity over collected posts (None = no post data, like
    /// Table 1's "NA" row for spinster.xyz).
    pub toxicity: Option<f64>,
    /// Mean profanity.
    pub profanity: Option<f64>,
    /// Mean sexually-explicit score.
    pub sexually_explicit: Option<f64>,
}

/// Figures 4 & 5 (and the raw material of Table 1): every rejected Pleroma
/// instance, sorted by reject count descending.
pub fn rejected_instances(
    dataset: &Dataset,
    annotations: &HarmAnnotations,
) -> Vec<RejectedInstanceRow> {
    let reject_counts = dataset.reject_counts();
    let mut rows: Vec<RejectedInstanceRow> = dataset
        .pleroma_crawled()
        .filter_map(|inst| {
            let rejects = reject_counts.get(&inst.domain).copied()?;
            let score = annotations.instances.get(&inst.domain);
            Some(RejectedInstanceRow {
                domain: inst.domain.clone(),
                rejects,
                users: inst.user_count(),
                posts: inst.status_count(),
                toxicity: score.map(|s| s.mean.toxicity),
                profanity: score.map(|s| s.mean.profanity),
                sexually_explicit: score.map(|s| s.mean.sexually_explicit),
            })
        })
        .collect();
    rows.sort_by(|a, b| b.rejects.cmp(&a.rejects).then(a.domain.cmp(&b.domain)));
    rows
}

/// One row of Figure 6: user harm classes on a rejected instance.
#[derive(Debug, Clone)]
pub struct UserHarmRow {
    /// Domain.
    pub domain: Domain,
    /// Users classified toxic (mean toxicity ≥ 0.8).
    pub toxic: usize,
    /// Users classified profane.
    pub profane: usize,
    /// Users classified sexually explicit.
    pub sexually_explicit: usize,
    /// Users with no harmful classification.
    pub non_harmful: usize,
}

/// Figure 6: per rejected Pleroma instance (multi-user, with posts), the
/// number of toxic / profane / sexually-explicit / non-harmful users.
pub fn fig6_user_harm(dataset: &Dataset, annotations: &HarmAnnotations) -> Vec<UserHarmRow> {
    use fediscope_perspective::Attribute;
    let threshold = fediscope_core::paper::HARMFUL_THRESHOLD;
    let reject_counts = dataset.reject_counts();
    let mut rows: Vec<UserHarmRow> = Vec::new();
    for inst in dataset.pleroma_crawled() {
        if !reject_counts.contains_key(&inst.domain) || !inst.timeline.has_posts() {
            continue;
        }
        // §5 excludes single-user instances.
        if inst.user_count() <= 1 {
            continue;
        }
        let mut row = UserHarmRow {
            domain: inst.domain.clone(),
            toxic: 0,
            profane: 0,
            sexually_explicit: 0,
            non_harmful: 0,
        };
        for (_, score) in annotations.users_of(&inst.domain) {
            let mut any = false;
            if score.harmful_on(Attribute::Toxicity, threshold) {
                row.toxic += 1;
                any = true;
            }
            if score.harmful_on(Attribute::Profanity, threshold) {
                row.profane += 1;
                any = true;
            }
            if score.harmful_on(Attribute::SexuallyExplicit, threshold) {
                row.sexually_explicit += 1;
                any = true;
            }
            if !any {
                row.non_harmful += 1;
            }
        }
        if row.toxic + row.profane + row.sexually_explicit + row.non_harmful > 0 {
            rows.push(row);
        }
    }
    rows.sort_by(|a, b| {
        let ha = a.toxic + a.profane + a.sexually_explicit;
        let hb = b.toxic + b.profane + b.sexually_explicit;
        hb.cmp(&ha).then(a.domain.cmp(&b.domain))
    });
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use fediscope_core::catalog::PolicyKind;
    use fediscope_core::config::InstanceModerationConfig;
    use fediscope_core::mrf::policies::SimplePolicy;
    use fediscope_core::time::SimTime;
    use fediscope_crawler::{CrawlOutcome, CrawledInstance, InstanceMetadata, TimelineCrawl};

    fn instance(
        domain: &str,
        software: &str,
        users: u64,
        policies: Option<InstanceModerationConfig>,
    ) -> CrawledInstance {
        CrawledInstance {
            domain: Domain::new(domain),
            outcome: if software == "pleroma" {
                CrawlOutcome::Crawled
            } else {
                CrawlOutcome::NonPleroma
            },
            software: Some(software.to_string()),
            from_directory: software == "pleroma",
            metadata: (software == "pleroma").then(|| InstanceMetadata {
                user_count: users,
                status_count: users * 10,
                domain_count: 0,
                version: "2.2.0".into(),
                registrations_open: true,
                policies,
            }),
            peers: Vec::new(),
            timeline: TimelineCrawl::Empty,
            snapshots: Vec::new(),
        }
    }

    fn dataset() -> Dataset {
        let mut blocker_cfg = InstanceModerationConfig::pleroma_default();
        blocker_cfg.set_simple(
            SimplePolicy::new()
                .with_target(SimpleAction::Reject, Domain::new("bad.example"))
                .with_target(SimpleAction::Reject, Domain::new("gab.example"))
                .with_target(SimpleAction::MediaRemoval, Domain::new("lewd.example")),
        );
        let mut second_cfg = InstanceModerationConfig::default();
        second_cfg.enable(PolicyKind::Tag);
        second_cfg.set_simple(
            SimplePolicy::new().with_target(SimpleAction::Reject, Domain::new("bad.example")),
        );
        Dataset {
            started: SimTime(0),
            finished: SimTime(1),
            instances: vec![
                instance("blocker.example", "pleroma", 100, Some(blocker_cfg)),
                instance("second.example", "pleroma", 50, Some(second_cfg)),
                instance(
                    "bad.example",
                    "pleroma",
                    500,
                    Some(InstanceModerationConfig::default()),
                ),
                instance("lewd.example", "pleroma", 30, None),
                instance("gab.example", "mastodon", 0, None),
            ],
        }
    }

    #[test]
    fn policy_spectrum_counts_enabled_policies() {
        let rows = policy_spectrum(&dataset());
        let simple = rows.iter().find(|r| r.name == "SimplePolicy").unwrap();
        assert_eq!(simple.instances, 2);
        assert_eq!(simple.users, 150);
        let object_age = rows.iter().find(|r| r.name == "ObjectAgePolicy").unwrap();
        assert_eq!(object_age.instances, 1, "only blocker has defaults");
        // Sorted descending by instance count.
        assert!(rows[0].instances >= rows.last().unwrap().instances);
    }

    #[test]
    fn fig2_splits_pleroma_and_non_pleroma_targets() {
        let rows = fig2_targeted_by_action(&dataset());
        let reject = rows.iter().find(|r| r.action == "reject").unwrap();
        assert_eq!(reject.targeted_pleroma, 1, "bad.example");
        assert_eq!(reject.targeted_non_pleroma, 1, "gab.example");
        assert_eq!(reject.users_on_targeted, 500);
        let media = rows.iter().find(|r| r.action == "media_removal").unwrap();
        assert_eq!(media.targeted_pleroma, 1, "lewd.example");
        assert_eq!(media.users_on_targeted, 30);
    }

    #[test]
    fn fig3_counts_appliers() {
        let rows = fig3_targeting_by_action(&dataset());
        let reject = rows.iter().find(|r| r.action == "reject").unwrap();
        assert_eq!(reject.targeting_instances, 2);
        let media = rows.iter().find(|r| r.action == "media_removal").unwrap();
        assert_eq!(media.targeting_instances, 1);
        let nsfw = rows.iter().find(|r| r.action == "nsfw").unwrap();
        assert_eq!(nsfw.targeting_instances, 0);
    }

    #[test]
    fn rejected_instances_sorted_by_rejects() {
        let ds = dataset();
        let ann = HarmAnnotations::annotate(&ds);
        let rows = rejected_instances(&ds, &ann);
        assert_eq!(rows.len(), 1, "only bad.example is Pleroma and rejected");
        assert_eq!(rows[0].domain.as_str(), "bad.example");
        assert_eq!(rows[0].rejects, 2);
        assert_eq!(rows[0].users, 500);
        assert_eq!(rows[0].toxicity, None, "no posts collected");
    }

    #[test]
    fn fig1_caps_at_15_plus_others() {
        let rows = fig1_policy_prevalence(&dataset());
        assert!(rows.len() <= 16);
    }
}
