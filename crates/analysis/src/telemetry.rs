//! Human tables over a [`RunReport`] — the terminal companion to the
//! `--telemetry-out` JSON.
//!
//! Consumes only the serialized snapshot (never the live registry), so
//! the renderer works identically on a report captured in-process and
//! one read back from disk.

use crate::report::render_table;
use fediscope_telemetry::RunReport;

/// Formats nanoseconds with a readable unit (ns / µs / ms / s).
fn fmt_nanos(nanos: u64) -> String {
    match nanos {
        0..=9_999 => format!("{nanos}ns"),
        10_000..=9_999_999 => format!("{:.1}µs", nanos as f64 / 1e3),
        10_000_000..=9_999_999_999 => format!("{:.1}ms", nanos as f64 / 1e6),
        _ => format!("{:.2}s", nanos as f64 / 1e9),
    }
}

/// Renders the full report: phase spans, hot counters, gauges, probe
/// latency, and the per-instance top-K volume table. Empty sections
/// (zero-count phases, all-zero counters) are dropped — a disarmed or
/// idle registry renders to a short note instead of walls of zeros.
pub fn render_telemetry(report: &RunReport) -> String {
    let mut out = String::new();

    if !report.armed {
        out.push_str(&format!(
            "== telemetry: {} ==\n(registry disarmed — no readings)\n",
            report.label
        ));
        return out;
    }

    let phase_rows: Vec<Vec<String>> = report
        .phases
        .iter()
        .filter(|p| p.count > 0)
        .map(|p| {
            vec![
                p.phase.clone(),
                p.count.to_string(),
                fmt_nanos(p.total_nanos),
                fmt_nanos(p.mean_nanos),
                fmt_nanos(p.histogram.p50_upper_nanos),
                fmt_nanos(p.histogram.p99_upper_nanos),
            ]
        })
        .collect();
    if !phase_rows.is_empty() {
        out.push_str(&render_table(
            &format!("phase spans: {}", report.label),
            &["phase", "spans", "total", "mean", "p50≤", "p99≤"],
            &phase_rows,
        ));
    }

    let counter_rows: Vec<Vec<String>> = report
        .counters
        .iter()
        .filter(|c| c.value > 0)
        .map(|c| vec![c.name.clone(), c.value.to_string()])
        .collect();
    if !counter_rows.is_empty() {
        out.push_str(&render_table(
            "hot counters",
            &["counter", "value"],
            &counter_rows,
        ));
    }

    let gauge_rows: Vec<Vec<String>> = report
        .gauges
        .iter()
        .map(|g| vec![g.name.clone(), g.value.to_string()])
        .collect();
    out.push_str(&render_table(
        "gauges (final tick)",
        &["gauge", "value"],
        &gauge_rows,
    ));

    let probe_rows: Vec<Vec<String>> = report
        .probe_latency
        .iter()
        .filter(|p| p.count > 0)
        .map(|p| {
            vec![
                p.class.clone(),
                p.count.to_string(),
                fmt_nanos(p.mean_nanos),
                fmt_nanos(p.histogram.p50_upper_nanos),
                fmt_nanos(p.histogram.p99_upper_nanos),
            ]
        })
        .collect();
    if !probe_rows.is_empty() {
        out.push_str(&render_table(
            "census probe latency (simulated, §3 classes)",
            &["class", "probes", "mean", "p50≤", "p99≤"],
            &probe_rows,
        ));
    }

    let instance_rows: Vec<Vec<String>> = report
        .top_instances
        .iter()
        .map(|r| {
            vec![
                r.index.to_string(),
                if r.domain.is_empty() {
                    "?".to_string()
                } else {
                    r.domain.clone()
                },
                r.delivered.to_string(),
                r.blocked.to_string(),
            ]
        })
        .collect();
    if !instance_rows.is_empty() {
        out.push_str(&render_table(
            "top instances by delivered volume",
            &["idx", "domain", "delivered", "blocked"],
            &instance_rows,
        ));
    }

    if phase_rows.is_empty() && counter_rows.is_empty() && probe_rows.is_empty() {
        out.push_str("(armed, but nothing recorded)\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fediscope_telemetry::{GaugeId, HotCounter, Phase, ProbeClass, Telemetry};

    #[test]
    fn disarmed_report_renders_a_note() {
        let t = Telemetry::new();
        let text = render_telemetry(&t.report("idle"));
        assert!(text.contains("disarmed"));
        assert!(!text.contains("phase spans"));
    }

    #[test]
    fn armed_report_renders_every_populated_section() {
        let t = Telemetry::new();
        t.arm();
        t.record_phase(Phase::Control, 1_500_000);
        t.add(HotCounter::EngineDeliveries, 4242);
        t.set_gauge(GaugeId::Links, 99);
        t.record_probe(ProbeClass::Success, 85_000_000);
        t.set_instance_labels(["busy.example"]);
        t.add_instance_volume(0, 4242, 17);
        let text = render_telemetry(&t.report("unit"));
        assert!(text.contains("phase spans: unit"));
        assert!(text.contains("control"));
        assert!(text.contains("engine_deliveries"));
        assert!(text.contains("4242"));
        assert!(text.contains("links"));
        assert!(text.contains("success"));
        assert!(text.contains("busy.example"));
        // Empty phases/classes are dropped, not rendered as zeros.
        assert!(!text.contains("retry_drain"));
        assert!(!text.contains("net_error"));
    }

    #[test]
    fn nanos_format_picks_units() {
        assert_eq!(fmt_nanos(999), "999ns");
        assert_eq!(fmt_nanos(150_000), "150.0µs");
        assert_eq!(fmt_nanos(25_000_000), "25.0ms");
        assert_eq!(fmt_nanos(12_000_000_000), "12.00s");
    }
}
